#include "analysis/fluid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace aeq::analysis {

namespace {
constexpr double kEps = 1e-12;
}

void FluidConfig::validate() const {
  AEQ_ASSERT(!weights.empty());
  AEQ_ASSERT(weights.size() == shares.size());
  double share_sum = 0.0;
  for (double w : weights) AEQ_ASSERT(w > 0.0);
  for (double s : shares) {
    AEQ_ASSERT(s >= 0.0);
    share_sum += s;
  }
  AEQ_ASSERT_MSG(std::abs(share_sum - 1.0) < 1e-9, "shares must sum to 1");
  AEQ_ASSERT(mu > 0.0 && mu < 1.0);
  AEQ_ASSERT(rho >= mu);
}

std::vector<double> gps_allocate(const std::vector<double>& arrival_rate,
                                 const std::vector<bool>& backlogged,
                                 const std::vector<double>& weights,
                                 double rate) {
  const std::size_t n = weights.size();
  AEQ_ASSERT(arrival_rate.size() == n && backlogged.size() == n);
  std::vector<double> alloc(n, 0.0);

  // Total demand below capacity: serve everyone at demand (work conserving).
  std::vector<bool> open(n, false);
  double finite_demand = 0.0;
  bool any_backlogged = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (backlogged[i]) {
      open[i] = true;
      any_backlogged = true;
    } else if (arrival_rate[i] > kEps) {
      open[i] = true;
      finite_demand += arrival_rate[i];
    }
  }
  if (!any_backlogged && finite_demand <= rate + kEps) {
    for (std::size_t i = 0; i < n; ++i) alloc[i] = arrival_rate[i];
    return alloc;
  }

  // Water-filling: repeatedly grant weighted shares; classes whose finite
  // demand is met drop out and release capacity.
  double remaining = rate;
  bool changed = true;
  while (changed) {
    changed = false;
    double open_weight = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (open[i]) open_weight += weights[i];
    }
    if (open_weight <= kEps) break;
    for (std::size_t i = 0; i < n; ++i) {
      if (!open[i] || backlogged[i]) continue;
      const double fair = weights[i] / open_weight * remaining;
      if (arrival_rate[i] <= fair + kEps) {
        alloc[i] = arrival_rate[i];
        remaining -= arrival_rate[i];
        open[i] = false;
        changed = true;
      }
    }
  }
  double open_weight = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (open[i]) open_weight += weights[i];
  }
  if (open_weight > kEps) {
    for (std::size_t i = 0; i < n; ++i) {
      if (open[i]) alloc[i] = weights[i] / open_weight * remaining;
    }
  }
  return alloc;
}

FluidResult simulate_fluid(const FluidConfig& config) {
  config.validate();
  const std::size_t n = config.weights.size();
  const double burst_end = config.mu / config.rho;  // per Figure 7
  // Piecewise-linear cumulative curves sampled at breakpoints.
  struct Curve {
    std::vector<double> t;
    std::vector<double> v;
  };
  std::vector<Curve> arrival(n), service(n);
  std::vector<double> backlog(n, 0.0), cum_arrival(n, 0.0),
      cum_service(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    arrival[i].t.push_back(0.0);
    arrival[i].v.push_back(0.0);
    service[i].t.push_back(0.0);
    service[i].v.push_back(0.0);
  }

  double t = 0.0;
  const double horizon = 4.0;  // generous; mu<1 guarantees drain within 1
  std::vector<double> drain_time(n, 0.0);
  while (t < horizon) {
    const bool in_burst = t < burst_end - kEps;
    std::vector<double> arr(n, 0.0);
    std::vector<bool> backlogged(n, false);
    bool any_work = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (in_burst) arr[i] = config.rho * config.shares[i];
      backlogged[i] = backlog[i] > kEps;
      if (backlogged[i] || arr[i] > kEps) any_work = true;
    }
    if (!any_work) break;

    const std::vector<double> svc =
        gps_allocate(arr, backlogged, config.weights, 1.0);

    // Next breakpoint: burst end or a backlog hitting zero.
    double dt = in_burst ? burst_end - t : horizon - t;
    for (std::size_t i = 0; i < n; ++i) {
      const double net = arr[i] - svc[i];
      if (backlog[i] > kEps && net < -kEps) {
        dt = std::min(dt, backlog[i] / -net);
      }
    }
    AEQ_ASSERT(dt > 0.0);

    t += dt;
    for (std::size_t i = 0; i < n; ++i) {
      cum_arrival[i] += arr[i] * dt;
      cum_service[i] += svc[i] * dt;
      backlog[i] = std::max(0.0, backlog[i] + (arr[i] - svc[i]) * dt);
      arrival[i].t.push_back(t);
      arrival[i].v.push_back(cum_arrival[i]);
      service[i].t.push_back(t);
      service[i].v.push_back(cum_service[i]);
      if (backlog[i] <= kEps && drain_time[i] == 0.0 && cum_arrival[i] > 0.0) {
        drain_time[i] = t;
      }
    }
  }

  // Worst-case delay: the maximum horizontal distance between arrival and
  // service curves. Both are piecewise linear and nondecreasing, so the
  // distance as a function of the level v is piecewise linear and attains
  // its maximum at a breakpoint level of either curve.
  auto time_curve_reaches = [&](const Curve& c, double level) {
    for (std::size_t k = 1; k < c.t.size(); ++k) {
      if (c.v[k] + kEps >= level) {
        const double dv = c.v[k] - c.v[k - 1];
        if (dv <= kEps) return c.t[k - 1];
        const double frac = (level - c.v[k - 1]) / dv;
        return c.t[k - 1] + frac * (c.t[k] - c.t[k - 1]);
      }
    }
    return c.t.empty() ? 0.0 : c.t.back();
  };

  FluidResult result;
  result.delay.assign(n, 0.0);
  result.drain_time = drain_time;
  for (std::size_t i = 0; i < n; ++i) {
    double worst = 0.0;
    std::vector<double> levels = arrival[i].v;
    levels.insert(levels.end(), service[i].v.begin(), service[i].v.end());
    const double max_level = cum_arrival[i];
    for (double level : levels) {
      if (level <= kEps || level > max_level + kEps) continue;
      const double gap = time_curve_reaches(service[i], level) -
                         time_curve_reaches(arrival[i], level);
      worst = std::max(worst, gap);
    }
    result.delay[i] = worst;
  }
  return result;
}

}  // namespace aeq::analysis
