#include "analysis/admissible.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::analysis {

bool is_admissible(const FluidConfig& config) {
  const FluidResult result = simulate_fluid(config);
  for (std::size_t k = 0; k + 1 < result.delay.size(); ++k) {
    if (result.delay[k] > result.delay[k + 1] + 1e-9) return false;
  }
  return true;
}

double max_share_within_slo(const TwoQosParams& params,
                            double normalized_delay_slo, double tolerance) {
  AEQ_ASSERT(normalized_delay_slo >= 0.0);
  AEQ_ASSERT(tolerance > 0.0);
  // delay_high is nondecreasing up to its plateau then constant, so a scan
  // from the right finds the crossing without assuming invertibility.
  double best = 0.0;
  for (double x = tolerance; x < 1.0; x += tolerance) {
    if (delay_high(params, x) <= normalized_delay_slo) best = x;
  }
  return best;
}

double max_admissible_share(const TwoQosParams& params, double tolerance) {
  AEQ_ASSERT(tolerance > 0.0);
  double best = 0.0;
  for (double x = tolerance; x < 1.0; x += tolerance) {
    if (delay_high(params, x) <= delay_low(params, x) + 1e-12) best = x;
  }
  return best;
}

std::vector<SweepPoint> sweep_qosh_share(
    const std::vector<double>& weights, const std::vector<double>& rest_ratio,
    double mu, double rho, double lo, double hi, std::size_t steps) {
  AEQ_ASSERT(weights.size() >= 2);
  AEQ_ASSERT(rest_ratio.size() == weights.size() - 1);
  AEQ_ASSERT(steps >= 2 && lo > 0.0 && hi < 1.0 && lo < hi);
  double ratio_sum = 0.0;
  for (double r : rest_ratio) {
    AEQ_ASSERT(r >= 0.0);
    ratio_sum += r;
  }
  AEQ_ASSERT(ratio_sum > 0.0);

  std::vector<SweepPoint> points;
  points.reserve(steps);
  for (std::size_t s = 0; s < steps; ++s) {
    const double x =
        lo + (hi - lo) * static_cast<double>(s) /
                 static_cast<double>(steps - 1);
    FluidConfig config;
    config.weights = weights;
    config.mu = mu;
    config.rho = rho;
    config.shares.resize(weights.size());
    config.shares[0] = x;
    for (std::size_t i = 1; i < weights.size(); ++i) {
      config.shares[i] = (1.0 - x) * rest_ratio[i - 1] / ratio_sum;
    }
    const FluidResult result = simulate_fluid(config);
    points.push_back(SweepPoint{x, result.delay});
  }
  return points;
}

}  // namespace aeq::analysis
