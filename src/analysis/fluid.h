// GPS (fluid) simulation of a WFQ server with N classes under the burst/idle
// arrival pattern of Figure 7, used to extend the closed-form 2-QoS analysis
// to arbitrary class counts (paper Figure 9) and to cross-check Equation 1.
//
// The fluid model advances between rate-change breakpoints (burst end,
// backlog drains) and allocates service by weighted water-filling, so it is
// exact for piecewise-constant arrivals. Per-class worst-case delay is the
// maximum horizontal distance between the cumulative arrival and service
// curves, as in Network Calculus.
#pragma once

#include <vector>

#include "sim/assert.h"

namespace aeq::analysis {

struct FluidConfig {
  std::vector<double> weights;  // per class, index 0 = highest QoS
  std::vector<double> shares;   // QoS-mix: fraction of arrivals per class
  double mu = 0.8;              // average load over the unit period
  double rho = 1.4;             // burst load (> mu; > 1 for overload)

  void validate() const;
};

struct FluidResult {
  // Worst-case delay per class, normalized to the period (= 1 time unit).
  std::vector<double> delay;
  // Time each class finished draining its backlog.
  std::vector<double> drain_time;
};

FluidResult simulate_fluid(const FluidConfig& config);

// Weighted water-filling allocation of capacity `rate` given per-class
// demands (`backlogged[i]` -> unbounded demand; else demand = arrival[i]).
// Exposed for testing.
std::vector<double> gps_allocate(const std::vector<double>& arrival_rate,
                                 const std::vector<bool>& backlogged,
                                 const std::vector<double>& weights,
                                 double rate);

}  // namespace aeq::analysis
