#include "analysis/wfq_delay.h"

#include <algorithm>

namespace aeq::analysis {

double delay_high(const TwoQosParams& params, double x) {
  params.validate();
  AEQ_ASSERT(x > 0.0 && x < 1.0);
  const double phi = params.phi;
  const double mu = params.mu;
  const double rho = params.rho;
  const double w = phi / (phi + 1.0);  // guaranteed share of QoS_h

  // Case (1): arrivals fit within the guaranteed rate — no delay.
  if (x <= w / rho) return 0.0;
  // Case (2): both classes backlogged, QoS_h drains before QoS_l.
  if (x <= w) return mu * ((phi + 1.0) / phi * x - 1.0 / rho);
  // Case (3): both backlogged, QoS_l drains first (priority inversion zone).
  if (x <= std::min(1.0 - 1.0 / ((phi + 1.0) * rho), 1.0 / rho)) {
    return mu * (1.0 - x) * (phi + 1.0 - phi / (rho * x));
  }
  // Case (4): QoS_l under its guarantee (no QoS_l delay), QoS_h delayed.
  if (x <= 1.0 / rho) return mu * (1.0 / rho - 1.0 / (rho * rho)) / x;
  // Case (5): QoS_h arrival rate alone exceeds the line rate.
  return mu * (1.0 - 1.0 / rho);
}

double delay_low(const TwoQosParams& params, double x) {
  params.validate();
  AEQ_ASSERT(x > 0.0 && x < 1.0);
  // Equation 8 is delay_high under the exchange (phi, x) -> (1/phi, 1-x):
  // the two GPS classes are symmetric, so the QoS_l bound equals the bound
  // of a "high" class with weight ratio 1:phi carrying share (1-x). The
  // substitution reproduces Eq 8's five cases exactly (e.g. its case
  // mu((phi+1)(1-x) - 1/rho) is case (2) of Eq 1 after the exchange) while
  // sidestepping the empty-subdomain bookkeeping the paper warns about.
  const TwoQosParams mirrored{
      .phi = 1.0 / params.phi, .mu = params.mu, .rho = params.rho};
  return delay_high(mirrored, 1.0 - x);
}

double delay_high_infinite_weight(const TwoQosParams& params, double x) {
  params.validate();
  AEQ_ASSERT(x > 0.0 && x < 1.0);
  if (x <= 1.0 / params.rho) return 0.0;
  return params.mu * (x - 1.0 / params.rho);
}

double inversion_boundary(const TwoQosParams& params) {
  params.validate();
  return params.phi / (params.phi + 1.0);
}

double guaranteed_admitted_share(double weight_share, double mu, double rho) {
  AEQ_ASSERT(weight_share > 0.0 && weight_share <= 1.0);
  AEQ_ASSERT(mu > 0.0 && rho >= mu);
  return weight_share * mu / rho;
}

}  // namespace aeq::analysis
