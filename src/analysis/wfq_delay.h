// Closed-form worst-case WFQ delay bounds for the 2-QoS case (paper §4.1 and
// Appendix B), under the burst/idle arrival pattern of Figure 7:
//   * traffic arrives at instantaneous rate rho * r for the first mu/rho of
//     a unit period and is idle for the rest (average load mu < 1);
//   * a fraction x of arrivals is QoS_h, (1-x) QoS_l;
//   * WFQ weights are phi : 1.
// Delays are normalized to the period length.
#pragma once

#include "sim/assert.h"

namespace aeq::analysis {

struct TwoQosParams {
  double phi = 4.0;  // QoS_h : QoS_l weight ratio
  double mu = 0.8;   // average load (fraction of line rate), in (0, 1)
  double rho = 1.2;  // burst load (instantaneous arrival / line rate), > 1

  void validate() const {
    AEQ_ASSERT(phi > 0.0);
    AEQ_ASSERT(mu > 0.0 && mu < 1.0);
    AEQ_ASSERT(rho > 1.0);
    AEQ_ASSERT_MSG(mu <= rho, "burst load cannot be below average load");
  }
};

// Worst-case normalized delay of QoS_h as a function of its traffic share
// x in (0, 1) — Equation 1.
double delay_high(const TwoQosParams& params, double x);

// Worst-case normalized delay of QoS_l — Equation 8.
double delay_low(const TwoQosParams& params, double x);

// Equation 4: the limit of delay_high as phi -> infinity (single-QoS view).
double delay_high_infinite_weight(const TwoQosParams& params, double x);

// Lemma 1: the QoS_h-share boundary phi/(phi+1) beyond which priority
// inversion can occur when both classes exceed their guaranteed rates.
double inversion_boundary(const TwoQosParams& params);

// §5.2: the average rate guaranteed to be admitted on a class with weight
// share w = phi_i / sum(phi), independent of the SLO: r * w * mu / rho
// (expressed as a fraction of line rate r = 1).
double guaranteed_admitted_share(double weight_share, double mu, double rho);

}  // namespace aeq::analysis
