// Operator tooling around the admissible region (paper §4.2, Lemma 1):
// given WFQ weights and the traffic envelope (mu, rho), find the QoS-mixes
// with no priority inversion and the maximum share a QoS level can carry
// while staying under a normalized delay SLO. This is the "tool for
// datacenter operators to define the admissible region and set the right
// SLOs" the paper describes (§6.1).
#pragma once

#include <vector>

#include "analysis/fluid.h"
#include "analysis/wfq_delay.h"

namespace aeq::analysis {

// True when the given N-class QoS-mix has no priority inversion
// (delay_bound_k <= delay_bound_{k+1} for all k — Equation 3), evaluated
// with the fluid simulator.
bool is_admissible(const FluidConfig& config);

// Largest QoS_h share x (to `tolerance`) such that delay_high(x) <= the
// normalized delay SLO, scanned over (0, 1). Returns 0 if even tiny shares
// violate the SLO.
double max_share_within_slo(const TwoQosParams& params,
                            double normalized_delay_slo,
                            double tolerance = 1e-4);

// Largest QoS_h share before priority inversion for the 2-QoS closed form.
double max_admissible_share(const TwoQosParams& params,
                            double tolerance = 1e-4);

// Sweep helper: delay profile of every class over QoS_h shares in
// [lo, hi] with `steps` points, holding the remaining classes' relative
// shares fixed (e.g. Figure 9 fixes QoS_m : QoS_l at 2:1).
struct SweepPoint {
  double qosh_share;
  std::vector<double> delay;  // per class
};
std::vector<SweepPoint> sweep_qosh_share(
    const std::vector<double>& weights,
    const std::vector<double>& rest_ratio,  // relative shares of classes 1..
    double mu, double rho, double lo, double hi, std::size_t steps);

}  // namespace aeq::analysis
