// SWP-style workload-aware pacing without priorities (Zhao et al.,
// PAPERS.md, arXiv 2103.01314) — the strong no-QoS baseline.
//
// SWP's premise is that microsecond-scale SLOs are achievable without any
// priority fabric if hosts pace what they inject. Expressed inside this
// simulator's QoS machinery: every admitted RPC, whatever it requested,
// runs on ONE class (`run_qos`, default the top class, so the whole fabric
// degenerates to a single queue), and admission is a token bucket over
// payload bytes refilled at `rate_fraction * link_rate`. The rate adapts
// per window — AIMD on the pacing fraction: multiplicative decrease when
// the window's p99 size-normalized RNL violates the tightest configured
// SLO target, additive increase otherwise. Over-budget RPCs are rejected:
// dropped under drop_rejects (classic pacing/limiting), otherwise admitted
// onto the true scavenger class as unpaced spillover — the only "lower
// than everyone" escape a no-priority design can offer.
#pragma once

#include <cstdint>

#include "policy/spec.h"
#include "policy/windowed.h"

namespace aeq::policy {

class SwpPacingController final : public WindowedController {
 public:
  SwpPacingController(const SwpPacingConfig& config, std::size_t num_qos,
                      rpc::SloConfig slo, sim::Rate link_rate,
                      bool drop_rejects);

  void on_window(const obs::WindowStats& window) override;

  std::vector<rpc::Gauge> gauges() const override;
  void audit_invariants(sim::Time now) const override;

  double rate_fraction() const { return rate_fraction_; }

 protected:
  rpc::AdmissionDecision decide(sim::Time now, net::HostId src,
                                net::HostId dst, net::QoSLevel qos_requested,
                                std::uint64_t bytes) override;

  void on_feedback(sim::Time now, net::HostId dst,
                   net::QoSLevel qos_requested, net::QoSLevel qos_run,
                   sim::Time rnl, std::uint64_t size_mtus,
                   bool slo_met) override;

 private:
  double bucket_capacity() const;
  void refill(sim::Time now);

  SwpPacingConfig config_;
  sim::Rate link_rate_;
  bool drop_rejects_;
  double min_target_per_mtu_;  // tightest SLO-class per-MTU target

  double rate_fraction_;
  double tokens_;  // bytes
  sim::Time last_refill_ = 0.0;
  std::uint64_t violating_windows_ = 0;

  // Size-normalized RNL of the current window's completions.
  stats::LogHistogram norm_rnl_;
};

}  // namespace aeq::policy
