// Tabular contextual bandit over (window RNL band, qos-mix band) state,
// per Raeis et al.'s learned admission control (PAPERS.md, arXiv
// 2008.09590), reduced to the simplest deterministic form that can still
// adapt: epsilon-greedy action selection over discrete admit-probability
// levels, one action per observation window.
//
// State (9 cells by default):
//   * RNL band — the window's mean size-normalized RNL of SLO-class
//     completions relative to the tightest per-MTU target: under (< 0.8x),
//     near ([0.8x, 1.2x)), over (>= 1.2x).
//   * Mix band — the share of offered bytes admitted onto SLO classes:
//     low (< 0.4), mid ([0.4, 0.7)), high (>= 0.7).
// Action: the admit probability applied to SLO-class requests until the
// next window closes. Reward: the window's worst SLO-class compliance
// minus `reject_penalty` times the rejected share. Q-learning without a
// bootstrap term (a bandit, not full RL): Q += lr * (r - Q).
//
// All randomness (Bernoulli admit draws, epsilon exploration) comes from
// the controller's own forked sim::Rng stream, so runs are reproducible
// across backends and shard counts.
#pragma once

#include <cstdint>

#include "policy/spec.h"
#include "policy/windowed.h"
#include "sim/rng.h"

namespace aeq::policy {

class BanditController final : public WindowedController {
 public:
  BanditController(const BanditConfig& config, std::size_t num_qos,
                   rpc::SloConfig slo, sim::Rng rng);

  void on_window(const obs::WindowStats& window) override;

  std::vector<rpc::Gauge> gauges() const override;
  void audit_invariants(sim::Time now) const override;

  double current_p_admit() const { return config_.actions[action_]; }
  double epsilon() const { return epsilon_; }

 protected:
  rpc::AdmissionDecision decide(sim::Time now, net::HostId src,
                                net::HostId dst, net::QoSLevel qos_requested,
                                std::uint64_t bytes) override;

  void on_feedback(sim::Time now, net::HostId dst,
                   net::QoSLevel qos_requested, net::QoSLevel qos_run,
                   sim::Time rnl, std::uint64_t size_mtus,
                   bool slo_met) override;

 private:
  static constexpr std::size_t kRnlBands = 3;
  static constexpr std::size_t kMixBands = 3;
  static constexpr std::size_t kStates = kRnlBands * kMixBands;

  std::size_t classify(const obs::WindowStats& window) const;
  double& q(std::size_t state, std::size_t action) {
    return q_[state * config_.actions.size() + action];
  }
  double q(std::size_t state, std::size_t action) const {
    return q_[state * config_.actions.size() + action];
  }

  BanditConfig config_;
  sim::Rng rng_;
  double min_target_per_mtu_;  // tightest SLO-class per-MTU target

  std::vector<double> q_;  // kStates x actions, row-major
  std::size_t state_ = 0;
  std::size_t action_;     // index into config_.actions
  double epsilon_;

  // Side accumulators beyond WindowStats: size-normalized RNL of SLO-class
  // completions in the current window.
  double norm_rnl_sum_ = 0.0;
  std::uint64_t norm_rnl_count_ = 0;
};

}  // namespace aeq::policy
