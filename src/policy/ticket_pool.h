// MongoDB-style throughput-probing ticket pool (SNIPPETS.md §3).
//
// Admission to any SLO-carrying QoS requires a ticket from a host-wide pool
// whose size (the concurrency limit) is not fixed but *probed*: each closed
// window measures ticketed goodput (completions of RPCs that held a
// ticket), folds it into an exponential moving average, and a three-state
// machine — stable / probing up / probing down — moves the limit by
// `probe_step` and keeps the probe only if the measured goodput improved
// (up) or at least did not degrade (down). When the pool is empty the RPC
// is rejected to the scavenger class (or dropped under drop_rejects), so
// the pool bounds host-local in-flight SLO work the way MongoDB's
// execution control bounds storage-engine concurrency.
//
// Scavenger-requested RPCs bypass the pool entirely: tickets exist to
// protect the SLO classes, and a downgraded RPC holds no ticket (its
// completion releases nothing).
#pragma once

#include <cstdint>

#include "policy/spec.h"
#include "policy/windowed.h"

namespace aeq::policy {

class TicketPoolController final : public WindowedController {
 public:
  TicketPoolController(const TicketPoolConfig& config, std::size_t num_qos,
                       rpc::SloConfig slo);

  void on_window(const obs::WindowStats& window) override;

  std::vector<rpc::Gauge> gauges() const override;
  void audit_invariants(sim::Time now) const override;

  double concurrency_limit() const { return limit_; }
  std::int64_t tickets_in_flight() const { return in_flight_; }

 protected:
  rpc::AdmissionDecision decide(sim::Time now, net::HostId src,
                                net::HostId dst, net::QoSLevel qos_requested,
                                std::uint64_t bytes) override;

  void on_feedback(sim::Time now, net::HostId dst,
                   net::QoSLevel qos_requested, net::QoSLevel qos_run,
                   sim::Time rnl, std::uint64_t size_mtus,
                   bool slo_met) override;

 private:
  enum class Probe { kStable, kUp, kDown };

  double clamp_limit(double limit) const;

  TicketPoolConfig config_;
  double limit_;         // current (probed) concurrency limit
  double stable_limit_;  // last adopted limit to revert to
  std::int64_t in_flight_ = 0;
  Probe probe_ = Probe::kStable;
  double goodput_ema_ = 0.0;  // ticketed completions per window, smoothed
  double best_goodput_ = 0.0;
  std::uint64_t ticketed_completions_ = 0;  // current window
};

}  // namespace aeq::policy
