#include "policy/registry.h"

#include <map>
#include <utility>

#include "core/aequitas.h"
#include "policy/adapters.h"
#include "policy/bandit.h"
#include "policy/swp_pacing.h"
#include "policy/ticket_pool.h"
#include "sim/assert.h"

namespace aeq::policy {

namespace {

using Registry = std::map<std::string, PolicyFactory>;

std::unique_ptr<rpc::AdmissionController> wrap_rejections(
    std::unique_ptr<rpc::AdmissionController> inner, bool drop_rejects) {
  if (!drop_rejects) return inner;
  return std::make_unique<RejectionAdapter>(std::move(inner));
}

Registry builtin_registry() {
  Registry registry;
  registry[kAequitas] = [](const AdmissionSpec& spec,
                           const PolicyContext& context) {
    core::AequitasConfig config;
    config.alpha = spec.aequitas.alpha;
    config.beta_per_mtu = spec.aequitas.beta_per_mtu;
    config.p_admit_floor = spec.aequitas.p_admit_floor;
    config.slo = context.slo;
    return wrap_rejections(std::make_unique<core::AequitasController>(
                               config, context.rng),
                           spec.drop_rejects);
  };
  registry[kAlwaysAdmit] = [](const AdmissionSpec&, const PolicyContext&) {
    return std::make_unique<rpc::AlwaysAdmit>();
  };
  registry[kTicketPool] = [](const AdmissionSpec& spec,
                             const PolicyContext& context) {
    return wrap_rejections(
        std::make_unique<TicketPoolController>(spec.ticket_pool,
                                               context.num_qos, context.slo),
        spec.drop_rejects);
  };
  registry[kBandit] = [](const AdmissionSpec& spec,
                         const PolicyContext& context) {
    return wrap_rejections(
        std::make_unique<BanditController>(spec.bandit, context.num_qos,
                                           context.slo, context.rng),
        spec.drop_rejects);
  };
  registry[kSwpPacing] = [](const AdmissionSpec& spec,
                            const PolicyContext& context) {
    // SWP rejects by dropping (or unpaced scavenger spillover) natively;
    // drop_rejects selects between the two inside the policy.
    return std::make_unique<SwpPacingController>(
        spec.swp, context.num_qos, context.slo, context.link_rate,
        spec.drop_rejects);
  };
  return registry;
}

Registry& registry() {
  // Process-wide policy table, written only by register_policy (setup
  // time) and read at experiment construction — not per-event state, so
  // run-to-run independence within one process is unaffected.
  // detlint:allow(static-local)
  static Registry instance = builtin_registry();
  return instance;
}

}  // namespace

void register_policy(const std::string& kind, PolicyFactory factory) {
  AEQ_ASSERT_MSG(!kind.empty(), "policy kind must be non-empty");
  AEQ_ASSERT_MSG(factory != nullptr, "policy factory must be callable");
  registry()[kind] = std::move(factory);
}

bool is_registered(const std::string& kind) {
  return registry().count(kind) != 0;
}

std::vector<std::string> names() {
  std::vector<std::string> result;
  result.reserve(registry().size());
  for (const auto& [kind, factory] : registry()) {
    result.push_back(kind);
  }
  return result;  // std::map: already sorted
}

std::unique_ptr<rpc::AdmissionController> make_controller(
    const AdmissionSpec& spec, PolicyContext context) {
  const auto it = registry().find(spec.kind);
  if (it == registry().end()) {
    std::string message = "unknown admission policy kind \"" + spec.kind +
                          "\"; registered kinds:";
    for (const std::string& kind : names()) message += " " + kind;
    AEQ_ASSERT_MSG(false, message.c_str());
  }
  return it->second(spec, context);
}

}  // namespace aeq::policy
