// The admission-policy registry: string kind -> controller factory,
// mirroring the EventScheduler backend pattern from PR 1 at the admission
// layer. The experiment harness resolves ExperimentConfig::admission
// (an AdmissionSpec) through make_controller() once per host; benches and
// tests enumerate names() to sweep every registered policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "policy/spec.h"
#include "rpc/admission.h"
#include "rpc/slo.h"
#include "sim/rng.h"
#include "sim/units.h"

namespace aeq::policy {

// Everything a factory may consult when building one host's controller.
// `rng` is the host's private stream, pre-forked by the experiment seeder;
// factories that need randomness must draw only from it.
struct PolicyContext {
  net::HostId host = 0;
  std::size_t num_qos = 3;
  rpc::SloConfig slo;
  sim::Rate link_rate = 0.0;
  std::uint32_t mtu_bytes = 4096;
  sim::Rng rng{0};
};

using PolicyFactory =
    std::function<std::unique_ptr<rpc::AdmissionController>(
        const AdmissionSpec&, const PolicyContext&)>;

// Registers (or replaces) a policy under `kind`. Built-ins self-register;
// user code may add policies before constructing experiments. NOT
// thread-safe against concurrent experiment construction — register
// everything up front, as with custom event-scheduler backends.
void register_policy(const std::string& kind, PolicyFactory factory);

bool is_registered(const std::string& kind);

// Registered kinds in sorted order (stable for sweeps and --controller=all).
std::vector<std::string> names();

// Builds one host's controller for `spec`. Unknown kinds abort with the
// registered name list; spec.factory, when set, is NOT consulted here
// (the experiment resolves the escape hatch before reaching the registry).
// Policies whose rejections are downgrades honor spec.drop_rejects by
// wrapping themselves in RejectionAdapter.
std::unique_ptr<rpc::AdmissionController> make_controller(
    const AdmissionSpec& spec, PolicyContext context);

}  // namespace aeq::policy
