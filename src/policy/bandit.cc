#include "policy/bandit.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::policy {

BanditController::BanditController(const BanditConfig& config,
                                   std::size_t num_qos, rpc::SloConfig slo,
                                   sim::Rng rng)
    : WindowedController(num_qos, slo, config.window),
      config_(config),
      rng_(rng),
      epsilon_(config.epsilon0) {
  AEQ_ASSERT_MSG(!config_.actions.empty(),
                 "bandit needs at least one admit-probability action");
  for (double action : config_.actions) {
    AEQ_ASSERT_MSG(action >= 0.0 && action <= 1.0,
                   "bandit actions are admit probabilities in [0, 1]");
  }
  AEQ_ASSERT_MSG(
      config_.learning_rate > 0.0 && config_.learning_rate <= 1.0,
      "bandit learning_rate must be in (0, 1]");
  AEQ_ASSERT_MSG(config_.epsilon_decay > 0.0 && config_.epsilon_decay <= 1.0,
                 "bandit epsilon_decay must be in (0, 1]");
  AEQ_ASSERT_MSG(config_.epsilon_min <= config_.epsilon0 &&
                     config_.epsilon0 <= 1.0 && config_.epsilon_min >= 0.0,
                 "bandit epsilon must satisfy 0 <= min <= initial <= 1");
  min_target_per_mtu_ = 0.0;
  for (std::size_t q = 0; q + 1 < this->slo().num_qos(); ++q) {
    const double target = this->slo().latency_target_per_mtu[q];
    AEQ_CHECK_GT(target, 0.0);
    min_target_per_mtu_ =
        min_target_per_mtu_ == 0.0 ? target
                                   : std::min(min_target_per_mtu_, target);
  }
  q_.assign(kStates * config_.actions.size(), config_.q_init);
  // Start on the most permissive action: the empty-state prior is "admit",
  // matching every other policy's cold start.
  action_ = config_.actions.size() - 1;
}

rpc::AdmissionDecision BanditController::decide(
    sim::Time /*now*/, net::HostId /*src*/, net::HostId /*dst*/,
    net::QoSLevel qos_requested, std::uint64_t /*bytes*/) {
  if (!slo().has_slo(qos_requested)) {
    return {qos_requested, false, false};  // scavenger: never gated
  }
  const double p = config_.actions[action_];
  // Strict comparison, as in core/aequitas.cc: p == 0 never admits.
  if (rng_.uniform() < p) {
    return {qos_requested, false, false, p};
  }
  return {lowest_qos(), true, false, p};
}

void BanditController::on_feedback(sim::Time /*now*/, net::HostId /*dst*/,
                                   net::QoSLevel qos_requested,
                                   net::QoSLevel /*qos_run*/, sim::Time rnl,
                                   std::uint64_t size_mtus,
                                   bool /*slo_met*/) {
  if (!slo().has_slo(qos_requested)) return;
  norm_rnl_sum_ += rnl / static_cast<double>(size_mtus);
  ++norm_rnl_count_;
}

std::size_t BanditController::classify(
    const obs::WindowStats& window) const {
  // RNL band: mean normalized RNL vs the tightest per-MTU target.
  std::size_t rnl_band = 0;
  if (norm_rnl_count_ > 0) {
    const double ratio = norm_rnl_sum_ /
                         static_cast<double>(norm_rnl_count_) /
                         min_target_per_mtu_;
    rnl_band = ratio < 0.8 ? 0 : (ratio < 1.2 ? 1 : 2);
  }
  // Mix band: share of offered bytes admitted onto SLO classes.
  double slo_share = 0.0;
  for (std::size_t q = 0; q + 1 < window.qos.size(); ++q) {
    slo_share += window.qos[q].byte_share;
  }
  const std::size_t mix_band =
      slo_share < 0.4 ? 0 : (slo_share < 0.7 ? 1 : 2);
  return rnl_band * kMixBands + mix_band;
}

void BanditController::on_window(const obs::WindowStats& window) {
  // 1. Score the action that was live during this window.
  double worst_compliance = 1.0;
  std::uint64_t completed = 0;
  for (std::size_t q = 0; q + 1 < window.qos.size(); ++q) {
    if (window.qos[q].completed == 0) continue;
    completed += window.qos[q].completed;
    worst_compliance =
        std::min(worst_compliance, window.qos[q].slo_compliance);
  }
  const std::uint64_t decisions =
      window.admits + window.downgrades + window.admission_drops;
  const double rejected_share =
      decisions == 0 ? 0.0
                     : static_cast<double>(window.downgrades +
                                           window.admission_drops) /
                           static_cast<double>(decisions);
  if (completed > 0 || decisions > 0) {
    const double reward =
        worst_compliance - config_.reject_penalty * rejected_share;
    double& value = q(state_, action_);
    value += config_.learning_rate * (reward - value);
  }

  // 2. Observe the next state and pick the next action.
  state_ = classify(window);
  norm_rnl_sum_ = 0.0;
  norm_rnl_count_ = 0;
  if (rng_.uniform() < epsilon_) {
    action_ = rng_.index(config_.actions.size());
  } else {
    action_ = 0;
    for (std::size_t a = 1; a < config_.actions.size(); ++a) {
      // Strict >: ties resolve to the lowest-index (most conservative)
      // action, deterministically.
      if (q(state_, a) > q(state_, action_)) action_ = a;
    }
  }
  epsilon_ = std::max(epsilon_ * config_.epsilon_decay, config_.epsilon_min);
}

std::vector<rpc::Gauge> BanditController::gauges() const {
  // Rewards live in [-reject_penalty, 1]; Q-values are convex combinations
  // of rewards and q_init, so they stay inside the hull of both.
  const double q_lo = std::min(-config_.reject_penalty, config_.q_init);
  const double q_hi = std::max(1.0, config_.q_init);
  return {
      {"p_admit_action", config_.actions[action_], 0.0, 1.0},
      {"epsilon", epsilon_, config_.epsilon_min, config_.epsilon0},
      {"state", static_cast<double>(state_), 0.0,
       static_cast<double>(kStates - 1)},
      {"q_current", q(state_, action_), q_lo, q_hi},
  };
}

void BanditController::audit_invariants(sim::Time /*now*/) const {
  const double q_lo = std::min(-config_.reject_penalty, config_.q_init);
  const double q_hi = std::max(1.0, config_.q_init);
  for (double value : q_) {
    AEQ_CHECK_GE_MSG(value, q_lo, "bandit Q-value below the reward hull");
    AEQ_CHECK_LE_MSG(value, q_hi, "bandit Q-value above the reward hull");
  }
  AEQ_CHECK_GE_MSG(epsilon_, config_.epsilon_min, "epsilon under its floor");
  AEQ_CHECK_LE_MSG(epsilon_, config_.epsilon0, "epsilon above its start");
}

}  // namespace aeq::policy
