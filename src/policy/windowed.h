// WindowedController: base class for admission policies driven by periodic
// window feedback (rpc::AdmissionController::on_window).
//
// Windows are host-local and SELF-CLOCKED: the controller accumulates its
// own admit/on_completion stream and closes every window [k*W, (k+1)*W)
// lazily, when the first call at or past the window's end arrives. No
// scheduler events are ever created, so
//   * enabling a windowed policy adds nothing to the schedule digest,
//   * behavior is identical at any shard count (each host's stream is
//     bit-identical under the PDES executive), and
//   * the policy works with telemetry off — it never depends on the
//     obs::TimeseriesSink, whose windowed pipeline is read-only by contract
//     and unavailable at shards > 1.
//
// The observation vocabulary is obs::WindowStats — the same record the
// telemetry sink emits — restricted to what the controller itself can see:
// RPC-level stats are attributed to the *requested* QoS, `bytes` counts
// *offered* payload by the QoS the RPC was admitted onto (at decision time;
// the controller never learns payload sizes at completion), and port stats
// stay empty. Empty windows across idle gaps are closed one by one, so
// window-indexed adaptation (EMA decay, epsilon decay, additive increase)
// sees simulated time, not call counts.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/timeseries_sink.h"
#include "rpc/admission.h"
#include "rpc/slo.h"
#include "stats/log_histogram.h"

namespace aeq::policy {

class WindowedController : public rpc::AdmissionController {
 public:
  WindowedController(std::size_t num_qos, rpc::SloConfig slo,
                     sim::Time window_width);

  rpc::AdmissionDecision admit(sim::Time now, net::HostId src,
                               net::HostId dst, net::QoSLevel qos_requested,
                               std::uint64_t bytes) final;

  void on_completion(sim::Time now, net::HostId src, net::HostId dst,
                     net::QoSLevel qos_requested, net::QoSLevel qos_run,
                     sim::Time rnl, std::uint64_t size_mtus) final;

  std::uint64_t windows_closed() const { return window_index_; }
  sim::Time window_width() const { return width_; }

 protected:
  // The per-RPC decision, called after every window up to `now` has been
  // closed and delivered through on_window().
  virtual rpc::AdmissionDecision decide(sim::Time now, net::HostId src,
                                        net::HostId dst,
                                        net::QoSLevel qos_requested,
                                        std::uint64_t bytes) = 0;

  // Per-completion feedback, after window rolling; default ignores it.
  // `slo_met` is the verdict against the *requested* class's normalized
  // target (false for scavenger-requested completions, which have no SLO).
  virtual void on_feedback(sim::Time now, net::HostId dst,
                           net::QoSLevel qos_requested, net::QoSLevel qos_run,
                           sim::Time rnl, std::uint64_t size_mtus,
                           bool slo_met);

  const rpc::SloConfig& slo() const { return slo_; }
  std::size_t num_qos() const { return num_qos_; }
  net::QoSLevel lowest_qos() const {
    return static_cast<net::QoSLevel>(num_qos_ - 1);
  }

 private:
  void roll_to(sim::Time now);
  void close_window();
  void note_decision(const rpc::AdmissionDecision& decision,
                     net::QoSLevel qos_requested, std::uint64_t bytes);

  std::size_t num_qos_;
  rpc::SloConfig slo_;
  sim::Time width_;

  // Accumulators of the currently open window [window_index_ * width_, ...).
  std::uint64_t window_index_ = 0;
  struct QosAccum {
    std::uint64_t completed = 0;  // by requested QoS
    std::uint64_t slo_met = 0;
    std::uint64_t terminated = 0;  // admission rejections (drops)
    std::uint64_t bytes = 0;       // offered payload admitted onto this QoS
  };
  std::vector<QosAccum> qos_;
  std::vector<stats::LogHistogram> rnl_;  // per requested QoS
  std::uint64_t admits_ = 0;
  std::uint64_t downgrades_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t generated_ = 0;
  std::uint64_t completed_total_ = 0;
  std::uint64_t bytes_total_ = 0;
  double p_admit_sum_ = 0.0;
  double p_admit_min_ = 1.0;
  std::uint64_t cum_generated_ = 0;
  std::uint64_t cum_finished_ = 0;
};

}  // namespace aeq::policy
