// AdmissionSpec: the structured description of which admission policy an
// experiment runs and how it is parameterized — the admission-plane
// counterpart of ExperimentConfig::cc_kind + per-CC config blocks.
//
// A spec names a policy `kind` (a key in the policy registry,
// policy/registry.h) plus one parameter block per built-in policy; only the
// block matching `kind` is read. The legacy ExperimentConfig knobs
// (enable_aequitas, alpha, beta_per_mtu, p_admit_floor, admission_factory)
// are aliases folded into the spec at Experiment construction, and conflict
// with explicit spec settings hard-error there (the use_fixed_window /
// cc_kind precedent).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.h"
#include "rpc/admission.h"
#include "sim/rng.h"
#include "sim/units.h"

namespace aeq::sim {
class Simulator;
}  // namespace aeq::sim

namespace aeq::policy {

// Registry keys of the built-in policies.
inline constexpr const char* kAequitas = "aequitas";
inline constexpr const char* kAlwaysAdmit = "always-admit";
inline constexpr const char* kTicketPool = "ticket-pool";
inline constexpr const char* kBandit = "bandit";
inline constexpr const char* kSwpPacing = "swp-pacing";

// Width of the self-clocked observation windows every feedback-driven
// policy rolls (policy/windowed.h). Matches the telemetry default.
inline constexpr sim::Time kDefaultPolicyWindow = 100 * sim::kUsec;

// Aequitas AIMD knobs (core/aequitas.h, Algorithm 1). The SLO comes from
// ExperimentConfig::slo, not the spec.
struct AequitasParams {
  double alpha = 0.01;          // additive increment
  double beta_per_mtu = 0.01;   // multiplicative decrement per MTU of size
  double p_admit_floor = 0.01;  // starvation guard (§5.1)
};

// MongoDB-style throughput-probing ticket pool (SNIPPETS.md §3): a dynamic
// concurrency limit on in-flight SLO-class RPCs, probed up/down against a
// moving average of windowed ticketed goodput.
struct TicketPoolConfig {
  double initial_concurrency = 32.0;
  double min_concurrency = 4.0;
  double max_concurrency = 4096.0;
  double probe_step = 0.125;  // relative probe size per window
  double ema_weight = 0.3;    // goodput moving-average weight (newest obs)
  // Relative goodput improvement a probe must show to be adopted.
  double adopt_margin = 0.02;
  sim::Time window = kDefaultPolicyWindow;
};

// Tabular epsilon-greedy bandit over (window RNL band, qos-mix band) state
// per Raeis et al. (PAPERS.md): each window closes an observation, scores
// the last action by SLO compliance minus a rejection penalty, and picks
// the next admit-probability level.
struct BanditConfig {
  // Discrete admit-probability actions, lowest to highest.
  std::vector<double> actions = {0.25, 0.5, 0.75, 1.0};
  double epsilon0 = 0.2;        // initial exploration rate
  double epsilon_decay = 0.99;  // per closed window
  double epsilon_min = 0.02;
  double learning_rate = 0.2;
  double reject_penalty = 0.5;  // reward -= penalty * rejected share
  // Optimistic initial action value: explore every (state, action) once.
  double q_init = 1.0;
  sim::Time window = kDefaultPolicyWindow;
};

// SWP-style workload-aware pacing without priorities (Zhao et al.,
// PAPERS.md): every RPC is collapsed onto one class and admission is a
// token bucket over payload bytes whose rate fraction adapts per window —
// multiplicative decrease when the window's normalized tail RNL violates
// the tightest SLO, additive increase otherwise.
struct SwpPacingConfig {
  double initial_rate_fraction = 0.9;  // of the host link rate
  double min_rate_fraction = 0.05;
  double max_rate_fraction = 1.0;
  double increase_per_window = 0.01;   // additive
  double decrease_factor = 0.8;        // multiplicative on violation
  double burst_windows = 2.0;          // bucket depth, in windows at rate
  // The single class all admitted traffic runs on. Everything shares one
  // queue — SWP's "no priorities" premise expressed inside a QoS fabric.
  net::QoSLevel run_qos = net::kQoSHigh;
  sim::Time window = kDefaultPolicyWindow;
};

struct AdmissionSpec {
  // Registry key of the policy every host runs. Built-ins: "aequitas"
  // (default, Algorithm 1), "always-admit", "ticket-pool", "bandit",
  // "swp-pacing". User policies register via policy::register_policy.
  std::string kind = kAequitas;

  // Per-policy parameter blocks; only the block matching `kind` is read.
  AequitasParams aequitas;
  TicketPoolConfig ticket_pool;
  BanditConfig bandit;
  SwpPacingConfig swp;

  // Rejections become hard drops instead of scavenger downgrades (the
  // downgrade-vs-drop ablation): policies that natively downgrade are
  // wrapped in policy::RejectionAdapter; swp-pacing already drops.
  bool drop_rejects = false;

  // Escape hatch: when set, overrides `kind` and installs a caller-built
  // controller per host (ablations, quota policies, misalignment models).
  std::function<std::unique_ptr<rpc::AdmissionController>(
      sim::Simulator&, net::HostId, sim::Rng)>
      factory;
};

}  // namespace aeq::policy
