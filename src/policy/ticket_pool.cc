#include "policy/ticket_pool.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::policy {

TicketPoolController::TicketPoolController(const TicketPoolConfig& config,
                                           std::size_t num_qos,
                                           rpc::SloConfig slo)
    : WindowedController(num_qos, std::move(slo), config.window),
      config_(config),
      limit_(config.initial_concurrency),
      stable_limit_(config.initial_concurrency) {
  AEQ_CHECK_GT(config_.min_concurrency, 0.0);
  AEQ_CHECK_GE(config_.max_concurrency, config_.min_concurrency);
  AEQ_CHECK_GT(config_.probe_step, 0.0);
  AEQ_ASSERT_MSG(config_.ema_weight > 0.0 && config_.ema_weight <= 1.0,
                 "ticket-pool ema_weight must be in (0, 1]");
  limit_ = clamp_limit(limit_);
  stable_limit_ = limit_;
}

double TicketPoolController::clamp_limit(double limit) const {
  return std::min(std::max(limit, config_.min_concurrency),
                  config_.max_concurrency);
}

rpc::AdmissionDecision TicketPoolController::decide(
    sim::Time /*now*/, net::HostId /*src*/, net::HostId /*dst*/,
    net::QoSLevel qos_requested, std::uint64_t /*bytes*/) {
  if (!slo().has_slo(qos_requested)) {
    // Scavenger class: never ticketed, never gated.
    return {qos_requested, false, false};
  }
  const double available =
      limit_ - static_cast<double>(in_flight_);
  if (available >= 1.0) {
    ++in_flight_;
    return {qos_requested, false, false,
            std::min(available / limit_, 1.0)};
  }
  // Pool exhausted: reject to the scavenger class (the RejectionAdapter
  // turns this into a drop under drop_rejects).
  return {lowest_qos(), true, false, 0.0};
}

void TicketPoolController::on_feedback(sim::Time /*now*/,
                                       net::HostId /*dst*/,
                                       net::QoSLevel /*qos_requested*/,
                                       net::QoSLevel qos_run,
                                       sim::Time /*rnl*/,
                                       std::uint64_t /*size_mtus*/,
                                       bool /*slo_met*/) {
  // Only RPCs that ran on an SLO class held a ticket (downgraded ones run
  // on the scavenger class and took none).
  if (!slo().has_slo(qos_run)) return;
  AEQ_CHECK_GT(in_flight_, 0);
  --in_flight_;
  ++ticketed_completions_;
}

void TicketPoolController::on_window(const obs::WindowStats& /*window*/) {
  const double observed = static_cast<double>(ticketed_completions_);
  ticketed_completions_ = 0;
  goodput_ema_ = config_.ema_weight * observed +
                 (1.0 - config_.ema_weight) * goodput_ema_;

  switch (probe_) {
    case Probe::kStable:
      // Launch an upward probe from the adopted limit.
      best_goodput_ = goodput_ema_;
      limit_ = clamp_limit(stable_limit_ * (1.0 + config_.probe_step));
      probe_ = limit_ > stable_limit_ ? Probe::kUp : Probe::kDown;
      if (probe_ == Probe::kDown) {
        // Already pinned at max: probe downward instead.
        limit_ = clamp_limit(stable_limit_ * (1.0 - config_.probe_step));
      }
      break;
    case Probe::kUp:
      if (goodput_ema_ > best_goodput_ * (1.0 + config_.adopt_margin)) {
        // More concurrency bought more goodput: adopt and keep climbing.
        stable_limit_ = limit_;
        best_goodput_ = goodput_ema_;
        limit_ = clamp_limit(stable_limit_ * (1.0 + config_.probe_step));
        if (limit_ == stable_limit_) probe_ = Probe::kStable;
      } else {
        // No improvement: try shedding concurrency below the stable point.
        limit_ = clamp_limit(stable_limit_ * (1.0 - config_.probe_step));
        probe_ = limit_ < stable_limit_ ? Probe::kDown : Probe::kStable;
      }
      break;
    case Probe::kDown:
      if (goodput_ema_ >= best_goodput_ * (1.0 - config_.adopt_margin)) {
        // Same goodput with fewer tickets: the smaller pool wins (less
        // in-flight work, same throughput — MongoDB's adopt-down rule).
        stable_limit_ = limit_;
        best_goodput_ = std::max(best_goodput_, goodput_ema_);
      } else {
        limit_ = stable_limit_;  // revert
      }
      probe_ = Probe::kStable;
      break;
  }
}

std::vector<rpc::Gauge> TicketPoolController::gauges() const {
  return {
      {"tickets_limit", limit_, config_.min_concurrency,
       config_.max_concurrency},
      {"tickets_in_flight", static_cast<double>(in_flight_), 0.0,
       rpc::kGaugeUnbounded},
      {"goodput_ema", goodput_ema_, 0.0, rpc::kGaugeUnbounded},
      {"probe_state", static_cast<double>(static_cast<int>(probe_)), 0.0,
       2.0},
  };
}

void TicketPoolController::audit_invariants(sim::Time /*now*/) const {
  AEQ_CHECK_GE_MSG(in_flight_, 0, "ticket pool released more than it took");
  AEQ_CHECK_GE_MSG(limit_, config_.min_concurrency,
                   "concurrency limit below its floor");
  AEQ_CHECK_LE_MSG(limit_, config_.max_concurrency,
                   "concurrency limit above its ceiling");
  AEQ_CHECK_GE_MSG(goodput_ema_, 0.0, "negative goodput average");
}

}  // namespace aeq::policy
