// Controller adapters: composable wrappers over rpc::AdmissionController.
//
// RejectionAdapter converts an inner policy's scavenger downgrades into
// hard drops — the downgrade-vs-drop ablation applied to ANY policy, not
// just Aequitas. A dropped decision keeps the requested QoS (the RPC never
// runs anywhere) and the inner policy's p_admit, so traces still show the
// state that caused the rejection. Everything else — completion feedback,
// window feedback, gauges, audit invariants — forwards untouched.
//
// Per the admission contract (rpc/admission.h), a dropped RPC generates no
// on_completion call; policies whose downgrades carry learning signal only
// through completions (e.g. the ticket pool, which takes no ticket on a
// rejection) behave identically under this adapter by construction.
#pragma once

#include <memory>
#include <utility>

#include "rpc/admission.h"

namespace aeq::policy {

class RejectionAdapter final : public rpc::AdmissionController {
 public:
  explicit RejectionAdapter(std::unique_ptr<rpc::AdmissionController> inner)
      : inner_(std::move(inner)) {}

  rpc::AdmissionDecision admit(sim::Time now, net::HostId src,
                               net::HostId dst, net::QoSLevel qos_requested,
                               std::uint64_t bytes) override {
    rpc::AdmissionDecision decision =
        inner_->admit(now, src, dst, qos_requested, bytes);
    if (decision.downgraded) {
      decision.downgraded = false;
      decision.dropped = true;
      decision.qos_run = qos_requested;
    }
    return decision;
  }

  void on_completion(sim::Time now, net::HostId src, net::HostId dst,
                     net::QoSLevel qos_requested, net::QoSLevel qos_run,
                     sim::Time rnl, std::uint64_t size_mtus) override {
    inner_->on_completion(now, src, dst, qos_requested, qos_run, rnl,
                          size_mtus);
  }

  void on_window(const obs::WindowStats& window) override {
    inner_->on_window(window);
  }

  std::vector<rpc::Gauge> gauges() const override {
    return inner_->gauges();
  }

  void audit_invariants(sim::Time now) const override {
    inner_->audit_invariants(now);
  }

  rpc::AdmissionController& inner() { return *inner_; }

 private:
  std::unique_ptr<rpc::AdmissionController> inner_;
};

}  // namespace aeq::policy
