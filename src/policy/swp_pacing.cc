#include "policy/swp_pacing.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::policy {

namespace {
// Normalized (per-MTU) RNL histogram shape: targets are microseconds per
// MTU, so [10ns, 10ms] covers everything observable at 2% error.
constexpr double kNormRnlMin = 0.01 * sim::kUsec;
constexpr double kNormRnlMax = 10.0 * sim::kMsec;
constexpr double kNormRnlPrecision = 0.02;
}  // namespace

SwpPacingController::SwpPacingController(const SwpPacingConfig& config,
                                         std::size_t num_qos,
                                         rpc::SloConfig slo,
                                         sim::Rate link_rate,
                                         bool drop_rejects)
    : WindowedController(num_qos, slo, config.window),
      config_(config),
      link_rate_(link_rate),
      drop_rejects_(drop_rejects),
      rate_fraction_(config.initial_rate_fraction),
      norm_rnl_(kNormRnlMin, kNormRnlMax, kNormRnlPrecision) {
  AEQ_CHECK_GT(link_rate_, 0.0);
  AEQ_ASSERT_MSG(config_.min_rate_fraction > 0.0 &&
                     config_.min_rate_fraction <=
                         config_.max_rate_fraction &&
                     config_.max_rate_fraction <= 1.0,
                 "swp rate fractions must satisfy 0 < min <= max <= 1");
  AEQ_ASSERT_MSG(config_.decrease_factor > 0.0 &&
                     config_.decrease_factor < 1.0,
                 "swp decrease_factor must be in (0, 1)");
  AEQ_CHECK_GT(config_.burst_windows, 0.0);
  AEQ_ASSERT_MSG(this->slo().has_slo(config_.run_qos) ||
                     config_.run_qos ==
                         static_cast<net::QoSLevel>(num_qos - 1),
                 "swp run_qos must be a valid QoS level");
  rate_fraction_ = std::min(
      std::max(rate_fraction_, config_.min_rate_fraction),
      config_.max_rate_fraction);
  min_target_per_mtu_ = 0.0;
  for (std::size_t q = 0; q + 1 < this->slo().num_qos(); ++q) {
    const double target = this->slo().latency_target_per_mtu[q];
    AEQ_CHECK_GT(target, 0.0);
    min_target_per_mtu_ =
        min_target_per_mtu_ == 0.0 ? target
                                   : std::min(min_target_per_mtu_, target);
  }
  tokens_ = bucket_capacity();
}

double SwpPacingController::bucket_capacity() const {
  // Bucket depth: `burst_windows` windows' worth of bytes at the current
  // pacing rate — deep enough to absorb one burst period, shallow enough
  // that sustained overload hits the gate within a few windows.
  return config_.burst_windows * rate_fraction_ * link_rate_ *
         window_width();
}

void SwpPacingController::refill(sim::Time now) {
  const sim::Time elapsed = now - last_refill_;
  last_refill_ = now;
  if (elapsed <= 0.0) return;
  // link_rate is bytes/sec (sim::Rate); tokens are payload bytes.
  tokens_ = std::min(tokens_ + elapsed * rate_fraction_ * link_rate_,
                     bucket_capacity());
}

rpc::AdmissionDecision SwpPacingController::decide(
    sim::Time now, net::HostId /*src*/, net::HostId /*dst*/,
    net::QoSLevel qos_requested, std::uint64_t bytes) {
  refill(now);
  const double cost = static_cast<double>(bytes);
  if (tokens_ >= cost) {
    tokens_ -= cost;
    // One class for everything: the no-priority collapse. `downgraded` is
    // reserved for actual rejections so admitted-share accounting reads
    // "paced in" vs "paced out", not the class remap.
    return {config_.run_qos, false, false, rate_fraction_};
  }
  if (drop_rejects_) {
    return {qos_requested, false, true, rate_fraction_};
  }
  // Over budget without drops: spill onto the true scavenger class.
  if (config_.run_qos != lowest_qos()) {
    return {lowest_qos(), true, false, rate_fraction_};
  }
  // Degenerate setup (run_qos IS the scavenger): nothing lower exists, so
  // pacing can only shed by dropping.
  return {qos_requested, false, true, rate_fraction_};
}

void SwpPacingController::on_feedback(sim::Time /*now*/, net::HostId /*dst*/,
                                      net::QoSLevel /*qos_requested*/,
                                      net::QoSLevel qos_run, sim::Time rnl,
                                      std::uint64_t size_mtus,
                                      bool /*slo_met*/) {
  // Pace against what the paced class actually delivers; scavenger
  // spillover is already outside the budget.
  if (qos_run != config_.run_qos) return;
  norm_rnl_.add(rnl / static_cast<double>(size_mtus));
}

void SwpPacingController::on_window(const obs::WindowStats& /*window*/) {
  const bool violating =
      norm_rnl_.count() > 0 && norm_rnl_.p99() >= min_target_per_mtu_;
  norm_rnl_.reset();
  if (violating) {
    ++violating_windows_;
    rate_fraction_ = std::max(rate_fraction_ * config_.decrease_factor,
                              config_.min_rate_fraction);
    // Shrink the bucket with the rate: stale burst credit must not carry
    // the old rate into the new window.
    tokens_ = std::min(tokens_, bucket_capacity());
  } else {
    rate_fraction_ = std::min(
        rate_fraction_ + config_.increase_per_window,
        config_.max_rate_fraction);
  }
}

std::vector<rpc::Gauge> SwpPacingController::gauges() const {
  return {
      {"rate_fraction", rate_fraction_, config_.min_rate_fraction,
       config_.max_rate_fraction},
      {"bucket_tokens", tokens_, 0.0, rpc::kGaugeUnbounded},
      {"violating_windows", static_cast<double>(violating_windows_), 0.0,
       rpc::kGaugeUnbounded},
  };
}

void SwpPacingController::audit_invariants(sim::Time now) const {
  AEQ_CHECK_GE_MSG(rate_fraction_, config_.min_rate_fraction,
                   "pacing rate below its floor");
  AEQ_CHECK_LE_MSG(rate_fraction_, config_.max_rate_fraction,
                   "pacing rate above its ceiling");
  AEQ_CHECK_GE_MSG(tokens_, 0.0, "negative token balance");
  AEQ_CHECK_LE_MSG(last_refill_, now, "token refill timestamp in the future");
}

}  // namespace aeq::policy
