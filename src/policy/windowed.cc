#include "policy/windowed.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::policy {

namespace {
// RNL histogram shape, matching the telemetry sink's defaults: <= 2%
// relative error within [0.1us, 1s], clamping outside.
constexpr double kRnlMin = 0.1 * sim::kUsec;
constexpr double kRnlMax = 1.0;
constexpr double kRnlPrecision = 0.02;
}  // namespace

WindowedController::WindowedController(std::size_t num_qos,
                                       rpc::SloConfig slo,
                                       sim::Time window_width)
    : num_qos_(num_qos), slo_(std::move(slo)), width_(window_width) {
  AEQ_CHECK_GE(num_qos_, 2u);
  AEQ_CHECK_EQ(slo_.num_qos(), num_qos_);
  AEQ_CHECK_GT(width_, 0.0);
  qos_.resize(num_qos_);
  rnl_.reserve(num_qos_);
  for (std::size_t q = 0; q < num_qos_; ++q) {
    rnl_.emplace_back(kRnlMin, kRnlMax, kRnlPrecision);
  }
}

void WindowedController::roll_to(sim::Time now) {
  // Close every window whose end is <= now, delivering each (including
  // empty ones across idle gaps) so window-indexed adaptation tracks
  // simulated time.
  while (now >= static_cast<double>(window_index_ + 1) * width_) {
    close_window();
  }
}

void WindowedController::close_window() {
  obs::WindowStats window;
  window.index = window_index_;
  window.start = static_cast<double>(window_index_) * width_;
  window.end = static_cast<double>(window_index_ + 1) * width_;
  window.qos.resize(num_qos_);
  for (std::size_t q = 0; q < num_qos_; ++q) {
    obs::WindowStats::QosStats& out = window.qos[q];
    out.completed = qos_[q].completed;
    out.terminated = qos_[q].terminated;
    out.slo_met = qos_[q].slo_met;
    out.slo_compliance =
        out.completed == 0
            ? 1.0
            : static_cast<double>(out.slo_met) /
                  static_cast<double>(out.completed);
    out.rnl_p50 = rnl_[q].p50();
    out.rnl_p90 = rnl_[q].percentile(90.0);
    out.rnl_p99 = rnl_[q].p99();
    out.bytes = qos_[q].bytes;
    out.byte_share = bytes_total_ == 0
                         ? 0.0
                         : static_cast<double>(out.bytes) /
                               static_cast<double>(bytes_total_);
  }
  window.admits = admits_;
  window.downgrades = downgrades_;
  window.admission_drops = drops_;
  const std::uint64_t decisions = admits_ + downgrades_ + drops_;
  window.p_admit_mean =
      decisions == 0 ? 1.0 : p_admit_sum_ / static_cast<double>(decisions);
  window.p_admit_min = p_admit_min_;
  window.generated = generated_;
  window.completed_total = completed_total_;
  window.terminated_total = drops_;
  window.bytes_total = bytes_total_;
  window.cum_generated = cum_generated_;
  window.cum_finished = cum_finished_;

  // Reset before delivering: a policy reacting to the window must observe
  // a clean accumulator for the next one even if it re-enters (it cannot —
  // decide()/on_feedback() run strictly after roll_to — but cheap safety).
  for (auto& q : qos_) q = QosAccum{};
  for (auto& h : rnl_) h.reset();
  admits_ = downgrades_ = drops_ = 0;
  generated_ = completed_total_ = bytes_total_ = 0;
  p_admit_sum_ = 0.0;
  p_admit_min_ = 1.0;
  ++window_index_;

  on_window(window);
}

void WindowedController::note_decision(
    const rpc::AdmissionDecision& decision, net::QoSLevel qos_requested,
    std::uint64_t bytes) {
  ++generated_;
  ++cum_generated_;
  p_admit_sum_ += decision.p_admit;
  p_admit_min_ = std::min(p_admit_min_, decision.p_admit);
  if (decision.dropped) {
    ++drops_;
    ++cum_finished_;  // rejected on the spot: never outstanding
    qos_[qos_requested].terminated++;
    return;
  }
  if (decision.downgraded) {
    ++downgrades_;
  } else {
    ++admits_;
  }
  qos_[decision.qos_run].bytes += bytes;
  bytes_total_ += bytes;
}

rpc::AdmissionDecision WindowedController::admit(sim::Time now,
                                                 net::HostId src,
                                                 net::HostId dst,
                                                 net::QoSLevel qos_requested,
                                                 std::uint64_t bytes) {
  roll_to(now);
  const rpc::AdmissionDecision decision =
      decide(now, src, dst, qos_requested, bytes);
  note_decision(decision, qos_requested, bytes);
  return decision;
}

void WindowedController::on_completion(sim::Time now, net::HostId /*src*/,
                                       net::HostId dst,
                                       net::QoSLevel qos_requested,
                                       net::QoSLevel qos_run, sim::Time rnl,
                                       std::uint64_t size_mtus) {
  roll_to(now);
  AEQ_CHECK_GE(size_mtus, 1u);
  ++completed_total_;
  ++cum_finished_;
  qos_[qos_requested].completed++;
  rnl_[qos_requested].add(rnl);
  bool slo_met = false;
  if (slo_.has_slo(qos_requested)) {
    slo_met = rnl < slo_.absolute_target(qos_requested, size_mtus);
    if (slo_met) qos_[qos_requested].slo_met++;
  }
  on_feedback(now, dst, qos_requested, qos_run, rnl, size_mtus, slo_met);
}

void WindowedController::on_feedback(sim::Time /*now*/, net::HostId /*dst*/,
                                     net::QoSLevel /*qos_requested*/,
                                     net::QoSLevel /*qos_run*/,
                                     sim::Time /*rnl*/,
                                     std::uint64_t /*size_mtus*/,
                                     bool /*slo_met*/) {}

}  // namespace aeq::policy
