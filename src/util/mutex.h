// Annotated lock types for the concurrency layer (DESIGN.md §12).
//
// libstdc++'s std::mutex is not a thread-safety-analysis capability, so
// code that wants `-Wthread-safety` coverage locks through these thin
// wrappers instead. Zero overhead: every member forwards to the wrapped
// std primitive, and CondVar::wait adopts/releases the caller's lock around
// a native std::condition_variable wait (no condition_variable_any, no
// extra state).
//
// Usage pattern (the only one the analysis can fully check):
//
//   util::Mutex mutex_;
//   util::CondVar cv_;
//   bool ready_ AEQ_GUARDED_BY(mutex_) = false;
//
//   util::MutexLock lock(mutex_);
//   while (!ready_) cv_.wait(mutex_);   // predicate loop in the caller
//
// Keep predicates as explicit while-loops rather than wait(lock, lambda):
// lambda bodies are analyzed as separate functions that do not inherit the
// caller's capability set, so a predicate lambda reading guarded state
// would (rightly) trip the analysis.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace aeq::util {

class AEQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() AEQ_ACQUIRE() { mu_.lock(); }
  void unlock() AEQ_RELEASE() { mu_.unlock(); }
  bool try_lock() AEQ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock; the scoped-capability annotation lets the analysis track the
// critical section's extent.
class AEQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) AEQ_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() AEQ_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable bound to util::Mutex. wait() requires the mutex held
// (it unlocks for the duration of the block and relocks before returning,
// exactly like std::condition_variable::wait).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) AEQ_REQUIRES(mu) {
    // Adopt the already-held mutex for the native wait, then release
    // ownership again so the unique_lock destructor leaves it locked —
    // from the caller's (and the analysis') view the capability is held
    // across the call.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aeq::util
