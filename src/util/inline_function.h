// A small-buffer-only callable: like std::function but with fixed inline
// storage and NO heap fallback. Oversized captures are a compile error, not
// a hidden allocation — which is the point: the event loop schedules one of
// these per event, and the allocation-count regression test holds the hot
// path to zero heap traffic in steady state.
//
// Move-only (captures may own resources); trivially-relocatable callables
// (the common case: lambdas capturing pointers and scalars) move by memcpy
// with no indirect call.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace aeq::util {

template <typename Signature, std::size_t Capacity>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() = default;
  InlineFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  // Implicit from any callable, mirroring std::function — but the callable
  // must fit the inline buffer; there is deliberately no heap fallback.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "callable signature mismatch");
    static_assert(sizeof(Fn) <= Capacity,
                  "capture exceeds the inline-callback budget: shrink the "
                  "capture (prefer `this` + indices over values) or raise "
                  "the owner's declared Capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callable");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s, Args... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(s)))(
          std::forward<Args>(args)...);
    };
    // Trivially relocatable callables keep manage_ null and move by memcpy.
    if constexpr (!(std::is_trivially_destructible_v<Fn> &&
                    std::is_trivially_move_constructible_v<Fn>)) {
      manage_ = [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        if (dst != nullptr) ::new (dst) Fn(std::move(*from));
        from->~Fn();
      };
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  void reset() {
    if (manage_ != nullptr) manage_(nullptr, storage_);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  using Invoke = R (*)(void*, Args...);
  // Move-constructs the callable into `dst` (destroy-only when dst is null)
  // and destroys the source. Null for trivially relocatable callables.
  using Manage = void (*)(void* dst, void* src);

  void move_from(InlineFunction& other) noexcept {
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    if (invoke_ != nullptr) {
      if (manage_ != nullptr) {
        manage_(storage_, other.storage_);
      } else {
        std::memcpy(storage_, other.storage_, Capacity);
      }
    }
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

template <typename Sig, std::size_t Cap>
bool operator==(const InlineFunction<Sig, Cap>& f, std::nullptr_t) {
  return !f;
}
template <typename Sig, std::size_t Cap>
bool operator!=(const InlineFunction<Sig, Cap>& f, std::nullptr_t) {
  return static_cast<bool>(f);
}

}  // namespace aeq::util
