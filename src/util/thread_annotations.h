// Clang thread-safety-analysis attribute macros (DESIGN.md §12).
//
// The concurrency layer (sim::ShardedSimulator's worker pool, the sweep
// runner's error slot) declares its lock protocol with these annotations so
// `-Wthread-safety` can prove every access to guarded state happens under
// the right mutex at compile time. The macros expand to nothing on
// compilers without the attributes (gcc), so annotated code builds
// everywhere; the AEQ_THREAD_SAFETY CMake option turns the analysis into a
// hard error on clang builds (CI job `thread-safety`).
//
// Naming follows the capability-based spelling from the clang docs
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), AEQ_-prefixed to
// stay inside the repo's macro namespace.
#pragma once

#if defined(__clang__)
#define AEQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AEQ_THREAD_ANNOTATION_(x)
#endif

// On types: this class is a lockable capability (e.g. util::Mutex).
#define AEQ_CAPABILITY(x) AEQ_THREAD_ANNOTATION_(capability(x))

// On types: RAII object that acquires in its constructor and releases in
// its destructor (e.g. util::MutexLock).
#define AEQ_SCOPED_CAPABILITY AEQ_THREAD_ANNOTATION_(scoped_lockable)

// On data members: may only be read/written while holding `x`.
#define AEQ_GUARDED_BY(x) AEQ_THREAD_ANNOTATION_(guarded_by(x))

// On pointer/reference members: the pointee is protected by `x`.
#define AEQ_PT_GUARDED_BY(x) AEQ_THREAD_ANNOTATION_(pt_guarded_by(x))

// On functions: caller must hold the listed capabilities.
#define AEQ_REQUIRES(...) \
  AEQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// On functions: acquires / releases the listed capabilities.
#define AEQ_ACQUIRE(...) \
  AEQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define AEQ_RELEASE(...) \
  AEQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define AEQ_TRY_ACQUIRE(...) \
  AEQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// On functions: caller must NOT hold the listed capabilities (deadlock
// guard for functions that acquire them internally).
#define AEQ_EXCLUDES(...) AEQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// On functions: returns a reference to the capability guarding the class.
#define AEQ_RETURN_CAPABILITY(x) AEQ_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disables the analysis for one function. Every use needs a
// comment explaining why the protocol is correct anyway.
#define AEQ_NO_THREAD_SAFETY_ANALYSIS \
  AEQ_THREAD_ANNOTATION_(no_thread_safety_analysis)
