// Open-addressing hash map over packed 64-bit keys.
//
// Replaces the per-channel `std::unordered_map`s (flow table, receiver
// table, controller admission state, pending RPC ops): one flat array of
// slots, linear probing, backward-shift erase — no per-node allocation, so
// lookups on the per-packet path stay cache-friendly and insert/erase stop
// touching the heap once the table has grown to its steady-state size.
//
// Keys are arbitrary u64 values (0 is legal — the controller packs
// (dst=0,qos=0) to key 0); occupancy is tracked in a separate byte array
// rather than a reserved sentinel key. Iteration order is unspecified and
// changes on rehash; callers must not depend on it for any deterministic
// output (the bit-identity suites enforce this repo-wide).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/assert.h"

namespace aeq::util {

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    // Grow while `n` would exceed the 7/8 load factor at `cap`.
    while (n > cap - cap / 8) cap <<= 1;
    if (cap > capacity()) rehash(cap);
  }

  V* find(std::uint64_t key) {
    if (size_ == 0) return nullptr;
    const std::size_t mask = capacity() - 1;
    std::size_t i = hash(key) & mask;
    while (occupied_[i]) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  // Returns the value for `key`, default-constructing it on first access.
  V& operator[](std::uint64_t key) {
    if (capacity() == 0 || size_ + 1 > capacity() - capacity() / 8) {
      rehash(capacity() == 0 ? kMinCapacity : capacity() * 2);
    }
    const std::size_t mask = capacity() - 1;
    std::size_t i = hash(key) & mask;
    while (occupied_[i]) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask;
    }
    occupied_[i] = 1;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    const std::size_t mask = capacity() - 1;
    std::size_t i = hash(key) & mask;
    while (occupied_[i]) {
      if (slots_[i].key == key) {
        // Backward-shift deletion keeps probe chains contiguous without
        // tombstones (so load never degrades from churn).
        std::size_t hole = i;
        std::size_t j = (i + 1) & mask;
        while (occupied_[j]) {
          const std::size_t home = hash(slots_[j].key) & mask;
          // Move j into the hole iff the hole lies on j's probe path.
          const bool movable = ((j - home) & mask) >= ((j - hole) & mask);
          if (movable) {
            slots_[hole] = std::move(slots_[j]);
            hole = j;
          }
          j = (j + 1) & mask;
        }
        occupied_[hole] = 0;
        slots_[hole].value = V{};
        --size_;
        return true;
      }
      i = (i + 1) & mask;
    }
    return false;
  }

  void clear() {
    std::fill(occupied_.begin(), occupied_.end(), std::uint8_t{0});
    for (Slot& s : slots_) s.value = V{};
    size_ = 0;
  }

  // Visits every (key, value) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (occupied_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (occupied_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
  };

  static constexpr std::size_t kMinCapacity = 16;

  std::size_t capacity() const { return slots_.size(); }

  // SplitMix64 finalizer: packed keys are sequential in their low bits, so
  // mix thoroughly before masking.
  static std::uint64_t hash(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  void rehash(std::size_t new_capacity) {
    AEQ_ASSERT((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_occupied = std::move(occupied_);
    slots_ = std::vector<Slot>(new_capacity);  // default-insert: V move-only OK
    occupied_.assign(new_capacity, 0);
    const std::size_t mask = new_capacity - 1;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_occupied[i]) continue;
      std::size_t j = hash(old_slots[i].key) & mask;
      while (occupied_[j]) j = (j + 1) & mask;
      occupied_[j] = 1;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> occupied_;
  std::size_t size_ = 0;
};

}  // namespace aeq::util
