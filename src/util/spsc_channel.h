// Single-producer single-consumer ring channel for cross-shard handoff.
//
// A fixed-capacity power-of-two ring with one atomic cursor per side:
// the producer publishes with a release store of tail_, the consumer
// retires with a release store of head_, and each side reads the other's
// cursor with an acquire load. That is the entire protocol — no locks, no
// CAS — which is exactly what the conservative-PDES mailboxes need: within
// a lookahead window one shard thread pushes while (at the barrier, under
// the pool mutex) the coordinator pops. The cursors are monotonically
// increasing uint64s; slot index is cursor & mask, so the full/empty
// distinction needs no wasted slot.
//
// try_push never blocks and never allocates; callers that must not lose
// messages keep a producer-side overflow vector (see net::ShardMailbox) and
// hand it over at a synchronization point of their own.
//
// Thread-safety analysis (DESIGN.md §12): this type is deliberately free of
// AEQ_GUARDED_BY/REQUIRES annotations — there is no capability to hold. Its
// contract is role-based (one producer thread calls try_push, one consumer
// thread calls try_pop, ownership of a slot transfers through the
// release/acquire cursor pair), which clang's lock-based analysis cannot
// express. The protocol is instead checked dynamically: the TSan CI job
// runs the full test suite plus a 4-shard end-to-end run over this ring,
// and the schedule-digest tests pin the delivered order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/assert.h"

namespace aeq::util {

template <typename T>
class SpscChannel {
 public:
  explicit SpscChannel(std::size_t min_capacity = 1024)
      : mask_(round_up_pow2(min_capacity) - 1),
        slots_(round_up_pow2(min_capacity)) {}

  SpscChannel(const SpscChannel&) = delete;
  SpscChannel& operator=(const SpscChannel&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  // Producer side. Returns false when the ring is full (the consumer has
  // not caught up); the element is not copied in that case.
  bool try_push(const T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[static_cast<std::size_t>(tail) & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[static_cast<std::size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Snapshot of the element count. Exact only when both sides are quiescent
  // (e.g. at a barrier); a racing producer can make it stale by one push.
  std::size_t approx_size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  bool empty() const { return approx_size() == 0; }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    AEQ_ASSERT_MSG(n >= 2, "SpscChannel capacity must be at least 2");
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  // Producer and consumer cursors live on separate cache lines so the two
  // threads never false-share; the slot storage is read/written by both but
  // always on disjoint indices.
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next slot to write
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next slot to read
  std::size_t mask_;
  std::vector<T> slots_;
};

}  // namespace aeq::util
