// Growable power-of-two ring buffer: the repo's replacement for
// `std::deque` on packet/message hot paths.
//
// std::deque allocates and frees ~512-byte blocks as the queue breathes,
// which shows up as steady-state allocator traffic in every queue
// discipline, in Port's in-flight list, and in Flow's message queue. A
// ring only allocates when it grows past its high-water mark — after
// warmup it never touches the heap again — and keeps elements contiguous
// (mod wraparound) for the drain loops.
//
// Supports the deque surface the call sites actually use: push_back /
// pop_front / front / back / operator[] / size / empty / clear.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "sim/assert.h"

namespace aeq::util {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void reserve(std::size_t n) {
    if (n > data_.size()) grow(round_up(n));
  }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == data_.size()) grow(data_.empty() ? kMinCapacity : data_.size() * 2);
    const std::size_t i = (head_ + size_) & (data_.size() - 1);
    data_[i] = T(std::forward<Args>(args)...);
    ++size_;
    return data_[i];
  }

  void pop_front() {
    AEQ_ASSERT(size_ > 0);
    data_[head_] = T{};  // release any resources held by the slot
    head_ = (head_ + 1) & (data_.size() - 1);
    --size_;
  }

  T& front() {
    AEQ_ASSERT(size_ > 0);
    return data_[head_];
  }
  const T& front() const {
    AEQ_ASSERT(size_ > 0);
    return data_[head_];
  }

  T& back() {
    AEQ_ASSERT(size_ > 0);
    return data_[(head_ + size_ - 1) & (data_.size() - 1)];
  }
  const T& back() const {
    AEQ_ASSERT(size_ > 0);
    return data_[(head_ + size_ - 1) & (data_.size() - 1)];
  }

  T& operator[](std::size_t i) {
    AEQ_DCHECK(i < size_);
    return data_[(head_ + i) & (data_.size() - 1)];
  }
  const T& operator[](std::size_t i) const {
    AEQ_DCHECK(i < size_);
    return data_[(head_ + i) & (data_.size() - 1)];
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) (*this)[i] = T{};
    head_ = 0;
    size_ = 0;
  }

 private:
  static constexpr std::size_t kMinCapacity = 8;

  static std::size_t round_up(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap < n) cap <<= 1;
    return cap;
  }

  void grow(std::size_t new_capacity) {
    std::vector<T> next(new_capacity);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move((*this)[i]);
    }
    data_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> data_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace aeq::util
