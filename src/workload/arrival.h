// Arrival processes. PoissonArrivals is the open-loop default; BurstCycle
// reproduces Figure 7's envelope: arrivals at rate (rho/mu) * avg_rate
// during the first mu/rho fraction of each period, idle for the rest, so the
// period-average stays avg_rate while the instantaneous (burst) load is
// rho/mu times higher. Within the burst window arrivals are Poisson (paper
// §6.1: "with Poisson arrivals").
#pragma once

#include <cmath>

#include "sim/rng.h"
#include "sim/units.h"

namespace aeq::workload {

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  // Absolute time of the next arrival strictly after `now`.
  virtual sim::Time next_arrival(sim::Time now, sim::Rng& rng) = 0;
  virtual double average_rate() const = 0;
};

class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double events_per_sec) : rate_(events_per_sec) {
    AEQ_ASSERT(rate_ > 0.0);
  }
  sim::Time next_arrival(sim::Time now, sim::Rng& rng) override {
    return now + rng.exponential(1.0 / rate_);
  }
  double average_rate() const override { return rate_; }

 private:
  double rate_;
};

class BurstCycleArrivals final : public ArrivalProcess {
 public:
  // `burst_over_avg` = rho/mu (>= 1; 1 degenerates to plain Poisson).
  BurstCycleArrivals(double avg_events_per_sec, double burst_over_avg,
                     sim::Time period);

  sim::Time next_arrival(sim::Time now, sim::Rng& rng) override;
  double average_rate() const override { return avg_rate_; }

  sim::Time burst_window() const { return window_; }

 private:
  // Map real time <-> cumulative "burst time" (time spent inside burst
  // windows); arrivals are Poisson in burst time at the burst rate.
  sim::Time to_burst_time(sim::Time t) const;
  sim::Time to_real_time(sim::Time bt) const;

  double avg_rate_;
  double burst_rate_;
  sim::Time period_;
  sim::Time window_;
};

}  // namespace aeq::workload
