#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::workload {

DestinationPicker uniform_destinations(std::size_t num_hosts,
                                       net::HostId self) {
  AEQ_ASSERT(num_hosts >= 2);
  return [num_hosts, self](sim::Rng& rng) {
    auto dst = static_cast<net::HostId>(rng.index(num_hosts - 1));
    if (dst >= self) ++dst;
    return dst;
  };
}

DestinationPicker fixed_destination(net::HostId dst) {
  return [dst](sim::Rng&) { return dst; };
}

DestinationPicker zipf_destinations(std::size_t num_hosts, net::HostId self,
                                    double exponent) {
  AEQ_ASSERT(num_hosts >= 2 && exponent > 0.0);
  // Precompute the CDF over ranks once; capture by value in the picker.
  std::vector<double> cdf(num_hosts);
  double total = 0.0;
  for (std::size_t r = 0; r < num_hosts; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), exponent);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return [cdf = std::move(cdf), self](sim::Rng& rng) {
    const double u = rng.uniform();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    auto dst = static_cast<net::HostId>(it - cdf.begin());
    if (dst == self) {
      dst = static_cast<net::HostId>((dst + 1) % cdf.size());
    }
    return dst;
  };
}

TrafficGenerator::TrafficGenerator(sim::Simulator& simulator,
                                   rpc::RpcStack& stack,
                                   DestinationPicker pick_destination,
                                   const GeneratorConfig& config,
                                   sim::Rng rng)
    : sim_(simulator),
      stack_(stack),
      pick_destination_(std::move(pick_destination)),
      rng_(rng),
      window_start_(config.window_start),
      window_stop_(config.window_stop) {
  AEQ_ASSERT(pick_destination_ != nullptr);
  AEQ_ASSERT(!config.classes.empty());
  for (const ClassLoad& load : config.classes) {
    AEQ_ASSERT(load.sizes != nullptr);
    if (load.byte_rate <= 0.0) continue;  // class absent from this mix
    const double event_rate = load.byte_rate / load.sizes->mean_bytes();
    ClassState state;
    state.load = load;
    if (config.burst_over_avg > 1.0) {
      state.arrivals = std::make_unique<BurstCycleArrivals>(
          event_rate, config.burst_over_avg, config.burst_period);
    } else {
      state.arrivals = std::make_unique<PoissonArrivals>(event_rate);
    }
    classes_.push_back(std::move(state));
  }
}

void TrafficGenerator::run(sim::Time start, sim::Time stop) {
  AEQ_ASSERT(stop > start);
  start = std::max(start, window_start_);
  stop_time_ = window_stop_ > 0.0 ? std::min(stop, window_stop_) : stop;
  if (start >= stop_time_) return;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    schedule_next(i, start);
  }
}

void TrafficGenerator::schedule_next(std::size_t class_index,
                                     sim::Time from) {
  ClassState& state = classes_[class_index];
  const sim::Time at = state.arrivals->next_arrival(from, rng_);
  if (at >= stop_time_) return;
  sim_.schedule_at(at, [this, class_index, at] {
    const obs::prof::ProfRegion prof(obs::prof::Region::kWorkload);
    ClassState& cls = classes_[class_index];
    const net::HostId dst = pick_destination_(rng_);
    const std::uint64_t bytes = cls.load.sizes->sample(rng_);
    stack_.issue(dst, cls.load.priority, bytes, cls.load.deadline_budget);
    ++issued_;
    schedule_next(class_index, at);
  });
}

}  // namespace aeq::workload
