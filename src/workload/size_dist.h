// RPC size distributions: fixed/uniform/exponential synthetics plus
// empirical CDFs shaped like the paper's production storage workload
// (Figure 1), where PC RPCs are small-biased but have a genuine large tail —
// the size/priority misalignment that defeats SJF-style schedulers (§2.1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rpc/priority.h"
#include "sim/rng.h"

namespace aeq::workload {

class SizeDistribution {
 public:
  virtual ~SizeDistribution() = default;
  virtual std::uint64_t sample(sim::Rng& rng) const = 0;
  virtual double mean_bytes() const = 0;
};

class FixedSize final : public SizeDistribution {
 public:
  explicit FixedSize(std::uint64_t bytes) : bytes_(bytes) {
    AEQ_ASSERT(bytes > 0);
  }
  std::uint64_t sample(sim::Rng&) const override { return bytes_; }
  double mean_bytes() const override {
    return static_cast<double>(bytes_);
  }

 private:
  std::uint64_t bytes_;
};

class UniformSize final : public SizeDistribution {
 public:
  UniformSize(std::uint64_t lo, std::uint64_t hi) : lo_(lo), hi_(hi) {
    AEQ_ASSERT(lo > 0 && hi >= lo);
  }
  std::uint64_t sample(sim::Rng& rng) const override {
    return lo_ + rng.index(hi_ - lo_ + 1);
  }
  double mean_bytes() const override {
    return 0.5 * static_cast<double>(lo_ + hi_);
  }

 private:
  std::uint64_t lo_, hi_;
};

// Exponential sizes clamped to [min, max] (clamping shifts the mean; the
// reported mean is estimated by quadrature at construction).
class ExponentialSize final : public SizeDistribution {
 public:
  ExponentialSize(double mean_bytes, std::uint64_t min_bytes,
                  std::uint64_t max_bytes);
  std::uint64_t sample(sim::Rng& rng) const override;
  double mean_bytes() const override { return effective_mean_; }

 private:
  double raw_mean_;
  std::uint64_t min_bytes_, max_bytes_;
  double effective_mean_;
};

// Bounded Pareto sizes: the canonical heavy-tail model for datacenter
// message sizes. alpha < 2 gives the infinite-variance regime where tail
// messages dominate byte counts.
class ParetoSize final : public SizeDistribution {
 public:
  ParetoSize(double alpha, std::uint64_t min_bytes, std::uint64_t max_bytes);
  std::uint64_t sample(sim::Rng& rng) const override;
  double mean_bytes() const override { return mean_; }

 private:
  double alpha_;
  double min_, max_;
  double mean_;
};

// Piecewise-linear inverse-CDF sampling: points are (cumulative probability,
// bytes) with the first probability 0 and the last 1.
class EmpiricalSize final : public SizeDistribution {
 public:
  struct Point {
    double cum_prob;
    std::uint64_t bytes;
  };
  explicit EmpiricalSize(std::vector<Point> points);
  std::uint64_t sample(sim::Rng& rng) const override;
  double mean_bytes() const override { return mean_; }

 private:
  std::vector<Point> points_;
  double mean_;
};

// Production-like storage RPC size CDFs per priority class (Figure 1).
// READs use response payloads, WRITEs request payloads; both shapes are
// synthesized to preserve the paper's qualitative properties.
std::unique_ptr<SizeDistribution> production_size_dist(rpc::Priority priority,
                                                       bool write = true);

}  // namespace aeq::workload
