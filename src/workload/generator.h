// Open-loop traffic generator driving one host's RpcStack.
//
// Each (priority class) gets its own arrival process sized so that the
// class's *byte* rate matches its share of the configured load — matching
// the paper's QoS-mix definition (share of arriving traffic). Destinations
// are drawn by a pluggable picker (all-to-all uniform, fixed target, ...).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "rpc/rpc_stack.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "workload/arrival.h"
#include "workload/size_dist.h"

namespace aeq::workload {

// Picks a destination host for the next RPC.
using DestinationPicker = std::function<net::HostId(sim::Rng&)>;

// Uniform over all hosts except `self`.
DestinationPicker uniform_destinations(std::size_t num_hosts,
                                       net::HostId self);
// Always the same destination.
DestinationPicker fixed_destination(net::HostId dst);
// Zipf-distributed destinations (rank 0 = host 0 hottest, skipping `self`):
// models the hotspot fan-in of real storage fleets. `exponent` ~0.8-1.2.
DestinationPicker zipf_destinations(std::size_t num_hosts, net::HostId self,
                                    double exponent);

struct ClassLoad {
  rpc::Priority priority = rpc::Priority::kPC;
  double byte_rate = 0.0;  // average offered bytes/sec for this class
  const SizeDistribution* sizes = nullptr;
  // Relative deadline handed to deadline-aware transports (0 = none).
  sim::Time deadline_budget = 0.0;
};

struct GeneratorConfig {
  std::vector<ClassLoad> classes;
  double burst_over_avg = 1.0;            // rho/mu; 1.0 = Poisson
  sim::Time burst_period = 100 * sim::kUsec;  // Figure 7 cycle length
  // Optional activation window, intersected with the run() span — lets an
  // experiment model surges that switch on and off (Figure 3).
  sim::Time window_start = 0.0;
  sim::Time window_stop = 0.0;  // 0 = unbounded
};

class TrafficGenerator {
 public:
  TrafficGenerator(sim::Simulator& simulator, rpc::RpcStack& stack,
                   DestinationPicker pick_destination,
                   const GeneratorConfig& config, sim::Rng rng);

  // Begins issuing at `start` and stops scheduling new RPCs after `stop`.
  void run(sim::Time start, sim::Time stop);

  std::uint64_t issued() const { return issued_; }

 private:
  struct ClassState {
    ClassLoad load;
    std::unique_ptr<ArrivalProcess> arrivals;
  };

  void schedule_next(std::size_t class_index, sim::Time from);

  sim::Simulator& sim_;
  rpc::RpcStack& stack_;
  DestinationPicker pick_destination_;
  sim::Rng rng_;
  sim::Time window_start_ = 0.0;
  sim::Time window_stop_ = 0.0;
  sim::Time stop_time_ = 0.0;
  std::vector<ClassState> classes_;
  std::uint64_t issued_ = 0;
};

}  // namespace aeq::workload
