#include "workload/arrival.h"

namespace aeq::workload {

BurstCycleArrivals::BurstCycleArrivals(double avg_events_per_sec,
                                       double burst_over_avg,
                                       sim::Time period)
    : avg_rate_(avg_events_per_sec),
      burst_rate_(avg_events_per_sec * burst_over_avg),
      period_(period),
      window_(period / burst_over_avg) {
  AEQ_ASSERT(avg_rate_ > 0.0);
  AEQ_ASSERT(burst_over_avg >= 1.0);
  AEQ_ASSERT(period_ > 0.0);
}

sim::Time BurstCycleArrivals::to_burst_time(sim::Time t) const {
  const double k = std::floor(t / period_);
  const sim::Time offset = t - k * period_;
  return k * window_ + std::min(offset, window_);
}

sim::Time BurstCycleArrivals::to_real_time(sim::Time bt) const {
  const double k = std::floor(bt / window_);
  sim::Time offset = bt - k * window_;
  return k * period_ + offset;
}

sim::Time BurstCycleArrivals::next_arrival(sim::Time now, sim::Rng& rng) {
  const sim::Time bt = to_burst_time(now);
  const sim::Time next_bt = bt + rng.exponential(1.0 / burst_rate_);
  sim::Time next = to_real_time(next_bt);
  // Guard against float round-off producing a non-advancing clock.
  if (next <= now) next = now + 1e-12;
  return next;
}

}  // namespace aeq::workload
