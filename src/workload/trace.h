// RPC trace loading / recording / replay.
//
// The paper's artifact lets users "try out the simulator with their own RPC
// size distribution"; traces go one step further and replay a recorded RPC
// log (time, src, dst, priority, bytes[, deadline]) through any experiment.
// CSV is used so traces round-trip through standard tooling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/packet.h"
#include "rpc/priority.h"
#include "rpc/rpc_stack.h"
#include "sim/simulator.h"

namespace aeq::workload {

struct TraceRecord {
  sim::Time issue_time = 0.0;
  net::HostId src = net::kNoHost;
  net::HostId dst = net::kNoHost;
  rpc::Priority priority = rpc::Priority::kPC;
  std::uint64_t bytes = 0;
  sim::Time deadline_budget = 0.0;  // optional column

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

// Parses "time,src,dst,priority,bytes[,deadline]" rows; `priority` is PC,
// NC or BE (case-insensitive). Lines starting with '#' and a header line
// beginning with "time" are skipped. Throws nothing: malformed lines are
// reported via the returned struct.
struct TraceParseResult {
  std::vector<TraceRecord> records;
  std::vector<std::string> errors;  // one message per rejected line
};
TraceParseResult parse_trace_csv(std::istream& in);

// Writes records in the same CSV format (with header).
void write_trace_csv(std::ostream& out,
                     const std::vector<TraceRecord>& records);

// Schedules every record of the trace against per-host RPC stacks.
// `stacks[src]` must outlive the simulation. Records are issued at
// `record.issue_time + offset`; out-of-range hosts are skipped and counted.
struct ReplayStats {
  std::size_t scheduled = 0;
  std::size_t skipped = 0;
};
ReplayStats replay_trace(sim::Simulator& simulator,
                         const std::vector<TraceRecord>& records,
                         const std::vector<rpc::RpcStack*>& stacks,
                         sim::Time offset = 0.0);

}  // namespace aeq::workload
