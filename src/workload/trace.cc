#include "workload/trace.h"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/assert.h"

namespace aeq::workload {

namespace {

std::string to_upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

bool parse_priority(const std::string& token, rpc::Priority* out) {
  const std::string upper = to_upper(token);
  if (upper == "PC" || upper == "0") {
    *out = rpc::Priority::kPC;
  } else if (upper == "NC" || upper == "1") {
    *out = rpc::Priority::kNC;
  } else if (upper == "BE" || upper == "2") {
    *out = rpc::Priority::kBE;
  } else {
    return false;
  }
  return true;
}

}  // namespace

TraceParseResult parse_trace_csv(std::istream& in) {
  TraceParseResult result;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("time", 0) == 0) continue;  // header

    std::stringstream fields(line);
    std::string token;
    std::vector<std::string> tokens;
    while (std::getline(fields, token, ',')) tokens.push_back(token);
    if (tokens.size() < 5 || tokens.size() > 6) {
      result.errors.push_back("line " + std::to_string(line_number) +
                              ": expected 5-6 fields");
      continue;
    }
    try {
      TraceRecord record;
      record.issue_time = std::stod(tokens[0]);
      record.src = static_cast<net::HostId>(std::stol(tokens[1]));
      record.dst = static_cast<net::HostId>(std::stol(tokens[2]));
      if (!parse_priority(tokens[3], &record.priority)) {
        result.errors.push_back("line " + std::to_string(line_number) +
                                ": bad priority '" + tokens[3] + "'");
        continue;
      }
      record.bytes = std::stoull(tokens[4]);
      if (tokens.size() == 6) record.deadline_budget = std::stod(tokens[5]);
      if (record.issue_time < 0 || record.src < 0 || record.dst < 0 ||
          record.bytes == 0 || record.src == record.dst) {
        result.errors.push_back("line " + std::to_string(line_number) +
                                ": invalid field value");
        continue;
      }
      result.records.push_back(record);
    } catch (const std::exception&) {
      result.errors.push_back("line " + std::to_string(line_number) +
                              ": parse failure");
    }
  }
  return result;
}

void write_trace_csv(std::ostream& out,
                     const std::vector<TraceRecord>& records) {
  out << "time,src,dst,priority,bytes,deadline\n";
  for (const TraceRecord& record : records) {
    out << record.issue_time << "," << record.src << "," << record.dst
        << "," << rpc::priority_name(record.priority) << "," << record.bytes
        << "," << record.deadline_budget << "\n";
  }
}

ReplayStats replay_trace(sim::Simulator& simulator,
                         const std::vector<TraceRecord>& records,
                         const std::vector<rpc::RpcStack*>& stacks,
                         sim::Time offset) {
  ReplayStats stats;
  for (const TraceRecord& record : records) {
    const auto src = static_cast<std::size_t>(record.src);
    if (src >= stacks.size() ||
        static_cast<std::size_t>(record.dst) >= stacks.size() ||
        stacks[src] == nullptr) {
      ++stats.skipped;
      continue;
    }
    rpc::RpcStack* stack = stacks[src];
    const TraceRecord r = record;
    simulator.schedule_at(record.issue_time + offset, [stack, r] {
      stack->issue(r.dst, r.priority, r.bytes, r.deadline_budget);
    });
    ++stats.scheduled;
  }
  return stats;
}

}  // namespace aeq::workload
