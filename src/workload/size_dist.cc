#include "workload/size_dist.h"

#include <algorithm>
#include <cmath>

namespace aeq::workload {

ExponentialSize::ExponentialSize(double mean_bytes, std::uint64_t min_bytes,
                                 std::uint64_t max_bytes)
    : raw_mean_(mean_bytes), min_bytes_(min_bytes), max_bytes_(max_bytes) {
  AEQ_ASSERT(mean_bytes > 0 && min_bytes > 0 && max_bytes >= min_bytes);
  // Estimate the clamped mean numerically (10k-point quadrature on the
  // inverse CDF) so mean_bytes() is accurate for rate planning.
  double sum = 0.0;
  const int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = (i + 0.5) / kSamples;
    const double x = -raw_mean_ * std::log(1.0 - u);
    sum += std::clamp(x, static_cast<double>(min_bytes_),
                      static_cast<double>(max_bytes_));
  }
  effective_mean_ = sum / kSamples;
}

std::uint64_t ExponentialSize::sample(sim::Rng& rng) const {
  const double x = rng.exponential(raw_mean_);
  return static_cast<std::uint64_t>(
      std::clamp(x, static_cast<double>(min_bytes_),
                 static_cast<double>(max_bytes_)));
}

ParetoSize::ParetoSize(double alpha, std::uint64_t min_bytes,
                       std::uint64_t max_bytes)
    : alpha_(alpha),
      min_(static_cast<double>(min_bytes)),
      max_(static_cast<double>(max_bytes)) {
  AEQ_ASSERT(alpha > 0.0 && min_bytes > 0 && max_bytes > min_bytes);
  // Mean of the bounded Pareto (closed form; alpha == 1 handled separately).
  const double L = min_, H = max_, a = alpha_;
  if (std::abs(a - 1.0) < 1e-12) {
    mean_ = std::log(H / L) * L * H / (H - L);
  } else {
    mean_ = std::pow(L, a) / (1.0 - std::pow(L / H, a)) * a / (a - 1.0) *
            (1.0 / std::pow(L, a - 1.0) - 1.0 / std::pow(H, a - 1.0));
  }
}

std::uint64_t ParetoSize::sample(sim::Rng& rng) const {
  // Inverse CDF of the bounded Pareto.
  const double u = rng.uniform();
  const double La = std::pow(min_, alpha_);
  const double Ha = std::pow(max_, alpha_);
  const double x =
      std::pow(-(u * Ha - u * La - Ha) / (Ha * La), -1.0 / alpha_);
  return static_cast<std::uint64_t>(std::clamp(x, min_, max_));
}

EmpiricalSize::EmpiricalSize(std::vector<Point> points)
    : points_(std::move(points)) {
  AEQ_ASSERT(points_.size() >= 2);
  AEQ_ASSERT(points_.front().cum_prob == 0.0);
  AEQ_ASSERT(points_.back().cum_prob == 1.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    AEQ_ASSERT(points_[i].cum_prob >= points_[i - 1].cum_prob);
    AEQ_ASSERT(points_[i].bytes >= points_[i - 1].bytes);
  }
  // Mean of the piecewise-linear (in bytes) interpolation: each segment
  // contributes its probability mass times the segment's average size.
  double mean = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].cum_prob - points_[i - 1].cum_prob;
    mean += mass * 0.5 *
            static_cast<double>(points_[i].bytes + points_[i - 1].bytes);
  }
  mean_ = mean;
}

std::uint64_t EmpiricalSize::sample(sim::Rng& rng) const {
  const double u = rng.uniform();
  auto it = std::lower_bound(
      points_.begin(), points_.end(), u,
      [](const Point& p, double value) { return p.cum_prob < value; });
  if (it == points_.begin()) return points_.front().bytes;
  if (it == points_.end()) return points_.back().bytes;
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.cum_prob - lo.cum_prob;
  const double frac = span > 0 ? (u - lo.cum_prob) / span : 1.0;
  const double bytes = static_cast<double>(lo.bytes) +
                       frac * static_cast<double>(hi.bytes - lo.bytes);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(bytes));
}

std::unique_ptr<SizeDistribution> production_size_dist(rpc::Priority priority,
                                                       bool write) {
  using P = EmpiricalSize::Point;
  // Synthesized to match Figure 1's qualitative shape: PC is small-biased
  // with a real large tail; NC is mid-sized; BE is bulk. WRITE requests skew
  // slightly smaller than READ responses in the paper's CDFs.
  const double shrink = write ? 0.5 : 1.0;
  auto scale = [shrink](double bytes) {
    return static_cast<std::uint64_t>(std::max(128.0, bytes * shrink));
  };
  // Figure 1's normalized sizes span ~5 decades and the PC CDF reaches the
  // same maximum as BE — large performance-critical RPCs are real. The
  // heavy upper tail also drives the multi-ms hotspot episodes that defeat
  // SRPT-style schedulers on large RPCs (§6.10).
  std::vector<P> points;
  switch (priority) {
    case rpc::Priority::kPC:
      points = {{0.0, scale(256)},        {0.30, scale(1024)},
                {0.55, scale(4096)},      {0.75, scale(16 << 10)},
                {0.90, scale(64 << 10)},  {0.97, scale(512 << 10)},
                {0.995, scale(2 << 20)},  {1.0, scale(4 << 20)}};
      break;
    case rpc::Priority::kNC:
      points = {{0.0, scale(1024)},       {0.25, scale(8 << 10)},
                {0.50, scale(64 << 10)},  {0.80, scale(512 << 10)},
                {0.95, scale(2 << 20)},   {1.0, scale(8 << 20)}};
      break;
    case rpc::Priority::kBE:
      points = {{0.0, scale(4096)},       {0.30, scale(64 << 10)},
                {0.55, scale(512 << 10)}, {0.80, scale(2 << 20)},
                {0.95, scale(8 << 20)},   {1.0, scale(16 << 20)}};
      break;
  }
  return std::make_unique<EmpiricalSize>(std::move(points));
}

}  // namespace aeq::workload
