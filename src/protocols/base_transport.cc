#include "protocols/base_transport.h"

#include <algorithm>
#include <utility>

#include "sim/assert.h"

namespace aeq::protocols {

BaseTransport::BaseTransport(sim::Simulator& simulator, net::Host& host,
                             const BaseTransportConfig& config)
    : sim_(simulator), host_(host), config_(config) {
  AEQ_ASSERT(config_.mtu_bytes > 0);
  host_.set_delivery_handler(
      [this](const net::Packet& packet) { on_packet(packet); });
}

void BaseTransport::send_message(const transport::SendRequest& request,
                                 transport::CompletionHandler on_complete) {
  AEQ_ASSERT(request.bytes > 0);
  OutMessage message;
  message.request = request;
  message.on_complete = std::move(on_complete);
  message.issued = sim_.now();
  message.num_pkts = static_cast<std::uint32_t>(
      (request.bytes + config_.mtu_bytes - 1) / config_.mtu_bytes);
  message.acked.assign(message.num_pkts, false);
  auto [it, inserted] = outgoing_.emplace(request.rpc_id, std::move(message));
  AEQ_ASSERT_MSG(inserted, "duplicate rpc id");
  arm_rto();
  on_message_start(it->second);
}

std::uint32_t BaseTransport::payload_of(const OutMessage& message,
                                        std::uint32_t index) const {
  AEQ_ASSERT(index < message.num_pkts);
  const std::uint64_t offset =
      static_cast<std::uint64_t>(index) * config_.mtu_bytes;
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      config_.mtu_bytes, message.request.bytes - offset));
}

void BaseTransport::emit_packet(OutMessage& message, std::uint32_t index) {
  net::Packet p;
  p.src = host_.id();
  p.dst = message.request.dst;
  p.size_bytes = payload_of(message, index);
  p.qos = packet_qos(message);
  p.type = net::PacketType::kData;
  p.rpc_id = message.request.rpc_id;
  p.seq = index;
  p.cold.msg_bytes = message.request.bytes;
  p.sent_time = sim_.now();
  p.cold.priority = packet_priority(message);
  p.cold.deadline = message.request.deadline;
  host_.send(p);
}

void BaseTransport::send_control(net::Packet packet) {
  packet.src = host_.id();
  packet.sent_time = sim_.now();
  host_.send(packet);
}

void BaseTransport::terminate(OutMessage& message) { finish(message, true); }

void BaseTransport::finish(OutMessage& message, bool terminated) {
  if (message.done) return;
  message.done = true;
  transport::MessageCompletion completion;
  completion.rpc_id = message.request.rpc_id;
  completion.src = host_.id();
  completion.dst = message.request.dst;
  completion.qos = message.request.qos;
  completion.bytes = message.request.bytes;
  completion.issued = message.issued;
  completion.completed = sim_.now();
  completion.terminated = terminated;
  auto handler = std::move(message.on_complete);
  on_message_finished(message.request.rpc_id);
  outgoing_.erase(message.request.rpc_id);  // invalidates `message`
  if (handler) handler(completion);
}

void BaseTransport::on_packet(const net::Packet& packet) {
  switch (packet.type) {
    case net::PacketType::kData:
      handle_data(packet);
      break;
    case net::PacketType::kAck:
      handle_ack(packet);
      break;
    default:
      on_control_packet(packet);
      break;
  }
}

void BaseTransport::handle_data(const net::Packet& packet) {
  InMessage& in = incoming_[packet.rpc_id];
  if (in.num_pkts == 0) {
    in.num_pkts = static_cast<std::uint32_t>(
        (packet.cold.msg_bytes + config_.mtu_bytes - 1) / config_.mtu_bytes);
    in.received.assign(in.num_pkts, false);
    in.msg_bytes = packet.cold.msg_bytes;
    in.src = packet.src;
    in.qos = packet.qos;
  }
  const auto index = static_cast<std::uint32_t>(packet.seq);
  AEQ_ASSERT(index < in.num_pkts);
  if (!in.received[index]) {
    in.received[index] = true;
    ++in.received_count;
  }
  on_receiver_data(packet, in);

  net::Packet ack;
  ack.src = host_.id();
  ack.dst = packet.src;
  ack.size_bytes = config_.ack_bytes;
  ack.qos = packet.qos;
  ack.type = net::PacketType::kAck;
  ack.rpc_id = packet.rpc_id;
  ack.seq = packet.seq;  // selective per-packet ACK
  ack.sent_time = packet.sent_time;
  host_.send(ack);

  // Forget completed messages. If a late retransmission recreates partial
  // state (lost-ACK race) it is bounded: the sender keeps retransmitting
  // until each packet is ACKed, and the recreated state is re-erased once
  // every packet has been seen again.
  if (in.complete()) incoming_.erase(packet.rpc_id);
}

void BaseTransport::handle_ack(const net::Packet& packet) {
  auto it = outgoing_.find(packet.rpc_id);
  if (it == outgoing_.end()) return;  // duplicate ACK after completion
  OutMessage& message = it->second;
  const auto index = static_cast<std::uint32_t>(packet.seq);
  AEQ_ASSERT(index < message.num_pkts);
  if (message.acked[index]) return;
  message.acked[index] = true;
  ++message.acked_count;
  if (message.acked_count == message.num_pkts) {
    finish(message, false);
    return;
  }
  on_message_acked(message);
}

void BaseTransport::arm_rto() {
  if (rto_event_ || outgoing_.empty()) return;
  rto_event_ = sim_.schedule_in(config_.rto, [this] {
    rto_event_ = sim::EventId{};
    on_rto();
  });
}

void BaseTransport::on_message_rto(OutMessage& message) {
  // Conservative default: re-emit the lowest unacked, already-sent packet.
  // One packet per period keeps retransmissions from defeating a subclass's
  // rate policy.
  for (std::uint32_t i = 0; i < message.next_unsent; ++i) {
    if (!message.acked[i]) {
      emit_packet(message, i);
      return;
    }
  }
}

void BaseTransport::on_rto() {
  std::vector<std::uint64_t> ids;
  ids.reserve(outgoing_.size());
  // Key collection is a commutative fill; the sort below fixes the
  // retransmission order. detlint:allow(unordered-iter)
  for (const auto& [id, message] : outgoing_) {
    (void)message;
    ids.push_back(id);
  }
  // Retransmit in ascending rpc-id order: map iteration order is
  // unspecified and must not decide which packet hits the NIC first.
  std::sort(ids.begin(), ids.end());
  for (std::uint64_t id : ids) {
    auto it = outgoing_.find(id);
    if (it == outgoing_.end()) continue;
    on_message_rto(it->second);
  }
  arm_rto();
}

}  // namespace aeq::protocols
