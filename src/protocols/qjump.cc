#include "protocols/qjump.h"

#include "sim/assert.h"

namespace aeq::protocols {

QjumpTransport::QjumpTransport(sim::Simulator& simulator, net::Host& host,
                               const QjumpConfig& config)
    : BaseTransport(simulator, host, config.base), config_(config) {
  AEQ_ASSERT(!config_.level_rate.empty());
  levels_.resize(config_.level_rate.size());
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    levels_[i].rate = config_.level_rate[i];
  }
}

void QjumpTransport::on_message_start(OutMessage& message) {
  AEQ_ASSERT(message.request.qos < levels_.size());
  const std::size_t level = message.request.qos;
  for (std::uint32_t i = 0; i < message.num_pkts; ++i) {
    levels_[level].pending.emplace_back(message.request.rpc_id, i);
  }
  pump(level);
}

void QjumpTransport::pump(std::size_t level) {
  LevelState& state = levels_[level];
  while (!state.pending.empty()) {
    if (state.rate > 0.0 && sim().now() < state.next_free) {
      if (!state.timer_armed) {
        state.timer_armed = true;
        sim().schedule_at(state.next_free, [this, level] {
          levels_[level].timer_armed = false;
          pump(level);
        });
      }
      return;
    }
    const auto [rpc_id, index] = state.pending.front();
    state.pending.pop_front();
    auto it = outgoing().find(rpc_id);
    if (it == outgoing().end()) continue;  // message finished/terminated
    OutMessage& message = it->second;
    if (message.acked[index]) continue;
    emit_packet(message, index);
    if (index >= message.next_unsent) message.next_unsent = index + 1;
    if (state.rate > 0.0) {
      state.next_free =
          sim().now() + payload_of(message, index) / state.rate;
    }
  }
}

}  // namespace aeq::protocols
