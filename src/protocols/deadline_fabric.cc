#include "protocols/deadline_fabric.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::protocols {

DeadlineFabric::DeadlineFabric(sim::Simulator& simulator, DeadlineMode mode,
                               double capacity_bytes_per_sec,
                               sim::Time epoch)
    : sim_(simulator),
      mode_(mode),
      capacity_(capacity_bytes_per_sec),
      epoch_(epoch) {
  AEQ_ASSERT(capacity_ > 0.0 && epoch_ > 0.0);
}

void DeadlineFabric::register_flow(std::uint64_t rpc_id, net::HostId dst,
                                   sim::Time deadline,
                                   std::uint64_t remaining_bytes,
                                   Notify notify) {
  AEQ_ASSERT(notify != nullptr);
  flows_.emplace(rpc_id, FlowState{rpc_id, dst, deadline, remaining_bytes,
                                   next_order_++, std::move(notify)});
  arm_epoch();
  request_reallocate(dst);
}

void DeadlineFabric::update_remaining(std::uint64_t rpc_id,
                                      std::uint64_t remaining_bytes) {
  auto it = flows_.find(rpc_id);
  if (it != flows_.end()) it->second.remaining = remaining_bytes;
}

void DeadlineFabric::remove_flow(std::uint64_t rpc_id) {
  auto it = flows_.find(rpc_id);
  if (it == flows_.end()) return;
  const net::HostId dst = it->second.dst;
  flows_.erase(it);
  // A departure frees the bottleneck immediately (per-packet decisions in
  // real PDQ switches); re-plan without waiting for the next epoch.
  request_reallocate(dst);
}

void DeadlineFabric::request_reallocate(net::HostId dst) {
  bool& pending = realloc_pending_[dst];
  if (pending) return;
  pending = true;
  // Small control latency standing in for the header round trip.
  sim_.schedule_in(2 * sim::kUsec, [this, dst] {
    realloc_pending_[dst] = false;
    reallocate_dst(dst);
  });
}

void DeadlineFabric::reallocate_dst(net::HostId dst) {
  std::vector<FlowState*> flows;
  // Collection order is irrelevant: allocate_d3/allocate_pdq re-sort by
  // the unique per-flow `order` key. detlint:allow(unordered-iter)
  for (auto& [id, flow] : flows_) {
    (void)id;
    if (flow.dst == dst) flows.push_back(&flow);
  }
  if (flows.empty()) return;
  if (mode_ == DeadlineMode::kD3) {
    allocate_d3(flows);
  } else {
    allocate_pdq(flows);
  }
}

void DeadlineFabric::arm_epoch() {
  if (epoch_armed_) return;
  epoch_armed_ = true;
  sim_.schedule_in(epoch_, [this] {
    epoch_armed_ = false;
    reallocate();
    if (!flows_.empty()) arm_epoch();
  });
}

void DeadlineFabric::reallocate() {
  // Group flows per destination downlink (the bottleneck we emulate).
  std::map<net::HostId, std::vector<FlowState*>> per_dst;
  // Grouping into an ordered map; allocate_d3/allocate_pdq re-sort each
  // group by the unique per-flow `order` key. detlint:allow(unordered-iter)
  for (auto& [id, flow] : flows_) {
    (void)id;
    per_dst[flow.dst].push_back(&flow);
  }
  for (auto& [dst, flows] : per_dst) {
    (void)dst;
    if (mode_ == DeadlineMode::kD3) {
      allocate_d3(flows);
    } else {
      allocate_pdq(flows);
    }
  }
}

void DeadlineFabric::allocate_d3(std::vector<FlowState*>& flows) {
  // FCFS over registration order, like headers traversing the router.
  std::sort(flows.begin(), flows.end(),
            [](const FlowState* a, const FlowState* b) {
              return a->order < b->order;
            });
  const sim::Time now = sim_.now();
  double available = capacity_;
  std::vector<double> granted(flows.size(), 0.0);
  std::vector<bool> kill(flows.size(), false);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    FlowState& flow = *flows[i];
    if (flow.deadline <= 0.0) continue;  // best effort: base rate only
    const sim::Time slack = flow.deadline - now;
    if (slack <= 0.0) {
      kill[i] = true;  // already hopeless
      continue;
    }
    const double desired = static_cast<double>(flow.remaining) / slack;
    const double grant = std::min(desired, available);
    // Quench when the FCFS grant alone cannot meet the deadline — D3 does
    // not let latecomers ride the base rate to a deadline they will miss
    // ("better never than late").
    if (grant < desired * 0.999) {
      kill[i] = true;
      continue;
    }
    granted[i] = grant;
    available -= grant;
  }
  // Leftover split equally as base rate across surviving flows.
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (!kill[i]) ++survivors;
  }
  const double base =
      survivors ? std::max(0.0, available) / static_cast<double>(survivors)
                : 0.0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (kill[i]) {
      ++terminated_;
      const std::uint64_t id = flows[i]->id;
      Notify notify = flows[i]->notify;  // keep alive across the erase
      // Forget the flow before notifying: the callee usually also calls
      // remove_flow (no-op then), but a passive owner must not be re-killed
      // every epoch.
      flows_.erase(id);
      notify(0.0, true);
    } else {
      flows[i]->notify(granted[i] + base, false);
    }
  }
}

void DeadlineFabric::allocate_pdq(std::vector<FlowState*>& flows) {
  // EDF order; deadline-less flows go last in arrival order.
  std::sort(flows.begin(), flows.end(),
            [](const FlowState* a, const FlowState* b) {
              const bool a_dl = a->deadline > 0.0;
              const bool b_dl = b->deadline > 0.0;
              if (a_dl != b_dl) return a_dl;
              if (a_dl && a->deadline != b->deadline) {
                return a->deadline < b->deadline;
              }
              return a->order < b->order;
            });
  const sim::Time now = sim_.now();
  sim::Time cumulative = 0.0;
  // PDQ sends the head-of-line flow at full rate and keeps the next one
  // warm at a small probe rate (the paper's "early start" suppresses the
  // switchover bubble); everyone else is paused.
  std::size_t active_granted = 0;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    FlowState& flow = *flows[i];
    const sim::Time service =
        static_cast<double>(flow.remaining) / capacity_;
    if (flow.deadline > 0.0 && now + cumulative + service > flow.deadline) {
      ++terminated_;
      const std::uint64_t id = flow.id;
      Notify notify = flow.notify;
      flows_.erase(id);  // see allocate_d3: never re-kill a passive owner
      notify(0.0, true);
      continue;
    }
    cumulative += service;
    if (active_granted == 0) {
      flow.notify(capacity_, false);
    } else if (active_granted == 1) {
      flow.notify(0.02 * capacity_, false);
    } else {
      flow.notify(0.0, false);
    }
    ++active_granted;
  }
}

}  // namespace aeq::protocols
