#include "protocols/homa.h"

#include <algorithm>
#include <limits>

#include "sim/assert.h"

namespace aeq::protocols {

HomaTransport::HomaTransport(sim::Simulator& simulator, net::Host& host,
                             const HomaConfig& config)
    : BaseTransport(simulator, host, config.base), config_(config) {
  AEQ_ASSERT(config_.num_levels >= 2 &&
             config_.num_levels <= net::kMaxQoSLevels);
  AEQ_ASSERT(config_.unscheduled_cutoffs.size() + 1 < config_.num_levels);
  AEQ_ASSERT(config_.rtt_bytes >= config_.base.mtu_bytes);
}

net::QoSLevel HomaTransport::unscheduled_level(
    std::uint64_t msg_bytes) const {
  for (std::size_t i = 0; i < config_.unscheduled_cutoffs.size(); ++i) {
    if (msg_bytes <= config_.unscheduled_cutoffs[i]) {
      return static_cast<net::QoSLevel>(i);
    }
  }
  return static_cast<net::QoSLevel>(config_.unscheduled_cutoffs.size());
}

net::QoSLevel HomaTransport::scheduled_level(std::size_t srpt_rank) const {
  // Scheduled data rides below all unscheduled levels; the SRPT leader gets
  // the better of the remaining classes.
  const std::size_t base = config_.unscheduled_cutoffs.size() + 1;
  const std::size_t level = std::min(base + srpt_rank, config_.num_levels - 1);
  return static_cast<net::QoSLevel>(level);
}

net::QoSLevel HomaTransport::packet_qos(const OutMessage& message) const {
  // grant_limit_bytes carries the level for scheduled packets via
  // `granted_rate` (see on_control_packet); unscheduled prefix uses the
  // static size-based level.
  const std::uint64_t offset =
      static_cast<std::uint64_t>(message.next_unsent) *
      config_.base.mtu_bytes;
  if (offset < config_.rtt_bytes) {
    return unscheduled_level(message.request.bytes);
  }
  return static_cast<net::QoSLevel>(message.granted_rate);
}

void HomaTransport::on_message_start(OutMessage& message) {
  message.grant_limit_bytes =
      std::min<std::uint64_t>(config_.rtt_bytes, message.request.bytes);
  message.granted_rate = scheduled_level(1);  // until a grant says otherwise
  pump(message);
}

void HomaTransport::on_message_acked(OutMessage& message) { pump(message); }

void HomaTransport::pump(OutMessage& message) {
  while (message.next_unsent < message.num_pkts &&
         static_cast<std::uint64_t>(message.next_unsent) *
                 config_.base.mtu_bytes <
             message.grant_limit_bytes) {
    emit_packet(message, message.next_unsent);
    ++message.next_unsent;
  }
}

void HomaTransport::on_receiver_data(const net::Packet& data,
                                     InMessage& state) {
  RxMessage& rx = rx_[data.rpc_id];
  if (rx.msg_bytes == 0) {
    rx.msg_bytes = data.cold.msg_bytes;
    rx.num_pkts = state.num_pkts;
    rx.src = data.src;
    rx.granted = std::min<std::uint64_t>(config_.rtt_bytes, rx.msg_bytes);
  }
  rx.received_pkts = state.received_count;
  if (state.complete()) {
    rx_.erase(data.rpc_id);
    return;
  }

  // Grant one MTU to the active message with the smallest remaining bytes
  // that still has ungranted data (SRPT). Rank all grantable messages to
  // derive the scheduled priority level.
  std::uint64_t best_id = 0;
  std::uint64_t best_remaining = std::numeric_limits<std::uint64_t>::max();
  std::size_t grantable = 0;
  // Min-reduction with a total order on (remaining, rpc_id): ties on
  // remaining bytes break by id, so the winner is independent of map
  // iteration order. detlint:allow(unordered-iter)
  for (const auto& [id, candidate] : rx_) {
    if (candidate.granted >= candidate.msg_bytes) continue;
    ++grantable;
    const std::uint64_t remaining =
        candidate.msg_bytes - static_cast<std::uint64_t>(
                                  candidate.received_pkts) *
                                  config_.base.mtu_bytes;
    if (remaining < best_remaining ||
        (remaining == best_remaining && id < best_id)) {
      best_remaining = remaining;
      best_id = id;
    }
  }
  if (grantable == 0) return;
  RxMessage& grantee = rx_[best_id];
  send_grant(best_id, grantee, 0);
}

void HomaTransport::send_grant(std::uint64_t rpc_id, RxMessage& rx,
                               std::size_t srpt_rank) {
  rx.granted = std::min<std::uint64_t>(rx.granted + config_.base.mtu_bytes,
                                       rx.msg_bytes);
  net::Packet grant;
  grant.dst = rx.src;
  grant.size_bytes = config_.base.ack_bytes;
  grant.qos = 0;  // control rides the top class
  grant.type = net::PacketType::kGrant;
  grant.rpc_id = rpc_id;
  grant.cold.grant_offset = rx.granted;
  grant.cold.priority = static_cast<double>(scheduled_level(srpt_rank));
  send_control(grant);
}

void HomaTransport::on_control_packet(const net::Packet& packet) {
  if (packet.type != net::PacketType::kGrant) return;
  auto it = outgoing().find(packet.rpc_id);
  if (it == outgoing().end()) return;
  OutMessage& message = it->second;
  message.grant_limit_bytes =
      std::max(message.grant_limit_bytes, packet.cold.grant_offset);
  message.granted_rate = packet.cold.priority;  // scheduled level to use
  pump(message);
}

}  // namespace aeq::protocols
