// pFabric host transport (Alizadeh et al., SIGCOMM'13), simplified.
//
// Messages are sent aggressively with a fixed BDP-sized window per message;
// every data packet carries the message's *remaining* bytes as its priority,
// and the fabric (PfabricQueue on every port) serves smallest-remaining
// first, dropping the least urgent packets on overflow. Loss recovery is
// the BaseTransport selective-ACK + RTO machinery (pFabric's probe mode is
// approximated by the conservative one-packet RTO retransmission).
//
// pFabric ignores QoS classes entirely — scheduling is purely size-based —
// which is exactly why it underserves large-but-critical RPCs in Figure 22.
#pragma once

#include "protocols/base_transport.h"

namespace aeq::protocols {

struct PfabricConfig {
  BaseTransportConfig base;
  std::uint32_t window_packets = 16;  // ~1 BDP at 100G / 5us RTT
};

class PfabricTransport final : public BaseTransport {
 public:
  PfabricTransport(sim::Simulator& simulator, net::Host& host,
                   const PfabricConfig& config)
      : BaseTransport(simulator, host, config.base), config_(config) {}

 protected:
  void on_message_start(OutMessage& message) override { pump(message); }
  void on_message_acked(OutMessage& message) override { pump(message); }

  double packet_priority(const OutMessage& message) const override {
    return static_cast<double>(
        message.remaining_bytes(config_.base.mtu_bytes));
  }

  // All pFabric traffic shares one queue class; urgency lives in priority.
  net::QoSLevel packet_qos(const OutMessage&) const override { return 0; }

  // pFabric retransmits the full unacked window after a timeout.
  void on_message_rto(OutMessage& message) override {
    for (std::uint32_t i = 0; i < message.next_unsent; ++i) {
      if (!message.acked[i]) emit_packet(message, i);
    }
  }

 private:
  void pump(OutMessage& message) {
    while (message.next_unsent < message.num_pkts &&
           message.next_unsent - message.acked_count <
               config_.window_packets) {
      emit_packet(message, message.next_unsent);
      ++message.next_unsent;
    }
  }

  PfabricConfig config_;
};

}  // namespace aeq::protocols
