// Homa host transport (Montazeri et al., SIGCOMM'18), simplified.
//
// Receiver-driven: a sender blasts the first RTTbytes of a message
// unscheduled, at an in-network priority level chosen from static size
// cutoffs (smaller message -> higher priority). The rest is sent only as
// the receiver grants it, one MTU per received data packet, to the active
// message with the smallest remaining bytes (SRPT); grants carry the
// scheduled priority level derived from the message's SRPT rank. The
// network runs strict priority queuing over `num_levels` classes.
//
// Simplifications vs the full protocol: no overcommitment degree beyond the
// single SRPT grantee per incoming packet, no cutoff recomputation from
// observed workload, and retransmission via the BaseTransport RTO instead
// of Homa's RESEND/busy machinery. These keep the defining behaviour — SRPT
// favoring small messages via network priorities — which is what Figure 22
// measures.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "protocols/base_transport.h"

namespace aeq::protocols {

struct HomaConfig {
  BaseTransportConfig base;
  std::uint64_t rtt_bytes = 64 * 1024;  // unscheduled window
  std::size_t num_levels = 8;           // SPQ classes in the fabric
  // Message-size upper bounds for unscheduled levels 0..k; larger messages
  // use level k+1. Scheduled grants use the remaining (lower) levels.
  std::vector<std::uint64_t> unscheduled_cutoffs = {16 * 1024, 64 * 1024,
                                                    256 * 1024};
};

class HomaTransport final : public BaseTransport {
 public:
  HomaTransport(sim::Simulator& simulator, net::Host& host,
                const HomaConfig& config);

 protected:
  void on_message_start(OutMessage& message) override;
  void on_message_acked(OutMessage& message) override;
  void on_receiver_data(const net::Packet& data, InMessage& state) override;
  void on_control_packet(const net::Packet& packet) override;
  net::QoSLevel packet_qos(const OutMessage& message) const override;

 private:
  struct RxMessage {
    std::uint64_t msg_bytes = 0;
    std::uint64_t granted = 0;
    std::uint64_t received_pkts = 0;
    std::uint32_t num_pkts = 0;
    net::HostId src = net::kNoHost;
  };

  net::QoSLevel unscheduled_level(std::uint64_t msg_bytes) const;
  net::QoSLevel scheduled_level(std::size_t srpt_rank) const;
  void send_grant(std::uint64_t rpc_id, RxMessage& rx,
                  std::size_t srpt_rank);
  void pump(OutMessage& message);

  HomaConfig config_;
  std::unordered_map<std::uint64_t, RxMessage> rx_;  // by rpc_id
};

}  // namespace aeq::protocols
