// Sender-side transport for the deadline-aware baselines D3 and PDQ.
//
// Each message registers with the shared DeadlineFabric (which emulates the
// routers' allocation state at the bottleneck) and then paces data packets
// at whatever rate the fabric last granted — zero means paused (PDQ
// preemption). The fabric may also terminate a flow whose deadline is
// infeasible; the message then completes with `terminated = true`, which
// the RPC metrics count as an SLO miss and lost goodput (the paper's
// explanation for D3/PDQ's ~50% network utilization in Figure 22).
#pragma once

#include "protocols/base_transport.h"
#include "protocols/deadline_fabric.h"

namespace aeq::protocols {

class DeadlineTransport final : public BaseTransport {
 public:
  DeadlineTransport(sim::Simulator& simulator, net::Host& host,
                    DeadlineFabric& fabric,
                    const BaseTransportConfig& config)
      : BaseTransport(simulator, host, config), fabric_(fabric) {}

 protected:
  void on_message_start(OutMessage& message) override {
    const std::uint64_t rpc_id = message.request.rpc_id;
    fabric_.register_flow(
        rpc_id, message.request.dst, message.request.deadline,
        message.request.bytes, [this, rpc_id](double rate, bool terminate) {
          auto it = outgoing().find(rpc_id);
          if (it == outgoing().end()) return;
          if (terminate) {
            this->terminate(it->second);
            return;
          }
          it->second.granted_rate = rate;
          pump(it->second);
        });
  }

  void on_message_acked(OutMessage& message) override {
    fabric_.update_remaining(message.request.rpc_id,
                             message.remaining_bytes(config().mtu_bytes));
  }

  void on_message_finished(std::uint64_t rpc_id) override {
    fabric_.remove_flow(rpc_id);
  }

  // D3/PDQ do not use QoS classes; the fabric runs plain FIFO queues.
  net::QoSLevel packet_qos(const OutMessage&) const override { return 0; }

 private:
  void pump(OutMessage& message) {
    if (message.granted_rate <= 0.0) return;  // paused
    while (message.next_unsent < message.num_pkts) {
      const sim::Time now = sim().now();
      if (now < message.next_send_time) {
        if (!message.pace_armed) {
          message.pace_armed = true;
          const std::uint64_t rpc_id = message.request.rpc_id;
          sim().schedule_at(message.next_send_time, [this, rpc_id] {
            auto it = outgoing().find(rpc_id);
            if (it == outgoing().end()) return;
            it->second.pace_armed = false;
            pump(it->second);
          });
        }
        return;
      }
      const std::uint32_t payload = payload_of(message, message.next_unsent);
      emit_packet(message, message.next_unsent);
      ++message.next_unsent;
      message.next_send_time =
          std::max(message.next_send_time, now) +
          static_cast<double>(payload) / message.granted_rate;
    }
  }

  DeadlineFabric& fabric_;
};

}  // namespace aeq::protocols
