// QJump host transport (Grosvenor et al., NSDI'15), simplified.
//
// Each QoS level is rate-limited at the host to a configured fraction of
// the line rate (the QJump "throughput factor": the highest level is
// throttled hard enough that even worst-case fan-in cannot build queues),
// and the network runs strict priority queuing. Within a level, packets of
// queued messages are emitted FIFO at the level's rate. QJump gives
// excellent *packet*-level latency to the top level but caps its
// throughput, which is what hurts its RPC-level SLO attainment in Fig 22.
#pragma once

#include <array>
#include <deque>

#include "protocols/base_transport.h"

namespace aeq::protocols {

struct QjumpConfig {
  BaseTransportConfig base;
  // Per-QoS-level host rate limit in bytes/sec; 0 = unthrottled.
  std::vector<double> level_rate;
};

class QjumpTransport final : public BaseTransport {
 public:
  QjumpTransport(sim::Simulator& simulator, net::Host& host,
                 const QjumpConfig& config);

 protected:
  void on_message_start(OutMessage& message) override;
  void on_message_acked(OutMessage& /*message*/) override {}

 private:
  struct LevelState {
    double rate = 0.0;  // bytes/sec; 0 = unlimited
    sim::Time next_free = 0.0;
    std::deque<std::pair<std::uint64_t, std::uint32_t>> pending;  // (rpc,pkt)
    bool timer_armed = false;
  };

  void pump(std::size_t level);

  QjumpConfig config_;
  std::vector<LevelState> levels_;
};

}  // namespace aeq::protocols
