// Emulated in-network rate allocation for the deadline-aware baselines
// (D3, PDQ). The paper's simulator implements router state for these
// protocols; we emulate the same decisions at each destination's downlink —
// the bottleneck in the star topologies used for comparison — with a
// periodic allocation epoch standing in for per-RTT header exchanges.
// Documented simplification: control messages are delivered by scheduling
// the sender notification at epoch granularity rather than as in-band
// header packets.
//
// D3 mode (Wilson et al., SIGCOMM'11): senders ask for remaining/deadline;
// the allocator grants requests greedily in arrival order, then splits
// leftover capacity equally as base rate. A deadline flow whose grant makes
// its deadline infeasible is quenched ("better never than late").
//
// PDQ mode (Hong et al., SIGCOMM'12): Earliest-Deadline-First preemption —
// the flow(s) at the head of the EDF order send at (nearly) full rate,
// everyone else is paused; flows whose EDF completion would overrun their
// deadline are terminated.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "sim/simulator.h"

namespace aeq::protocols {

enum class DeadlineMode { kD3, kPdq };

class DeadlineFabric {
 public:
  // `notify(rate_bytes_per_sec, terminate)`: allocation feedback pushed to
  // the owning sender at each epoch.
  using Notify = std::function<void(double rate, bool terminate)>;

  DeadlineFabric(sim::Simulator& simulator, DeadlineMode mode,
                 double capacity_bytes_per_sec,
                 sim::Time epoch = 20 * sim::kUsec);

  void register_flow(std::uint64_t rpc_id, net::HostId dst,
                     sim::Time deadline, std::uint64_t remaining_bytes,
                     Notify notify);
  void update_remaining(std::uint64_t rpc_id, std::uint64_t remaining_bytes);
  void remove_flow(std::uint64_t rpc_id);

  std::uint64_t flows_terminated() const { return terminated_; }

 private:
  struct FlowState {
    std::uint64_t id;
    net::HostId dst;
    sim::Time deadline;  // absolute; 0 = no deadline (best effort)
    std::uint64_t remaining;
    std::uint64_t order;  // registration order (FCFS for D3)
    Notify notify;
  };

  void arm_epoch();
  void reallocate();
  void reallocate_dst(net::HostId dst);
  void request_reallocate(net::HostId dst);
  void allocate_d3(std::vector<FlowState*>& flows);
  void allocate_pdq(std::vector<FlowState*>& flows);

  sim::Simulator& sim_;
  DeadlineMode mode_;
  double capacity_;
  sim::Time epoch_;
  bool epoch_armed_ = false;
  std::uint64_t next_order_ = 0;
  std::uint64_t terminated_ = 0;
  bool in_reallocate_ = false;
  std::unordered_map<std::uint64_t, FlowState> flows_;  // by rpc_id
  std::unordered_map<net::HostId, bool> realloc_pending_;  // per dst
};

}  // namespace aeq::protocols
