// Shared engine for the message-based baseline transports (pFabric, QJump,
// Homa, D3, PDQ): per-message packetization, selective per-packet ACKs,
// RTO-based retransmission, and receiver-side tracking. Subclasses supply
// the scheduling policy — when the next packet of which message may leave,
// which priority/QoS it carries, and any receiver-driven control (grants,
// rate allocation).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/host.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "transport/message.h"

namespace aeq::protocols {

struct BaseTransportConfig {
  std::uint32_t mtu_bytes = 4096;
  std::uint32_t ack_bytes = 64;
  sim::Time rto = 500 * sim::kUsec;
};

class BaseTransport : public transport::MessageTransport {
 public:
  BaseTransport(sim::Simulator& simulator, net::Host& host,
                const BaseTransportConfig& config);
  ~BaseTransport() override = default;

  void send_message(const transport::SendRequest& request,
                    transport::CompletionHandler on_complete) final;

 protected:
  struct OutMessage {
    transport::SendRequest request;
    transport::CompletionHandler on_complete;
    sim::Time issued = 0.0;
    std::uint32_t num_pkts = 0;
    std::vector<bool> acked;
    std::uint32_t acked_count = 0;
    std::uint32_t next_unsent = 0;  // lowest never-sent packet index
    bool done = false;

    // Protocol scratch space.
    std::uint64_t grant_limit_bytes = 0;  // Homa: bytes permitted so far
    double granted_rate = 0.0;            // D3/PDQ: bytes/sec (0 = paused)
    sim::Time next_send_time = 0.0;       // pacing
    bool pace_armed = false;              // pacing timer pending

    // Unacked payload bytes (approximating acked bytes as acked_count MTUs;
    // exact except for the final short packet, which is immaterial for
    // priority stamps).
    std::uint64_t remaining_bytes(std::uint32_t mtu) const {
      const auto acked_bytes = std::min<std::uint64_t>(
          request.bytes, static_cast<std::uint64_t>(acked_count) * mtu);
      return request.bytes - acked_bytes;
    }
  };

  struct InMessage {
    std::uint32_t num_pkts = 0;
    std::vector<bool> received;
    std::uint32_t received_count = 0;
    std::uint64_t msg_bytes = 0;
    net::HostId src = net::kNoHost;
    net::QoSLevel qos = net::kQoSHigh;
    bool complete() const { return received_count == num_pkts; }
  };

  // --- subclass policy hooks ---
  // A new message was queued; start/refresh the subclass's send machinery.
  virtual void on_message_start(OutMessage& message) = 0;
  // An ACK advanced `message`; subclass may send more / reschedule.
  virtual void on_message_acked(OutMessage& message) = 0;
  // Receiver saw a data packet (before the ACK is sent); e.g. Homa grants.
  virtual void on_receiver_data(const net::Packet& data,
                                InMessage& state) {
    (void)data;
    (void)state;
  }
  // Non-data, non-ACK packets (grants, rate messages).
  virtual void on_control_packet(const net::Packet& packet) {
    (void)packet;
  }
  // Message fully acked or terminated; called just before state removal.
  virtual void on_message_finished(std::uint64_t rpc_id) { (void)rpc_id; }
  // RTO recovery policy: re-emit packets of a stalled message. The default
  // re-sends only the lowest unacked packet (rate-policy friendly);
  // aggressive protocols (pFabric) resend the whole window.
  virtual void on_message_rto(OutMessage& message);
  // Per-packet priority stamp (pFabric remaining size, Homa level).
  virtual double packet_priority(const OutMessage& message) const {
    (void)message;
    return 0.0;
  }
  // QoS level data packets of `message` travel on.
  virtual net::QoSLevel packet_qos(const OutMessage& message) const {
    return message.request.qos;
  }

  // --- services for subclasses ---
  // Emits packet `index` of `message` (first send or retransmission).
  void emit_packet(OutMessage& message, std::uint32_t index);
  // Bytes of payload carried by packet `index`.
  std::uint32_t payload_of(const OutMessage& message,
                           std::uint32_t index) const;
  // Terminates a message early (D3/PDQ quench); completion fires with
  // `terminated = true`.
  void terminate(OutMessage& message);
  // Sends a control packet from this host.
  void send_control(net::Packet packet);

  sim::Simulator& sim() { return sim_; }
  net::Host& host() { return host_; }
  const BaseTransportConfig& config() const { return config_; }
  std::unordered_map<std::uint64_t, OutMessage>& outgoing() {
    return outgoing_;
  }

 private:
  void on_packet(const net::Packet& packet);
  void handle_data(const net::Packet& packet);
  void handle_ack(const net::Packet& packet);
  void arm_rto();
  void on_rto();
  void finish(OutMessage& message, bool terminated);

  sim::Simulator& sim_;
  net::Host& host_;
  BaseTransportConfig config_;
  std::unordered_map<std::uint64_t, OutMessage> outgoing_;  // by rpc_id
  std::unordered_map<std::uint64_t, InMessage> incoming_;   // by rpc_id
  sim::EventId rto_event_;
};

}  // namespace aeq::protocols
