#include "transport/flow.h"

#include <algorithm>
#include <utility>

#include "sim/assert.h"

namespace aeq::transport {

Flow::Flow(sim::Simulator& simulator, net::Host& src_host, net::HostId dst,
           net::QoSLevel qos, std::uint64_t flow_id,
           const TransportConfig& config,
           std::unique_ptr<CongestionControl> cc)
    : sim_(simulator),
      src_host_(src_host),
      dst_(dst),
      qos_(qos),
      flow_id_(flow_id),
      config_(&config),
      cc_(std::move(cc)) {
  AEQ_ASSERT(cc_ != nullptr);
  AEQ_ASSERT(config_->mtu_bytes > 0);
}

void Flow::send_message(std::uint64_t bytes, std::uint64_t rpc_id,
                        CompletionHandler on_complete,
                        std::uint64_t app_tag) {
  AEQ_ASSERT_MSG(bytes > 0, "empty message");
  if (next_seq_ == stream_end_ && bytes_in_flight() == 0 &&
      sim_.now() - last_activity_ > config_->idle_restart_after) {
    cc_->on_idle_restart();
    emit_cwnd();
  }
  stream_end_ += bytes;
  messages_.push_back(PendingMessage{stream_end_, bytes, rpc_id, app_tag,
                                     sim_.now(), std::move(on_complete)});
  try_send();
}

const Flow::PendingMessage& Flow::message_at(std::uint64_t offset) const {
  // messages_ is sorted by end_offset; find the first end > offset.
  std::size_t lo = 0;
  std::size_t hi = messages_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (messages_[mid].end_offset <= offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  AEQ_ASSERT_MSG(lo < messages_.size(), "offset beyond queued messages");
  return messages_[lo];
}

sim::Time Flow::pace_gap() const {
  const sim::Time base = srtt_ > 0.0 ? srtt_ : config_->initial_rtt;
  const double cwnd = std::max(cc_->cwnd_packets(), 1e-6);
  return base / cwnd;
}

void Flow::try_send() {
  while (next_seq_ < stream_end_) {
    const double cwnd_pkts = cc_->cwnd_packets();
    const std::uint64_t in_flight = next_seq_ - acked_;
    // Segments never span message boundaries so every packet can carry its
    // message's identity for receiver-side RPC delivery detection.
    const PendingMessage& msg = message_at(next_seq_);
    const auto payload = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        config_->mtu_bytes, msg.end_offset - next_seq_));
    if (cwnd_pkts >= 1.0) {
      const double cwnd_bytes =
          cwnd_pkts * static_cast<double>(config_->mtu_bytes);
      if (in_flight > 0 &&
          static_cast<double>(in_flight + payload) > cwnd_bytes) {
        break;
      }
    } else {
      // Sub-packet window: at most one packet in flight, paced.
      if (in_flight > 0) break;
      if (sim_.now() < next_pace_time_) {
        if (!pace_event_) {
          pace_event_ = sim_.schedule_at(next_pace_time_, [this] {
            pace_event_ = sim::EventId{};
            try_send();
          });
        }
        break;
      }
    }
    send_segment(next_seq_, payload);
    next_seq_ += payload;
    if (cc_->cwnd_packets() < 1.0) {
      next_pace_time_ = sim_.now() + pace_gap();
    }
  }
  rearm_rto();
}

void Flow::send_segment(std::uint64_t offset, std::uint32_t payload) {
  const PendingMessage& msg = message_at(offset);
  net::Packet p;
  p.src = src_host_.id();
  p.dst = dst_;
  p.size_bytes = payload;
  p.qos = qos_;
  p.type = net::PacketType::kData;
  p.flow_id = flow_id_;
  p.seq = offset;
  p.rpc_id = msg.rpc_id;
  p.cold.msg_bytes = msg.bytes;
  p.cold.grant_offset = msg.end_offset;  // stream offset the message ends at
  p.cold.app_tag = msg.app_tag;
  p.sent_time = sim_.now();
  last_activity_ = sim_.now();
  src_host_.send(p);
}

void Flow::update_srtt(sim::Time sample) {
  srtt_ = srtt_ == 0.0 ? sample : 0.875 * srtt_ + 0.125 * sample;
}

sim::Time Flow::rto() const {
  const sim::Time base = srtt_ > 0.0 ? srtt_ : config_->initial_rtt;
  return std::max(config_->min_rto, config_->rto_srtt_multiplier * base);
}

void Flow::rearm_rto() {
  // Lazy rearm: every ACK pushes the deadline forward, but the scheduled
  // event is left in place and chases the deadline when it fires early.
  // The eager cancel+reschedule-per-ACK alternative is the single largest
  // source of scheduler tombstones (§DESIGN 10) — on the fig03 workload it
  // roughly one-for-one doubles timer traffic through the event heap.
  if (bytes_in_flight() == 0) {
    rto_deadline_ = 0.0;  // disarm; a pending timer no-ops when it fires
    return;
  }
  rto_deadline_ = sim_.now() + rto();
  if (rto_event_) {
    if (rto_armed_ <= rto_deadline_) return;  // fires early, then chases
    sim_.cancel(rto_event_);  // deadline moved earlier: must reschedule
  }
  arm_rto_at(rto_deadline_);
}

void Flow::arm_rto_at(sim::Time t) {
  rto_armed_ = t;
  rto_event_ = sim_.schedule_at(t, [this] {
    rto_event_ = sim::EventId{};
    if (rto_deadline_ == 0.0) return;  // disarmed since it was scheduled
    if (sim_.now() < rto_deadline_) {  // deadline moved later: chase it
      arm_rto_at(rto_deadline_);
      return;
    }
    rto_deadline_ = 0.0;
    on_rto();
  });
}

void Flow::on_rto() {
  if (bytes_in_flight() == 0) return;
  cc_->on_loss(sim_.now());
  emit_cwnd();
  retransmit_from_ack();
}

void Flow::emit_cwnd() {
  if (obs_ == nullptr) return;
  obs::CwndUpdate event;
  event.t = sim_.now();
  event.src = src_host_.id();
  event.dst = dst_;
  event.qos = qos_;
  event.cwnd_packets = cc_->cwnd_packets();
  obs_->cwnd(event);
}

void Flow::retransmit_from_ack() {
  next_seq_ = acked_;  // go-back-N
  next_pace_time_ = 0.0;
  try_send();
}

void Flow::handle_ack(const net::Packet& ack) {
  AEQ_DCHECK(ack.flow_id == flow_id_);
  if (ack.ack_seq > acked_) {
    const std::uint64_t advanced = ack.ack_seq - acked_;
    acked_ = ack.ack_seq;
    // GBN can rewind next_seq_ below an ACK raced in flight.
    next_seq_ = std::max(next_seq_, acked_);
    dup_acks_ = 0;
    const sim::Time rtt = sim_.now() - ack.sent_time;
    update_srtt(rtt);
    cc_->on_ack(sim_.now(), rtt,
                static_cast<double>(advanced) /
                    static_cast<double>(config_->mtu_bytes),
                ack.ecn_echo);
    emit_cwnd();
    complete_messages();
    rearm_rto();
    try_send();
  } else if (config_->fast_retransmit && ack.ack_seq == acked_ &&
             bytes_in_flight() > 0) {
    if (++dup_acks_ >= 3) {
      dup_acks_ = 0;
      cc_->on_loss(sim_.now());
      emit_cwnd();
      retransmit_from_ack();
    }
  }
}

void Flow::audit_invariants() const {
  AEQ_CHECK_LE_MSG(acked_, next_seq_, "ACK point beyond send point");
  AEQ_CHECK_LE_MSG(next_seq_, stream_end_, "send point beyond stream end");
  std::uint64_t prev_end = acked_;
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    const PendingMessage& msg = messages_[i];
    // Completed messages are popped eagerly, so every queued message ends
    // strictly past the ACK point, and the queue stays sorted (message_at
    // binary-searches on this).
    AEQ_CHECK_GT_MSG(msg.end_offset, prev_end,
                     "message end_offset not increasing past ACK point");
    AEQ_CHECK_GE_MSG(msg.end_offset, msg.bytes, "message larger than stream");
    prev_end = msg.end_offset;
  }
  if (!messages_.empty()) {
    AEQ_CHECK_EQ_MSG(messages_.back().end_offset, stream_end_,
                     "last queued message does not end at stream end");
  }
  cc_->audit_invariants();
}

void Flow::complete_messages() {
  while (!messages_.empty() && messages_.front().end_offset <= acked_) {
    PendingMessage msg = std::move(messages_.front());
    messages_.pop_front();
    if (msg.on_complete) {
      MessageCompletion done;
      done.rpc_id = msg.rpc_id;
      done.src = src_host_.id();
      done.dst = dst_;
      done.qos = qos_;
      done.bytes = msg.bytes;
      done.issued = msg.issued;
      done.completed = sim_.now();
      msg.on_complete(done);
    }
  }
}

}  // namespace aeq::transport
