// Per-host transport stack over Swift (or any CongestionControl).
//
// Sending side: one Flow per (destination, QoS), created lazily — this
// mirrors the paper's RPC-channel-to-per-QoS-socket mapping (§6.11).
// Receiving side: per-flow reassembly with cumulative ACKs (one ACK per data
// packet, carrying the echoed timestamp for RTT measurement).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/host.h"
#include "sim/assert.h"
#include "sim/simulator.h"
#include "transport/flow.h"
#include "transport/message.h"
#include "util/flat_map.h"

namespace aeq::transport {

// A fully delivered incoming message, surfaced to the RPC layer (two-sided
// request/response processing at servers).
struct DeliveredRpc {
  std::uint64_t rpc_id = 0;
  std::uint64_t app_tag = 0;
  net::HostId src = net::kNoHost;
  net::QoSLevel qos = net::kQoSHigh;
  std::uint64_t bytes = 0;
  sim::Time delivered = 0.0;
};

class HostStack final : public MessageTransport {
 public:
  using CcFactory = std::function<std::unique_ptr<CongestionControl>()>;

  // `num_hosts` fixes the deterministic flow-id scheme
  // (src * num_hosts + dst) * kMaxQoSLevels + qos + 1.
  HostStack(sim::Simulator& simulator, net::Host& host,
            std::size_t num_hosts, const TransportConfig& config,
            CcFactory cc_factory);

  void send_message(const SendRequest& request,
                    CompletionHandler on_complete) override;

  // The flow used for (dst, qos, lane); created on first use. Lane 0
  // carries ordinary messages, lane 1 large ones (see
  // TransportConfig::large_message_lane_threshold).
  Flow& flow_to(net::HostId dst, net::QoSLevel qos, int lane = 0);

  // Optional hook consuming control packets (grants, rate messages) before
  // the default demux; return true when the packet was handled.
  using ControlHandler = std::function<bool(const net::Packet&)>;
  void set_control_handler(ControlHandler handler) {
    control_handler_ = std::move(handler);
  }

  // Optional hook invoked once per fully delivered incoming message
  // (in-order byte stream reached the message's end).
  using RpcDeliveryHandler = std::function<void(const DeliveredRpc&)>;
  void set_rpc_delivery_handler(RpcDeliveryHandler handler) {
    rpc_delivery_handler_ = std::move(handler);
  }

  // Attaches the telemetry recorder to every existing and future flow of
  // this stack (CwndUpdate emission). Null detaches.
  void set_observer(obs::Recorder* recorder) {
    obs_ = recorder;
    // Same pointer stored into every flow; order-insensitive.
    // detlint:allow(unordered-iter)
    flows_.for_each([recorder](std::uint64_t, std::unique_ptr<Flow>& flow) {
      flow->set_observer(recorder);
    });
  }

  // In-order payload bytes delivered to this host (receiver-side goodput).
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t bytes_delivered(net::QoSLevel qos) const {
    return bytes_delivered_per_qos_.at(qos);
  }

  net::Host& host() { return host_; }

  // Visits every sender-side flow (iteration order is unspecified — the
  // audit layer only aggregates or asserts per-flow, never emits events).
  void for_each_flow(const std::function<void(const Flow&)>& fn) const {
    // Callers aggregate or assert per flow, never emit ordered output.
    // detlint:allow(unordered-iter)
    flows_.for_each([&fn](std::uint64_t, const std::unique_ptr<Flow>& flow) {
      fn(*flow);
    });
  }

  // The one TransportConfig instance every flow of this stack aliases.
  // Writable only before the first flow is created: flows keep a pointer to
  // it, so a later mutation would silently change behavior mid-run.
  TransportConfig& mutable_config() {
    AEQ_ASSERT_MSG(flows_.empty(),
                   "TransportConfig is immutable once a flow exists");
    return config_;
  }
  const TransportConfig& config() const { return config_; }

 private:
  struct ReceiverState {
    std::uint64_t next_expected = 0;
    std::map<std::uint64_t, std::uint64_t> out_of_order;  // start -> end
    // Message ends not yet reached by next_expected (delivery detection).
    std::map<std::uint64_t, DeliveredRpc> pending_rpcs;
  };

  static constexpr std::uint64_t kLanes = 2;

  void on_packet(const net::Packet& packet);
  void handle_data(const net::Packet& packet);
  std::uint64_t flow_key(net::HostId dst, net::QoSLevel qos,
                         int lane) const;

  sim::Simulator& sim_;
  net::Host& host_;
  std::size_t num_hosts_;
  TransportConfig config_;
  CcFactory cc_factory_;
  obs::Recorder* obs_ = nullptr;
  ControlHandler control_handler_;
  RpcDeliveryHandler rpc_delivery_handler_;

  util::FlatMap64<std::unique_ptr<Flow>> flows_;
  util::FlatMap64<ReceiverState> receivers_;
  std::uint64_t bytes_delivered_ = 0;
  std::array<std::uint64_t, net::kMaxQoSLevels> bytes_delivered_per_qos_{};
};

}  // namespace aeq::transport
