// Swift congestion control (Kumar et al., SIGCOMM 2020), simplified.
//
// Delay-based AIMD on a target RTT: additive increase while measured delay is
// under target, multiplicative decrease proportional to the overshoot (capped
// by max_mdf, at most once per RTT). Supports fractional windows with pacing,
// which is essential at the incast ratios in the paper's experiments.
//
// Simplifications vs the paper: no topology-based target scaling and no
// flow-count scaling term; the target is a constant per fabric, which is
// adequate for single-switch and two-tier topologies at a fixed hop count.
#pragma once

#include <algorithm>

#include "sim/units.h"
#include "transport/congestion_control.h"

namespace aeq::transport {

struct SwiftConfig {
  sim::Time target_delay = 10 * sim::kUsec;
  double additive_increase = 0.5;  // packets per RTT
  double beta = 0.8;               // scales MD with relative overshoot
  double max_mdf = 0.5;            // largest single multiplicative decrease
  double min_cwnd = 0.01;          // packets (Swift's pacing regime)
  double max_cwnd = 256.0;         // packets
  // Window restored on idle restart (stale congestion state is forgotten,
  // as in Swift's production behaviour for intermittent flows).
  double restart_cwnd = 16.0;
};

class SwiftCC final : public CongestionControl {
 public:
  explicit SwiftCC(const SwiftConfig& config)
      : config_(config), cwnd_(config.max_cwnd) {}

  void on_ack(sim::Time now, sim::Time rtt, double acked_packets,
              bool ecn_echo) override;
  void on_loss(sim::Time now) override;
  void on_idle_restart() override {
    cwnd_ = std::max(cwnd_, config_.restart_cwnd);
  }
  double cwnd_packets() const override { return cwnd_; }

  // Swift window-bounds/pacing sanity: cwnd within [min_cwnd,
  // max(max_cwnd, restart_cwnd)] (idle restart may legitimately place the
  // window at restart_cwnd even when an operator sets it above max_cwnd),
  // and a non-negative RTT estimate — a negative or NaN srtt would corrupt
  // both the pacing gap (rtt/cwnd for cwnd < 1) and the once-per-RTT
  // decrease gate.
  void audit_invariants() const override;

  sim::Time smoothed_rtt() const { return srtt_; }

 private:
  void clamp();
  bool can_decrease(sim::Time now) const {
    return now - last_decrease_ >= srtt_;
  }

  SwiftConfig config_;
  double cwnd_;
  sim::Time srtt_ = 0.0;
  sim::Time last_decrease_ = -1.0;
};

}  // namespace aeq::transport
