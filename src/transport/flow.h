// A reliable, congestion-controlled byte stream between two hosts at a fixed
// QoS level. Messages (RPCs) are queued FIFO onto the stream; a message
// completes when its last byte is cumulatively acknowledged — so RNL includes
// sender-side queueing behind earlier messages, which is exactly the
// "queued for long periods at the sending hosts" effect of §2.2.1.
//
// Loss recovery is go-back-N with duplicate-ACK fast retransmit and an RTO,
// which is sufficient because per-flow packets stay in order through the
// per-class FIFO queues of this simulator.
#pragma once

#include <cstdint>
#include <memory>

#include "net/host.h"
#include "net/packet.h"
#include "obs/recorder.h"
#include "sim/simulator.h"
#include "transport/congestion_control.h"
#include "transport/message.h"
#include "util/ring_buffer.h"

namespace aeq::transport {

struct TransportConfig {
  std::uint32_t mtu_bytes = 4096;
  std::uint32_t ack_bytes = 64;
  sim::Time initial_rtt = 10 * sim::kUsec;  // seeds pacing/RTO before samples
  sim::Time min_rto = 200 * sim::kUsec;
  double rto_srtt_multiplier = 4.0;
  bool fast_retransmit = true;
  // A flow idle longer than this gets a congestion-window restart before
  // its next message (stale state no longer reflects the path).
  sim::Time idle_restart_after = 500 * sim::kUsec;
  // Messages larger than this use a separate flow ("lane") per (dst, QoS),
  // emulating the production practice of mapping an RPC channel onto
  // multiple per-QoS sockets (paper §6.11) so bulk transfers do not
  // head-of-line-block small RPCs. 0 (default) keeps a single lane: with
  // heavy-tailed sizes the per-(dst,QoS) AIMD otherwise settles where small
  // RPCs meet and large ones chronically miss, hurting byte-weighted
  // compliance (see EXPERIMENTS.md, Fig 22 notes).
  std::uint64_t large_message_lane_threshold = 0;
};

class Flow {
 public:
  // `config` is shared, not copied: it must outlive the flow (HostStack
  // owns the one instance all of its flows point at) and stay immutable
  // once any flow exists — HostStack::mutable_config() enforces that.
  Flow(sim::Simulator& simulator, net::Host& src_host, net::HostId dst,
       net::QoSLevel qos, std::uint64_t flow_id, const TransportConfig& config,
       std::unique_ptr<CongestionControl> cc);

  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  // Appends a message to the stream. `issued` is stamped now. `app_tag`
  // rides every data packet of the message and is surfaced to the
  // receiver's RPC-delivery hook (request/response correlation).
  void send_message(std::uint64_t bytes, std::uint64_t rpc_id,
                    CompletionHandler on_complete, std::uint64_t app_tag = 0);

  // Cumulative-ACK input from the receiving host (demuxed by HostStack).
  void handle_ack(const net::Packet& ack);

  std::uint64_t flow_id() const { return flow_id_; }
  net::QoSLevel qos() const { return qos_; }
  net::HostId dst() const { return dst_; }
  std::uint64_t bytes_in_flight() const { return next_seq_ - acked_; }
  std::uint64_t backlog_bytes() const { return stream_end_ - next_seq_; }
  std::uint64_t queued_messages() const { return messages_.size(); }
  const CongestionControl& cc() const { return *cc_; }

  // Attaches the telemetry recorder: every congestion-window move (ACK
  // advance, loss, idle restart) emits a CwndUpdate. Null detaches.
  void set_observer(obs::Recorder* recorder) { obs_ = recorder; }

  // Audit hook (src/audit/checks.h): asserts the cumulative-ACK stream
  // ordering acked <= next_seq <= stream_end (go-back-N can rewind next_seq,
  // but never below the ACK point), that queued messages partition the
  // unacknowledged stream suffix in strictly increasing end_offset order,
  // and delegates to the congestion controller's own invariants. Aborts via
  // AEQ_CHECK_* on violation.
  void audit_invariants() const;

 private:
  struct PendingMessage {
    std::uint64_t end_offset;  // stream offset one past the last byte
    std::uint64_t bytes;
    std::uint64_t rpc_id;
    std::uint64_t app_tag;
    sim::Time issued;
    CompletionHandler on_complete;
  };

  // The queued message containing stream offset `offset`.
  const PendingMessage& message_at(std::uint64_t offset) const;

  void try_send();
  void send_segment(std::uint64_t offset, std::uint32_t payload);
  void complete_messages();
  void update_srtt(sim::Time sample);
  sim::Time rto() const;
  void rearm_rto();
  void arm_rto_at(sim::Time t);
  void on_rto();
  void retransmit_from_ack();
  sim::Time pace_gap() const;
  void emit_cwnd();

  sim::Simulator& sim_;
  net::Host& src_host_;
  net::HostId dst_;
  net::QoSLevel qos_;
  std::uint64_t flow_id_;
  const TransportConfig* config_;
  std::unique_ptr<CongestionControl> cc_;
  obs::Recorder* obs_ = nullptr;

  std::uint64_t stream_end_ = 0;  // total bytes enqueued
  std::uint64_t next_seq_ = 0;    // next byte to (re)transmit
  std::uint64_t acked_ = 0;       // cumulative ack point
  util::RingBuffer<PendingMessage> messages_;

  sim::Time srtt_ = 0.0;
  sim::Time last_activity_ = 0.0;
  int dup_acks_ = 0;
  sim::EventId rto_event_;
  // Lazy RTO state: the deadline ACKs keep pushing forward (0 = disarmed)
  // and the time the pending event actually fires. The event is only ever
  // cancelled when the deadline moves *earlier* (an srtt collapse), so the
  // common ACK path leaves no tombstones in the scheduler.
  sim::Time rto_deadline_ = 0.0;
  sim::Time rto_armed_ = 0.0;
  sim::EventId pace_event_;
  sim::Time next_pace_time_ = 0.0;
};

}  // namespace aeq::transport
