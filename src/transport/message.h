// Message-level transport API shared by the Swift stack and the baseline
// protocol stacks (pFabric/QJump/D3/PDQ/Homa), so the RPC layer can run over
// any of them.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/units.h"
#include "util/inline_function.h"

namespace aeq::transport {

struct MessageCompletion {
  std::uint64_t rpc_id = 0;
  net::HostId src = net::kNoHost;
  net::HostId dst = net::kNoHost;
  net::QoSLevel qos = net::kQoSHigh;
  std::uint64_t bytes = 0;
  sim::Time issued = 0.0;     // handed to the transport (t0 in Appendix A)
  sim::Time completed = 0.0;  // last byte acknowledged (t1)
  bool terminated = false;    // D3/PDQ quench: message was killed, not done

  // RPC Network Latency as defined in §2.2.1.
  sim::Time rnl() const { return completed - issued; }
};

// Inline-only (no heap fallback): one of these is queued per in-flight
// message, so a std::function here would mean an allocation per RPC. The
// 96-byte budget fits the largest capture in the tree (RpcStack's
// [this, record] completion closure at ~72 bytes) with headroom.
using CompletionHandler =
    util::InlineFunction<void(const MessageCompletion&), 96>;

struct SendRequest {
  net::HostId dst = net::kNoHost;
  net::QoSLevel qos = net::kQoSHigh;
  std::uint64_t bytes = 0;
  std::uint64_t rpc_id = 0;
  sim::Time deadline = 0.0;   // absolute; 0 = none (used by D3/PDQ)
  std::uint64_t app_tag = 0;  // opaque, delivered with the message
};

// Anything that can carry a message to a destination host and report
// completion. One instance per sending host.
class MessageTransport {
 public:
  virtual ~MessageTransport() = default;
  virtual void send_message(const SendRequest& request,
                            CompletionHandler on_complete) = 0;
};

}  // namespace aeq::transport
