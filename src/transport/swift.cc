#include "transport/swift.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::transport {

void SwiftCC::clamp() {
  cwnd_ = std::clamp(cwnd_, config_.min_cwnd, config_.max_cwnd);
}

void SwiftCC::on_ack(sim::Time now, sim::Time rtt, double acked_packets,
                     bool /*ecn_echo*/) {
  AEQ_DCHECK(rtt >= 0.0 && acked_packets >= 0.0);
  srtt_ = srtt_ == 0.0 ? rtt : 0.875 * srtt_ + 0.125 * rtt;
  if (rtt < config_.target_delay) {
    if (cwnd_ >= 1.0) {
      cwnd_ += config_.additive_increase * acked_packets / cwnd_;
    } else {
      cwnd_ += config_.additive_increase * acked_packets;
    }
  } else if (can_decrease(now)) {
    const double overshoot = (rtt - config_.target_delay) / rtt;
    const double factor =
        std::max(1.0 - config_.beta * overshoot, 1.0 - config_.max_mdf);
    cwnd_ *= factor;
    last_decrease_ = now;
  }
  clamp();
}

void SwiftCC::on_loss(sim::Time now) {
  if (!can_decrease(now)) return;
  cwnd_ *= 1.0 - config_.max_mdf;
  last_decrease_ = now;
  clamp();
}

void SwiftCC::audit_invariants() const {
  AEQ_CHECK_GE_MSG(cwnd_, config_.min_cwnd, "Swift cwnd under min_cwnd");
  AEQ_CHECK_LE_MSG(cwnd_, std::max(config_.max_cwnd, config_.restart_cwnd),
                   "Swift cwnd above max_cwnd");
  AEQ_CHECK_GE_MSG(srtt_, 0.0, "Swift srtt negative");
}

}  // namespace aeq::transport
