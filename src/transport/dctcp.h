// DCTCP congestion control (Alizadeh et al., SIGCOMM 2010), simplified.
//
// Switch queues mark packets past a threshold (QueueConfig::
// ecn_threshold_bytes); receivers echo the mark per ACK; the sender keeps an
// EWMA `alpha` of the marked fraction per window and cuts the window by
// alpha/2 once per window, growing one packet per RTT otherwise.
//
// Included as an alternative substrate for Aequitas (the paper's position:
// Aequitas "relies on a well-functioning congestion control" but is not
// married to Swift) and for the abl_cc_choice ablation bench.
#pragma once

#include "sim/units.h"
#include "transport/congestion_control.h"

namespace aeq::transport {

struct DctcpConfig {
  double g = 0.0625;        // EWMA gain for alpha
  double min_cwnd = 1.0;    // packets
  double max_cwnd = 256.0;  // packets
  double initial_cwnd = 16.0;
  double restart_cwnd = 16.0;
};

class DctcpCC final : public CongestionControl {
 public:
  explicit DctcpCC(const DctcpConfig& config)
      : config_(config), cwnd_(config.initial_cwnd) {}

  void on_ack(sim::Time now, sim::Time rtt, double acked_packets,
              bool ecn_echo) override;
  void on_loss(sim::Time now) override;
  void on_idle_restart() override;
  double cwnd_packets() const override { return cwnd_; }

  // DCTCP estimator sanity: alpha (the EWMA of the marked fraction) must
  // stay in [0, 1], the per-window mark count can never exceed the ACK
  // count, and cwnd stays within [min_cwnd, max(max_cwnd, initial_cwnd,
  // restart_cwnd)] (restart/initial may legitimately sit above max_cwnd
  // under operator overrides).
  void audit_invariants() const override;

  double alpha() const { return alpha_; }

 private:
  void clamp();
  void end_window(sim::Time now);

  DctcpConfig config_;
  double cwnd_;
  double alpha_ = 0.0;
  // Per-window mark bookkeeping (a window ~= cwnd worth of ACKed packets).
  double window_acked_ = 0.0;
  double window_marked_ = 0.0;
  sim::Time last_loss_cut_ = -1.0;
  sim::Time srtt_ = 0.0;
};

}  // namespace aeq::transport
