#include "transport/dctcp.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::transport {

void DctcpCC::clamp() {
  cwnd_ = std::clamp(cwnd_, config_.min_cwnd, config_.max_cwnd);
}

void DctcpCC::end_window(sim::Time /*now*/) {
  const double fraction =
      window_acked_ > 0.0 ? window_marked_ / window_acked_ : 0.0;
  alpha_ = (1.0 - config_.g) * alpha_ + config_.g * fraction;
  if (window_marked_ > 0.0) {
    cwnd_ *= 1.0 - alpha_ / 2.0;  // the DCTCP cut
  }
  window_acked_ = 0.0;
  window_marked_ = 0.0;
}

void DctcpCC::on_ack(sim::Time now, sim::Time rtt, double acked_packets,
                     bool ecn_echo) {
  AEQ_DCHECK(rtt >= 0.0 && acked_packets >= 0.0);
  srtt_ = srtt_ == 0.0 ? rtt : 0.875 * srtt_ + 0.125 * rtt;
  window_acked_ += acked_packets;
  if (ecn_echo) window_marked_ += acked_packets;
  // Standard additive increase: one packet per RTT.
  cwnd_ += acked_packets / std::max(cwnd_, 1.0);
  clamp();  // before the window check so the boundary compares clamped cwnd
  if (window_acked_ >= cwnd_) end_window(now);
  clamp();
}

void DctcpCC::on_loss(sim::Time now) {
  // At most one halving per RTT, like the Swift guard.
  if (srtt_ > 0.0 && now - last_loss_cut_ < srtt_) return;
  last_loss_cut_ = now;
  cwnd_ *= 0.5;
  clamp();
}

void DctcpCC::on_idle_restart() {
  cwnd_ = std::max(cwnd_, config_.restart_cwnd);
  window_acked_ = 0.0;
  window_marked_ = 0.0;
}

void DctcpCC::audit_invariants() const {
  AEQ_CHECK_GE_MSG(alpha_, 0.0, "DCTCP alpha negative");
  AEQ_CHECK_LE_MSG(alpha_, 1.0, "DCTCP alpha above 1");
  AEQ_CHECK_LE_MSG(window_marked_, window_acked_,
                   "more marked than acked packets in window");
  AEQ_CHECK_GE_MSG(cwnd_, config_.min_cwnd, "DCTCP cwnd under min_cwnd");
  AEQ_CHECK_LE_MSG(
      cwnd_,
      std::max({config_.max_cwnd, config_.initial_cwnd, config_.restart_cwnd}),
      "DCTCP cwnd above max_cwnd");
  AEQ_CHECK_GE_MSG(srtt_, 0.0, "DCTCP srtt negative");
}

}  // namespace aeq::transport
