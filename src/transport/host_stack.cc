#include "transport/host_stack.h"

#include <utility>

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::transport {

HostStack::HostStack(sim::Simulator& simulator, net::Host& host,
                     std::size_t num_hosts, const TransportConfig& config,
                     CcFactory cc_factory)
    : sim_(simulator),
      host_(host),
      num_hosts_(num_hosts),
      config_(config),
      cc_factory_(std::move(cc_factory)) {
  AEQ_ASSERT(cc_factory_ != nullptr);
  host_.set_delivery_handler(
      [this](const net::Packet& packet) { on_packet(packet); });
}

std::uint64_t HostStack::flow_key(net::HostId dst, net::QoSLevel qos,
                                  int lane) const {
  AEQ_CHECK_GE(dst, 0);
  AEQ_CHECK_LT(static_cast<std::size_t>(dst), num_hosts_);
  AEQ_CHECK_LT(qos, net::kMaxQoSLevels);
  AEQ_CHECK_GE(lane, 0);
  AEQ_CHECK_LT(static_cast<std::uint64_t>(lane), kLanes);
  return ((static_cast<std::uint64_t>(host_.id()) * num_hosts_ +
           static_cast<std::uint64_t>(dst)) *
              net::kMaxQoSLevels +
          qos) *
             kLanes +
         static_cast<std::uint64_t>(lane) + 1;
}

Flow& HostStack::flow_to(net::HostId dst, net::QoSLevel qos, int lane) {
  const std::uint64_t key = flow_key(dst, qos, lane);
  if (std::unique_ptr<Flow>* found = flows_.find(key)) return **found;
  std::unique_ptr<Flow>& created = flows_[key];
  created =
      std::make_unique<Flow>(sim_, host_, dst, qos, key, config_,
                             cc_factory_());
  if (obs_ != nullptr) created->set_observer(obs_);
  return *created;
}

void HostStack::send_message(const SendRequest& request,
                             CompletionHandler on_complete) {
  const obs::prof::ProfRegion prof(obs::prof::Region::kTransportTx);
  const int lane = config_.large_message_lane_threshold != 0 &&
                           request.bytes >
                               config_.large_message_lane_threshold
                       ? 1
                       : 0;
  flow_to(request.dst, request.qos, lane)
      .send_message(request.bytes, request.rpc_id, std::move(on_complete),
                    request.app_tag);
}

void HostStack::on_packet(const net::Packet& packet) {
  const obs::prof::ProfRegion prof(obs::prof::Region::kTransportRx);
  if (control_handler_ && control_handler_(packet)) return;
  switch (packet.type) {
    case net::PacketType::kData:
      handle_data(packet);
      break;
    case net::PacketType::kAck: {
      if (std::unique_ptr<Flow>* flow = flows_.find(packet.flow_id)) {
        (*flow)->handle_ack(packet);
      }
      break;
    }
    default:
      // Control packets for protocol stacks that installed no handler.
      break;
  }
}

void HostStack::handle_data(const net::Packet& packet) {
  ReceiverState& r = receivers_[packet.flow_id];
  const std::uint64_t begin = packet.seq;
  const std::uint64_t end = packet.seq + packet.size_bytes;
  const std::uint64_t before = r.next_expected;

  if (rpc_delivery_handler_ && packet.cold.grant_offset > r.next_expected) {
    DeliveredRpc info;
    info.rpc_id = packet.rpc_id;
    info.app_tag = packet.cold.app_tag;
    info.src = packet.src;
    info.qos = packet.qos;
    info.bytes = packet.cold.msg_bytes;
    r.pending_rpcs.emplace(packet.cold.grant_offset, info);
  }

  if (end > r.next_expected) {
    if (begin <= r.next_expected) {
      r.next_expected = end;
      // Absorb buffered segments now contiguous.
      auto it = r.out_of_order.begin();
      while (it != r.out_of_order.end() && it->first <= r.next_expected) {
        r.next_expected = std::max(r.next_expected, it->second);
        it = r.out_of_order.erase(it);
      }
    } else {
      auto [it, inserted] = r.out_of_order.emplace(begin, end);
      if (!inserted) it->second = std::max(it->second, end);
    }
  }

  const std::uint64_t advanced = r.next_expected - before;
  bytes_delivered_ += advanced;
  bytes_delivered_per_qos_[packet.qos] += advanced;

  if (rpc_delivery_handler_) {
    auto it = r.pending_rpcs.begin();
    while (it != r.pending_rpcs.end() && it->first <= r.next_expected) {
      DeliveredRpc info = it->second;
      info.delivered = sim_.now();
      it = r.pending_rpcs.erase(it);
      rpc_delivery_handler_(info);
    }
  }

  net::Packet ack;
  ack.src = host_.id();
  ack.dst = packet.src;
  ack.size_bytes = config_.ack_bytes;
  ack.qos = packet.qos;
  ack.type = net::PacketType::kAck;
  ack.flow_id = packet.flow_id;
  ack.ack_seq = r.next_expected;
  ack.sent_time = packet.sent_time;  // echo for RTT
  ack.ecn_echo = packet.ecn_ce;
  host_.send(ack);
}

}  // namespace aeq::transport
