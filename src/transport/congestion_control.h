// Congestion-control interface used by transport flows.
//
// The window is expressed in packets (doubles: Swift allows cwnd < 1, in
// which case the flow paces packets with an inter-send gap of rtt/cwnd).
#pragma once

#include <memory>

#include "sim/units.h"

namespace aeq::transport {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  // Called on every cumulative-ACK advance with the measured RTT, the
  // number of packets newly acknowledged (fractional for partial MTUs), and
  // whether the ACK carried an ECN echo.
  virtual void on_ack(sim::Time now, sim::Time rtt, double acked_packets,
                      bool ecn_echo) = 0;

  // Called on loss detection (fast retransmit or RTO).
  virtual void on_loss(sim::Time now) = 0;

  // Called when the flow resumes after an idle period: stale congestion
  // state no longer reflects the path (Swift-style window restart).
  virtual void on_idle_restart() {}

  virtual double cwnd_packets() const = 0;

  // Audit hook (src/audit/checks.h): asserts the implementation's window
  // bounds and estimator sanity via AEQ_CHECK_*; default is check-free for
  // implementations without internal invariants.
  virtual void audit_invariants() const {}
};

// Fixed window: no reaction to congestion. Used for validation experiments
// where the paper disables CC (§6.1) and in unit tests.
class FixedWindowCC final : public CongestionControl {
 public:
  explicit FixedWindowCC(double cwnd_packets) : cwnd_(cwnd_packets) {}
  void on_ack(sim::Time, sim::Time, double, bool) override {}
  void on_loss(sim::Time) override {}
  double cwnd_packets() const override { return cwnd_; }

 private:
  double cwnd_;
};

}  // namespace aeq::transport
