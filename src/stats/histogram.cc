#include "stats/histogram.h"

namespace aeq::stats {

void Histogram::add(double x, std::uint64_t weight) {
  total_ += weight;
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                          static_cast<double>(counts_.size()));
  counts_[i < counts_.size() ? i : counts_.size() - 1] += weight;
}

void Histogram::merge(const Histogram& other) {
  AEQ_ASSERT_MSG(same_binning(other),
                 "can only merge histograms with identical binning");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::cdf_at(std::size_t i) const {
  AEQ_CHECK_LT(i, counts_.size());
  if (total_ == 0) return 0.0;
  std::uint64_t below = underflow_;
  for (std::size_t j = 0; j <= i; ++j) below += counts_[j];
  return static_cast<double>(below) / static_cast<double>(total_);
}

}  // namespace aeq::stats
