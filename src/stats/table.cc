#include "stats/table.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "sim/assert.h"

namespace aeq::stats {

void Table::add_row(Row row) {
  AEQ_ASSERT_MSG(row.size() <= columns_.size() || columns_.empty(),
                 "row has more cells than the table has columns");
  rows_.push_back(std::move(row));
}

void Table::add_rows(const std::vector<Row>& rows) {
  for (const Row& row : rows) add_row(row);
}

std::string Table::format_cell(const Cell& cell, std::size_t column) const {
  switch (cell.kind) {
    case Cell::Kind::kEmpty:
      return "";
    case Cell::Kind::kText:
      return cell.text;
    case Cell::Kind::kNumber: {
      const int precision = cell.precision >= 0
                                ? cell.precision
                                : (column < columns_.size()
                                       ? columns_[column].precision
                                       : 1);
      char buffer[64];
      std::snprintf(buffer, sizeof(buffer),
                    cell.show_sign ? "%+.*f" : "%.*f", precision, cell.value);
      return buffer;
    }
  }
  return "";
}

void Table::render(std::ostream& out) const {
  auto pad = [&out](const std::string& text, int width, bool last) {
    out << text;
    if (last) return;
    for (int i = static_cast<int>(text.size()); i < width; ++i) out << ' ';
    out << ' ';
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    pad(columns_[c].name, columns_[c].width, c + 1 == columns_.size());
  }
  out << '\n';
  for (const Row& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const int width = c < columns_.size() ? columns_[c].width : 12;
      pad(format_cell(row[c], c), width, c + 1 == row.size());
    }
    out << '\n';
  }
}

std::string Table::to_string() const {
  std::ostringstream out;
  render(out);
  return out.str();
}

}  // namespace aeq::stats
