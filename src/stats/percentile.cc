#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

namespace aeq::stats {

void PercentileTracker::add(double x) {
  summary_.add(x);
  if (capacity_ == 0 || samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Vitter's Algorithm R: replace a uniformly random existing slot with
  // probability capacity/count so the reservoir is a uniform sample.
  const std::uint64_t n = summary_.count();
  const std::uint64_t slot = rng_.index(n);
  if (slot < capacity_) {
    samples_[static_cast<std::size_t>(slot)] = x;
    sorted_ = false;
  }
}

void PercentileTracker::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileTracker::percentile(double pct) const {
  if (samples_.empty()) return 0.0;
  AEQ_ASSERT(pct >= 0.0 && pct <= 100.0);
  ensure_sorted();
  if (pct <= 0.0) return samples_.front();
  // Nearest-rank: the smallest value with at least pct% of mass at or below.
  const auto n = samples_.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

void PercentileTracker::clear() {
  samples_.clear();
  summary_ = Summary{};
  sorted_ = true;
}

}  // namespace aeq::stats
