#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

namespace aeq::stats {

void PercentileTracker::add(double x) {
  summary_.add(x);
  if (capacity_ == 0 || samples_.size() < capacity_) {
    samples_.push_back(x);
    sorted_ = false;
    return;
  }
  // Vitter's Algorithm R: replace a uniformly random existing slot with
  // probability capacity/count so the reservoir is a uniform sample.
  const std::uint64_t n = summary_.count();
  const std::uint64_t slot = rng_.index(n);
  if (slot < capacity_) {
    samples_[static_cast<std::size_t>(slot)] = x;
    sorted_ = false;
  }
}

void PercentileTracker::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double PercentileTracker::percentile(double pct) const {
  if (samples_.empty()) return 0.0;
  AEQ_CHECK_GE(pct, 0.0);
  AEQ_CHECK_LE(pct, 100.0);
  ensure_sorted();
  if (pct <= 0.0) return samples_.front();
  // Nearest-rank: the smallest value with at least pct% of mass at or below.
  const auto n = samples_.size();
  auto rank = static_cast<std::size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return samples_[rank - 1];
}

void PercentileTracker::merge(const PercentileTracker& other) {
  if (other.summary_.count() == 0) return;
  const double n_self = static_cast<double>(summary_.count());
  const double n_other = static_cast<double>(other.summary_.count());
  summary_.merge(other.summary_);
  if (capacity_ == 0 || samples_.size() + other.samples_.size() <= capacity_) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
    return;
  }
  // Weighted subsample: each stored value stands for count/|samples| of its
  // side's observations, so draw `capacity_` survivors without replacement,
  // picking a side in proportion to its remaining represented mass.
  std::vector<double> mine = std::move(samples_);
  std::vector<double> theirs = other.samples_;
  const double w_self = n_self / static_cast<double>(mine.size());
  const double w_other = n_other / static_cast<double>(theirs.size());
  samples_.clear();
  samples_.reserve(capacity_);
  auto take = [this](std::vector<double>& pool) {
    const auto slot = static_cast<std::size_t>(rng_.index(pool.size()));
    samples_.push_back(pool[slot]);
    pool[slot] = pool.back();
    pool.pop_back();
  };
  while (samples_.size() < capacity_ && (!mine.empty() || !theirs.empty())) {
    const double mass_self = w_self * static_cast<double>(mine.size());
    const double mass_other = w_other * static_cast<double>(theirs.size());
    if (theirs.empty() ||
        (!mine.empty() &&
         rng_.bernoulli(mass_self / (mass_self + mass_other)))) {
      take(mine);
    } else {
      take(theirs);
    }
  }
  sorted_ = false;
}

void PercentileTracker::clear() {
  samples_.clear();
  summary_ = Summary{};
  sorted_ = true;
}

}  // namespace aeq::stats
