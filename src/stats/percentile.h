// Exact percentile tracking over collected samples.
//
// Tail percentiles (p99.9) are the paper's headline metric, so we keep exact
// samples rather than sketches. An optional reservoir cap bounds memory for
// very long runs while keeping the tail estimate unbiased.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.h"
#include "stats/summary.h"

namespace aeq::stats {

class PercentileTracker {
 public:
  // Unbounded storage.
  PercentileTracker() = default;

  // Reservoir-sampled storage with at most `capacity` samples, using `seed`
  // for the replacement draws.
  PercentileTracker(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void add(double x);

  // Percentile in [0, 100]; e.g. 99.9 for p99.9. Returns 0 when empty.
  // Uses the nearest-rank method on a sorted copy (lazy, cached).
  double percentile(double pct) const;

  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }

  std::uint64_t count() const { return summary_.count(); }
  double mean() const { return summary_.mean(); }
  double max() const { return summary_.max(); }
  double min() const { return summary_.min(); }
  const Summary& summary() const { return summary_; }

  void clear();

  // Pre-sizes sample storage so a bounded run adds samples without touching
  // the allocator (the steady-state allocation regression test depends on
  // this). A no-op beyond the reservoir cap, which already bounds storage.
  void reserve(std::size_t n) {
    samples_.reserve(capacity_ > 0 ? std::min(capacity_, n) : n);
  }

  // Folds another tracker into this one (for fan-out/fan-in aggregation of
  // multi-trial sweep points). With unbounded storage on both sides the
  // merge is exact: merge-of-parts equals feeding every sample to one
  // tracker (up to sample order, which percentiles ignore). When either
  // side is reservoir-capped the merged reservoir is a weighted
  // subsample — each side's samples survive in proportion to the sample
  // mass they represent — and the summary statistics stay exact.
  void merge(const PercentileTracker& other);

 private:
  void ensure_sorted() const;

  std::size_t capacity_ = 0;  // 0 => unbounded
  sim::Rng rng_{0x5eed};
  Summary summary_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace aeq::stats
