// Fixed-bin linear histogram plus a CDF helper, used for distribution plots
// (e.g. outstanding-RPC CDFs in Figure 13 and the size CDFs of Figure 1).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/assert.h"

namespace aeq::stats {

class Histogram {
 public:
  // Bins span [lo, hi) divided into `bins` equal cells, with underflow and
  // overflow counted separately.
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {
    AEQ_CHECK_GT(hi, lo);
    AEQ_CHECK_GT(bins, 0u);
  }

  void add(double x, std::uint64_t weight = 1);

  std::uint64_t total() const { return total_; }
  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lower(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }

  // Fraction of mass at or below the upper edge of bin i (underflow included).
  double cdf_at(std::size_t i) const;

  // Folds another histogram with identical binning into this one. Adding
  // samples to shards and merging is exactly equivalent to adding them all
  // to one histogram, so multi-trial sweep points can aggregate in
  // parallel. Underflow/overflow mass is preserved.
  void merge(const Histogram& other);

  bool same_binning(const Histogram& other) const {
    return lo_ == other.lo_ && hi_ == other.hi_ &&
           counts_.size() == other.counts_.size();
  }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace aeq::stats
