// (time, value) series recording for convergence plots (Figures 17/18/28/29).
#pragma once

#include <vector>

#include "sim/units.h"

namespace aeq::stats {

struct TimePoint {
  sim::Time t;
  double value;
};

class TimeSeries {
 public:
  void record(sim::Time t, double value) { points_.push_back({t, value}); }

  const std::vector<TimePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  // Average of values recorded in [t0, t1).
  double average_in(sim::Time t0, sim::Time t1) const;

  // Value of the last point at or before t (0 if none).
  double value_at(sim::Time t) const;

  // Resamples to `n` evenly spaced points over the recorded span using the
  // last-value-before semantics; useful for compact printing.
  std::vector<TimePoint> resample(std::size_t n) const;

 private:
  std::vector<TimePoint> points_;
};

// A windowed throughput meter: count bytes, read rate per window.
class RateMeter {
 public:
  explicit RateMeter(sim::Time window) : window_(window) {}

  void add(sim::Time now, double bytes);

  // Completed-window series of (window start, bytes/sec).
  const TimeSeries& series() const { return series_; }

  // Flush the current partial window into the series.
  void finish(sim::Time now);

 private:
  sim::Time window_;
  sim::Time window_start_ = 0.0;
  double accumulated_ = 0.0;
  TimeSeries series_;
};

}  // namespace aeq::stats
