// Streaming summary statistics (count/mean/variance/min/max) via Welford's
// algorithm. O(1) memory; suitable for hot paths.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace aeq::stats {

class Summary {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  void merge(const Summary& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    mean_ += delta * n2 / (n1 + n2);
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace aeq::stats
