// Sliding-window percentile tracking: percentiles over only the samples
// recorded in the last `window` of simulated time. This is what a
// production SLO monitor actually computes (the paper's alerts fire on
// windowed tail latency, not all-of-history percentiles).
#pragma once

#include <algorithm>
#include <deque>

#include "sim/assert.h"
#include "sim/units.h"

namespace aeq::stats {

class SlidingWindowPercentile {
 public:
  explicit SlidingWindowPercentile(sim::Time window) : window_(window) {
    AEQ_CHECK_GT(window, 0.0);
  }

  void add(sim::Time now, double value) {
    evict(now);
    samples_.push_back({now, value});
  }

  // Percentile over samples within (now - window, now]; 0 when empty.
  double percentile(sim::Time now, double pct) {
    AEQ_CHECK_GE(pct, 0.0);
    AEQ_CHECK_LE(pct, 100.0);
    evict(now);
    if (samples_.empty()) return 0.0;
    std::vector<double> values;
    values.reserve(samples_.size());
    for (const auto& s : samples_) values.push_back(s.value);
    auto rank = static_cast<std::size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(values.size())));
    if (rank == 0) rank = 1;
    std::nth_element(values.begin(), values.begin() + (rank - 1),
                     values.end());
    return values[rank - 1];
  }

  std::size_t count(sim::Time now) {
    evict(now);
    return samples_.size();
  }

 private:
  struct Sample {
    sim::Time t;
    double value;
  };

  void evict(sim::Time now) {
    while (!samples_.empty() && samples_.front().t <= now - window_) {
      samples_.pop_front();
    }
  }

  sim::Time window_;
  std::deque<Sample> samples_;
};

}  // namespace aeq::stats
