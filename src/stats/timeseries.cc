#include "stats/timeseries.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::stats {

double TimeSeries::average_in(sim::Time t0, sim::Time t1) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& p : points_) {
    if (p.t >= t0 && p.t < t1) {
      sum += p.value;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double TimeSeries::value_at(sim::Time t) const {
  double v = 0.0;
  for (const auto& p : points_) {
    if (p.t > t) break;
    v = p.value;
  }
  return v;
}

std::vector<TimePoint> TimeSeries::resample(std::size_t n) const {
  std::vector<TimePoint> out;
  if (points_.empty() || n == 0) return out;
  const sim::Time t0 = points_.front().t;
  const sim::Time t1 = points_.back().t;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const sim::Time t =
        n == 1 ? t1
               : t0 + (t1 - t0) * static_cast<double>(i) /
                          static_cast<double>(n - 1);
    out.push_back({t, value_at(t)});
  }
  return out;
}

void RateMeter::add(sim::Time now, double bytes) {
  AEQ_DCHECK(now >= window_start_);
  while (now >= window_start_ + window_) {
    series_.record(window_start_, accumulated_ / window_);
    accumulated_ = 0.0;
    window_start_ += window_;
  }
  accumulated_ += bytes;
}

void RateMeter::finish(sim::Time now) {
  if (now > window_start_) {
    series_.record(window_start_, accumulated_ / (now - window_start_));
    accumulated_ = 0.0;
    window_start_ = now;
  }
}

}  // namespace aeq::stats
