// Structured result tables for sweeps and benches.
//
// Replaces the printf-in-loop reporting pattern: worker threads fill rows
// (plain data, one per sweep point), and the main thread renders them once
// the sweep completes — aligned text for humans via render(), CSV/JSON via
// stats/export for machine-readable bench trajectories. Keeping rows as
// data (not formatted strings interleaved with computation) is what makes
// parallel sweeps byte-identical to serial ones: rendering happens in
// submission order regardless of completion order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace aeq::stats {

// One table cell: free text or a number formatted with the owning column's
// precision (overridable per cell, e.g. one integer column cell among
// one-decimal defaults).
struct Cell {
  enum class Kind { kEmpty, kText, kNumber };

  Cell() = default;
  Cell(const char* t) : kind(Kind::kText), text(t) {}           // NOLINT
  Cell(std::string t) : kind(Kind::kText), text(std::move(t)) {}  // NOLINT
  Cell(double v) : kind(Kind::kNumber), value(v) {}             // NOLINT
  Cell(double v, int prec) : kind(Kind::kNumber), value(v), precision(prec) {}

  // "+4.2" / "-11.0": explicit sign, e.g. for change-percentage columns.
  static Cell signed_number(double v, int prec) {
    Cell cell(v, prec);
    cell.show_sign = true;
    return cell;
  }

  Kind kind = Kind::kEmpty;
  double value = 0.0;
  int precision = -1;  // -1 => use the column default
  bool show_sign = false;
  std::string text;
};

struct Column {
  std::string name;
  int width = 12;     // minimum rendered width, left-aligned (as %-12s)
  int precision = 1;  // default decimals for numeric cells
};

using Row = std::vector<Cell>;

class Table {
 public:
  Table() = default;
  explicit Table(std::vector<Column> columns) : columns_(std::move(columns)) {}

  void add_row(Row row);
  // Appends every row of `rows` (e.g. one sweep point contributing a block).
  void add_rows(const std::vector<Row>& rows);

  const std::vector<Column>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::size_t num_rows() const { return rows_.size(); }

  // Formats one cell (no padding) using the column's precision default.
  std::string format_cell(const Cell& cell, std::size_t column) const;

  // Aligned header + rows; every line is newline-terminated.
  void render(std::ostream& out) const;
  std::string to_string() const;

 private:
  std::vector<Column> columns_;
  std::vector<Row> rows_;
};

}  // namespace aeq::stats
