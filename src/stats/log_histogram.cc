#include "stats/log_histogram.h"

#include <algorithm>

namespace aeq::stats {

LogHistogram::LogHistogram(double min_value, double max_value,
                           double precision)
    : min_value_(min_value), max_value_(max_value) {
  AEQ_CHECK_GT(min_value, 0.0);
  AEQ_CHECK_GT(max_value, min_value);
  AEQ_CHECK_GT(precision, 0.0);
  AEQ_CHECK_LT(precision, 1.0);
  log_base_ = std::log1p(2.0 * precision);
  const auto buckets = static_cast<std::size_t>(
      std::ceil(std::log(max_value / min_value) / log_base_)) + 1;
  buckets_.assign(buckets, 0);
}

std::size_t LogHistogram::index_of(double value) const {
  const double clamped = std::clamp(value, min_value_, max_value_);
  const auto index = static_cast<std::size_t>(
      std::log(clamped / min_value_) / log_base_);
  return std::min(index, buckets_.size() - 1);
}

void LogHistogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
}

void LogHistogram::add(double value, std::uint64_t weight) {
  buckets_[index_of(value)] += weight;
  total_ += weight;
}

double LogHistogram::percentile(double pct) const {
  if (total_ == 0) return 0.0;
  AEQ_CHECK_GE(pct, 0.0);
  AEQ_CHECK_LE(pct, 100.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(pct / 100.0 * static_cast<double>(total_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Upper edge of bucket i.
      return min_value_ * std::exp(log_base_ * static_cast<double>(i + 1));
    }
  }
  return max_value_;
}

void LogHistogram::merge(const LogHistogram& other) {
  AEQ_CHECK_EQ(buckets_.size(), other.buckets_.size());
  AEQ_CHECK_EQ(min_value_, other.min_value_);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  total_ += other.total_;
}

}  // namespace aeq::stats
