// Logarithmically-bucketed histogram (HDR-style): bounded memory with
// bounded relative error, for recording latencies over very long runs where
// the exact-sample PercentileTracker would grow too large.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/assert.h"

namespace aeq::stats {

class LogHistogram {
 public:
  // Values in [min_value, max_value] are recorded with relative error
  // <= `precision` (e.g. 0.01 => 1%); out-of-range values clamp.
  LogHistogram(double min_value, double max_value, double precision = 0.01);

  void add(double value, std::uint64_t weight = 1);

  // Zeroes every bucket, keeping the binning. Windowed consumers (e.g.
  // obs::TimeseriesSink) reuse one histogram per window instead of
  // reallocating the bucket array each window.
  void reset();

  std::uint64_t count() const { return total_; }
  // Percentile in [0, 100]; returns the upper edge of the matched bucket
  // (a <= precision overestimate). 0 when empty.
  double percentile(double pct) const;
  double p50() const { return percentile(50.0); }
  double p99() const { return percentile(99.0); }
  double p999() const { return percentile(99.9); }

  std::size_t bucket_count() const { return buckets_.size(); }
  void merge(const LogHistogram& other);

 private:
  std::size_t index_of(double value) const;

  double min_value_;
  double max_value_;
  double log_base_;  // log(1 + 2*precision)
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

}  // namespace aeq::stats
