#include "stats/export.h"

#include <cstdio>
#include <ostream>

#include "sim/assert.h"

namespace aeq::stats {

void write_csv(std::ostream& out, const TimeSeries& series,
               const std::string& value_name) {
  out << "t," << value_name << "\n";
  for (const TimePoint& point : series.points()) {
    out << point.t << "," << point.value << "\n";
  }
}

void write_quantiles_csv(std::ostream& out, const PercentileTracker& tracker,
                         const std::vector<double>& percentiles) {
  out << "percentile,value\n";
  for (double pct : percentiles) {
    out << pct << "," << tracker.percentile(pct) << "\n";
  }
}

void write_csv(std::ostream& out, const Histogram& histogram) {
  out << "bin_lower,count,cdf\n";
  for (std::size_t i = 0; i < histogram.bin_count(); ++i) {
    out << histogram.bin_lower(i) << "," << histogram.bin(i) << ","
        << histogram.cdf_at(i) << "\n";
  }
}

void write_csv(std::ostream& out,
               const std::vector<LabelledSeries>& series, std::size_t rows) {
  AEQ_ASSERT(!series.empty() && rows >= 2);
  out << "t";
  for (const LabelledSeries& s : series) out << "," << s.name;
  out << "\n";
  // Shared axis from the first series' span.
  const auto axis = series.front().series->resample(rows);
  for (const TimePoint& point : axis) {
    out << point.t;
    for (const LabelledSeries& s : series) {
      out << "," << s.series->value_at(point.t);
    }
    out << "\n";
  }
}

namespace {

std::string full_precision(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  return buffer;
}

void write_csv_escaped(std::ostream& out, const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) {
    out << text;
    return;
  }
  out << '"';
  for (char c : text) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

void write_json_string(std::ostream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

void write_csv(std::ostream& out, const Table& table) {
  const auto& columns = table.columns();
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c) out << ',';
    write_csv_escaped(out, columns[c].name);
  }
  out << '\n';
  for (const Row& row : table.rows()) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out << ',';
      if (c >= row.size()) continue;
      const Cell& cell = row[c];
      if (cell.kind == Cell::Kind::kNumber) {
        out << full_precision(cell.value);
      } else if (cell.kind == Cell::Kind::kText) {
        write_csv_escaped(out, cell.text);
      }
    }
    out << '\n';
  }
}

void write_json(std::ostream& out, const Table& table) {
  const auto& columns = table.columns();
  out << "[";
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    const Row& row = table.rows()[r];
    out << (r ? ",\n " : "\n ") << "{";
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out << ", ";
      write_json_string(out, columns[c].name);
      out << ": ";
      if (c >= row.size() || row[c].kind == Cell::Kind::kEmpty) {
        out << "null";
      } else if (row[c].kind == Cell::Kind::kNumber) {
        out << full_precision(row[c].value);
      } else {
        write_json_string(out, row[c].text);
      }
    }
    out << "}";
  }
  out << "\n]\n";
}

}  // namespace aeq::stats
