#include "stats/export.h"

#include <ostream>

#include "sim/assert.h"

namespace aeq::stats {

void write_csv(std::ostream& out, const TimeSeries& series,
               const std::string& value_name) {
  out << "t," << value_name << "\n";
  for (const TimePoint& point : series.points()) {
    out << point.t << "," << point.value << "\n";
  }
}

void write_quantiles_csv(std::ostream& out, const PercentileTracker& tracker,
                         const std::vector<double>& percentiles) {
  out << "percentile,value\n";
  for (double pct : percentiles) {
    out << pct << "," << tracker.percentile(pct) << "\n";
  }
}

void write_csv(std::ostream& out, const Histogram& histogram) {
  out << "bin_lower,count,cdf\n";
  for (std::size_t i = 0; i < histogram.bin_count(); ++i) {
    out << histogram.bin_lower(i) << "," << histogram.bin(i) << ","
        << histogram.cdf_at(i) << "\n";
  }
}

void write_csv(std::ostream& out,
               const std::vector<LabelledSeries>& series, std::size_t rows) {
  AEQ_ASSERT(!series.empty() && rows >= 2);
  out << "t";
  for (const LabelledSeries& s : series) out << "," << s.name;
  out << "\n";
  // Shared axis from the first series' span.
  const auto axis = series.front().series->resample(rows);
  for (const TimePoint& point : axis) {
    out << point.t;
    for (const LabelledSeries& s : series) {
      out << "," << s.series->value_at(point.t);
    }
    out << "\n";
  }
}

}  // namespace aeq::stats
