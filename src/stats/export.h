// CSV export helpers so experiment output can be piped into plotting tools
// (the paper's figures are line/bar charts over exactly these series).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "stats/histogram.h"
#include "stats/percentile.h"
#include "stats/table.h"
#include "stats/timeseries.h"

namespace aeq::stats {

// Writes "t,value" rows (with a header) for a time series.
void write_csv(std::ostream& out, const TimeSeries& series,
               const std::string& value_name = "value");

// Writes "quantile,value" rows for the given quantiles (percent units).
void write_quantiles_csv(std::ostream& out, const PercentileTracker& tracker,
                         const std::vector<double>& percentiles = {
                             1, 5, 10, 25, 50, 75, 90, 95, 99, 99.9});

// Writes "bin_lower,count,cdf" rows for a histogram.
void write_csv(std::ostream& out, const Histogram& histogram);

// Writes several labelled time series side by side on a shared resampled
// time axis: "t,<name1>,<name2>,...".
struct LabelledSeries {
  std::string name;
  const TimeSeries* series;
};
void write_csv(std::ostream& out, const std::vector<LabelledSeries>& series,
               std::size_t rows);

// Writes a result table as CSV: one header row of column names, numeric
// cells at full precision (%.12g), text cells quoted when they contain a
// comma or quote.
void write_csv(std::ostream& out, const Table& table);

// Writes a result table as a JSON array of row objects keyed by column
// name ([{"col": 1.5, ...}, ...]). Numbers stay numbers; empty cells are
// null.
void write_json(std::ostream& out, const Table& table);

}  // namespace aeq::stats
