#include "core/aequitas.h"

#include <algorithm>

#include "sim/assert.h"

namespace aeq::core {

AequitasController::AequitasController(const AequitasConfig& config,
                                       sim::Rng rng)
    : config_(config), rng_(rng) {
  AEQ_CHECK_GE(config_.slo.num_qos(), 2u);
  AEQ_CHECK_EQ(config_.slo.target_percentile.size(), config_.slo.num_qos());
  AEQ_CHECK_GT(config_.alpha, 0.0);
  AEQ_CHECK_GT(config_.beta_per_mtu, 0.0);
  AEQ_CHECK_GE(config_.p_admit_floor, 0.0);
  AEQ_CHECK_LE(config_.p_admit_floor, 1.0);
  for (std::size_t q = 0; q + 1 < config_.slo.num_qos(); ++q) {
    const double pctl = config_.slo.target_percentile[q];
    AEQ_ASSERT_MSG(pctl > 0.0 && pctl < 100.0,
                   "target percentile must be in (0, 100)");
  }
}

sim::Time AequitasController::increment_window(net::QoSLevel qos) const {
  AEQ_ASSERT(config_.slo.has_slo(qos));
  return config_.slo.latency_target_per_mtu[qos] * 100.0 /
         (100.0 - config_.slo.target_percentile[qos]);
}

rpc::AdmissionDecision AequitasController::admit(
    sim::Time /*now*/, net::HostId /*src*/, net::HostId dst,
    net::QoSLevel qos_requested, std::uint64_t /*bytes*/) {
  if (!config_.slo.has_slo(qos_requested)) {
    // Lowest QoS: scavenger, always admitted.
    return {qos_requested, false, false};
  }
  State& state = states_[key(dst, qos_requested)];
  // Strict comparison: uniform() is in [0, 1), so `<` admits with
  // probability exactly p_admit — in particular p_admit == 0 never admits
  // (`<=` would admit on a zero draw and make the floor soft).
  if (rng_.uniform() < state.p_admit) {
    return {qos_requested, false, false, state.p_admit};
  }
  return {lowest_qos(), true, false, state.p_admit};
}

void AequitasController::on_completion(sim::Time now, net::HostId /*src*/,
                                       net::HostId dst,
                                       net::QoSLevel /*qos_requested*/,
                                       net::QoSLevel qos_run, sim::Time rnl,
                                       std::uint64_t size_mtus) {
  if (!config_.slo.has_slo(qos_run)) return;  // no SLO on the lowest QoS
  AEQ_CHECK_GE(size_mtus, 1u);
  State& state = states_[key(dst, qos_run)];
  AEQ_AUDIT_ONLY(const double p_before = state.p_admit;)
  const sim::Time target = config_.slo.latency_target_per_mtu[qos_run];
  if (rnl / static_cast<double>(size_mtus) < target) {
    // Additive increase, rate limited to one per increment window so the
    // increase rate is independent of how many RPCs the channel sends.
    if (now - state.t_last_increase > increment_window(qos_run)) {
      state.p_admit = std::min(state.p_admit + config_.alpha, 1.0);
      state.t_last_increase = now;
    }
    // Step-direction sanity (AIMD, Algorithm 1): an SLO-met completion
    // must never lower the admit probability.
    AEQ_AUDIT_ONLY(AEQ_CHECK_GE(state.p_admit, p_before);
                   AEQ_CHECK_LE(state.p_admit, 1.0);)
  } else {
    // Multiplicative decrease, proportional to RPC size: an SLO miss on a
    // 10-MTU RPC behaves like ten misses on 1-MTU RPCs.
    state.p_admit =
        std::max(state.p_admit - config_.beta_per_mtu *
                                     static_cast<double>(size_mtus),
                 config_.p_admit_floor);
    // An SLO miss must never raise it, and the starvation floor holds.
    AEQ_AUDIT_ONLY(AEQ_CHECK_LE(state.p_admit, p_before);
                   AEQ_CHECK_GE(state.p_admit, config_.p_admit_floor);)
  }
}

void AequitasController::audit_invariants(sim::Time now) const {
  // Per-entry assertions only; nothing observable depends on visit order.
  // detlint:allow(unordered-iter)
  states_.for_each([&](std::uint64_t, const State& state) {
    AEQ_CHECK_GE_MSG(state.p_admit, config_.p_admit_floor,
                     "p_admit below the starvation floor");
    AEQ_CHECK_LE_MSG(state.p_admit, 1.0, "p_admit above 1");
    AEQ_CHECK_LE_MSG(state.t_last_increase, now,
                     "additive-increase timestamp in the future");
  });
}

double AequitasController::p_admit(net::HostId dst, net::QoSLevel qos) const {
  const State* state = states_.find(key(dst, qos));
  return state == nullptr ? 1.0 : state->p_admit;
}

std::vector<rpc::Gauge> AequitasController::gauges() const {
  double min = 1.0;
  double sum = 0.0;
  std::size_t n = 0;
  // min is order-independent; the sum folds in the map's slot order, which
  // is a pure function of the (deterministic) insertion history, so the
  // mean is reproducible across runs, backends, and shard counts.
  // detlint:allow(unordered-iter)
  states_.for_each([&](std::uint64_t, const State& state) {
    min = std::min(min, state.p_admit);
    sum += state.p_admit;
    ++n;
  });
  const double mean = n == 0 ? 1.0 : sum / static_cast<double>(n);
  return {
      {"p_admit_min", min, config_.p_admit_floor, 1.0},
      {"p_admit_mean", mean, config_.p_admit_floor, 1.0},
      {"channels", static_cast<double>(n), 0.0, rpc::kGaugeUnbounded},
  };
}

}  // namespace aeq::core
