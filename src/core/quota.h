// Centralized per-tenant RPC quota (the extension sketched in paper §5.2):
// Aequitas guarantees latency for *admitted* traffic but not how much each
// application/tenant gets admitted — that depends on how many co-existing
// channels share the QoS. A central quota server can add per-tenant
// admitted-rate guarantees on top.
//
// QuotaServer: tenants register with a weight; each allocation interval the
// server water-fills the per-QoS admitted-byte budget across tenants by
// weight, capped at each tenant's reported demand (the same max-min
// computation GPS uses, reusing analysis::gps_allocate).
//
// QuotaController: wraps a tenant's AequitasController. RPCs pass the
// Aequitas coin flip first; an admitted RPC must then also fit the tenant's
// token bucket for that QoS, otherwise it is downgraded (or dropped when
// `drop_over_quota` is set). Completion feedback still flows to Aequitas.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/aequitas.h"
#include "rpc/admission.h"
#include "sim/simulator.h"

namespace aeq::core {

struct QuotaServerConfig {
  sim::Time allocation_interval = 1 * sim::kMsec;
  // Admitted-byte budget per QoS level (bytes/sec); index 0 = QoS_h.
  // Typically the admissible rate the operator read off the Figure-14-style
  // profile for the configured SLO.
  std::vector<double> qos_budget_bytes_per_sec;
};

class QuotaServer {
 public:
  using TenantId = std::uint32_t;

  QuotaServer(sim::Simulator& simulator, const QuotaServerConfig& config);

  // Registers a tenant with a max-min weight; returns its id.
  TenantId register_tenant(double weight);

  // Demand report (bytes offered on `qos` since the last interval);
  // called by QuotaController, accumulated until the next allocation.
  void report_demand(TenantId tenant, net::QoSLevel qos, double bytes);

  // Current allocated rate (bytes/sec) for the tenant on `qos`.
  double allocation(TenantId tenant, net::QoSLevel qos) const;

  std::size_t num_tenants() const { return tenants_.size(); }
  const QuotaServerConfig& config() const { return config_; }

  // Audit hook (src/audit/checks.h): asserts quota conservation — per QoS,
  // allocations are non-negative, demands are non-negative, and the sum of
  // allocated rates never exceeds the operator budget (the §5.2 guarantee
  // that quota cannot over-promise the admissible region). Aborts via
  // AEQ_CHECK_* on violation.
  void audit_invariants() const;

 private:
  struct Tenant {
    double weight = 1.0;
    std::vector<double> demand_bytes;  // accumulated this interval
    std::vector<double> allocation;    // bytes/sec
  };

  void arm();
  void allocate();

  sim::Simulator& sim_;
  QuotaServerConfig config_;
  std::vector<Tenant> tenants_;
  bool armed_ = false;
  bool allocated_once_ = false;  // guards mid-run registration (see .cc)
};

struct QuotaControllerConfig {
  // Token bucket burst allowance, as a multiple of one allocation interval
  // at the granted rate.
  double burst_intervals = 2.0;
  // Over-quota RPCs are dropped instead of downgraded.
  bool drop_over_quota = false;
};

class QuotaController final : public rpc::AdmissionController {
 public:
  QuotaController(sim::Simulator& simulator, QuotaServer& server,
                  QuotaServer::TenantId tenant,
                  std::unique_ptr<AequitasController> aequitas,
                  const QuotaControllerConfig& config);

  rpc::AdmissionDecision admit(sim::Time now, net::HostId src,
                               net::HostId dst, net::QoSLevel qos_requested,
                               std::uint64_t bytes) override;

  void on_completion(sim::Time now, net::HostId src, net::HostId dst,
                     net::QoSLevel qos_requested, net::QoSLevel qos_run,
                     sim::Time rnl, std::uint64_t size_mtus) override;

  // Inner AIMD gauges plus the quota plane's over-quota rejection count.
  std::vector<rpc::Gauge> gauges() const override;
  void audit_invariants(sim::Time now) const override {
    aequitas_->audit_invariants(now);
  }

  AequitasController& aequitas() { return *aequitas_; }
  std::uint64_t over_quota_count() const { return over_quota_; }

 private:
  struct Bucket {
    double tokens = 0.0;
    sim::Time last_refill = 0.0;
  };

  bool take_tokens(sim::Time now, net::QoSLevel qos, double bytes);
  net::QoSLevel lowest_qos() const {
    return static_cast<net::QoSLevel>(
        aequitas_->config().slo.num_qos() - 1);
  }

  sim::Simulator& sim_;
  QuotaServer& server_;
  QuotaServer::TenantId tenant_;
  std::unique_ptr<AequitasController> aequitas_;
  QuotaControllerConfig config_;
  std::vector<Bucket> buckets_;
  std::uint64_t over_quota_ = 0;
};

}  // namespace aeq::core
