// Aequitas distributed admission control — Algorithm 1 of the paper.
//
// One controller instance lives at each sending host. It maintains an admit
// probability per (destination host, QoS level). On RPC issue, a Bernoulli
// draw against p_admit decides whether the RPC runs on its requested QoS or
// is downgraded to the lowest QoS. On RPC completion the measured RNL drives
// AIMD:
//   * additive increase (+alpha, clamped at 1) when the size-normalized RNL
//     is under the target, at most once per increment_window — the window is
//     latency_target * 100 / (100 - target_pctl), so stricter tail
//     percentiles make increases more conservative;
//   * multiplicative decrease (-beta * size_mtus, floored) on every SLO
//     miss, so a channel sending more (or larger) RPCs backs off
//     proportionally faster, which yields max-min fairness across channels
//     (paper §5.1, RPC-level clocking).
//
// The lowest QoS is the scavenger class: never gated, no SLO.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "rpc/admission.h"
#include "rpc/slo.h"
#include "sim/rng.h"
#include "sim/units.h"
#include "util/flat_map.h"

namespace aeq::core {

struct AequitasConfig {
  double alpha = 0.01;          // additive increment
  double beta_per_mtu = 0.01;   // multiplicative decrement per MTU of size
  double p_admit_floor = 0.01;  // starvation guard (§5.1)
  rpc::SloConfig slo;           // per-QoS normalized targets + percentiles
};

class AequitasController final : public rpc::AdmissionController {
 public:
  AequitasController(const AequitasConfig& config, sim::Rng rng);

  rpc::AdmissionDecision admit(sim::Time now, net::HostId src,
                               net::HostId dst,
                               net::QoSLevel qos_requested,
                               std::uint64_t bytes) override;

  // AIMD feedback keys on the QoS the RPC *ran* at (Algorithm 1): a
  // downgraded RPC's scavenger completion carries no SLO signal, so
  // `qos_requested` is deliberately unused here.
  void on_completion(sim::Time now, net::HostId src, net::HostId dst,
                     net::QoSLevel qos_requested, net::QoSLevel qos_run,
                     sim::Time rnl, std::uint64_t size_mtus) override;

  // Current admit probability toward (dst, qos); 1.0 if no state yet.
  double p_admit(net::HostId dst, net::QoSLevel qos) const;

  // Policy-agnostic introspection (rpc::AdmissionController): the channel
  // count plus min/mean p_admit across channels, all bounded by the AIMD
  // clamp [p_admit_floor, 1].
  std::vector<rpc::Gauge> gauges() const override;

  const AequitasConfig& config() const { return config_; }

  // increment_window for a QoS level (Algorithm 1, initialization).
  sim::Time increment_window(net::QoSLevel qos) const;

  // Audit hook (src/audit/checks.h): asserts every per-(dst, qos) channel's
  // p_admit sits in [p_admit_floor, 1] — the AIMD clamp the paper's
  // starvation guard (§5.1) and Bernoulli gating depend on — and that no
  // additive-increase timestamp lies in the future of `now`. Aborts via
  // AEQ_CHECK_* on violation.
  void audit_invariants(sim::Time now) const override;

 private:
  struct State {
    double p_admit = 1.0;
    sim::Time t_last_increase = 0.0;
  };

  static std::uint64_t key(net::HostId dst, net::QoSLevel qos) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
            << 8) |
           qos;
  }

  net::QoSLevel lowest_qos() const {
    return static_cast<net::QoSLevel>(config_.slo.num_qos() - 1);
  }

  AequitasConfig config_;
  sim::Rng rng_;
  util::FlatMap64<State> states_;
};

}  // namespace aeq::core
