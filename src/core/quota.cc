#include "core/quota.h"

#include <algorithm>

#include "analysis/fluid.h"
#include "sim/assert.h"

namespace aeq::core {

QuotaServer::QuotaServer(sim::Simulator& simulator,
                         const QuotaServerConfig& config)
    : sim_(simulator), config_(config) {
  AEQ_CHECK_GT(config_.allocation_interval, 0.0);
  AEQ_ASSERT(!config_.qos_budget_bytes_per_sec.empty());
}

QuotaServer::TenantId QuotaServer::register_tenant(double weight) {
  AEQ_CHECK_GT(weight, 0.0);
  Tenant tenant;
  tenant.weight = weight;
  tenant.demand_bytes.assign(config_.qos_budget_bytes_per_sec.size(), 0.0);
  // Until the first allocation, grant the weighted fair share so tenants
  // are not stalled at startup.
  double total_weight = weight;
  for (const Tenant& t : tenants_) total_weight += t.weight;
  tenant.allocation.resize(config_.qos_budget_bytes_per_sec.size());
  for (std::size_t q = 0; q < tenant.allocation.size(); ++q) {
    tenant.allocation[q] =
        config_.qos_budget_bytes_per_sec[q] * weight / total_weight;
  }
  tenants_.push_back(std::move(tenant));
  if (!allocated_once_) {
    // Before the first allocate() there is no demand-aware state to
    // preserve: rescale every tenant's startup share to the new weight sum.
    // Afterwards a mid-interval registration must leave the max-min
    // allocations computed by allocate() untouched until the next interval.
    for (Tenant& t : tenants_) {
      for (std::size_t q = 0; q < t.allocation.size(); ++q) {
        t.allocation[q] =
            config_.qos_budget_bytes_per_sec[q] * t.weight / total_weight;
      }
    }
  }
  arm();
  return static_cast<TenantId>(tenants_.size() - 1);
}

void QuotaServer::report_demand(TenantId tenant, net::QoSLevel qos,
                                double bytes) {
  AEQ_CHECK_LT(tenant, tenants_.size());
  AEQ_AUDIT_ONLY(AEQ_CHECK_GE(bytes, 0.0);)
  if (qos >= tenants_[tenant].demand_bytes.size()) return;
  tenants_[tenant].demand_bytes[qos] += bytes;
}

double QuotaServer::allocation(TenantId tenant, net::QoSLevel qos) const {
  AEQ_CHECK_LT(tenant, tenants_.size());
  if (qos >= tenants_[tenant].allocation.size()) return 0.0;
  return tenants_[tenant].allocation[qos];
}

void QuotaServer::arm() {
  if (armed_) return;
  armed_ = true;
  sim_.schedule_in(config_.allocation_interval, [this] {
    armed_ = false;
    allocate();
    if (!tenants_.empty()) arm();
  });
}

void QuotaServer::allocate() {
  if (tenants_.empty()) return;
  allocated_once_ = true;
  std::vector<double> weights;
  weights.reserve(tenants_.size());
  for (const Tenant& tenant : tenants_) weights.push_back(tenant.weight);

  for (std::size_t q = 0; q < config_.qos_budget_bytes_per_sec.size(); ++q) {
    // Demands as rates over the elapsed interval, inflated slightly so a
    // tenant that exactly consumed its allocation can still grow.
    std::vector<double> demand(tenants_.size());
    std::vector<bool> unbounded(tenants_.size(), false);
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      demand[t] = 1.25 * tenants_[t].demand_bytes[q] /
                  config_.allocation_interval;
    }
    // Max-min by weight with demand caps == GPS water-filling.
    const std::vector<double> alloc = analysis::gps_allocate(
        demand, unbounded, weights, config_.qos_budget_bytes_per_sec[q]);
    for (std::size_t t = 0; t < tenants_.size(); ++t) {
      tenants_[t].allocation[q] = alloc[t];
      tenants_[t].demand_bytes[q] = 0.0;
    }
    // Water-filling must never hand out more than the budget.
    AEQ_AUDIT_ONLY(
        double allocated = 0.0;
        for (double a : alloc) allocated += a;
        AEQ_CHECK_LE(allocated, config_.qos_budget_bytes_per_sec[q] *
                                    (1.0 + 1e-9) + 1e-9);)
  }
}

void QuotaServer::audit_invariants() const {
  for (std::size_t q = 0; q < config_.qos_budget_bytes_per_sec.size(); ++q) {
    double allocated = 0.0;
    for (const Tenant& tenant : tenants_) {
      AEQ_CHECK_GE_MSG(tenant.allocation[q], 0.0, "negative quota grant");
      AEQ_CHECK_GE_MSG(tenant.demand_bytes[q], 0.0,
                       "negative demand report");
      allocated += tenant.allocation[q];
    }
    // Small relative slack: water-filling sums floating-point shares.
    AEQ_CHECK_LE_MSG(
        allocated,
        config_.qos_budget_bytes_per_sec[q] * (1.0 + 1e-9) + 1e-9,
        "quota allocations exceed the per-QoS budget");
  }
}

QuotaController::QuotaController(
    sim::Simulator& simulator, QuotaServer& server,
    QuotaServer::TenantId tenant,
    std::unique_ptr<AequitasController> aequitas,
    const QuotaControllerConfig& config)
    : sim_(simulator),
      server_(server),
      tenant_(tenant),
      aequitas_(std::move(aequitas)),
      config_(config) {
  AEQ_ASSERT(aequitas_ != nullptr);
  buckets_.resize(server_.config().qos_budget_bytes_per_sec.size());
}

bool QuotaController::take_tokens(sim::Time now, net::QoSLevel qos,
                                  double bytes) {
  if (qos >= buckets_.size()) return true;  // no quota on this level
  Bucket& bucket = buckets_[qos];
  const double rate = server_.allocation(tenant_, qos);
  const double cap =
      config_.burst_intervals * rate * server_.config().allocation_interval;
  bucket.tokens = std::min(
      cap, bucket.tokens + rate * (now - bucket.last_refill));
  bucket.last_refill = now;
  if (bucket.tokens >= bytes) {
    bucket.tokens -= bytes;
    return true;
  }
  return false;
}

rpc::AdmissionDecision QuotaController::admit(sim::Time now,
                                              net::HostId src,
                                              net::HostId dst,
                                              net::QoSLevel qos_requested,
                                              std::uint64_t bytes) {
  server_.report_demand(tenant_, qos_requested,
                        static_cast<double>(bytes));
  rpc::AdmissionDecision decision =
      aequitas_->admit(now, src, dst, qos_requested, bytes);
  if (decision.downgraded || decision.dropped) return decision;
  if (!aequitas_->config().slo.has_slo(decision.qos_run)) return decision;
  if (!take_tokens(now, decision.qos_run, static_cast<double>(bytes))) {
    ++over_quota_;
    if (config_.drop_over_quota) {
      return {decision.qos_run, false, true, decision.p_admit};
    }
    return {lowest_qos(), true, false, decision.p_admit};
  }
  return decision;
}

void QuotaController::on_completion(sim::Time now, net::HostId src,
                                    net::HostId dst,
                                    net::QoSLevel qos_requested,
                                    net::QoSLevel qos_run, sim::Time rnl,
                                    std::uint64_t size_mtus) {
  aequitas_->on_completion(now, src, dst, qos_requested, qos_run, rnl,
                           size_mtus);
}

std::vector<rpc::Gauge> QuotaController::gauges() const {
  std::vector<rpc::Gauge> gauges = aequitas_->gauges();
  gauges.push_back({"over_quota", static_cast<double>(over_quota_), 0.0,
                    rpc::kGaugeUnbounded});
  return gauges;
}

}  // namespace aeq::core
