#include "net/port.h"

#include "sim/assert.h"

namespace aeq::net {

Port::Port(sim::Simulator& simulator, sim::Rate rate_bytes_per_sec,
           sim::Time propagation_delay, std::unique_ptr<QueueDiscipline> queue)
    : sim_(simulator),
      rate_(rate_bytes_per_sec),
      propagation_(propagation_delay),
      queue_(std::move(queue)) {
  AEQ_CHECK_GT(rate_, 0.0);
  AEQ_CHECK_GE(propagation_, 0.0);
  AEQ_ASSERT(queue_ != nullptr);
}

void Port::send(const Packet& packet) {
  AEQ_ASSERT_MSG(peer_ != nullptr, "port not connected");
  const bool accepted =
      queue_->enqueue(packet);  // drop decision belongs to the discipline
  if (obs_ != nullptr) {
    emit_packet_event(accepted ? obs::PacketEventKind::kEnqueue
                               : obs::PacketEventKind::kDrop,
                      packet);
  }
  try_transmit();
}

void Port::emit_packet_event(obs::PacketEventKind kind, const Packet& packet) {
  obs::PacketEvent event;
  event.t = sim_.now();
  event.kind = kind;
  event.port = obs_port_id_;
  event.qos = packet.qos;
  event.bytes = packet.size_bytes;
  event.qlen_bytes = queue_->backlog_bytes();
  event.qlen_packets = queue_->backlog_packets();
  obs_->packet(event);
}

void Port::deliver_head() {
  AEQ_DCHECK(!in_flight_.empty());
  const Packet packet = in_flight_.front();
  in_flight_.pop_front();
  ++delivered_packets_;
  peer_->receive(packet);
}

void Port::try_transmit() {
  if (busy_) return;
  auto next = queue_->dequeue();
  if (!next) return;
  if (obs_ != nullptr) {
    emit_packet_event(obs::PacketEventKind::kDequeue, *next);
  }
  const sim::Time ser =
      sim::serialization_delay(next->size_bytes, rate_);
  busy_ = true;
  tx_start_ = sim_.now();
  // Deliver at tx-complete + propagation; free the transmitter at
  // tx-complete (charging the full serialization time only then) and
  // immediately look for more work.
  in_flight_.push_back(*next);
  sim_.schedule_in(ser + propagation_, [this] { deliver_head(); });
  sim_.schedule_in(ser, [this] {
    busy_time_ += sim_.now() - tx_start_;
    busy_ = false;
    try_transmit();
  });
}

}  // namespace aeq::net
