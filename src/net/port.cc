#include "net/port.h"

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::net {

Port::Port(sim::Simulator& simulator, sim::Rate rate_bytes_per_sec,
           sim::Time propagation_delay, std::unique_ptr<QueueDiscipline> queue)
    : sim_(simulator),
      rate_(rate_bytes_per_sec),
      propagation_(propagation_delay),
      queue_(std::move(queue)) {
  AEQ_CHECK_GT(rate_, 0.0);
  AEQ_CHECK_GE(propagation_, 0.0);
  AEQ_ASSERT(queue_ != nullptr);
}

void Port::send(const Packet& packet) {
  AEQ_ASSERT_MSG(peer_ != nullptr || link_ != nullptr, "port not connected");
  const bool accepted =
      queue_->enqueue(packet);  // drop decision belongs to the discipline
  if (obs_ != nullptr) {
    emit_packet_event(accepted ? obs::PacketEventKind::kEnqueue
                               : obs::PacketEventKind::kDrop,
                      packet);
  }
  try_transmit();
}

void Port::emit_packet_event(obs::PacketEventKind kind, const Packet& packet) {
  obs::PacketEvent event;
  event.t = sim_.now();
  event.kind = kind;
  event.port = obs_port_id_;
  event.qos = packet.qos;
  event.bytes = packet.size_bytes;
  event.qlen_bytes = queue_->backlog_bytes();
  event.qlen_packets = queue_->backlog_packets();
  obs_->packet(event);
}

void Port::deliver_head() {
  AEQ_DCHECK(!in_flight_.empty());
  const Packet packet = in_flight_.front();
  in_flight_.pop_front();
  ++delivered_packets_;
  peer_->receive(packet);
}

void Port::try_transmit() {
  if (busy_) return;
  const obs::prof::ProfRegion prof(obs::prof::Region::kPortTx);
  auto next = queue_->dequeue();
  if (!next) return;
  if (obs_ != nullptr) {
    emit_packet_event(obs::PacketEventKind::kDequeue, *next);
  }
  const sim::Time ser =
      sim::serialization_delay(next->size_bytes, rate_);
  busy_ = true;
  tx_start_ = sim_.now();
  // Deliver at tx-complete + propagation; free the transmitter at
  // tx-complete (charging the full serialization time only then) and
  // immediately look for more work.
  in_flight_.push_back(*next);
  if (link_ != nullptr) {
    // Handoff mode: the receiver owns the propagation leg, so the tx-end
    // event both frees the transmitter and hands the packet over — one
    // event per packet here plus one arrival event on the receiving side,
    // the same two-per-packet budget as the sink mode below. The arrival
    // timestamp is computed here, as now + (ser + propagation) — the exact
    // expression the sink mode passes to schedule_in — so serial and
    // sharded runs place the arrival on the same float, bit for bit
    // (computing now + ser first and adding propagation at tx-end rounds
    // differently and breaks schedule equivalence).
    const sim::Time arrival = sim_.now() + (ser + propagation_);
    sim_.schedule_in(ser, [this, arrival] {
      busy_time_ += sim_.now() - tx_start_;
      busy_ = false;
      AEQ_DCHECK(!in_flight_.empty());
      const Packet packet = in_flight_.front();
      in_flight_.pop_front();
      ++delivered_packets_;
      link_->on_tx_complete(packet, arrival);
      try_transmit();
    });
    return;
  }
  const std::uint16_t rank =
      rank_by_src_ ? delivery_tie_rank(next->src) : sim::kTieRankDefault;
  sim_.schedule_in(ser + propagation_, [this] { deliver_head(); }, rank);
  sim_.schedule_in(ser, [this] {
    busy_time_ += sim_.now() - tx_start_;
    busy_ = false;
    try_transmit();
  });
}

}  // namespace aeq::net
