// Strict Priority Queuing: the lowest-index non-empty class always sends.
// Used for the SPQ comparison (paper §6.7) and as the network substrate for
// QJump and Homa.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/queue.h"

namespace aeq::net {

class SpqQueue final : public QueueDiscipline {
 public:
  SpqQueue(std::size_t num_classes, std::uint64_t capacity_bytes = 0);

  bool enqueue(const Packet& packet) override;
  std::optional<Packet> dequeue() override;

  bool empty() const override { return backlog_packets_ == 0; }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  std::uint64_t backlog_packets() const override { return backlog_packets_; }
  std::uint64_t class_backlog_bytes(QoSLevel qos) const override;
  std::uint64_t class_dropped_packets(QoSLevel qos) const override;
  std::uint64_t class_dropped_bytes(QoSLevel qos) const override;

 private:
  struct ClassState {
    std::uint64_t backlog_bytes = 0;
    std::uint64_t dropped_packets = 0;
    std::uint64_t dropped_bytes = 0;
    std::deque<Packet> fifo;
  };

  std::uint64_t capacity_bytes_;
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t backlog_packets_ = 0;
  std::vector<ClassState> classes_;
};

}  // namespace aeq::net
