// Strict Priority Queuing: the lowest-index non-empty class always sends.
// Used for the SPQ comparison (paper §6.7) and as the network substrate for
// QJump and Homa.
#pragma once

#include <cstdint>
#include <vector>

#include "net/queue.h"
#include "util/ring_buffer.h"

namespace aeq::net {

class SpqQueue final : public QueueDiscipline {
 public:
  SpqQueue(std::size_t num_classes, std::uint64_t capacity_bytes = 0);

  bool enqueue(const Packet& packet) override;
  std::optional<Packet> dequeue() override;

  void reserve_packets(std::size_t packets) override {
    for (auto& cls : classes_) cls.reserve(packets);
  }

  bool empty() const override { return backlog_packets_ == 0; }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  std::uint64_t backlog_packets() const override { return backlog_packets_; }

 private:
  // Per-class backlog/drop counters live in the QueueDiscipline base.
  std::uint64_t capacity_bytes_;
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t backlog_packets_ = 0;
  std::vector<util::RingBuffer<Packet>> classes_;
};

}  // namespace aeq::net
