#include "net/queue_factory.h"

#include "net/dwrr.h"
#include "net/fifo_queue.h"
#include "net/pfabric_queue.h"
#include "net/spq.h"
#include "net/wfq.h"
#include "sim/assert.h"

namespace aeq::net {

namespace {

std::unique_ptr<QueueDiscipline> make_queue_impl(const QueueConfig& config) {
  switch (config.type) {
    case SchedulerType::kFifo:
      return std::make_unique<FifoQueue>(config.capacity_bytes);
    case SchedulerType::kWfq:
      return std::make_unique<WfqQueue>(config.weights, config.capacity_bytes,
                                        config.per_class_capacity_bytes);
    case SchedulerType::kDwrr:
      return std::make_unique<DwrrQueue>(config.weights,
                                         config.capacity_bytes);
    case SchedulerType::kSpq:
      return std::make_unique<SpqQueue>(config.weights.size(),
                                        config.capacity_bytes);
    case SchedulerType::kPfabric:
      AEQ_CHECK_GT_MSG(config.capacity_bytes, 0u,
                       "pFabric requires a finite buffer");
      return std::make_unique<PfabricQueue>(config.capacity_bytes);
  }
  AEQ_ASSERT_MSG(false, "unknown scheduler type");
  return nullptr;
}

}  // namespace

std::unique_ptr<QueueDiscipline> make_queue(const QueueConfig& config) {
  auto queue = make_queue_impl(config);
  if (queue && config.ecn_threshold_bytes != 0) {
    queue->set_ecn_threshold(config.ecn_threshold_bytes);
  }
  if (queue && config.reserve_packets != 0) {
    queue->reserve_packets(config.reserve_packets);
  }
  return queue;
}

}  // namespace aeq::net
