// Output-queued switch: routes each arriving packet to the egress port for
// its destination and enqueues it there. Multi-path routes use deterministic
// ECMP hashing on the flow id so a flow stays on one path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/port.h"

namespace aeq::net {

class Switch final : public PacketSink {
 public:
  explicit Switch(std::string name) : name_(std::move(name)) {}

  // Takes ownership of an egress port; returns its index.
  std::size_t add_port(std::unique_ptr<Port> port);

  // Routes packets destined to `dst` out of `port_index`.
  void set_route(HostId dst, std::size_t port_index);

  // ECMP route: packets to `dst` hash (by flow id) across `port_indices`.
  void set_ecmp_route(HostId dst, std::vector<std::size_t> port_indices);

  void receive(const Packet& packet) override;

  Port& port(std::size_t i) { return *ports_.at(i); }
  const Port& port(std::size_t i) const { return *ports_.at(i); }
  std::size_t num_ports() const { return ports_.size(); }
  const std::string& name() const { return name_; }

  // Packets this switch has accepted for routing. The audit layer's
  // routing-conservation check asserts that every received packet was
  // offered to exactly one egress queue:
  //   received == sum over ports of queue().stats().offered_packets.
  std::uint64_t received_packets() const { return received_packets_; }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Port>> ports_;
  // Dense route table indexed by destination HostId (host ids are small and
  // contiguous). An empty entry means "no route". Deterministic by
  // construction — no hash-map state anywhere near the forwarding path.
  std::vector<std::vector<std::size_t>> routes_;
  std::uint64_t received_packets_ = 0;
};

}  // namespace aeq::net
