#include "net/pfabric_queue.h"

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::net {

PfabricQueue::PfabricQueue(std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  AEQ_CHECK_GT_MSG(capacity_bytes_, 0u, "pFabric requires a finite buffer");
}

std::size_t PfabricQueue::min_priority_index() const {
  AEQ_DCHECK(!queue_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const auto& a = queue_[i];
    const auto& b = queue_[best];
    if (a.priority < b.priority ||
        (a.priority == b.priority &&
         a.arrival_seq < b.arrival_seq)) {
      best = i;
    }
  }
  return best;
}

std::size_t PfabricQueue::max_priority_index() const {
  AEQ_DCHECK(!queue_.empty());
  std::size_t worst = 0;
  for (std::size_t i = 1; i < queue_.size(); ++i) {
    const auto& a = queue_[i];
    const auto& b = queue_[worst];
    if (a.priority > b.priority ||
        (a.priority == b.priority &&
         a.arrival_seq > b.arrival_seq)) {
      worst = i;
    }
  }
  return worst;
}

bool PfabricQueue::enqueue(const Packet& packet) {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueuePfabric);
  count_offered(packet);
  Entry incoming{packet, packet.cold.priority, next_arrival_seq_++};
  // Evict lowest-urgency packets until the newcomer fits; if the newcomer is
  // itself the least urgent, it is the one dropped. Evicted residents count
  // as drops (they were offered and accepted earlier), so conservation
  // (offered == dequeued + dropped + resident) holds across evictions.
  while (backlog_bytes_ + incoming.packet.size_bytes > capacity_bytes_) {
    if (queue_.empty()) {
      count_dropped(incoming.packet);
      return false;
    }
    const std::size_t worst = max_priority_index();
    if (queue_[worst].priority >= incoming.priority) {
      count_evicted(queue_[worst].packet);
      backlog_bytes_ -= queue_[worst].packet.size_bytes;
      queue_[worst] = queue_.back();
      queue_.pop_back();
    } else {
      count_dropped(incoming.packet);
      return false;
    }
  }
  backlog_bytes_ += incoming.packet.size_bytes;
  queue_.push_back(incoming);
  count_enqueued(incoming.packet);
  return true;
}

std::optional<Packet> PfabricQueue::dequeue() {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueuePfabric);
  if (queue_.empty()) return std::nullopt;
  const std::size_t best = min_priority_index();
  Packet p = queue_[best].packet;
  queue_[best] = queue_.back();
  queue_.pop_back();
  backlog_bytes_ -= p.size_bytes;
  count_dequeued(p);
  maybe_mark_ecn(p);
  return p;
}

}  // namespace aeq::net
