// Weighted Fair Queuing via virtual-time packet tagging.
//
// Implementation follows the Parekh–Gallager PGPS / start-time fair queueing
// family: each arriving packet gets a start tag S = max(V, F_class) and a
// finish tag F = S + size/weight; the scheduler serves the packet with the
// smallest finish tag and advances the virtual clock V to the start tag of
// the packet entering service. Under continuous backlog every class receives
// at least weight_i / sum(weights) of the link rate, which is the property
// Aequitas' delay analysis builds on (paper §4.1).
//
// The buffer is shared across classes with tail drop, matching commodity
// switch behaviour described in the paper (footnote 2).
#pragma once

#include <cstdint>
#include <vector>

#include "net/queue.h"
#include "util/ring_buffer.h"

namespace aeq::net {

class WfqQueue final : public QueueDiscipline {
 public:
  // `weights[i]` is the WFQ weight of QoS level i (i == 0 highest priority).
  // capacity_bytes == 0 means unbounded. `per_class_capacity_bytes` caps
  // each class individually (drop isolation); 0 disables it.
  WfqQueue(std::vector<double> weights, std::uint64_t capacity_bytes = 0,
           std::uint64_t per_class_capacity_bytes = 0);

  bool enqueue(const Packet& packet) override;
  std::optional<Packet> dequeue() override;

  void reserve_packets(std::size_t packets) override {
    for (auto& cls : classes_) cls.fifo.reserve(packets);
  }

  bool empty() const override { return backlog_packets_ == 0; }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  std::uint64_t backlog_packets() const override { return backlog_packets_; }

  std::size_t num_classes() const { return classes_.size(); }
  double virtual_time() const { return virtual_time_; }

  // Audit hook (src/audit/checks.h): asserts the virtual-time/tag
  // invariants the paper's delay bound (§4, Appendix B) is derived from —
  // per-class finish tags non-decreasing in FIFO order, start <= finish for
  // every pending packet, the class's last_finish equal to its newest
  // pending tag, and per-class backlog consistent with the pending packets.
  // Aborts via AEQ_CHECK_* on violation.
  void audit_tags() const;

 private:
  struct Tagged {
    Packet packet;
    double start_tag;
    double finish_tag;
  };
  // Per-class backlog and drop counters live in the QueueDiscipline base
  // (ClassCounters); only the scheduling state is per-discipline.
  struct ClassState {
    double weight = 1.0;
    double last_finish = 0.0;  // finish tag of the newest packet in class
    util::RingBuffer<Tagged> fifo;
  };

  std::uint64_t capacity_bytes_;
  std::uint64_t per_class_capacity_bytes_;
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t backlog_packets_ = 0;
  double virtual_time_ = 0.0;
  std::vector<ClassState> classes_;
};

}  // namespace aeq::net
