// Cross-shard packet fabric for the conservative-PDES executive.
//
// When the topology is partitioned into shards — each shard owning a group
// of hosts plus the switch egress ports that feed them — the only traffic
// that crosses shard boundaries is a host NIC transmitting toward a switch
// owned by another shard. The fabric models that cut:
//
//   * Every NIC egress port runs in LinkReceiver handoff mode (see
//     net::Port): at serialization end it hands (packet, arrival time =
//     tx-end + propagation) to its shard's link object.
//   * Same-shard packets are landed immediately: a slot in the shard's
//     arrival pool plus one event at the arrival time (the event captures
//     {pool, slot} — 16 bytes, well inside the scheduler's 48-byte inline
//     handler budget, which is why packets are never captured directly).
//   * Cross-shard packets go into the (src, dst) SPSC mailbox — a
//     util::SpscChannel plus a producer-owned overflow vector so nothing is
//     ever dropped — and are drained at the next lookahead barrier by the
//     coordinator, in fixed (destination, source, FIFO) order, into the
//     destination shard's arrival pool. Arrival timestamps exceed the
//     barrier horizon by construction (propagation >= lookahead), so the
//     handoff never schedules into a shard's past.
//
// Event budget: one tx-end event on the sending shard plus one arrival
// event on the receiving shard per packet — identical to the serial link
// pipeline, which is what makes serial and sharded event counts comparable
// (the "cross-shard event identity" pinned by BENCH_hotpath.json).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/port.h"
#include "net/switch.h"
#include "sim/simulator.h"
#include "util/spsc_channel.h"

namespace aeq::net {

class ShardFabric {
 public:
  // `sims[k]` is shard k's executive; `shard_of_host[h]` maps each host id
  // to its owning shard. `mailbox_capacity` sizes each SPSC ring (messages
  // beyond it spill to the overflow vector — correct, just slower).
  ShardFabric(std::vector<sim::Simulator*> sims,
              std::vector<std::uint32_t> shard_of_host,
              std::size_t mailbox_capacity = 4096);

  ShardFabric(const ShardFabric&) = delete;
  ShardFabric& operator=(const ShardFabric&) = delete;

  std::size_t num_shards() const { return sims_.size(); }
  std::uint32_t shard_of(HostId host) const {
    return shard_of_host_.at(static_cast<std::size_t>(host));
  }

  // Topology wiring (called by topo::build_sharded_star): the switch whose
  // egress ports shard `k` owns, i.e. where shard-k-bound packets land.
  void set_local_switch(std::size_t shard, Switch* sw);

  // The LinkReceiver every NIC egress port of shard `k` connects to.
  LinkReceiver* nic_link(std::size_t shard);

  // Barrier callback: drains every mailbox into its destination shard, in
  // (destination, source, FIFO) order. Must only run while all shard
  // workers are parked (sim::ShardedSimulator::set_barrier_callback).
  void drain_all();

  // True when no handed-over packet is waiting in a mailbox.
  bool idle() const;

  // --- diagnostics (sum per-mailbox counters; each counter is written only
  // by its single producer thread, so read these only while the shard
  // workers are parked — between run_until calls or at a barrier) ---
  std::uint64_t cross_shard_packets() const;
  // Pushes that missed the SPSC ring and took the overflow vector; a large
  // count means mailbox_capacity is undersized for the traffic matrix.
  std::uint64_t mailbox_overflows() const;
  // Deepest any single (src, dst) mailbox got between barriers (ring +
  // overflow, sampled at push time): the executive's peak cross-shard
  // backlog, reported in the --prof executive section.
  std::uint64_t mailbox_depth_hwm() const;

 private:
  struct StampedPacket {
    sim::Time arrival = 0.0;
    Packet packet;
  };

  // Per-shard pool of in-flight arrivals: the scheduled event captures only
  // {pool pointer, slot index}; slots are recycled through a free list so
  // steady state allocates nothing.
  struct ArrivalPool {
    sim::Simulator* sim = nullptr;
    Switch* local_switch = nullptr;
    std::vector<Packet> slots;
    std::vector<std::uint32_t> free_slots;

    void land(sim::Time arrival, const Packet& packet);
    void fire(std::uint32_t slot);
  };

  // One direction of the cut: shard s -> shard d. The ring is the fast
  // path; overflow is producer-owned until the barrier hands it over.
  //
  // Thread-safety analysis (DESIGN.md §12): no lock, so no AEQ_GUARDED_BY —
  // `overflow`, `pushed`, and `overflowed` are owned by the producing shard
  // thread inside a window and by the coordinator at the barrier, with the
  // ShardedSimulator pool mutex (already annotated) ordering the handover.
  // The role discipline is enforced by the executive's epoch protocol and
  // checked under TSan in CI.
  struct Mailbox {
    explicit Mailbox(std::size_t capacity) : ring(capacity) {}
    util::SpscChannel<StampedPacket> ring;
    std::vector<StampedPacket> overflow;
    std::uint64_t pushed = 0;      // written by the producer shard only
    std::uint64_t overflowed = 0;  // ditto
    std::uint64_t depth_hwm = 0;   // ditto (peak ring + overflow depth)
  };

  // Shard-s side of the cut; one instance per shard, shared by all of the
  // shard's NICs (packets only need the destination host to route).
  class ShardLink final : public LinkReceiver {
   public:
    ShardLink(ShardFabric* fabric, std::uint32_t shard)
        : fabric_(fabric), shard_(shard) {}
    void on_tx_complete(const Packet& packet, sim::Time arrival) override;

   private:
    ShardFabric* fabric_;
    std::uint32_t shard_;
  };

  Mailbox& mailbox(std::size_t src, std::size_t dst) {
    return *mailboxes_[src * num_shards() + dst];
  }
  const Mailbox& mailbox(std::size_t src, std::size_t dst) const {
    return *mailboxes_[src * num_shards() + dst];
  }

  std::vector<sim::Simulator*> sims_;
  std::vector<std::uint32_t> shard_of_host_;
  std::vector<ArrivalPool> arrivals_;
  std::vector<ShardLink> links_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;  // [src * K + dst]
};

}  // namespace aeq::net
