// Random Early Detection (Floyd & Jacobson 1993) FIFO queue.
//
// The paper positions Aequitas next to AQM (§7): both do probabilistic
// admission, AQM per packet, Aequitas per RPC. This discipline provides the
// packet-level comparand: the drop probability ramps linearly from 0 at
// `min_threshold` to `max_drop_probability` at `max_threshold` of the EWMA
// queue length, with hard drops beyond.
#pragma once

#include <cstdint>

#include "net/queue.h"
#include "util/ring_buffer.h"
#include "sim/rng.h"

namespace aeq::net {

struct RedConfig {
  std::uint64_t capacity_bytes = 1 << 20;
  std::uint64_t min_threshold_bytes = 64 * 1024;
  std::uint64_t max_threshold_bytes = 256 * 1024;
  double max_drop_probability = 0.1;
  double ewma_weight = 0.05;  // queue-average gain per arrival
  std::uint64_t seed = 0xAE0;
};

class RedQueue final : public QueueDiscipline {
 public:
  explicit RedQueue(const RedConfig& config);

  bool enqueue(const Packet& packet) override;
  std::optional<Packet> dequeue() override;

  void reserve_packets(std::size_t packets) override {
    queue_.reserve(packets);
  }

  bool empty() const override { return queue_.empty(); }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  std::uint64_t backlog_packets() const override { return queue_.size(); }

  double average_backlog() const { return avg_backlog_; }

 private:
  double drop_probability() const;

  RedConfig config_;
  sim::Rng rng_;
  util::RingBuffer<Packet> queue_;
  std::uint64_t backlog_bytes_ = 0;
  double avg_backlog_ = 0.0;
};

}  // namespace aeq::net
