// Deficit Weighted Round Robin (Shreedhar & Varghese, SIGCOMM'95).
//
// An alternative WFQ realization (paper footnote 1): quantum per class
// proportional to its weight; a class may send while its deficit counter
// covers the head packet. Coarser short-term fairness than virtual-time WFQ
// but O(1) per packet.
#pragma once

#include <cstdint>
#include <vector>

#include "net/queue.h"
#include "util/ring_buffer.h"

namespace aeq::net {

class DwrrQueue final : public QueueDiscipline {
 public:
  // `quantum_scale` sets the quantum of a weight-1.0 class, in bytes; it
  // should be at least one MTU for O(1) operation.
  DwrrQueue(std::vector<double> weights, std::uint64_t capacity_bytes = 0,
            std::uint64_t quantum_scale = 4096);

  bool enqueue(const Packet& packet) override;
  std::optional<Packet> dequeue() override;

  void reserve_packets(std::size_t packets) override {
    for (auto& cls : classes_) cls.fifo.reserve(packets);
  }

  bool empty() const override { return backlog_packets_ == 0; }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  std::uint64_t backlog_packets() const override { return backlog_packets_; }

 private:
  // Per-class backlog/drop counters live in the QueueDiscipline base; only
  // the round-robin scheduling state is kept here.
  struct ClassState {
    double quantum = 0.0;
    double deficit = 0.0;
    util::RingBuffer<Packet> fifo;
  };

  std::uint64_t capacity_bytes_;
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t backlog_packets_ = 0;
  std::size_t round_cursor_ = 0;  // class currently holding the round
  bool cursor_fresh_ = true;      // true when the cursor needs a new quantum
  std::vector<ClassState> classes_;
};

}  // namespace aeq::net
