#include "net/switch.h"

#include "sim/assert.h"

namespace aeq::net {

std::size_t Switch::add_port(std::unique_ptr<Port> port) {
  AEQ_ASSERT(port != nullptr);
  ports_.push_back(std::move(port));
  return ports_.size() - 1;
}

void Switch::set_route(HostId dst, std::size_t port_index) {
  AEQ_CHECK_LT(port_index, ports_.size());
  routes_[dst] = {port_index};
}

void Switch::set_ecmp_route(HostId dst,
                            std::vector<std::size_t> port_indices) {
  AEQ_ASSERT(!port_indices.empty());
  for (std::size_t i : port_indices) AEQ_CHECK_LT(i, ports_.size());
  routes_[dst] = std::move(port_indices);
}

void Switch::receive(const Packet& packet) {
  ++received_packets_;
  auto it = routes_.find(packet.dst);
  AEQ_ASSERT_MSG(it != routes_.end(), "switch has no route for destination");
  const auto& choices = it->second;
  std::size_t index = 0;
  if (choices.size() > 1) {
    // Fibonacci-style hash keeps flows spread even for sequential ids.
    index = static_cast<std::size_t>(
        (packet.flow_id * 0x9E3779B97F4A7C15ull) >> 32) %
            choices.size();
  }
  ports_[choices[index]]->send(packet);
}

}  // namespace aeq::net
