#include "net/switch.h"

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::net {

std::size_t Switch::add_port(std::unique_ptr<Port> port) {
  AEQ_ASSERT(port != nullptr);
  ports_.push_back(std::move(port));
  return ports_.size() - 1;
}

void Switch::set_route(HostId dst, std::size_t port_index) {
  AEQ_CHECK_LT(port_index, ports_.size());
  AEQ_ASSERT(dst >= 0);
  const auto d = static_cast<std::size_t>(dst);
  if (routes_.size() <= d) routes_.resize(d + 1);
  routes_[d] = {port_index};
}

void Switch::set_ecmp_route(HostId dst,
                            std::vector<std::size_t> port_indices) {
  AEQ_ASSERT(!port_indices.empty());
  for (std::size_t i : port_indices) AEQ_CHECK_LT(i, ports_.size());
  AEQ_ASSERT(dst >= 0);
  const auto d = static_cast<std::size_t>(dst);
  if (routes_.size() <= d) routes_.resize(d + 1);
  routes_[d] = std::move(port_indices);
}

void Switch::receive(const Packet& packet) {
  const obs::prof::ProfRegion prof(obs::prof::Region::kSwitchRoute);
  ++received_packets_;
  const auto d = static_cast<std::size_t>(packet.dst);
  AEQ_ASSERT_MSG(d < routes_.size() && !routes_[d].empty(),
                 "switch has no route for destination");
  const auto& choices = routes_[d];
  std::size_t index = 0;
  if (choices.size() > 1) {
    // Fibonacci-style hash keeps flows spread even for sequential ids.
    index = static_cast<std::size_t>(
        (packet.flow_id * 0x9E3779B97F4A7C15ull) >> 32) %
            choices.size();
  }
  ports_[choices[index]]->send(packet);
}

}  // namespace aeq::net
