// Shared switch buffering with Dynamic Threshold admission.
//
// Commodity switches share one buffer pool across ports "based on usage"
// (paper footnote 2). The standard mechanism is the Dynamic Threshold (DT)
// algorithm (Choudhury & Hahne): a queue may grow only up to
// alpha * (free pool bytes), so heavily used ports are capped more tightly
// as the pool fills, while an uncontended port can use most of the buffer.
//
// PooledQueue is a decorator: it wraps any QueueDiscipline and gates
// enqueues through the pool. Topology builders create one pool per switch
// when StarConfig/LeafSpineConfig::shared_buffer_bytes is set.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "net/queue.h"
#include "sim/assert.h"

namespace aeq::net {

class SharedBufferPool {
 public:
  SharedBufferPool(std::uint64_t total_bytes, double dt_alpha = 1.0)
      : total_(total_bytes), alpha_(dt_alpha) {
    AEQ_CHECK_GT(total_bytes, 0u);
    AEQ_CHECK_GT(dt_alpha, 0.0);
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free_bytes() const { return total_ - used_; }

  // Dynamic-threshold admission: the packet fits if the queue's backlog
  // stays under alpha * free and the pool has room.
  bool try_reserve(std::uint64_t bytes, std::uint64_t queue_backlog) {
    if (used_ + bytes > total_) return false;
    const double threshold = alpha_ * static_cast<double>(free_bytes());
    if (static_cast<double>(queue_backlog + bytes) > threshold) return false;
    used_ += bytes;
    return true;
  }

  void release(std::uint64_t bytes) {
    AEQ_CHECK_LE(bytes, used_);
    used_ -= bytes;
  }

 private:
  std::uint64_t total_;
  double alpha_;
  std::uint64_t used_ = 0;
};

class PooledQueue final : public QueueDiscipline {
 public:
  PooledQueue(std::unique_ptr<QueueDiscipline> inner, SharedBufferPool& pool)
      : inner_(std::move(inner)), pool_(pool) {
    AEQ_ASSERT(inner_ != nullptr);
  }

  bool enqueue(const Packet& packet) override {
    count_offered(packet);
    if (!pool_.try_reserve(packet.size_bytes, inner_->backlog_bytes())) {
      count_dropped(packet);
      return false;
    }
    reserved_ += packet.size_bytes;
    const QueueStats inner_before = inner_->stats();
    const ClassCounters inner_class_before = inner_->class_counters();
    const bool accepted = inner_->enqueue(packet);
    // Reconcile the reservation with the inner backlog: the inner
    // discipline may have rejected the arrival outright, or (pFabric)
    // evicted previously accepted residents to make room — either way the
    // pool must only hold bytes that are actually buffered. Without this
    // an eviction would leak its reservation forever (the evicted packet
    // never reaches dequeue()), strangling the pool over time; the
    // pool-conservation audit check (src/audit/checks.h) guards exactly
    // this: pool.used == sum of member backlogs.
    sync_reservation();
    // Fold inner evictions into this decorator's drop counters: an evicted
    // resident was already counted enqueued here and will never reach
    // dequeue(), so without this the decorator-level conservation invariant
    // (offered == dequeued + dropped + resident) would not close.
    std::uint64_t evicted_packets =
        inner_->stats().dropped_packets - inner_before.dropped_packets;
    std::uint64_t evicted_bytes =
        inner_->stats().dropped_bytes - inner_before.dropped_bytes;
    if (!accepted) {
      // The rejected arrival itself is part of the inner drop delta but is
      // accounted through count_dropped() below.
      evicted_packets -= 1;
      evicted_bytes -= packet.size_bytes;
    }
    stats_.dropped_packets += evicted_packets;
    stats_.dropped_bytes += evicted_bytes;
    if (evicted_packets != 0) fold_class_drops(inner_class_before, packet,
                                               accepted);
    if (!accepted) {
      count_dropped(packet);
      return false;
    }
    count_enqueued(packet);
    return true;
  }

  void reserve_packets(std::size_t packets) override {
    inner_->reserve_packets(packets);
  }

  std::optional<Packet> dequeue() override {
    auto packet = inner_->dequeue();
    if (packet) {
      sync_reservation();
      count_dequeued(*packet);
    }
    return packet;
  }

  bool empty() const override { return inner_->empty(); }
  std::uint64_t backlog_bytes() const override {
    return inner_->backlog_bytes();
  }
  std::uint64_t backlog_packets() const override {
    return inner_->backlog_packets();
  }
  // The decorator's own base-class backlog slices drift on inner evictions
  // (an evicted resident never passes through this object's
  // count_dequeued), so per-class backlog is answered by the inner queue —
  // the single source of truth for what is buffered. Drop slices are NOT
  // forwarded: the base counters here cover DT rejections and rejected
  // arrivals directly, and enqueue() folds inner eviction deltas in, so the
  // inherited accessors report the complete decorator-level picture.
  std::uint64_t class_backlog_bytes(QoSLevel qos) const override {
    return inner_->class_backlog_bytes(qos);
  }

  QueueDiscipline& inner() { return *inner_; }
  const QueueDiscipline& inner() const { return *inner_; }

  // Pool bytes currently held on behalf of the inner queue; always equal to
  // the inner backlog between operations.
  std::uint64_t reserved_bytes() const { return reserved_; }

 private:
  // Attributes the inner queue's eviction drops (delta since
  // `inner_before`) to their QoS classes in this decorator's counters. The
  // rejected arrival, when there is one, is excluded the same way as in the
  // aggregate fold — count_dropped() accounts it separately.
  void fold_class_drops(const ClassCounters& inner_before,
                        const Packet& arrival, bool accepted) {
    const ClassCounters& after = inner_->class_counters();
    for (std::size_t i = 0; i < kMaxQoSLevels; ++i) {
      std::uint64_t d_packets =
          after.dropped_packets[i] - inner_before.dropped_packets[i];
      std::uint64_t d_bytes =
          after.dropped_bytes[i] - inner_before.dropped_bytes[i];
      if (!accepted && i == class_index(arrival.qos)) {
        d_packets -= 1;
        d_bytes -= arrival.size_bytes;
      }
      class_counters_.dropped_packets[i] += d_packets;
      class_counters_.dropped_bytes[i] += d_bytes;
    }
  }

  // Releases any reservation not backed by buffered bytes. Reservations only
  // ever shrink relative to the inner backlog (enqueue reserves up front),
  // so growth here would be an accounting bug.
  void sync_reservation() {
    const std::uint64_t backlog = inner_->backlog_bytes();
    AEQ_CHECK_LE(backlog, reserved_);
    if (reserved_ > backlog) {
      pool_.release(reserved_ - backlog);
      reserved_ = backlog;
    }
  }

  std::unique_ptr<QueueDiscipline> inner_;
  SharedBufferPool& pool_;
  std::uint64_t reserved_ = 0;
};

}  // namespace aeq::net
