// Shared switch buffering with Dynamic Threshold admission.
//
// Commodity switches share one buffer pool across ports "based on usage"
// (paper footnote 2). The standard mechanism is the Dynamic Threshold (DT)
// algorithm (Choudhury & Hahne): a queue may grow only up to
// alpha * (free pool bytes), so heavily used ports are capped more tightly
// as the pool fills, while an uncontended port can use most of the buffer.
//
// PooledQueue is a decorator: it wraps any QueueDiscipline and gates
// enqueues through the pool. Topology builders create one pool per switch
// when StarConfig/LeafSpineConfig::shared_buffer_bytes is set.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "net/queue.h"
#include "sim/assert.h"

namespace aeq::net {

class SharedBufferPool {
 public:
  SharedBufferPool(std::uint64_t total_bytes, double dt_alpha = 1.0)
      : total_(total_bytes), alpha_(dt_alpha) {
    AEQ_ASSERT(total_bytes > 0 && dt_alpha > 0.0);
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t used() const { return used_; }
  std::uint64_t free_bytes() const { return total_ - used_; }

  // Dynamic-threshold admission: the packet fits if the queue's backlog
  // stays under alpha * free and the pool has room.
  bool try_reserve(std::uint64_t bytes, std::uint64_t queue_backlog) {
    if (used_ + bytes > total_) return false;
    const double threshold = alpha_ * static_cast<double>(free_bytes());
    if (static_cast<double>(queue_backlog + bytes) > threshold) return false;
    used_ += bytes;
    return true;
  }

  void release(std::uint64_t bytes) {
    AEQ_ASSERT(bytes <= used_);
    used_ -= bytes;
  }

 private:
  std::uint64_t total_;
  double alpha_;
  std::uint64_t used_ = 0;
};

class PooledQueue final : public QueueDiscipline {
 public:
  PooledQueue(std::unique_ptr<QueueDiscipline> inner, SharedBufferPool& pool)
      : inner_(std::move(inner)), pool_(pool) {
    AEQ_ASSERT(inner_ != nullptr);
  }

  bool enqueue(const Packet& packet) override {
    if (!pool_.try_reserve(packet.size_bytes, inner_->backlog_bytes())) {
      ++stats_.dropped_packets;
      stats_.dropped_bytes += packet.size_bytes;
      return false;
    }
    if (!inner_->enqueue(packet)) {
      pool_.release(packet.size_bytes);  // inner discipline dropped it
      ++stats_.dropped_packets;
      stats_.dropped_bytes += packet.size_bytes;
      return false;
    }
    ++stats_.enqueued_packets;
    return true;
  }

  std::optional<Packet> dequeue() override {
    auto packet = inner_->dequeue();
    if (packet) {
      pool_.release(packet->size_bytes);
      ++stats_.dequeued_packets;
      stats_.dequeued_bytes += packet->size_bytes;
    }
    return packet;
  }

  bool empty() const override { return inner_->empty(); }
  std::uint64_t backlog_bytes() const override {
    return inner_->backlog_bytes();
  }
  std::uint64_t backlog_packets() const override {
    return inner_->backlog_packets();
  }
  std::uint64_t class_backlog_bytes(QoSLevel qos) const override {
    return inner_->class_backlog_bytes(qos);
  }

  QueueDiscipline& inner() { return *inner_; }

 private:
  std::unique_ptr<QueueDiscipline> inner_;
  SharedBufferPool& pool_;
};

}  // namespace aeq::net
