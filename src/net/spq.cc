#include "net/spq.h"

#include "sim/assert.h"

namespace aeq::net {

SpqQueue::SpqQueue(std::size_t num_classes, std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  AEQ_CHECK_GT(num_classes, 0u);
  AEQ_CHECK_LE(num_classes, kMaxQoSLevels);
  classes_.resize(num_classes);
}

bool SpqQueue::enqueue(const Packet& packet) {
  AEQ_CHECK_LT(packet.qos, classes_.size());
  count_offered(packet);
  ClassState& cls = classes_[packet.qos];
  if (capacity_bytes_ != 0 &&
      backlog_bytes_ + packet.size_bytes > capacity_bytes_) {
    count_dropped(packet);
    ++cls.dropped_packets;
    cls.dropped_bytes += packet.size_bytes;
    return false;
  }
  cls.fifo.push_back(packet);
  cls.backlog_bytes += packet.size_bytes;
  backlog_bytes_ += packet.size_bytes;
  ++backlog_packets_;
  count_enqueued(packet);
  return true;
}

std::optional<Packet> SpqQueue::dequeue() {
  for (auto& cls : classes_) {
    if (cls.fifo.empty()) continue;
    Packet p = cls.fifo.front();
    cls.fifo.pop_front();
    cls.backlog_bytes -= p.size_bytes;
    backlog_bytes_ -= p.size_bytes;
    --backlog_packets_;
    count_dequeued(p);
    maybe_mark_ecn(p);
    return p;
  }
  return std::nullopt;
}

std::uint64_t SpqQueue::class_backlog_bytes(QoSLevel qos) const {
  if (qos >= classes_.size()) return 0;
  return classes_[qos].backlog_bytes;
}

std::uint64_t SpqQueue::class_dropped_packets(QoSLevel qos) const {
  if (qos >= classes_.size()) return 0;
  return classes_[qos].dropped_packets;
}

std::uint64_t SpqQueue::class_dropped_bytes(QoSLevel qos) const {
  if (qos >= classes_.size()) return 0;
  return classes_[qos].dropped_bytes;
}

}  // namespace aeq::net
