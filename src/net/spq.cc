#include "net/spq.h"

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::net {

SpqQueue::SpqQueue(std::size_t num_classes, std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {
  AEQ_CHECK_GT(num_classes, 0u);
  AEQ_CHECK_LE(num_classes, kMaxQoSLevels);
  classes_.resize(num_classes);
}

bool SpqQueue::enqueue(const Packet& packet) {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueSpq);
  AEQ_CHECK_LT(packet.qos, classes_.size());
  count_offered(packet);
  if (capacity_bytes_ != 0 &&
      backlog_bytes_ + packet.size_bytes > capacity_bytes_) {
    count_dropped(packet);
    return false;
  }
  classes_[packet.qos].push_back(packet);
  backlog_bytes_ += packet.size_bytes;
  ++backlog_packets_;
  count_enqueued(packet);
  return true;
}

std::optional<Packet> SpqQueue::dequeue() {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueSpq);
  for (auto& fifo : classes_) {
    if (fifo.empty()) continue;
    Packet p = fifo.front();
    fifo.pop_front();
    backlog_bytes_ -= p.size_bytes;
    --backlog_packets_;
    count_dequeued(p);
    maybe_mark_ecn(p);
    return p;
  }
  return std::nullopt;
}

}  // namespace aeq::net
