#include "net/red_queue.h"

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::net {

RedQueue::RedQueue(const RedConfig& config)
    : config_(config), rng_(config.seed) {
  AEQ_CHECK_GT(config_.capacity_bytes, 0u);
  AEQ_CHECK_LT(config_.min_threshold_bytes, config_.max_threshold_bytes);
  AEQ_CHECK_LE(config_.max_threshold_bytes, config_.capacity_bytes);
  AEQ_CHECK_GT(config_.max_drop_probability, 0.0);
  AEQ_CHECK_LE(config_.max_drop_probability, 1.0);
  AEQ_CHECK_GT(config_.ewma_weight, 0.0);
  AEQ_CHECK_LE(config_.ewma_weight, 1.0);
}

double RedQueue::drop_probability() const {
  if (avg_backlog_ <= static_cast<double>(config_.min_threshold_bytes)) {
    return 0.0;
  }
  if (avg_backlog_ >= static_cast<double>(config_.max_threshold_bytes)) {
    return 1.0;
  }
  const double span = static_cast<double>(config_.max_threshold_bytes -
                                          config_.min_threshold_bytes);
  return config_.max_drop_probability *
         (avg_backlog_ - static_cast<double>(config_.min_threshold_bytes)) /
         span;
}

bool RedQueue::enqueue(const Packet& packet) {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueRed);
  avg_backlog_ = (1.0 - config_.ewma_weight) * avg_backlog_ +
                 config_.ewma_weight * static_cast<double>(backlog_bytes_);
  count_offered(packet);
  const bool hard_full =
      backlog_bytes_ + packet.size_bytes > config_.capacity_bytes;
  if (hard_full || rng_.bernoulli(drop_probability())) {
    count_dropped(packet);
    return false;
  }
  queue_.push_back(packet);
  backlog_bytes_ += packet.size_bytes;
  count_enqueued(packet);
  return true;
}

std::optional<Packet> RedQueue::dequeue() {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueRed);
  if (queue_.empty()) return std::nullopt;
  Packet p = queue_.front();
  queue_.pop_front();
  backlog_bytes_ -= p.size_bytes;
  count_dequeued(p);
  maybe_mark_ecn(p);
  return p;
}

}  // namespace aeq::net
