// Configuration-driven construction of queue disciplines, so topologies and
// experiments can switch scheduler types without code changes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/queue.h"

namespace aeq::net {

enum class SchedulerType {
  kFifo,
  kWfq,      // virtual-time WFQ (default; what the paper assumes)
  kDwrr,     // deficit weighted round robin
  kSpq,      // strict priority
  kPfabric,  // remaining-size priority queue with eviction
};

struct QueueConfig {
  SchedulerType type = SchedulerType::kWfq;
  // Per-QoS weights (WFQ/DWRR) or class count (SPQ). Index 0 = highest QoS.
  std::vector<double> weights = {4.0, 1.0};
  std::uint64_t capacity_bytes = 0;  // 0 = unbounded (except pFabric)
  // ECN marking threshold for DCTCP-style senders (0 = no marking).
  std::uint64_t ecn_threshold_bytes = 0;
  // Per-class buffer cap for class-aware disciplines (WFQ/DWRR/SPQ):
  // isolates drops so an overloaded scavenger class cannot tail-drop
  // higher-QoS packets out of the shared buffer. 0 = shared buffer only.
  std::uint64_t per_class_capacity_bytes = 0;
  // Pre-sizes each class's packet ring for this many queued packets, so a
  // run whose queue depths stay below the hint performs no steady-state
  // ring growth (see QueueDiscipline::reserve_packets and the allocation
  // regression test). 0 = grow on demand.
  std::size_t reserve_packets = 0;
};

std::unique_ptr<QueueDiscipline> make_queue(const QueueConfig& config);

}  // namespace aeq::net
