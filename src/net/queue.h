// Queue-discipline interface for egress ports.
//
// A discipline decides the order packets leave a port and which packets are
// dropped when the (shared) buffer is full. Implementations: FIFO, WFQ
// (virtual-time), DWRR, SPQ, and pFabric's priority queue.
#pragma once

#include <cstdint>
#include <optional>

#include "net/packet.h"

namespace aeq::net {

struct QueueStats {
  // Every packet presented to enqueue(), accepted or not. The audit layer's
  // conservation invariant (src/audit/checks.h) is stated over these:
  //   offered == dequeued + dropped + resident
  // holds for every discipline, including pFabric whose drops can evict
  // packets that were previously accepted.
  std::uint64_t offered_packets = 0;
  std::uint64_t offered_bytes = 0;
  // Packets accepted into the queue (offered minus rejected arrivals).
  std::uint64_t enqueued_packets = 0;
  std::uint64_t enqueued_bytes = 0;
  // Rejected arrivals plus (pFabric) evicted residents.
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t dequeued_packets = 0;
  std::uint64_t dequeued_bytes = 0;
};

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  // Admits a packet; returns false when the packet was dropped.
  virtual bool enqueue(const Packet& packet) = 0;

  // Removes and returns the next packet to transmit, or nullopt when empty.
  // Implementations must route the result through maybe_mark_ecn() so ECN
  // marking applies uniformly.
  virtual std::optional<Packet> dequeue() = 0;

  // Enables ECN: packets dequeued while the backlog exceeds the threshold
  // get the congestion-experienced mark (DCTCP-style instantaneous
  // threshold marking). 0 disables marking.
  void set_ecn_threshold(std::uint64_t threshold_bytes) {
    ecn_threshold_bytes_ = threshold_bytes;
  }
  std::uint64_t ecn_threshold() const { return ecn_threshold_bytes_; }

  virtual bool empty() const = 0;
  virtual std::uint64_t backlog_bytes() const = 0;
  virtual std::uint64_t backlog_packets() const = 0;

  // Per-QoS backlog, for instrumentation; zero for disciplines without
  // class separation.
  virtual std::uint64_t class_backlog_bytes(QoSLevel /*qos*/) const {
    return 0;
  }

  // Per-QoS drop accounting (tail drops attributed to the class of the
  // dropped packet), needed to recover per-class drop rates from a shared
  // buffer; zero for disciplines without class separation.
  virtual std::uint64_t class_dropped_packets(QoSLevel /*qos*/) const {
    return 0;
  }
  virtual std::uint64_t class_dropped_bytes(QoSLevel /*qos*/) const {
    return 0;
  }

  const QueueStats& stats() const { return stats_; }

 protected:
  // Applies the ECN mark if the (post-dequeue) backlog is past threshold.
  void maybe_mark_ecn(Packet& packet) const {
    if (ecn_threshold_bytes_ != 0 &&
        backlog_bytes() >= ecn_threshold_bytes_) {
      packet.ecn_ce = true;
    }
  }

  // Stats bookkeeping shared by the disciplines. Every enqueue() must call
  // count_offered() exactly once, then exactly one of count_enqueued() /
  // count_dropped() per packet outcome — the audit layer's conservation
  // check is stated over these counters.
  void count_offered(const Packet& packet) {
    ++stats_.offered_packets;
    stats_.offered_bytes += packet.size_bytes;
  }
  void count_enqueued(const Packet& packet) {
    ++stats_.enqueued_packets;
    stats_.enqueued_bytes += packet.size_bytes;
  }
  void count_dropped(const Packet& packet) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += packet.size_bytes;
  }
  void count_dequeued(const Packet& packet) {
    ++stats_.dequeued_packets;
    stats_.dequeued_bytes += packet.size_bytes;
  }

  QueueStats stats_;
  std::uint64_t ecn_threshold_bytes_ = 0;
};

}  // namespace aeq::net
