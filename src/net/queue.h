// Queue-discipline interface for egress ports.
//
// A discipline decides the order packets leave a port and which packets are
// dropped when the (shared) buffer is full. Implementations: FIFO, WFQ
// (virtual-time), DWRR, SPQ, and pFabric's priority queue.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "net/packet.h"

namespace aeq::net {

struct QueueStats {
  // Every packet presented to enqueue(), accepted or not. The audit layer's
  // conservation invariant (src/audit/checks.h) is stated over these:
  //   offered == dequeued + dropped + resident
  // holds for every discipline, including pFabric whose drops can evict
  // packets that were previously accepted.
  std::uint64_t offered_packets = 0;
  std::uint64_t offered_bytes = 0;
  // Packets accepted into the queue (offered minus rejected arrivals).
  std::uint64_t enqueued_packets = 0;
  std::uint64_t enqueued_bytes = 0;
  // Rejected arrivals plus (pFabric) evicted residents.
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t dequeued_packets = 0;
  std::uint64_t dequeued_bytes = 0;
};

// Per-QoS-class slices of the queue counters, maintained by the base class
// alongside QueueStats: the count_*() helpers attribute every packet to its
// QoS class, so every discipline — classful or not — reports per-class
// backlog and drops through one accessor set (the counter sink and the
// audit layer read these instead of five discipline-specific APIs).
struct ClassCounters {
  std::array<std::uint64_t, kMaxQoSLevels> backlog_bytes{};
  std::array<std::uint64_t, kMaxQoSLevels> dropped_packets{};
  std::array<std::uint64_t, kMaxQoSLevels> dropped_bytes{};
};

class QueueDiscipline {
 public:
  virtual ~QueueDiscipline() = default;

  // Admits a packet; returns false when the packet was dropped.
  virtual bool enqueue(const Packet& packet) = 0;

  // Removes and returns the next packet to transmit, or nullopt when empty.
  // Implementations must route the result through maybe_mark_ecn() so ECN
  // marking applies uniformly.
  virtual std::optional<Packet> dequeue() = 0;

  // Enables ECN: packets dequeued while the backlog exceeds the threshold
  // get the congestion-experienced mark (DCTCP-style instantaneous
  // threshold marking). 0 disables marking.
  void set_ecn_threshold(std::uint64_t threshold_bytes) {
    ecn_threshold_bytes_ = threshold_bytes;
  }
  std::uint64_t ecn_threshold() const { return ecn_threshold_bytes_; }

  // Pre-sizes internal per-class storage for about `packets` queued packets
  // so enqueues below that depth never grow storage. A hint, not a cap:
  // queues still grow past it on demand. Disciplines without pooled storage
  // may ignore it.
  virtual void reserve_packets(std::size_t packets) { (void)packets; }

  virtual bool empty() const = 0;
  virtual std::uint64_t backlog_bytes() const = 0;
  virtual std::uint64_t backlog_packets() const = 0;

  // Per-QoS backlog, for instrumentation. The base class maintains these
  // from the count_*() calls, so they are exact for every discipline;
  // virtual only for decorators (PooledQueue) that report an inner queue's
  // backlog instead of their own.
  virtual std::uint64_t class_backlog_bytes(QoSLevel qos) const {
    return class_counters_.backlog_bytes[class_index(qos)];
  }

  // Per-QoS drop accounting (tail drops attributed to the class of the
  // dropped packet), needed to recover per-class drop rates from a shared
  // buffer.
  virtual std::uint64_t class_dropped_packets(QoSLevel qos) const {
    return class_counters_.dropped_packets[class_index(qos)];
  }
  virtual std::uint64_t class_dropped_bytes(QoSLevel qos) const {
    return class_counters_.dropped_bytes[class_index(qos)];
  }

  const QueueStats& stats() const { return stats_; }
  const ClassCounters& class_counters() const { return class_counters_; }

 protected:
  // Applies the ECN mark if the (post-dequeue) backlog is past threshold.
  void maybe_mark_ecn(Packet& packet) const {
    if (ecn_threshold_bytes_ != 0 &&
        backlog_bytes() >= ecn_threshold_bytes_) {
      packet.ecn_ce = true;
    }
  }

  // All valid QoS levels index directly; out-of-range levels (foreign to
  // the experiment's plane) collapse into the last slot instead of reading
  // out of bounds.
  static std::size_t class_index(QoSLevel qos) {
    return qos < kMaxQoSLevels ? qos : kMaxQoSLevels - 1;
  }

  // Stats bookkeeping shared by the disciplines. Every enqueue() must call
  // count_offered() exactly once, then exactly one of count_enqueued() /
  // count_dropped() per packet outcome — the audit layer's conservation
  // check is stated over these counters. A discipline that removes an
  // already-accepted resident to make room (pFabric eviction) must use
  // count_evicted() so the class backlog tracks the residents exactly.
  void count_offered(const Packet& packet) {
    ++stats_.offered_packets;
    stats_.offered_bytes += packet.size_bytes;
  }
  void count_enqueued(const Packet& packet) {
    ++stats_.enqueued_packets;
    stats_.enqueued_bytes += packet.size_bytes;
    class_counters_.backlog_bytes[class_index(packet.qos)] +=
        packet.size_bytes;
  }
  void count_dropped(const Packet& packet) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += packet.size_bytes;
    const std::size_t cls = class_index(packet.qos);
    ++class_counters_.dropped_packets[cls];
    class_counters_.dropped_bytes[cls] += packet.size_bytes;
  }
  void count_evicted(const Packet& packet) {
    count_dropped(packet);
    class_counters_.backlog_bytes[class_index(packet.qos)] -=
        packet.size_bytes;
  }
  void count_dequeued(const Packet& packet) {
    ++stats_.dequeued_packets;
    stats_.dequeued_bytes += packet.size_bytes;
    class_counters_.backlog_bytes[class_index(packet.qos)] -=
        packet.size_bytes;
  }

  QueueStats stats_;
  ClassCounters class_counters_;
  std::uint64_t ecn_threshold_bytes_ = 0;
};

}  // namespace aeq::net
