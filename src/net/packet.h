// Packet model shared by every protocol in the simulator.
//
// One concrete struct (rather than a class hierarchy) keeps the hot path
// allocation-free and copyable; protocol-specific fields are documented and
// ignored by components that do not use them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/units.h"

namespace aeq::net {

// Host identifier within a topology. Switches use a separate id space.
using HostId = std::int32_t;
inline constexpr HostId kNoHost = -1;

// QoS level index: 0 is the highest priority (QoS_h). The number of levels
// in play is a property of the experiment (2 or 3 in the paper).
using QoSLevel = std::uint8_t;
inline constexpr QoSLevel kQoSHigh = 0;
inline constexpr QoSLevel kQoSMid = 1;
inline constexpr QoSLevel kQoSLow = 2;
inline constexpr std::size_t kMaxQoSLevels = 8;

enum class PacketType : std::uint8_t {
  kData,         // payload-carrying segment
  kAck,          // transport acknowledgment
  kGrant,        // Homa receiver grant
  kRateRequest,  // D3/PDQ header-only control packet (piggybacked in practice)
  kRateResponse, // D3/PDQ allocation feedback
};

// Fields every hop and queue discipline leaves alone but some protocol or
// endpoint needs: kept in a trailing section so the fields consulted per
// hop (routing, sizing, sequencing, ECN) pack into the first cache line of
// the packet.
struct PacketCold {
  std::uint64_t msg_bytes = 0;  // total message size (message-based stacks)

  // pFabric: remaining bytes of the message at send time (lower = higher
  // priority). Homa: network priority level chosen by the receiver.
  double priority = 0.0;

  // Deadline-aware protocols (D3/PDQ).
  sim::Time deadline = 0.0;     // absolute
  double requested_rate = 0.0;  // bytes/sec
  double granted_rate = 0.0;    // bytes/sec

  // Homa grants: offset granted up to.
  std::uint64_t grant_offset = 0;

  // Application-level correlation tag carried end-to-end with the message
  // (request/response matching in the two-sided RPC layer).
  std::uint64_t app_tag = 0;
};

struct Packet {
  // --- hot section: touched at every hop; fits one cache line ---
  std::uint64_t id = 0;        // globally unique, assigned at creation
  std::uint64_t flow_id = 0;  // (src, dst, qos) stream the packet belongs to
  std::uint64_t rpc_id = 0;   // RPC/message the payload belongs to
  std::uint64_t seq = 0;      // byte offset of first payload byte
  std::uint64_t ack_seq = 0;  // cumulative ack (next expected byte)
  sim::Time sent_time = 0.0;  // stamped by sender; echoed by ACKs for RTT
  HostId src = kNoHost;
  HostId dst = kNoHost;
  std::uint32_t size_bytes = 0;
  QoSLevel qos = kQoSHigh;
  PacketType type = PacketType::kData;

  // ECN: congestion-experienced mark set by queues past their marking
  // threshold; echoed back by ACKs for DCTCP-style senders.
  bool ecn_ce = false;
  bool ecn_echo = false;

  // --- cold section: protocol/endpoint metadata carried along ---
  PacketCold cold;

  bool is_control() const { return type != PacketType::kData; }
};

// The split is only worth its churn if the layout actually holds: the whole
// hot section must land in the packet's first cache line, and the overall
// copy must stay smaller than the 136-byte pre-split struct.
static_assert(offsetof(Packet, cold) == 64, "hot section must fill exactly one cache line");
static_assert(sizeof(Packet) == 64 + sizeof(PacketCold), "unexpected padding between sections");
static_assert(sizeof(Packet) <= 120, "Packet regrew past the post-split budget");

// Receives packets delivered by a link. Implemented by switches and by the
// host-side demultiplexer.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(const Packet& packet) = 0;
};

}  // namespace aeq::net
