// An egress port: a queue discipline drained onto a link.
//
// The port serializes one packet at a time at the link rate and delivers it
// to the connected peer after the propagation delay. It is the only
// component that consumes simulated link time, so per-port busy time gives
// exact utilization.
#pragma once

#include <memory>
#include <utility>

#include "net/packet.h"
#include "net/queue.h"
#include "obs/recorder.h"
#include "util/ring_buffer.h"
#include "sim/simulator.h"

namespace aeq::net {

// Alternative receiving end of a link for topologies whose far side lives
// on a *different* event scheduler (sharded simulation): instead of the
// port scheduling the delivery event itself, it hands the packet over at
// serialization end together with the arrival timestamp (tx-complete +
// propagation), and the receiver is responsible for landing it at that
// time. Keeping the propagation leg on the receiver's side is what gives
// the sharded executive its lookahead window.
class LinkReceiver {
 public:
  virtual ~LinkReceiver() = default;
  virtual void on_tx_complete(const Packet& packet, sim::Time arrival) = 0;
};

// Tie-rank for a packet-delivery event (see sim/scheduler.h): the source
// host id, so equal-timestamp deliveries from distinct hosts order by host
// id in every execution mode. One NIC spaces its deliveries a serialization
// time apart, so two deliveries can never collide on the same (time, rank).
// Packets without a source (raw unit tests) keep insertion-order semantics.
inline std::uint16_t delivery_tie_rank(HostId src) {
  return (src >= 0 && src < static_cast<HostId>(sim::kTieRankDefault))
             ? static_cast<std::uint16_t>(src)
             : sim::kTieRankDefault;
}

class Port {
 public:
  Port(sim::Simulator& simulator, sim::Rate rate_bytes_per_sec,
       sim::Time propagation_delay, std::unique_ptr<QueueDiscipline> queue);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  // Sets the receiving end of the link. Must be called before send().
  void connect(PacketSink* peer) { peer_ = peer; }

  // Link-handoff mode: at serialization end the packet goes to `link`
  // (stamped with its arrival time) instead of this port scheduling the
  // delivery event. Exactly one of connect(PacketSink*) / connect(
  // LinkReceiver*) may be used per port. Timing is identical to the sink
  // mode as long as the receiver lands the packet at the given arrival
  // time; the conservation counters treat the handoff as delivery.
  void connect(LinkReceiver* link) { link_ = link; }

  // Ranks this port's delivery events by the packet's source host
  // (delivery_tie_rank). Topology builders set this on host-NIC uplinks —
  // the one link class whose delivery event is scheduled at a different
  // point in serial (tx-start) vs sharded (tx-end or barrier) execution, so
  // plain insertion-order tie-breaking would diverge between the modes.
  // Handoff-mode ports ignore the flag: ShardFabric ranks the arrival it
  // lands instead.
  void rank_deliveries_by_source() { rank_by_src_ = true; }

  // Attaches the telemetry recorder; `port_id` is the id this port was
  // registered under (obs::Recorder::register_port). Null detaches — the
  // packet-event emission then costs a single predictable branch.
  void set_observer(obs::Recorder* recorder, std::uint32_t port_id) {
    obs_ = recorder;
    obs_port_id_ = port_id;
  }

  // Enqueues a packet and starts transmitting if the link is idle.
  void send(const Packet& packet);

  // Pre-sizes the in-flight ring (and forwards the hint to the queue
  // discipline) so steady-state transmission never grows storage.
  void reserve_packets(std::size_t packets) {
    in_flight_.reserve(packets);
    queue_->reserve_packets(packets);
  }

  QueueDiscipline& queue() { return *queue_; }
  const QueueDiscipline& queue() const { return *queue_; }

  sim::Rate rate() const { return rate_; }
  sim::Time propagation_delay() const { return propagation_; }

  // Cumulative time spent serializing packets, up to the current simulated
  // time. Completed transmissions are accounted in full; an in-progress one
  // contributes only its elapsed part, so mid-packet samples never count
  // serialization time that has not happened yet.
  sim::Time busy_time() const {
    return busy_time_ + (busy_ ? sim_.now() - tx_start_ : 0.0);
  }

  // Fraction of [0, now] the link spent transmitting.
  double utilization(sim::Time now) const {
    return now > 0 ? busy_time() / now : 0.0;
  }

  // Link-level conservation counters for the audit layer: every packet the
  // discipline hands to the link is either still propagating (in_flight) or
  // has been delivered to the peer — dequeued == delivered + in_flight.
  std::uint64_t delivered_packets() const { return delivered_packets_; }
  std::uint64_t in_flight_packets() const { return in_flight_.size(); }

 private:
  void try_transmit();
  void deliver_head();
  void emit_packet_event(obs::PacketEventKind kind, const Packet& packet);

  sim::Simulator& sim_;
  sim::Rate rate_;
  sim::Time propagation_;
  std::unique_ptr<QueueDiscipline> queue_;
  PacketSink* peer_ = nullptr;
  LinkReceiver* link_ = nullptr;
  obs::Recorder* obs_ = nullptr;
  std::uint32_t obs_port_id_ = 0;
  bool busy_ = false;
  bool rank_by_src_ = false;
  sim::Time busy_time_ = 0.0;  // completed transmissions only
  sim::Time tx_start_ = 0.0;   // start of the in-progress transmission
  std::uint64_t delivered_packets_ = 0;
  // Packets serialized but not yet delivered (propagation in progress).
  // Delivery events are scheduled in FIFO order with a constant propagation
  // delay, so the head is always the next to arrive; keeping the packets
  // here lets the hot-path events capture only `this` (no allocation).
  util::RingBuffer<Packet> in_flight_;
};

}  // namespace aeq::net
