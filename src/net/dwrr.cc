#include "net/dwrr.h"

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::net {

DwrrQueue::DwrrQueue(std::vector<double> weights,
                     std::uint64_t capacity_bytes,
                     std::uint64_t quantum_scale)
    : capacity_bytes_(capacity_bytes) {
  AEQ_ASSERT(!weights.empty());
  classes_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    AEQ_CHECK_GT(weights[i], 0.0);
    classes_[i].quantum = weights[i] * static_cast<double>(quantum_scale);
  }
}

bool DwrrQueue::enqueue(const Packet& packet) {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueDwrr);
  AEQ_CHECK_LT(packet.qos, classes_.size());
  count_offered(packet);
  ClassState& cls = classes_[packet.qos];
  if (capacity_bytes_ != 0 &&
      backlog_bytes_ + packet.size_bytes > capacity_bytes_) {
    count_dropped(packet);
    return false;
  }
  cls.fifo.push_back(packet);
  backlog_bytes_ += packet.size_bytes;
  ++backlog_packets_;
  count_enqueued(packet);
  return true;
}

std::optional<Packet> DwrrQueue::dequeue() {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueDwrr);
  if (backlog_packets_ == 0) return std::nullopt;
  // Walk classes round-robin; a class with backlog whose deficit covers the
  // head packet sends. A visited empty class forfeits its deficit.
  for (std::size_t scanned = 0; scanned < 2 * classes_.size() + 1; ++scanned) {
    ClassState& cls = classes_[round_cursor_];
    if (cls.fifo.empty()) {
      cls.deficit = 0.0;
      round_cursor_ = (round_cursor_ + 1) % classes_.size();
      cursor_fresh_ = true;
      continue;
    }
    if (cursor_fresh_) {
      cls.deficit += cls.quantum;
      cursor_fresh_ = false;
    }
    const Packet& head = cls.fifo.front();
    if (cls.deficit >= static_cast<double>(head.size_bytes)) {
      Packet p = head;
      cls.fifo.pop_front();
      cls.deficit -= static_cast<double>(p.size_bytes);
      backlog_bytes_ -= p.size_bytes;
      --backlog_packets_;
      count_dequeued(p);
      if (cls.fifo.empty()) cls.deficit = 0.0;
      maybe_mark_ecn(p);
      return p;
    }
    round_cursor_ = (round_cursor_ + 1) % classes_.size();
    cursor_fresh_ = true;
  }
  // Deficits grow by a full quantum per visit, so one extra lap always
  // releases a packet; reaching here would be a logic error.
  AEQ_ASSERT_MSG(false, "DWRR failed to release a packet");
  return std::nullopt;
}

}  // namespace aeq::net
