#include "net/shard_fabric.h"

#include <utility>

#include "sim/assert.h"

namespace aeq::net {

ShardFabric::ShardFabric(std::vector<sim::Simulator*> sims,
                         std::vector<std::uint32_t> shard_of_host,
                         std::size_t mailbox_capacity)
    : sims_(std::move(sims)), shard_of_host_(std::move(shard_of_host)) {
  const std::size_t shards = sims_.size();
  AEQ_CHECK_GE(shards, 1u);
  for (const std::uint32_t shard : shard_of_host_) {
    AEQ_CHECK_LT(shard, shards);
  }
  arrivals_.resize(shards);
  links_.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    arrivals_[k].sim = sims_[k];
    links_.emplace_back(this, static_cast<std::uint32_t>(k));
  }
  mailboxes_.reserve(shards * shards);
  for (std::size_t i = 0; i < shards * shards; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>(mailbox_capacity));
  }
}

void ShardFabric::set_local_switch(std::size_t shard, Switch* sw) {
  AEQ_ASSERT(sw != nullptr);
  arrivals_.at(shard).local_switch = sw;
}

LinkReceiver* ShardFabric::nic_link(std::size_t shard) {
  return &links_.at(shard);
}

void ShardFabric::ArrivalPool::land(sim::Time arrival, const Packet& packet) {
  std::uint32_t slot;
  if (!free_slots.empty()) {
    slot = free_slots.back();
    free_slots.pop_back();
    slots[slot] = packet;
  } else {
    slot = static_cast<std::uint32_t>(slots.size());
    slots.push_back(packet);
  }
  // Ranked exactly like the serial uplink's delivery event (see
  // Port::rank_deliveries_by_source): the rank — not the landing order —
  // decides same-timestamp ties, so tx-end/barrier insertion reproduces the
  // serial tx-start schedule.
  sim->schedule_at(arrival, [this, slot] { fire(slot); },
                   delivery_tie_rank(packet.src));
}

void ShardFabric::ArrivalPool::fire(std::uint32_t slot) {
  const Packet packet = slots[slot];
  free_slots.push_back(slot);
  local_switch->receive(packet);
}

void ShardFabric::ShardLink::on_tx_complete(const Packet& packet,
                                            sim::Time arrival) {
  const std::uint32_t dst_shard = fabric_->shard_of(packet.dst);
  if (dst_shard == shard_) {
    // Same shard: land directly — one arrival event, exactly like the
    // serial link's delivery event.
    fabric_->arrivals_[shard_].land(arrival, packet);
    return;
  }
  Mailbox& box = fabric_->mailbox(shard_, dst_shard);
  ++box.pushed;
  if (!box.ring.try_push({arrival, packet})) {
    // Ring full: spill to the producer-owned overflow. The consumer only
    // touches it at the barrier, and FIFO order is preserved because once
    // the ring is full it stays full until that same barrier.
    box.overflow.push_back({arrival, packet});
    ++box.overflowed;
  }
  // Producer-side depth sample: within a window nothing is consumed, so
  // push time sees the true (monotone within the window) depth.
  const std::uint64_t depth = box.ring.approx_size() + box.overflow.size();
  if (depth > box.depth_hwm) box.depth_hwm = depth;
}

void ShardFabric::drain_all() {
  // Fixed (destination, source, FIFO) order keeps the destination shard's
  // event-insertion order — and therefore same-timestamp tie-breaking —
  // deterministic for a given seed and shard count.
  const std::size_t shards = num_shards();
  for (std::size_t dst = 0; dst < shards; ++dst) {
    ArrivalPool& pool = arrivals_[dst];
    for (std::size_t src = 0; src < shards; ++src) {
      if (src == dst) continue;
      Mailbox& box = mailbox(src, dst);
      StampedPacket msg;
      while (box.ring.try_pop(msg)) pool.land(msg.arrival, msg.packet);
      for (const StampedPacket& spilled : box.overflow) {
        pool.land(spilled.arrival, spilled.packet);
      }
      box.overflow.clear();
    }
  }
}

bool ShardFabric::idle() const {
  for (const auto& box : mailboxes_) {
    if (!box->ring.empty() || !box->overflow.empty()) return false;
  }
  return true;
}

std::uint64_t ShardFabric::cross_shard_packets() const {
  std::uint64_t total = 0;
  for (const auto& box : mailboxes_) total += box->pushed;
  return total;
}

std::uint64_t ShardFabric::mailbox_overflows() const {
  std::uint64_t total = 0;
  for (const auto& box : mailboxes_) total += box->overflowed;
  return total;
}

std::uint64_t ShardFabric::mailbox_depth_hwm() const {
  std::uint64_t hwm = 0;
  for (const auto& box : mailboxes_) {
    if (box->depth_hwm > hwm) hwm = box->depth_hwm;
  }
  return hwm;
}

}  // namespace aeq::net
