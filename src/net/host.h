// A host endpoint: an egress port toward the fabric plus a delivery callback
// the transport layer installs to receive packets addressed to this host.
#pragma once

#include <functional>
#include <memory>

#include "net/packet.h"
#include "net/port.h"

namespace aeq::net {

class Host final : public PacketSink {
 public:
  using DeliveryHandler = std::function<void(const Packet&)>;

  Host(HostId id, std::unique_ptr<Port> egress)
      : id_(id), egress_(std::move(egress)) {}

  HostId id() const { return id_; }

  // Sends a packet into the fabric via this host's NIC port.
  void send(const Packet& packet) { egress_->send(packet); }

  // Installs the upper-layer receive handler (transport demux).
  void set_delivery_handler(DeliveryHandler handler) {
    handler_ = std::move(handler);
  }

  void receive(const Packet& packet) override {
    if (handler_) handler_(packet);
  }

  Port& egress() { return *egress_; }
  const Port& egress() const { return *egress_; }

 private:
  HostId id_;
  std::unique_ptr<Port> egress_;
  DeliveryHandler handler_;
};

}  // namespace aeq::net
