// pFabric switch queue (Alizadeh et al., SIGCOMM'13).
//
// Packets carry their message's remaining size in `priority` (lower value =
// more urgent). The queue is tiny (≈2 BDP); dequeue picks the packet with the
// minimum priority (earliest arrival among ties, which approximates
// pFabric's same-flow-earliest rule since a flow's packets arrive in order),
// and overflow drops the packet with the maximum priority — possibly the
// arriving one.
#pragma once

#include <cstdint>
#include <vector>

#include "net/queue.h"

namespace aeq::net {

class PfabricQueue final : public QueueDiscipline {
 public:
  explicit PfabricQueue(std::uint64_t capacity_bytes);

  bool enqueue(const Packet& packet) override;
  std::optional<Packet> dequeue() override;

  void reserve_packets(std::size_t packets) override {
    queue_.reserve(packets);
  }

  bool empty() const override { return queue_.empty(); }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  std::uint64_t backlog_packets() const override { return queue_.size(); }

 private:
  struct Entry {
    Packet packet;
    // Sort key copied out of the packet's cold section at enqueue so the
    // min/max scans stay within the entries they are comparing.
    double priority;
    std::uint64_t arrival_seq;
  };

  std::size_t min_priority_index() const;
  std::size_t max_priority_index() const;

  std::uint64_t capacity_bytes_;
  std::uint64_t backlog_bytes_ = 0;
  std::uint64_t next_arrival_seq_ = 0;
  std::vector<Entry> queue_;  // linear scan: the buffer is tiny by design
};

}  // namespace aeq::net
