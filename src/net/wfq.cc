#include "net/wfq.h"

#include <algorithm>
#include <limits>

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::net {

WfqQueue::WfqQueue(std::vector<double> weights, std::uint64_t capacity_bytes,
                   std::uint64_t per_class_capacity_bytes)
    : capacity_bytes_(capacity_bytes),
      per_class_capacity_bytes_(per_class_capacity_bytes) {
  AEQ_ASSERT_MSG(!weights.empty(), "WFQ needs at least one class");
  AEQ_CHECK_LE(weights.size(), kMaxQoSLevels);
  classes_.resize(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    AEQ_CHECK_GT_MSG(weights[i], 0.0, "WFQ weights must be positive");
    classes_[i].weight = weights[i];
  }
}

bool WfqQueue::enqueue(const Packet& packet) {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueWfq);
  AEQ_CHECK_LT_MSG(packet.qos, classes_.size(), "packet QoS out of range");
  count_offered(packet);
  ClassState& cls = classes_[packet.qos];
  if (capacity_bytes_ != 0 &&
      backlog_bytes_ + packet.size_bytes > capacity_bytes_) {
    count_dropped(packet);
    return false;
  }
  if (per_class_capacity_bytes_ != 0 &&
      class_backlog_bytes(packet.qos) + packet.size_bytes >
          per_class_capacity_bytes_) {
    count_dropped(packet);
    return false;
  }
  const double start = std::max(virtual_time_, cls.last_finish);
  const double finish =
      start + static_cast<double>(packet.size_bytes) / cls.weight;
  // Finish tags within a class are non-decreasing by construction; the
  // audit layer re-derives this from the pending packets (audit_tags).
  AEQ_AUDIT_ONLY(AEQ_CHECK_GE(finish, cls.last_finish);)
  cls.last_finish = finish;
  cls.fifo.push_back(Tagged{packet, start, finish});
  backlog_bytes_ += packet.size_bytes;
  ++backlog_packets_;
  count_enqueued(packet);
  return true;
}

std::optional<Packet> WfqQueue::dequeue() {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueWfq);
  if (backlog_packets_ == 0) return std::nullopt;
  std::size_t best = classes_.size();
  double best_finish = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const auto& cls = classes_[i];
    if (cls.fifo.empty()) continue;
    if (cls.fifo.front().finish_tag < best_finish) {
      best_finish = cls.fifo.front().finish_tag;
      best = i;
    }
  }
  AEQ_CHECK_LT(best, classes_.size());
  ClassState& cls = classes_[best];
  Tagged tagged = cls.fifo.front();
  cls.fifo.pop_front();
  // Advance the virtual clock to the service start of the selected packet so
  // that newly arriving classes do not accrue credit while idle. Taking the
  // max keeps the clock monotone; the audit registry independently verifies
  // monotonicity across dequeues (wfq/virtual-time-monotone).
  virtual_time_ = std::max(virtual_time_, tagged.start_tag);
  backlog_bytes_ -= tagged.packet.size_bytes;
  --backlog_packets_;
  count_dequeued(tagged.packet);
  maybe_mark_ecn(tagged.packet);
  return tagged.packet;
}

void WfqQueue::audit_tags() const {
  std::uint64_t pending_bytes = 0;
  std::uint64_t pending_packets = 0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    const ClassState& cls = classes_[i];
    std::uint64_t class_bytes = 0;
    double prev_finish = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cls.fifo.size(); ++j) {
      const Tagged& tagged = cls.fifo[j];
      AEQ_CHECK_LE_MSG(tagged.start_tag, tagged.finish_tag,
                       "WFQ start tag past its finish tag");
      AEQ_CHECK_LE_MSG(prev_finish, tagged.finish_tag,
                       "WFQ finish tags out of order within a class");
      prev_finish = tagged.finish_tag;
      class_bytes += tagged.packet.size_bytes;
    }
    if (!cls.fifo.empty()) {
      AEQ_CHECK_EQ_MSG(cls.last_finish, cls.fifo.back().finish_tag,
                       "WFQ last_finish does not match newest pending tag");
    }
    AEQ_CHECK_EQ_MSG(class_backlog_bytes(static_cast<QoSLevel>(i)),
                     class_bytes,
                     "WFQ per-class backlog out of sync with pending bytes");
    pending_bytes += class_bytes;
    pending_packets += cls.fifo.size();
  }
  AEQ_CHECK_EQ(backlog_bytes_, pending_bytes);
  AEQ_CHECK_EQ(backlog_packets_, pending_packets);
}

}  // namespace aeq::net
