#include "net/fifo_queue.h"

namespace aeq::net {

bool FifoQueue::enqueue(const Packet& packet) {
  if (capacity_bytes_ != 0 &&
      backlog_bytes_ + packet.size_bytes > capacity_bytes_) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += packet.size_bytes;
    return false;
  }
  queue_.push_back(packet);
  backlog_bytes_ += packet.size_bytes;
  ++stats_.enqueued_packets;
  return true;
}

std::optional<Packet> FifoQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  Packet p = queue_.front();
  queue_.pop_front();
  backlog_bytes_ -= p.size_bytes;
  ++stats_.dequeued_packets;
  stats_.dequeued_bytes += p.size_bytes;
  maybe_mark_ecn(p);
  return p;
}

}  // namespace aeq::net
