#include "net/fifo_queue.h"

#include "obs/prof/profiler.h"

namespace aeq::net {

bool FifoQueue::enqueue(const Packet& packet) {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueFifo);
  count_offered(packet);
  if (capacity_bytes_ != 0 &&
      backlog_bytes_ + packet.size_bytes > capacity_bytes_) {
    count_dropped(packet);
    return false;
  }
  queue_.push_back(packet);
  backlog_bytes_ += packet.size_bytes;
  count_enqueued(packet);
  return true;
}

std::optional<Packet> FifoQueue::dequeue() {
  const obs::prof::ProfRegion prof(obs::prof::Region::kQueueFifo);
  if (queue_.empty()) return std::nullopt;
  Packet p = queue_.front();
  queue_.pop_front();
  backlog_bytes_ -= p.size_bytes;
  count_dequeued(p);
  maybe_mark_ecn(p);
  return p;
}

}  // namespace aeq::net
