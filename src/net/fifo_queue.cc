#include "net/fifo_queue.h"

namespace aeq::net {

bool FifoQueue::enqueue(const Packet& packet) {
  count_offered(packet);
  if (capacity_bytes_ != 0 &&
      backlog_bytes_ + packet.size_bytes > capacity_bytes_) {
    count_dropped(packet);
    return false;
  }
  queue_.push_back(packet);
  backlog_bytes_ += packet.size_bytes;
  count_enqueued(packet);
  return true;
}

std::optional<Packet> FifoQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  Packet p = queue_.front();
  queue_.pop_front();
  backlog_bytes_ -= p.size_bytes;
  count_dequeued(p);
  maybe_mark_ecn(p);
  return p;
}

}  // namespace aeq::net
