// Single tail-drop FIFO queue (the baseline discipline).
#pragma once

#include <cstdint>

#include "net/queue.h"
#include "util/ring_buffer.h"

namespace aeq::net {

class FifoQueue final : public QueueDiscipline {
 public:
  // capacity_bytes == 0 means unbounded.
  explicit FifoQueue(std::uint64_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}

  bool enqueue(const Packet& packet) override;
  std::optional<Packet> dequeue() override;

  void reserve_packets(std::size_t packets) override {
    queue_.reserve(packets);
  }

  bool empty() const override { return queue_.empty(); }
  std::uint64_t backlog_bytes() const override { return backlog_bytes_; }
  std::uint64_t backlog_packets() const override { return queue_.size(); }

 private:
  std::uint64_t capacity_bytes_;
  std::uint64_t backlog_bytes_ = 0;
  util::RingBuffer<Packet> queue_;
};

}  // namespace aeq::net
