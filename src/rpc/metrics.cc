#include "rpc/metrics.h"

#include "sim/assert.h"

namespace aeq::rpc {

RpcMetrics::RpcMetrics(std::size_t num_qos, const SloConfig& slo,
                       std::size_t num_hosts)
    : num_qos_(num_qos),
      slo_(slo),
      rnl_run_(num_qos),
      rnl_requested_(num_qos),
      rnl_per_mtu_run_(num_qos),
      bytes_requested_(num_qos, 0),
      bytes_admitted_(num_qos, 0),
      bytes_completed_(num_qos, 0),
      completed_(num_qos, 0),
      downgraded_(num_qos, 0),
      downgraded_delivered_(num_qos, 0),
      terminated_(num_qos, 0),
      slo_eligible_(num_qos, 0),
      slo_met_(num_qos, 0),
      slo_eligible_bytes_(num_qos, 0),
      slo_met_bytes_(num_qos, 0),
      outstanding_(num_hosts, {0, 0}) {
  AEQ_CHECK_GE(num_qos, 2u);
}

void RpcMetrics::on_issue(net::HostId dst, net::QoSLevel qos_requested,
                          net::QoSLevel qos_run, std::uint64_t bytes,
                          bool admission_dropped) {
  AEQ_CHECK_LT(qos_requested, num_qos_);
  AEQ_CHECK_LT(qos_run, num_qos_);
  bytes_requested_[qos_requested] += bytes;
  // Admission-rejected RPCs never enter the network, so their bytes are not
  // admitted traffic; crediting them would overstate the admitted mix of
  // hard-drop policies.
  if (!admission_dropped) bytes_admitted_[qos_run] += bytes;
  const int group =
      static_cast<std::size_t>(qos_run) + 1 == num_qos_ ? 1 : 0;
  ++outstanding_[static_cast<std::size_t>(dst)][group];
}

void RpcMetrics::record(const RpcRecord& record) {
  AEQ_CHECK_LT(record.qos_requested, num_qos_);
  AEQ_CHECK_LT(record.qos_run, num_qos_);
  if (record.downgraded) {
    ++downgraded_[record.qos_requested];
    ++downgraded_delivered_[record.qos_run];
    ++downgraded_channel_[channel_key(record.src, record.dst,
                                      record.qos_requested)];
  }

  const int group =
      static_cast<std::size_t>(record.qos_run) + 1 == num_qos_ ? 1 : 0;
  auto& gauge = outstanding_[static_cast<std::size_t>(record.dst)][group];
  --gauge;
  AEQ_DCHECK(gauge >= 0);

  if (record.terminated) {
    ++terminated_[record.qos_requested];
    if (slo_.has_slo(record.qos_requested)) {
      // A killed RPC misses its SLO.
      ++slo_eligible_[record.qos_requested];
      slo_eligible_bytes_[record.qos_requested] += record.bytes;
    }
    return;
  }

  ++completed_[record.qos_run];
  bytes_completed_[record.qos_run] += record.bytes;

  if (slo_.has_slo(record.qos_requested)) {
    ++slo_eligible_[record.qos_requested];
    slo_eligible_bytes_[record.qos_requested] += record.bytes;
    if (record.rnl <=
        slo_.absolute_target(record.qos_requested, record.size_mtus)) {
      ++slo_met_[record.qos_requested];
      slo_met_bytes_[record.qos_requested] += record.bytes;
    }
  }

  if (record.issued >= warmup_end_) {
    rnl_run_[record.qos_run].add(record.rnl);
    rnl_requested_[record.qos_requested].add(record.rnl);
    rnl_per_mtu_run_[record.qos_run].add(
        record.rnl / static_cast<double>(record.size_mtus));
  }
}

double RpcMetrics::admitted_share(net::QoSLevel qos) const {
  std::uint64_t total = 0;
  for (auto b : bytes_admitted_) total += b;
  return total ? static_cast<double>(bytes_admitted_[qos]) /
                     static_cast<double>(total)
               : 0.0;
}

double RpcMetrics::requested_share(net::QoSLevel qos) const {
  std::uint64_t total = 0;
  for (auto b : bytes_requested_) total += b;
  return total ? static_cast<double>(bytes_requested_[qos]) /
                     static_cast<double>(total)
               : 0.0;
}

double RpcMetrics::slo_met_fraction(net::QoSLevel qos_requested) const {
  const auto eligible = slo_eligible_[qos_requested];
  return eligible ? static_cast<double>(slo_met_[qos_requested]) /
                        static_cast<double>(eligible)
                  : 0.0;
}

double RpcMetrics::slo_met_fraction_bytes(
    net::QoSLevel qos_requested) const {
  const auto eligible = slo_eligible_bytes_[qos_requested];
  return eligible ? static_cast<double>(slo_met_bytes_[qos_requested]) /
                        static_cast<double>(eligible)
                  : 0.0;
}

std::uint64_t RpcMetrics::channel_key(net::HostId src, net::HostId dst,
                                      net::QoSLevel qos) const {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 8) |
         qos;
}

std::uint64_t RpcMetrics::downgraded_on_channel(net::HostId src,
                                                net::HostId dst,
                                                net::QoSLevel qos) const {
  const std::uint64_t* count =
      downgraded_channel_.find(channel_key(src, dst, qos));
  return count == nullptr ? 0 : *count;
}

void RpcMetrics::merge(const RpcMetrics& other) {
  AEQ_CHECK_EQ(num_qos_, other.num_qos_);
  AEQ_CHECK_EQ(outstanding_.size(), other.outstanding_.size());
  for (std::size_t q = 0; q < num_qos_; ++q) {
    rnl_run_[q].merge(other.rnl_run_[q]);
    rnl_requested_[q].merge(other.rnl_requested_[q]);
    rnl_per_mtu_run_[q].merge(other.rnl_per_mtu_run_[q]);
    bytes_requested_[q] += other.bytes_requested_[q];
    bytes_admitted_[q] += other.bytes_admitted_[q];
    bytes_completed_[q] += other.bytes_completed_[q];
    completed_[q] += other.completed_[q];
    downgraded_[q] += other.downgraded_[q];
    downgraded_delivered_[q] += other.downgraded_delivered_[q];
    terminated_[q] += other.terminated_[q];
    slo_eligible_[q] += other.slo_eligible_[q];
    slo_met_[q] += other.slo_met_[q];
    slo_eligible_bytes_[q] += other.slo_eligible_bytes_[q];
    slo_met_bytes_[q] += other.slo_met_bytes_[q];
  }
  // Commutative merge (+= per key); visit order cannot reach any output.
  // detlint:allow(unordered-iter)
  other.downgraded_channel_.for_each(
      [this](std::uint64_t key, const std::uint64_t& count) {
        downgraded_channel_[key] += count;
      });
  for (std::size_t h = 0; h < outstanding_.size(); ++h) {
    outstanding_[h][0] += other.outstanding_[h][0];
    outstanding_[h][1] += other.outstanding_[h][1];
  }
}

std::uint64_t RpcMetrics::total_completed() const {
  std::uint64_t total = 0;
  for (auto c : completed_) total += c;
  return total;
}

}  // namespace aeq::rpc
