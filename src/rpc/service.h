// Two-sided RPC operations (paper Appendix A): a complete storage operation
// is a request followed by a response, where one side carries the payload —
// the request for WRITEs (~400:1 vs its response) and the response for
// READs (~200:1). RNL continues to be measured per message by the normal
// RPC stack (the payload side dominates, as the paper argues); this layer
// adds the end-to-end *operation* latency and the server-side responder.
//
// Correlation and the READ payload size ride in the message's app_tag
// (layout below), so no extra wire format is needed.
#pragma once

#include <cstdint>
#include <functional>

#include "rpc/rpc_stack.h"
#include "sim/simulator.h"
#include "transport/host_stack.h"
#include "util/flat_map.h"

namespace aeq::rpc {

enum class RpcOp : std::uint8_t { kRead = 1, kWrite = 2 };

struct ServiceConfig {
  // Size of the non-payload side (request of a READ / response of a WRITE).
  std::uint64_t control_bytes = 256;
};

// One service endpoint per host; acts as both client (read/write) and
// server (auto-responder).
class RpcServiceNode {
 public:
  struct OpCompletion {
    std::uint64_t op_id = 0;
    RpcOp op = RpcOp::kRead;
    net::HostId peer = net::kNoHost;
    Priority priority = Priority::kPC;
    std::uint64_t payload_bytes = 0;
    sim::Time started = 0.0;
    sim::Time finished = 0.0;
    sim::Time latency() const { return finished - started; }
  };
  using OpListener = std::function<void(const OpCompletion&)>;

  RpcServiceNode(sim::Simulator& simulator, RpcStack& stack,
                 transport::HostStack& transport,
                 const ServiceConfig& config = {});

  // Client API: starts an operation toward `server`; returns the op id.
  std::uint64_t read(net::HostId server, std::uint64_t payload_bytes,
                     Priority priority);
  std::uint64_t write(net::HostId server, std::uint64_t payload_bytes,
                      Priority priority);

  void set_op_listener(OpListener listener) {
    listener_ = std::move(listener);
  }

  std::uint64_t completed_ops() const { return completed_; }
  std::uint64_t served_requests() const { return served_; }

  // --- app_tag layout (documented for interop/testing) ---
  // [63:62] kind: 1 = READ request, 2 = WRITE request, 3 = response
  // [61:60] priority of the operation
  // [59:24] payload bytes (36 bits; READ requests tell the server how much
  //         to send back)
  // [23:0]  operation sequence number, unique per (client, server)
  static std::uint64_t encode_tag(std::uint8_t kind, Priority priority,
                                  std::uint64_t payload_bytes,
                                  std::uint32_t op_seq);

 private:
  std::uint64_t start_op(RpcOp op, net::HostId server,
                         std::uint64_t payload_bytes, Priority priority);
  void on_delivered(const transport::DeliveredRpc& delivered);

  struct PendingOp {
    OpCompletion completion;
  };

  sim::Simulator& sim_;
  RpcStack& stack_;
  ServiceConfig config_;
  OpListener listener_;
  // Outstanding ops keyed by (peer, op_seq) packed into one key.
  util::FlatMap64<PendingOp> pending_;
  std::uint32_t next_seq_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t served_ = 0;
};

}  // namespace aeq::rpc
