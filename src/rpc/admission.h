// Admission-control interface the RPC stack consults on every issue, and the
// trivial pass-through used for "w/o Aequitas" baselines. The real policy
// (Algorithm 1) lives in core/aequitas.h.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/units.h"

namespace aeq::rpc {

struct AdmissionDecision {
  net::QoSLevel qos_run;
  bool downgraded = false;
  // Classic admission control: reject outright instead of downgrading.
  // Aequitas never sets this; it exists for the downgrade-vs-drop ablation
  // and for quota policies that enforce hard limits.
  bool dropped = false;
  // The (dst, qos_requested) channel's admit probability at decision time;
  // 1.0 for controllers without probabilistic admission. Surfaced to the
  // observability layer (obs::AdmissionDecision) so traces can correlate
  // downgrades with the AIMD state that caused them.
  double p_admit = 1.0;
};

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  // Decides the QoS an RPC of `bytes` payload requested at `qos_requested`
  // actually runs at (or whether it is rejected).
  virtual AdmissionDecision admit(sim::Time now, net::HostId src,
                                  net::HostId dst,
                                  net::QoSLevel qos_requested,
                                  std::uint64_t bytes) = 0;

  // Feedback on completion: measured RNL of an RPC that ran at `qos_run`.
  virtual void on_completion(sim::Time now, net::HostId src, net::HostId dst,
                             net::QoSLevel qos_run, sim::Time rnl,
                             std::uint64_t size_mtus) = 0;
};

// Admits everything on its requested QoS (the pre-Aequitas world).
class AlwaysAdmit final : public AdmissionController {
 public:
  AdmissionDecision admit(sim::Time, net::HostId, net::HostId,
                          net::QoSLevel qos_requested,
                          std::uint64_t) override {
    return {qos_requested, false, false};
  }
  void on_completion(sim::Time, net::HostId, net::HostId, net::QoSLevel,
                     sim::Time, std::uint64_t) override {}
};

}  // namespace aeq::rpc
