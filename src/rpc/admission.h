// Admission-control interface the RPC stack consults on every issue, and the
// trivial pass-through used for "w/o Aequitas" baselines. Policies live in
// src/policy/ (registry + competing controllers) and core/aequitas.h
// (Algorithm 1, the paper's policy).
//
// Contract
// --------
//  * admit() runs once per RPC issue and returns where the RPC runs (or
//    that it is rejected outright).
//  * on_completion() runs once per *admitted* RPC when it finishes —
//    including deadline-terminated RPCs, whose RNL is measured at the kill.
//    A decision with `dropped == true` never generates completion feedback:
//    the RPC never entered the network, so there is no RNL to learn from.
//    Controllers that convert downgrades into drops (the downgrade-vs-drop
//    ablation, quota hard limits) must not expect feedback for them either;
//    the regression suite in tests/policy_test.cc pins this down.
//  * gauges() / audit_invariants() are read-only introspection: the audit
//    and telemetry layers call them mid-run, so they must not mutate state
//    or consume randomness (results are bit-identical with auditing on or
//    off).
//  * on_window() is optional periodic feedback (see policy/windowed.h for
//    the canonical self-clocked implementation that keeps the schedule
//    digest invariant). The vocabulary is obs::WindowStats — the same
//    record the telemetry TimeseriesSink emits.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "net/packet.h"
#include "sim/units.h"

namespace aeq::obs {
struct WindowStats;
}  // namespace aeq::obs

namespace aeq::rpc {

struct AdmissionDecision {
  net::QoSLevel qos_run;
  bool downgraded = false;
  // Classic admission control: reject outright instead of downgrading.
  // Aequitas never sets this; it exists for the downgrade-vs-drop ablation
  // and for quota policies that enforce hard limits. A dropped RPC is
  // terminated on the spot and MUST NOT be reported back through
  // on_completion (see the contract above).
  bool dropped = false;
  // The (dst, qos_requested) channel's admit probability at decision time;
  // 1.0 for controllers without probabilistic admission. Surfaced to the
  // observability layer (obs::AdmissionDecision) so traces can correlate
  // downgrades with the AIMD state that caused them.
  double p_admit = 1.0;
};

// One named scalar a controller exposes for introspection, with its
// documented bounds. The audit layer asserts lo <= value <= hi on every
// sweep; benches render gauge tables from the same surface. Use
// kGaugeUnbounded for a side with no meaningful limit.
inline constexpr double kGaugeUnbounded =
    std::numeric_limits<double>::infinity();

struct Gauge {
  const char* name;  // stable identifier, e.g. "p_admit_min"
  double value = 0.0;
  double lo = 0.0;
  double hi = 1.0;
};

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  // Decides the QoS an RPC of `bytes` payload requested at `qos_requested`
  // actually runs at (or whether it is rejected).
  virtual AdmissionDecision admit(sim::Time now, net::HostId src,
                                  net::HostId dst,
                                  net::QoSLevel qos_requested,
                                  std::uint64_t bytes) = 0;

  // Feedback on completion: measured RNL of an RPC that was *admitted*
  // (possibly downgraded: qos_run != qos_requested) and finished at `now`.
  // Never called for dropped decisions.
  virtual void on_completion(sim::Time now, net::HostId src, net::HostId dst,
                             net::QoSLevel qos_requested,
                             net::QoSLevel qos_run, sim::Time rnl,
                             std::uint64_t size_mtus) = 0;

  // Optional periodic feedback over a closed observation window. Policies
  // built on policy::WindowedController receive this automatically; the
  // base default ignores it.
  virtual void on_window(const obs::WindowStats& window) {
    (void)window;
  }

  // Read-only introspection: named scalars with documented bounds. The
  // audit catalogue's admission/gauge-bounds check asserts each value sits
  // inside [lo, hi]; benches print them as per-policy columns.
  virtual std::vector<Gauge> gauges() const { return {}; }

  // Read-only invariant sweep (audit catalogue, admission/invariants).
  // Aborts via AEQ_CHECK_* on violation; the default has nothing to check.
  virtual void audit_invariants(sim::Time now) const { (void)now; }
};

// Admits everything on its requested QoS (the pre-Aequitas world).
class AlwaysAdmit final : public AdmissionController {
 public:
  AdmissionDecision admit(sim::Time, net::HostId, net::HostId,
                          net::QoSLevel qos_requested,
                          std::uint64_t) override {
    return {qos_requested, false, false};
  }
  void on_completion(sim::Time, net::HostId, net::HostId, net::QoSLevel,
                     net::QoSLevel, sim::Time, std::uint64_t) override {}
};

}  // namespace aeq::rpc
