// Per-host RPC stack (paper Figure 6): sits between the application (RPC
// issues with a priority class) and the message transport. On issue it maps
// priority -> requested QoS, consults the admission controller (Aequitas or
// pass-through), and sends on the decided QoS; on completion it measures RNL
// and feeds it back to the controller and the metrics sink. Downgrade
// information is surfaced to the application via an optional listener.
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.h"
#include "obs/recorder.h"
#include "rpc/admission.h"
#include "rpc/metrics.h"
#include "rpc/priority.h"
#include "sim/simulator.h"
#include "transport/message.h"

namespace aeq::rpc {

struct RpcStackConfig {
  std::size_t num_qos = 3;
  std::uint32_t mtu_bytes = 4096;
};

class RpcStack {
 public:
  RpcStack(sim::Simulator& simulator, net::HostId host_id,
           transport::MessageTransport& transport,
           AdmissionController& admission, RpcMetrics& metrics,
           const RpcStackConfig& config);

  // Issues one RPC of `bytes` payload at `priority` toward `dst`.
  // `deadline_budget` (0 = none) is a relative deadline hint consumed only
  // by deadline-aware transports; `app_tag` is delivered opaquely to the
  // receiving host (two-sided RPC correlation). Returns the assigned
  // rpc id.
  std::uint64_t issue(net::HostId dst, Priority priority, std::uint64_t bytes,
                      sim::Time deadline_budget = 0.0,
                      std::uint64_t app_tag = 0);

  // Application hook: invoked with the full record of every finished RPC
  // (completions and terminations), e.g. to react to downgrades.
  using CompletionListener = std::function<void(const RpcRecord&)>;
  void set_completion_listener(CompletionListener listener) {
    listener_ = std::move(listener);
  }

  std::uint64_t issued_count() const { return issued_; }
  net::HostId host_id() const { return host_id_; }

  // Attaches the telemetry recorder: every issue emits RpcGenerated +
  // AdmissionDecision, every finish (completion, termination, admission
  // rejection) emits RpcComplete. Null detaches.
  void set_observer(obs::Recorder* recorder) { obs_ = recorder; }

 private:
  void emit_finished(const RpcRecord& record);

  obs::Recorder* obs_ = nullptr;
  sim::Simulator& sim_;
  net::HostId host_id_;
  transport::MessageTransport& transport_;
  AdmissionController& admission_;
  RpcMetrics& metrics_;
  RpcStackConfig config_;
  CompletionListener listener_;
  std::uint64_t issued_ = 0;
};

}  // namespace aeq::rpc
