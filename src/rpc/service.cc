#include "rpc/service.h"

#include "sim/assert.h"

namespace aeq::rpc {

namespace {

constexpr std::uint64_t kKindShift = 62;
constexpr std::uint64_t kPriorityShift = 60;
constexpr std::uint64_t kPayloadShift = 24;
constexpr std::uint64_t kPayloadMask = (1ull << 36) - 1;
constexpr std::uint64_t kSeqMask = (1ull << 24) - 1;
constexpr std::uint8_t kKindResponse = 3;

std::uint64_t op_key(net::HostId peer, std::uint32_t seq) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer))
          << 24) |
         (seq & kSeqMask);
}

}  // namespace

std::uint64_t RpcServiceNode::encode_tag(std::uint8_t kind,
                                         Priority priority,
                                         std::uint64_t payload_bytes,
                                         std::uint32_t op_seq) {
  AEQ_CHECK_GE(kind, 1u);
  AEQ_CHECK_LE(kind, 3u);
  AEQ_CHECK_LE(payload_bytes, kPayloadMask);
  return (static_cast<std::uint64_t>(kind) << kKindShift) |
         (static_cast<std::uint64_t>(priority) << kPriorityShift) |
         ((payload_bytes & kPayloadMask) << kPayloadShift) |
         (op_seq & kSeqMask);
}

RpcServiceNode::RpcServiceNode(sim::Simulator& simulator, RpcStack& stack,
                               transport::HostStack& transport,
                               const ServiceConfig& config)
    : sim_(simulator), stack_(stack), config_(config) {
  AEQ_CHECK_GT(config_.control_bytes, 0u);
  transport.set_rpc_delivery_handler(
      [this](const transport::DeliveredRpc& delivered) {
        on_delivered(delivered);
      });
}

std::uint64_t RpcServiceNode::read(net::HostId server,
                                   std::uint64_t payload_bytes,
                                   Priority priority) {
  return start_op(RpcOp::kRead, server, payload_bytes, priority);
}

std::uint64_t RpcServiceNode::write(net::HostId server,
                                    std::uint64_t payload_bytes,
                                    Priority priority) {
  return start_op(RpcOp::kWrite, server, payload_bytes, priority);
}

std::uint64_t RpcServiceNode::start_op(RpcOp op, net::HostId server,
                                       std::uint64_t payload_bytes,
                                       Priority priority) {
  AEQ_CHECK_GT(payload_bytes, 0u);
  const std::uint32_t seq = next_seq_++ & kSeqMask;

  PendingOp pending;
  pending.completion.op_id = op_key(server, seq);
  pending.completion.op = op;
  pending.completion.peer = server;
  pending.completion.priority = priority;
  pending.completion.payload_bytes = payload_bytes;
  pending.completion.started = sim_.now();
  pending_[pending.completion.op_id] = pending;

  const std::uint64_t tag = encode_tag(
      static_cast<std::uint8_t>(op), priority, payload_bytes, seq);
  const std::uint64_t request_bytes =
      op == RpcOp::kWrite ? payload_bytes : config_.control_bytes;
  stack_.issue(server, priority, request_bytes, /*deadline_budget=*/0.0,
               tag);
  return pending.completion.op_id;
}

void RpcServiceNode::on_delivered(const transport::DeliveredRpc& delivered) {
  if (delivered.app_tag == 0) return;  // plain one-sided RPC
  const auto kind =
      static_cast<std::uint8_t>(delivered.app_tag >> kKindShift);
  const auto priority = static_cast<Priority>(
      (delivered.app_tag >> kPriorityShift) & 0x3);
  const std::uint64_t payload =
      (delivered.app_tag >> kPayloadShift) & kPayloadMask;
  const auto seq =
      static_cast<std::uint32_t>(delivered.app_tag & kSeqMask);

  if (kind == kKindResponse) {
    // Client side: the operation is complete.
    const std::uint64_t op = op_key(delivered.src, seq);
    PendingOp* found = pending_.find(op);
    if (found == nullptr) return;  // duplicate / stale
    OpCompletion completion = found->completion;
    pending_.erase(op);
    completion.finished = sim_.now();
    ++completed_;
    if (listener_) listener_(completion);
    return;
  }

  // Server side: respond. WRITE requests carried the payload, so the
  // response is small; READ requests ask for `payload` bytes back.
  ++served_;
  const std::uint64_t response_bytes =
      kind == static_cast<std::uint8_t>(RpcOp::kRead)
          ? payload
          : config_.control_bytes;
  stack_.issue(delivered.src, priority, response_bytes,
               /*deadline_budget=*/0.0,
               encode_tag(kKindResponse, priority, payload, seq));
}

}  // namespace aeq::rpc
