#include "rpc/rpc_stack.h"

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::rpc {

RpcStack::RpcStack(sim::Simulator& simulator, net::HostId host_id,
                   transport::MessageTransport& transport,
                   AdmissionController& admission, RpcMetrics& metrics,
                   const RpcStackConfig& config)
    : sim_(simulator),
      host_id_(host_id),
      transport_(transport),
      admission_(admission),
      metrics_(metrics),
      config_(config) {
  AEQ_CHECK_GE(config_.num_qos, 2u);
  AEQ_CHECK_GT(config_.mtu_bytes, 0u);
}

std::uint64_t RpcStack::issue(net::HostId dst, Priority priority,
                              std::uint64_t bytes,
                              sim::Time deadline_budget,
                              std::uint64_t app_tag) {
  AEQ_CHECK_GT(bytes, 0u);
  AEQ_CHECK_NE(dst, host_id_);
  const std::uint64_t rpc_id =
      (static_cast<std::uint64_t>(host_id_) << 40) | ++issued_;

  const net::QoSLevel qos_requested =
      qos_for_priority(priority, config_.num_qos);

  if (obs_ != nullptr) {
    obs::RpcGenerated generated;
    generated.t = sim_.now();
    generated.rpc_id = rpc_id;
    generated.src = host_id_;
    generated.dst = dst;
    generated.qos_requested = qos_requested;
    generated.bytes = bytes;
    obs_->rpc_generated(generated);
  }

  const AdmissionDecision decision = [&] {
    const obs::prof::ProfRegion prof(obs::prof::Region::kAdmission);
    return admission_.admit(sim_.now(), host_id_, dst, qos_requested, bytes);
  }();

  if (obs_ != nullptr) {
    obs::AdmissionDecision admitted;
    admitted.t = sim_.now();
    admitted.rpc_id = rpc_id;
    admitted.src = host_id_;
    admitted.dst = dst;
    admitted.qos_from = qos_requested;
    admitted.qos_to = decision.qos_run;
    admitted.p_admit = decision.p_admit;
    admitted.downgraded = decision.downgraded;
    admitted.dropped = decision.dropped;
    obs_->admission(admitted);
  }

  RpcRecord record;
  record.rpc_id = rpc_id;
  record.src = host_id_;
  record.dst = dst;
  record.priority = priority;
  record.qos_requested = qos_requested;
  record.qos_run = decision.qos_run;
  record.downgraded = decision.downgraded;
  record.bytes = bytes;
  record.size_mtus = size_in_mtus(bytes, config_.mtu_bytes);
  record.issued = sim_.now();

  if (decision.dropped) {
    // Rejected at admission: never enters the network. Accounted like a
    // terminated RPC (an SLO miss with zero goodput), and its bytes are
    // never credited as admitted traffic. Per the AdmissionController
    // contract (rpc/admission.h), a dropped RPC generates NO
    // on_completion feedback — there is no transport completion to
    // measure an RNL from.
    record.terminated = true;
    record.completed = record.issued;
    metrics_.on_issue(dst, qos_requested, decision.qos_run, bytes,
                      /*admission_dropped=*/true);
    metrics_.record(record);
    emit_finished(record);
    if (listener_) listener_(record);
    return rpc_id;
  }

  metrics_.on_issue(dst, qos_requested, decision.qos_run, bytes);

  transport::SendRequest request;
  request.dst = dst;
  request.qos = decision.qos_run;
  request.bytes = bytes;
  request.rpc_id = rpc_id;
  request.deadline =
      deadline_budget > 0.0 ? sim_.now() + deadline_budget : 0.0;
  request.app_tag = app_tag;

  transport_.send_message(
      request, [this, record](const transport::MessageCompletion& done) {
        RpcRecord finished = record;
        finished.completed = done.completed;
        finished.rnl = done.rnl();
        finished.terminated = done.terminated;
        admission_.on_completion(sim_.now(), finished.src, finished.dst,
                                 finished.qos_requested, finished.qos_run,
                                 finished.rnl, finished.size_mtus);
        metrics_.record(finished);
        emit_finished(finished);
        if (listener_) listener_(finished);
      });
  return rpc_id;
}

void RpcStack::emit_finished(const RpcRecord& record) {
  if (obs_ == nullptr) return;
  obs::RpcComplete event;
  event.t = record.completed;
  event.rpc_id = record.rpc_id;
  event.src = record.src;
  event.dst = record.dst;
  event.qos_requested = record.qos_requested;
  event.qos_run = record.qos_run;
  event.bytes = record.bytes;
  event.rnl = record.rnl;
  event.downgraded = record.downgraded;
  event.terminated = record.terminated;
  // Compliance is judged against the requested QoS's SLO, exactly as the
  // metrics sink does (§6.10); terminated RPCs always miss.
  const SloConfig& slo = metrics_.slo();
  event.slo_met = !record.terminated && slo.has_slo(record.qos_requested) &&
                  record.rnl <= slo.absolute_target(record.qos_requested,
                                                    record.size_mtus);
  obs_->rpc_complete(event);
}

}  // namespace aeq::rpc
