// RPC priority classes and their bijective mapping onto network QoS levels
// (Phase 1 of Aequitas, paper §5): PC -> QoS_h, NC -> QoS_m, BE -> QoS_l.
// With two QoS levels, PC -> QoS_h and both NC/BE -> lowest.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/assert.h"

namespace aeq::rpc {

enum class Priority : std::uint8_t {
  kPC = 0,  // performance-critical: tail latency SLOs
  kNC = 1,  // non-critical: less stringent SLOs
  kBE = 2,  // best-effort: scavenger, no SLO
};

inline constexpr std::size_t kNumPriorities = 3;

inline const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kPC: return "PC";
    case Priority::kNC: return "NC";
    case Priority::kBE: return "BE";
  }
  return "?";
}

// Phase-1 mapping of priority to requested QoS for a fabric with
// `num_qos_levels` WFQ classes.
inline net::QoSLevel qos_for_priority(Priority priority,
                                      std::size_t num_qos_levels) {
  AEQ_ASSERT(num_qos_levels >= 2 && num_qos_levels <= net::kMaxQoSLevels);
  const auto index = static_cast<std::size_t>(priority);
  const auto lowest = static_cast<net::QoSLevel>(num_qos_levels - 1);
  return index >= num_qos_levels - 1 ? lowest
                                     : static_cast<net::QoSLevel>(index);
}

}  // namespace aeq::rpc
