// Per-QoS RNL SLO targets, provided by the operator (paper §3.2).
//
// Targets are *normalized per MTU* (paper §5.1, "Handling different RPC
// sizes"): an RPC of `size` MTUs meets its SLO when
// rnl / size < latency_target_per_mtu[qos]. The lowest QoS is a scavenger
// class with no SLO.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/assert.h"
#include "sim/units.h"

namespace aeq::rpc {

struct SloConfig {
  // Index = QoS level. Entries for the lowest level are ignored.
  std::vector<sim::Time> latency_target_per_mtu;
  // Percentile each SLO is defined at (e.g. 99.9); same indexing.
  std::vector<double> target_percentile;

  std::size_t num_qos() const { return latency_target_per_mtu.size(); }

  bool has_slo(net::QoSLevel qos) const {
    // All but the lowest level carry an SLO.
    return static_cast<std::size_t>(qos) + 1 < latency_target_per_mtu.size();
  }

  // Absolute RNL target for an RPC of `size_mtus` MTUs at `qos`.
  sim::Time absolute_target(net::QoSLevel qos, std::uint64_t size_mtus) const {
    AEQ_CHECK_LT(qos, latency_target_per_mtu.size());
    return latency_target_per_mtu[qos] * static_cast<double>(size_mtus);
  }

  // Convenience: uniform percentile for all levels.
  static SloConfig make(std::vector<sim::Time> per_mtu_targets,
                        double percentile) {
    SloConfig slo;
    slo.target_percentile.assign(per_mtu_targets.size(), percentile);
    slo.latency_target_per_mtu = std::move(per_mtu_targets);
    return slo;
  }
};

// RPC size in MTUs, as used by Algorithm 1 (minimum 1).
inline std::uint64_t size_in_mtus(std::uint64_t bytes,
                                  std::uint32_t mtu_bytes) {
  AEQ_CHECK_GT(mtu_bytes, 0u);
  return bytes == 0 ? 1 : (bytes + mtu_bytes - 1) / mtu_bytes;
}

}  // namespace aeq::rpc
