// Cluster-wide RPC metrics sink shared by all hosts in an experiment.
//
// Tracks, per QoS level: RNL percentiles (by the QoS the RPC ran at and by
// the QoS it requested), admitted/downgraded counts and bytes, SLO
// compliance, and outstanding-RPC gauges per destination (for Figure 13).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "rpc/priority.h"
#include "rpc/slo.h"
#include "sim/units.h"
#include "stats/percentile.h"
#include "util/flat_map.h"

namespace aeq::rpc {

struct RpcRecord {
  std::uint64_t rpc_id = 0;
  net::HostId src = net::kNoHost;
  net::HostId dst = net::kNoHost;
  Priority priority = Priority::kPC;
  net::QoSLevel qos_requested = net::kQoSHigh;
  net::QoSLevel qos_run = net::kQoSHigh;
  bool downgraded = false;
  bool terminated = false;  // killed by a deadline protocol (D3/PDQ)
  std::uint64_t bytes = 0;
  std::uint64_t size_mtus = 1;
  sim::Time issued = 0.0;
  sim::Time completed = 0.0;
  sim::Time rnl = 0.0;
};

class RpcMetrics {
 public:
  RpcMetrics(std::size_t num_qos, const SloConfig& slo,
             std::size_t num_hosts);

  // Called by RpcStack when an RPC is issued / completes. Traffic-mix
  // accounting (requested/admitted bytes) happens at issue time so the
  // shares reflect offered traffic even when large messages are still in
  // flight at the end of a run. `admission_dropped` marks an RPC the
  // admission controller rejected outright: its bytes count as requested
  // but never as admitted (they do not enter the network).
  void on_issue(net::HostId dst, net::QoSLevel qos_requested,
                net::QoSLevel qos_run, std::uint64_t bytes,
                bool admission_dropped = false);
  void record(const RpcRecord& record);

  // Measurement window: records outside [t_start, inf) are counted for
  // traffic accounting but excluded from latency percentiles.
  void set_warmup(sim::Time t_start) { warmup_end_ = t_start; }

  // Pre-sizes every percentile tracker for ~n samples per QoS level so the
  // steady-state run window performs no allocator traffic (see
  // tests/alloc_test.cc).
  void reserve_samples(std::size_t n) {
    for (auto& t : rnl_run_) t.reserve(n);
    for (auto& t : rnl_requested_) t.reserve(n);
    for (auto& t : rnl_per_mtu_run_) t.reserve(n);
  }

  // --- latency ---
  const stats::PercentileTracker& rnl_by_run_qos(net::QoSLevel qos) const {
    return rnl_run_[qos];
  }
  const stats::PercentileTracker& rnl_by_requested_qos(
      net::QoSLevel qos) const {
    return rnl_requested_[qos];
  }
  // RNL divided by size in MTUs (the normalized quantity SLOs are set on).
  const stats::PercentileTracker& rnl_per_mtu_by_run_qos(
      net::QoSLevel qos) const {
    return rnl_per_mtu_run_[qos];
  }

  // --- traffic mix ---
  std::uint64_t bytes_requested(net::QoSLevel qos) const {
    return bytes_requested_[qos];
  }
  std::uint64_t bytes_admitted(net::QoSLevel qos) const {
    return bytes_admitted_[qos];
  }
  // Payload bytes of successfully completed (non-terminated) RPCs.
  std::uint64_t bytes_completed(net::QoSLevel qos_run) const {
    return bytes_completed_[qos_run];
  }
  // Fraction of issued bytes that ran on `qos` (the admitted QoS-mix).
  double admitted_share(net::QoSLevel qos) const;
  // Fraction of issued bytes that requested `qos` (the input QoS-mix).
  double requested_share(net::QoSLevel qos) const;

  std::uint64_t completed(net::QoSLevel qos_run) const {
    return completed_[qos_run];
  }
  // Downgrade counts are kept under both attributions: by the QoS the RPC
  // asked for (who suffered the downgrade — the paper's per-class
  // accounting) and by the QoS it was delivered on (where the traffic
  // actually ran, matching the rnl_by_run_qos percentiles).
  std::uint64_t downgraded(net::QoSLevel qos_requested) const {
    return downgraded_[qos_requested];
  }
  std::uint64_t downgraded_delivered(net::QoSLevel qos_run) const {
    return downgraded_delivered_[qos_run];
  }
  // Downgrades of one (src, dst, qos_requested) RPC channel — the unit the
  // per-channel AIMD operates on — so QoS-mix accounting can be audited
  // channel by channel.
  std::uint64_t downgraded_on_channel(net::HostId src, net::HostId dst,
                                      net::QoSLevel qos_requested) const;
  std::uint64_t terminated(net::QoSLevel qos_requested) const {
    return terminated_[qos_requested];
  }

  // --- SLO compliance (by requested QoS; paper §6.10) ---
  std::uint64_t slo_eligible(net::QoSLevel qos_requested) const {
    return slo_eligible_[qos_requested];
  }
  std::uint64_t slo_met(net::QoSLevel qos_requested) const {
    return slo_met_[qos_requested];
  }
  double slo_met_fraction(net::QoSLevel qos_requested) const;
  // Byte-weighted variant: fraction of SLO-bearing *traffic* meeting its
  // target (large RPCs weigh more, as in the paper's Figure 22).
  double slo_met_fraction_bytes(net::QoSLevel qos_requested) const;

  // --- outstanding RPC gauges (per destination host) ---
  // Group 0: all SLO-bearing QoS levels; group 1: the lowest QoS.
  int outstanding(net::HostId dst, int group) const {
    return outstanding_[static_cast<std::size_t>(dst)][group];
  }
  std::size_t num_hosts() const { return outstanding_.size(); }

  std::uint64_t total_completed() const;
  const SloConfig& slo() const { return slo_; }

  // Folds another sink (same num_qos / num_hosts shape) into this one. All
  // counters sum and the percentile trackers merge sample-exactly (each
  // shard of a sharded run records its own hosts' RPCs into a private sink;
  // the runner merges them in shard-id order afterwards). Percentiles and
  // counts of the merged sink equal the serial run's bit-for-bit; only
  // mean() can differ in the last ulp, since summation order changes.
  void merge(const RpcMetrics& other);

 private:
  std::size_t num_qos_;
  SloConfig slo_;
  sim::Time warmup_end_ = 0.0;

  std::vector<stats::PercentileTracker> rnl_run_;
  std::vector<stats::PercentileTracker> rnl_requested_;
  std::vector<stats::PercentileTracker> rnl_per_mtu_run_;

  std::vector<std::uint64_t> bytes_requested_;
  std::vector<std::uint64_t> bytes_admitted_;
  std::vector<std::uint64_t> bytes_completed_;
  std::uint64_t channel_key(net::HostId src, net::HostId dst,
                            net::QoSLevel qos) const;

  std::vector<std::uint64_t> completed_;
  std::vector<std::uint64_t> downgraded_;
  std::vector<std::uint64_t> downgraded_delivered_;
  // Sparse: only channels that actually saw a downgrade hold an entry.
  util::FlatMap64<std::uint64_t> downgraded_channel_;
  std::vector<std::uint64_t> terminated_;
  std::vector<std::uint64_t> slo_eligible_;
  std::vector<std::uint64_t> slo_met_;
  std::vector<std::uint64_t> slo_eligible_bytes_;
  std::vector<std::uint64_t> slo_met_bytes_;
  std::vector<std::array<int, 2>> outstanding_;
};

}  // namespace aeq::rpc
