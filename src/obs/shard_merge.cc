#include "obs/shard_merge.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "sim/assert.h"

namespace aeq::obs {
namespace {

// Must match ChromeTraceSink::write_prologue / flush byte for byte.
constexpr char kPrologue[] = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
constexpr char kEpilogue[] = "\n]}\n";

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  AEQ_ASSERT_MSG(in.is_open(), "shard merge: cannot read shard trace file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool starts_with(const std::string& text, const std::string& prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

std::string shard_trace_path(const std::string& path, std::size_t shard) {
  return path + ".shard" + std::to_string(shard);
}

void merge_sharded_chrome_traces(const std::string& path,
                                 std::size_t shards) {
  std::ofstream out(path, std::ios::out | std::ios::trunc |
                              std::ios::binary);
  AEQ_ASSERT_MSG(out.is_open(), "shard merge: cannot open merged trace");
  out << kPrologue;
  bool any_events = false;
  for (std::size_t k = 0; k < shards; ++k) {
    const std::string shard_path = shard_trace_path(path, k);
    std::string text = read_file(shard_path);
    AEQ_ASSERT_MSG(starts_with(text, kPrologue) && ends_with(text, kEpilogue),
                   "shard merge: unexpected Chrome trace framing");
    // Keep just the event list: "\n{...},\n{...}" (or empty). Each shard's
    // first event carries a leading "\n" but no comma, so joining lists
    // needs one "," between non-empty shards.
    std::string events = text.substr(
        sizeof(kPrologue) - 1,
        text.size() - (sizeof(kPrologue) - 1) - (sizeof(kEpilogue) - 1));
    if (!events.empty()) {
      if (any_events) out << ",";
      out << events;
      any_events = true;
    }
    std::remove(shard_path.c_str());
  }
  out << kEpilogue;
}

void merge_sharded_csv_traces(const std::string& path, std::size_t shards) {
  std::ofstream out(path, std::ios::out | std::ios::trunc |
                              std::ios::binary);
  AEQ_ASSERT_MSG(out.is_open(), "shard merge: cannot open merged CSV");
  for (std::size_t k = 0; k < shards; ++k) {
    const std::string shard_path = shard_trace_path(path, k);
    std::string text = read_file(shard_path);
    const std::size_t header_end = text.find('\n');
    AEQ_ASSERT_MSG(header_end != std::string::npos,
                   "shard merge: CSV shard file has no header");
    if (k == 0) {
      out << text;  // header + rows
    } else {
      out << text.substr(header_end + 1);  // rows only
    }
    std::remove(shard_path.c_str());
  }
}

}  // namespace aeq::obs
