// Watchdog: online anomaly detection over closed telemetry windows.
//
// Registered as a TimeseriesSink window listener, the watchdog evaluates a
// small set of rules every time a window closes and invokes its callbacks
// with a structured Anomaly record when a rule has held for K consecutive
// windows. Rules (all per-window, all O(qos + ports) per evaluation):
//
//  - kSloCompliance: a QoS class's compliance rate stayed below its target
//    for `compliance_windows` consecutive windows (ignoring windows with
//    fewer than `compliance_min_completions` completions, which carry no
//    statistical weight).
//  - kPAdmitCollapse: the worst channel's mean p_admit stayed below
//    `p_admit_floor` for `p_admit_windows` windows — the admission plane
//    has throttled some channel to (near) zero.
//  - kPortSaturation: some port's max queue depth stayed above
//    `saturation_qlen_bytes` for `saturation_windows` windows.
//  - kStall: RPCs are outstanding (cum_generated > cum_finished) but
//    `stall_windows` consecutive windows saw no events at all — the
//    simulation is wedged, not idle.
//
// Each (rule, subject) pair keeps its own consecutive-window streak and a
// latch: the callback fires once when the streak first reaches K and cannot
// fire again until the condition clears for a window (hysteresis), so a
// sustained overload produces one anomaly, not one per window.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/timeseries_sink.h"

namespace aeq::obs {

struct WatchdogConfig {
  // Per-QoS compliance alarm thresholds. Empty => rule disabled; the
  // experiment fills this from the configured SLOs (with an alarm margin
  // below the target percentile, so normal jitter stays silent).
  std::vector<double> compliance_target;
  std::size_t compliance_windows = 3;
  // Windows with fewer completions than this don't advance compliance
  // streaks in either direction.
  std::uint64_t compliance_min_completions = 16;

  // Alarm when the worst channel's window-mean p_admit sits below this.
  // <= 0 disables the rule; the experiment auto-fills a negative value to
  // 1.5x the admission controller's own p_admit floor, i.e. "a channel is
  // pinned at the floor", which separates pathological collapse from
  // ordinary heavy throttling.
  double p_admit_floor = -1.0;
  std::size_t p_admit_windows = 2;

  std::uint64_t saturation_qlen_bytes = 0;  // 0 disables the rule
  std::size_t saturation_windows = 2;

  std::size_t stall_windows = 2;  // 0 disables the rule
  // The stall rule only evaluates windows ending at or before this time:
  // during the post-run drain the event stream legitimately goes quiet
  // while overload residue (RPCs whose packets were dropped) stays
  // outstanding forever. < 0 = no horizon; the experiment sets it to the
  // end of traffic generation.
  sim::Time stall_horizon = -1.0;

  // Windows ending at or before this time are observed but never advance a
  // streak: the convergence transient at run start (AIMD ramping down from
  // p_admit = 1) looks exactly like an overload and should not alarm. The
  // experiment raises this to its metrics warmup.
  sim::Time quiet_until = 0.0;

  std::size_t max_log = 1024;  // anomalies retained in anomalies()
};

struct Anomaly {
  enum class Kind : std::uint8_t {
    kSloCompliance,
    kPAdmitCollapse,
    kPortSaturation,
    kStall,
  };
  Kind kind = Kind::kSloCompliance;
  sim::Time t = 0.0;            // close time of the triggering window
  std::uint64_t window = 0;     // index of the triggering window
  int qos = -1;                 // kSloCompliance only
  int port = -1;                // kPortSaturation only
  double value = 0.0;           // observed value in the triggering window
  double threshold = 0.0;       // the configured limit it crossed
  std::size_t consecutive = 0;  // streak length when the rule fired
};

const char* kind_name(Anomaly::Kind kind);
// One-line human/grep-friendly rendering:
//   t_us=30100.000 window=301 kind=slo_compliance qos=0 value=0.41
//   threshold=0.9 consecutive=3
std::string describe(const Anomaly& anomaly);

class Watchdog {
 public:
  explicit Watchdog(const WatchdogConfig& config);

  // Callbacks run in registration order, after the anomaly is logged.
  void add_callback(std::function<void(const Anomaly&)> fn);

  // Evaluates all rules against one closed window. Wire it up with:
  //   timeseries->add_window_listener(
  //       [w](const WindowStats& s) { w->on_window(s); });
  void on_window(const WindowStats& window);

  const std::vector<Anomaly>& anomalies() const { return anomalies_; }
  std::uint64_t windows_seen() const { return windows_seen_; }
  const WatchdogConfig& config() const { return config_; }

  // Extends (never shortens) the initial quiet period.
  void set_quiet_until(sim::Time t) {
    config_.quiet_until = std::max(config_.quiet_until, t);
  }
  // Bounds the stall rule to windows ending at or before `t`.
  void set_stall_horizon(sim::Time t) { config_.stall_horizon = t; }

 private:
  // Streak-and-latch state for one (rule, subject) pair.
  struct RuleState {
    std::size_t streak = 0;
    bool latched = false;
  };
  // Advances `state` given this window's verdict; returns true when the
  // rule fires (streak just reached `needed` and was not latched).
  static bool step(RuleState& state, bool bad, std::size_t needed);

  void emit(Anomaly anomaly);

  WatchdogConfig config_;
  std::vector<std::function<void(const Anomaly&)>> callbacks_;
  std::vector<Anomaly> anomalies_;
  std::uint64_t windows_seen_ = 0;

  std::vector<RuleState> compliance_;  // per QoS
  RuleState p_admit_;
  std::vector<RuleState> saturation_;  // per port
  RuleState stall_;
};

}  // namespace aeq::obs
