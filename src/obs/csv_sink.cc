#include "obs/csv_sink.h"

#include <cstdio>

#include "sim/assert.h"

namespace aeq::obs {
namespace {

std::string us(sim::Time t) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", t / sim::kUsec);
  return buffer;
}

std::string num(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

std::string num(std::uint64_t v) { return std::to_string(v); }
std::string num(net::HostId v) { return std::to_string(v); }
std::string num(net::QoSLevel v) { return std::to_string(v); }

const char* packet_kind_name(PacketEventKind kind) {
  switch (kind) {
    case PacketEventKind::kEnqueue:
      return "enqueue";
    case PacketEventKind::kDequeue:
      return "dequeue";
    case PacketEventKind::kDrop:
      return "drop";
  }
  return "?";
}

}  // namespace

CsvSink::CsvSink(const std::string& path)
    : file_(path, std::ios::out | std::ios::trunc), out_(&file_) {
  AEQ_ASSERT_MSG(file_.is_open(), "CsvSink: cannot open trace output file");
  *out_ << "time_us,event,host,peer,port,qos,rpc_id,bytes,value,detail\n";
}

CsvSink::CsvSink(std::ostream* out) : out_(out) {
  AEQ_ASSERT(out != nullptr);
  *out_ << "time_us,event,host,peer,port,qos,rpc_id,bytes,value,detail\n";
}

void CsvSink::row(sim::Time t, const char* event, const std::string& host,
                  const std::string& peer, const std::string& port,
                  const std::string& qos, const std::string& rpc_id,
                  const std::string& bytes, const std::string& value,
                  const std::string& detail) {
  *out_ << us(t) << ',' << event << ',' << host << ',' << peer << ',' << port
        << ',' << qos << ',' << rpc_id << ',' << bytes << ',' << value << ','
        << detail << '\n';
  ++rows_written_;
}

void CsvSink::on_rpc_generated(const RpcGenerated& event) {
  row(event.t, "rpc_generated", num(event.src), num(event.dst), "",
      num(event.qos_requested), num(event.rpc_id), num(event.bytes), "", "");
}

void CsvSink::on_admission(const AdmissionDecision& event) {
  const char* detail = event.dropped      ? "drop"
                       : event.downgraded ? "downgrade"
                                          : "admit";
  row(event.t, "admission", num(event.src), num(event.dst), "",
      num(event.qos_to), num(event.rpc_id), "", num(event.p_admit), detail);
}

void CsvSink::on_packet(const PacketEvent& event) {
  row(event.t, "packet", "", "", num(std::uint64_t{event.port}),
      num(event.qos), "", num(std::uint64_t{event.bytes}),
      num(event.qlen_bytes), packet_kind_name(event.kind));
}

void CsvSink::on_cwnd(const CwndUpdate& event) {
  row(event.t, "cwnd", num(event.src), num(event.dst), "", num(event.qos), "",
      "", num(event.cwnd_packets), "");
}

void CsvSink::on_rpc_complete(const RpcComplete& event) {
  const char* detail = event.terminated ? "terminated"
                       : event.slo_met  ? "slo_met"
                                        : "slo_miss";
  row(event.t, "rpc_complete", num(event.src), num(event.dst), "",
      num(event.qos_run), num(event.rpc_id), num(event.bytes),
      us(event.rnl), detail);
}

void CsvSink::flush(sim::Time /*now*/) { out_->flush(); }

}  // namespace aeq::obs
