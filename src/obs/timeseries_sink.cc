#include "obs/timeseries_sink.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "sim/assert.h"

namespace aeq::obs {
namespace {

std::string us(sim::Time t) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", t / sim::kUsec);
  return buffer;
}

std::string num(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

// (src, dst, qos) channel key; hosts are small nonnegative ids.
std::uint64_t channel_key(net::HostId src, net::HostId dst,
                          net::QoSLevel qos) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 8) |
         qos;
}

}  // namespace

const char* TimeseriesSink::csv_header() {
  return "window_start_us,window_end_us,scope,completed,terminated,slo_met,"
         "slo_compliance,rnl_p50_us,rnl_p90_us,rnl_p99_us,bytes,byte_share,"
         "p_admit_mean,p_admit_min,admits,downgrades,admission_drops,"
         "packet_drops,enqueued,dequeued,qlen_max_bytes,qlen_mean_bytes";
}

TimeseriesSink::TimeseriesSink(const TimeseriesConfig& config)
    : config_(config) {
  AEQ_CHECK_GT(config_.window, 0.0);
  AEQ_CHECK_GE(config_.num_qos, 1u);
  if (!config_.csv_path.empty()) {
    csv_file_.open(config_.csv_path, std::ios::out | std::ios::trunc);
    AEQ_ASSERT_MSG(csv_file_.is_open(),
                   "TimeseriesSink: cannot open CSV output file");
    csv_ = &csv_file_;
  }
  if (!config_.json_path.empty()) {
    json_file_.open(config_.json_path, std::ios::out | std::ios::trunc);
    AEQ_ASSERT_MSG(json_file_.is_open(),
                   "TimeseriesSink: cannot open JSON output file");
    json_ = &json_file_;
  }
  init_streams();
}

TimeseriesSink::TimeseriesSink(const TimeseriesConfig& config,
                               std::ostream* csv, std::ostream* json)
    : config_(config), csv_(csv), json_(json) {
  AEQ_CHECK_GT(config_.window, 0.0);
  AEQ_CHECK_GE(config_.num_qos, 1u);
  init_streams();
}

void TimeseriesSink::init_streams() {
  qos_.assign(config_.num_qos, QosAccum{});
  rnl_.reserve(config_.num_qos);
  for (std::size_t q = 0; q < config_.num_qos; ++q) {
    rnl_.emplace_back(config_.rnl_min, config_.rnl_max, config_.precision);
  }
  if (csv_ != nullptr) *csv_ << csv_header() << '\n';
  if (json_ != nullptr) {
    *json_ << "{\"window_width_us\":" << num(config_.window / sim::kUsec)
           << ",\"windows\":[";
  }
}

void TimeseriesSink::add_window_listener(
    std::function<void(const WindowStats&)> fn) {
  AEQ_ASSERT(fn != nullptr);
  listeners_.push_back(std::move(fn));
}

void TimeseriesSink::set_gauge_provider(GaugeProvider provider) {
  AEQ_ASSERT_MSG(gauge_provider_ == nullptr,
                 "TimeseriesSink: gauge provider already set");
  gauge_provider_ = std::move(provider);
}

void TimeseriesSink::on_port_registered(std::uint32_t port,
                                        const std::string& name) {
  if (port >= port_names_.size()) {
    port_names_.resize(port + 1);
    ports_.resize(port + 1);
  }
  port_names_[port] = name;
}

void TimeseriesSink::ensure_window_for(sim::Time t) {
  while (!finalized_ &&
         t >= static_cast<double>(window_index_ + 1) * config_.window) {
    close_window(static_cast<double>(window_index_ + 1) * config_.window);
  }
}

void TimeseriesSink::advance_to(sim::Time t) { ensure_window_for(t); }

void TimeseriesSink::on_rpc_generated(const RpcGenerated& event) {
  if (finalized_) return;
  ensure_window_for(event.t);
  last_event_time_ = event.t;
  ++events_;
  ++generated_;
  ++cum_generated_;
}

void TimeseriesSink::on_admission(const AdmissionDecision& event) {
  if (finalized_) return;
  ensure_window_for(event.t);
  last_event_time_ = event.t;
  ++events_;
  if (event.dropped) {
    ++admission_drops_;
  } else if (event.downgraded) {
    ++downgrades_;
  } else {
    ++admits_;
  }
  ChannelAccum& channel =
      channels_[channel_key(event.src, event.dst, event.qos_from)];
  channel.p_admit_sum += event.p_admit;
  ++channel.decisions;
}

void TimeseriesSink::on_packet(const PacketEvent& event) {
  if (finalized_) return;
  ensure_window_for(event.t);
  last_event_time_ = event.t;
  ++events_;
  if (event.port >= ports_.size()) ports_.resize(event.port + 1);
  PortAccum& port = ports_[event.port];
  switch (event.kind) {
    case PacketEventKind::kEnqueue:
      ++port.enqueued;
      break;
    case PacketEventKind::kDequeue:
      ++port.dequeued;
      break;
    case PacketEventKind::kDrop:
      ++port.drops;
      return;  // backlog unchanged by a rejected arrival
  }
  port.qlen_max = std::max(port.qlen_max, event.qlen_bytes);
  port.qlen_sum += static_cast<double>(event.qlen_bytes);
  ++port.qlen_samples;
}

void TimeseriesSink::on_cwnd(const CwndUpdate& event) {
  if (finalized_) return;
  ensure_window_for(event.t);
  last_event_time_ = event.t;
  ++events_;
}

void TimeseriesSink::on_rpc_complete(const RpcComplete& event) {
  if (finalized_) return;
  ensure_window_for(event.t);
  last_event_time_ = event.t;
  ++events_;
  ++cum_finished_;
  const auto requested = static_cast<std::size_t>(
      std::min<std::size_t>(event.qos_requested, qos_.size() - 1));
  const auto run = static_cast<std::size_t>(
      std::min<std::size_t>(event.qos_run, qos_.size() - 1));
  if (event.terminated) {
    ++qos_[requested].terminated;
    return;
  }
  ++qos_[requested].completed;
  if (event.slo_met) ++qos_[requested].slo_met;
  rnl_[requested].add(event.rnl);
  qos_[run].bytes += event.bytes;
}

WindowStats TimeseriesSink::harvest(sim::Time end) {
  WindowStats window;
  window.index = window_index_;
  window.start = static_cast<double>(window_index_) * config_.window;
  window.end = end;

  window.qos.resize(config_.num_qos);
  std::uint64_t bytes_total = 0;
  for (std::size_t q = 0; q < config_.num_qos; ++q) {
    bytes_total += qos_[q].bytes;
  }
  for (std::size_t q = 0; q < config_.num_qos; ++q) {
    WindowStats::QosStats& out = window.qos[q];
    out.completed = qos_[q].completed;
    out.terminated = qos_[q].terminated;
    out.slo_met = qos_[q].slo_met;
    out.slo_compliance =
        out.completed == 0 ? 1.0
                           : static_cast<double>(out.slo_met) /
                                 static_cast<double>(out.completed);
    out.rnl_p50 = rnl_[q].percentile(50.0);
    out.rnl_p90 = rnl_[q].percentile(90.0);
    out.rnl_p99 = rnl_[q].percentile(99.0);
    out.bytes = qos_[q].bytes;
    out.byte_share = bytes_total == 0 ? 0.0
                                      : static_cast<double>(out.bytes) /
                                            static_cast<double>(bytes_total);
    window.completed_total += out.completed;
    window.terminated_total += out.terminated;
  }
  window.bytes_total = bytes_total;

  window.ports.resize(ports_.size());
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    WindowStats::PortStats& out = window.ports[p];
    out.enqueued = ports_[p].enqueued;
    out.dequeued = ports_[p].dequeued;
    out.drops = ports_[p].drops;
    out.qlen_max_bytes = ports_[p].qlen_max;
    out.qlen_mean_bytes =
        ports_[p].qlen_samples == 0
            ? 0.0
            : ports_[p].qlen_sum / static_cast<double>(ports_[p].qlen_samples);
    window.packet_drops += out.drops;
    window.enqueued_total += out.enqueued;
    window.dequeued_total += out.dequeued;
  }

  window.admits = admits_;
  window.downgrades = downgrades_;
  window.admission_drops = admission_drops_;
  if (!channels_.empty()) {
    double sum = 0.0;
    double min = 1.0;
    for (const auto& [key, channel] : channels_) {
      (void)key;
      const double mean =
          channel.p_admit_sum / static_cast<double>(channel.decisions);
      sum += mean;
      min = std::min(min, mean);
    }
    window.p_admit_mean = sum / static_cast<double>(channels_.size());
    window.p_admit_min = min;
  }

  window.generated = generated_;
  window.events = events_;
  window.cum_generated = cum_generated_;
  window.cum_finished = cum_finished_;
  if (gauge_provider_) window.gauges = gauge_provider_();
  return window;
}

void TimeseriesSink::write_csv_rows(const WindowStats& window,
                                    std::ostream& out) const {
  const std::string start = us(window.start);
  const std::string end = us(window.end);
  // Global row first: admission plane + whole-window totals.
  out << start << ',' << end << ",global," << window.completed_total << ','
      << window.terminated_total << ",,,,,," << window.bytes_total << ",,"
      << num(window.p_admit_mean) << ',' << num(window.p_admit_min) << ','
      << window.admits << ',' << window.downgrades << ','
      << window.admission_drops << ',' << window.packet_drops << ','
      << window.enqueued_total << ',' << window.dequeued_total << ",,\n";
  for (std::size_t q = 0; q < window.qos.size(); ++q) {
    const WindowStats::QosStats& qos = window.qos[q];
    out << start << ',' << end << ",qos" << q << ',' << qos.completed << ','
        << qos.terminated << ',' << qos.slo_met << ','
        << num(qos.slo_compliance) << ',' << us(qos.rnl_p50) << ','
        << us(qos.rnl_p90) << ',' << us(qos.rnl_p99) << ',' << qos.bytes
        << ',' << num(qos.byte_share) << ",,,,,,,,,,\n";
  }
  for (std::size_t p = 0; p < window.ports.size(); ++p) {
    const WindowStats::PortStats& port = window.ports[p];
    if (port.enqueued == 0 && port.dequeued == 0 && port.drops == 0) continue;
    const std::string& name =
        p < port_names_.size() && !port_names_[p].empty()
            ? port_names_[p]
            : "port" + std::to_string(p);
    out << start << ',' << end << ",port:" << name << ",,,,,,,,,,,,,,,"
        << port.drops << ',' << port.enqueued << ',' << port.dequeued << ','
        << port.qlen_max_bytes << ',' << num(port.qlen_mean_bytes) << '\n';
  }
  // Gauge rows reuse the admission-plane mean/min columns — a gauge is the
  // same shape of signal (cluster mean + worst host), so no header churn.
  for (const WindowStats::GaugeStat& gauge : window.gauges) {
    out << start << ',' << end << ",gauge:" << gauge.name << ",,,,,,,,,,"
        << num(gauge.mean) << ',' << num(gauge.min) << ",,,,,,,,\n";
  }
}

void TimeseriesSink::write_json_window(const WindowStats& window) {
  std::ostream& out = *json_;
  out << (json_first_ ? "\n" : ",\n");
  json_first_ = false;
  out << "{\"window_start_us\":" << us(window.start)
      << ",\"window_end_us\":" << us(window.end) << ",\"global\":{"
      << "\"completed\":" << window.completed_total
      << ",\"terminated\":" << window.terminated_total
      << ",\"generated\":" << window.generated
      << ",\"bytes\":" << window.bytes_total
      << ",\"admits\":" << window.admits
      << ",\"downgrades\":" << window.downgrades
      << ",\"admission_drops\":" << window.admission_drops
      << ",\"p_admit_mean\":" << num(window.p_admit_mean)
      << ",\"p_admit_min\":" << num(window.p_admit_min)
      << ",\"packet_drops\":" << window.packet_drops << "},\"qos\":[";
  for (std::size_t q = 0; q < window.qos.size(); ++q) {
    const WindowStats::QosStats& qos = window.qos[q];
    out << (q == 0 ? "" : ",") << "{\"qos\":" << q
        << ",\"completed\":" << qos.completed
        << ",\"terminated\":" << qos.terminated
        << ",\"slo_met\":" << qos.slo_met
        << ",\"slo_compliance\":" << num(qos.slo_compliance)
        << ",\"rnl_p50_us\":" << us(qos.rnl_p50)
        << ",\"rnl_p90_us\":" << us(qos.rnl_p90)
        << ",\"rnl_p99_us\":" << us(qos.rnl_p99)
        << ",\"bytes\":" << qos.bytes
        << ",\"byte_share\":" << num(qos.byte_share) << "}";
  }
  out << "],\"ports\":[";
  bool first_port = true;
  for (std::size_t p = 0; p < window.ports.size(); ++p) {
    const WindowStats::PortStats& port = window.ports[p];
    if (port.enqueued == 0 && port.dequeued == 0 && port.drops == 0) continue;
    const std::string& name =
        p < port_names_.size() && !port_names_[p].empty()
            ? port_names_[p]
            : "port" + std::to_string(p);
    out << (first_port ? "" : ",") << "{\"port\":\"" << name
        << "\",\"enqueued\":" << port.enqueued
        << ",\"dequeued\":" << port.dequeued << ",\"drops\":" << port.drops
        << ",\"qlen_max_bytes\":" << port.qlen_max_bytes
        << ",\"qlen_mean_bytes\":" << num(port.qlen_mean_bytes) << "}";
    first_port = false;
  }
  out << "]";
  if (!window.gauges.empty()) {
    out << ",\"gauges\":[";
    for (std::size_t g = 0; g < window.gauges.size(); ++g) {
      const WindowStats::GaugeStat& gauge = window.gauges[g];
      out << (g == 0 ? "" : ",") << "{\"name\":\"" << gauge.name
          << "\",\"mean\":" << num(gauge.mean)
          << ",\"min\":" << num(gauge.min) << "}";
    }
    out << "]";
  }
  out << "}";
}

void TimeseriesSink::reset_accumulators() {
  for (std::size_t q = 0; q < config_.num_qos; ++q) {
    qos_[q] = QosAccum{};
    rnl_[q].reset();
  }
  for (PortAccum& port : ports_) port = PortAccum{};
  channels_.clear();
  admits_ = downgrades_ = admission_drops_ = 0;
  generated_ = 0;
  events_ = 0;
}

void TimeseriesSink::close_window(sim::Time end) {
  const WindowStats window = harvest(end);
  if (csv_ != nullptr) write_csv_rows(window, *csv_);
  if (json_ != nullptr) write_json_window(window);
  recent_.push_back(window);
  while (recent_.size() > config_.recent_capacity) recent_.pop_front();
  ++windows_closed_;
  ++window_index_;
  reset_accumulators();
  // Listeners run after the window is written and retained, so a watchdog
  // callback that dumps the flight recorder sees this window's rows too.
  for (const auto& listener : listeners_) listener(window);
}

void TimeseriesSink::flush(sim::Time now) {
  if (finalized_) return;
  ensure_window_for(now);
  if (events_ > 0) {
    // Final partial window: its end is the flush time, not the grid edge.
    const sim::Time end = std::max(
        now, static_cast<double>(window_index_) * config_.window);
    close_window(end);
  }
  finalized_ = true;
  if (json_ != nullptr) {
    *json_ << "\n]}\n";
    json_->flush();
  }
  if (csv_ != nullptr) csv_->flush();
}

void TimeseriesSink::write_recent_csv(std::ostream& out) const {
  out << csv_header() << '\n';
  for (const WindowStats& window : recent_) write_csv_rows(window, out);
}

void TimeseriesSink::write_recent_csv(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  AEQ_ASSERT_MSG(out.is_open(),
                 "TimeseriesSink: cannot open recent-rows output file");
  write_recent_csv(out);
}

}  // namespace aeq::obs
