#include "obs/counter_sink.h"

namespace aeq::obs {

void CounterSink::on_rpc_generated(const RpcGenerated& /*event*/) {
  ++rpcs_generated_;
}

void CounterSink::on_admission(const AdmissionDecision& event) {
  if (event.dropped) {
    ++admission_dropped_;
  } else if (event.downgraded) {
    ++downgraded_;
  } else {
    ++admitted_;
  }
  p_admit_sum_ += event.p_admit;
  ++p_admit_samples_;
}

void CounterSink::on_packet(const PacketEvent& event) {
  switch (event.kind) {
    case PacketEventKind::kEnqueue:
      ++enqueued_[event.qos];
      break;
    case PacketEventKind::kDequeue:
      ++dequeued_[event.qos];
      break;
    case PacketEventKind::kDrop:
      ++dropped_[event.qos];
      break;
  }
}

void CounterSink::on_cwnd(const CwndUpdate& /*event*/) { ++cwnd_updates_; }

void CounterSink::on_rpc_complete(const RpcComplete& event) {
  if (event.terminated) {
    ++rpcs_terminated_;
    bytes_terminated_ += event.bytes;
  } else {
    ++rpcs_completed_;
    bytes_completed_ += event.bytes;
  }
  if (event.slo_met) ++slo_met_;
}

std::uint64_t CounterSink::total_packets_dropped() const {
  std::uint64_t total = 0;
  for (const auto count : dropped_) total += count;
  return total;
}

double CounterSink::slo_compliance() const {
  return rpcs_completed_ == 0
             ? 1.0
             : static_cast<double>(slo_met_) /
                   static_cast<double>(rpcs_completed_);
}

double CounterSink::mean_p_admit() const {
  return p_admit_samples_ == 0 ? 1.0
                               : p_admit_sum_ / static_cast<double>(
                                                    p_admit_samples_);
}

stats::Table CounterSink::to_table() const {
  stats::Table table({{"counter", 28, 0}, {"value", 12, 0}});
  const auto row = [&table](const char* name, double value, int prec = 0) {
    table.add_row({name, stats::Cell(value, prec)});
  };
  row("rpcs_generated", static_cast<double>(rpcs_generated_));
  row("rpcs_completed", static_cast<double>(rpcs_completed_));
  row("rpcs_terminated", static_cast<double>(rpcs_terminated_));
  row("admitted", static_cast<double>(admitted_));
  row("downgraded", static_cast<double>(downgraded_));
  row("admission_dropped", static_cast<double>(admission_dropped_));
  row("slo_met", static_cast<double>(slo_met_));
  row("slo_compliance", slo_compliance(), 4);
  row("bytes_completed", static_cast<double>(bytes_completed_));
  row("bytes_terminated", static_cast<double>(bytes_terminated_));
  row("mean_p_admit", mean_p_admit(), 4);
  row("cwnd_updates", static_cast<double>(cwnd_updates_));
  for (net::QoSLevel qos = 0; qos < net::kMaxQoSLevels; ++qos) {
    if (enqueued_[qos] == 0 && dequeued_[qos] == 0 && dropped_[qos] == 0) {
      continue;
    }
    const std::string prefix = "qos" + std::to_string(qos) + "_packets_";
    table.add_row({prefix + "enqueued",
                   stats::Cell(static_cast<double>(enqueued_[qos]), 0)});
    table.add_row({prefix + "dequeued",
                   stats::Cell(static_cast<double>(dequeued_[qos]), 0)});
    table.add_row({prefix + "dropped",
                   stats::Cell(static_cast<double>(dropped_[qos]), 0)});
  }
  return table;
}

}  // namespace aeq::obs
