#include "obs/flight_recorder.h"

#include <algorithm>
#include <fstream>

#include "obs/chrome_trace_sink.h"
#include "sim/assert.h"

namespace aeq::obs {
namespace {

// One entry of the merged, time-ordered replay: which ring the event came
// from plus its index into a per-category staging vector.
struct Slot {
  sim::Time t = 0.0;
  std::uint8_t category = 0;
  std::uint32_t index = 0;
};

}  // namespace

FlightRecorder::FlightRecorder(const FlightRecorderConfig& config)
    : config_(config) {
  AEQ_CHECK_GE(config_.capacity, 1u);
  generated_.reset(config_.capacity);
  admissions_.reset(config_.capacity);
  packets_.reset(config_.capacity);
  cwnds_.reset(config_.capacity);
  completions_.reset(config_.capacity);
}

void FlightRecorder::on_port_registered(std::uint32_t port,
                                        const std::string& name) {
  if (port >= port_names_.size()) port_names_.resize(port + 1);
  port_names_[port] = name;
}

void FlightRecorder::on_rpc_generated(const RpcGenerated& event) {
  ++events_seen_;
  generated_.push(event);
}

void FlightRecorder::on_admission(const AdmissionDecision& event) {
  ++events_seen_;
  admissions_.push(event);
}

void FlightRecorder::on_packet(const PacketEvent& event) {
  ++events_seen_;
  packets_.push(event);
}

void FlightRecorder::on_cwnd(const CwndUpdate& event) {
  ++events_seen_;
  cwnds_.push(event);
}

void FlightRecorder::on_rpc_complete(const RpcComplete& event) {
  ++events_seen_;
  completions_.push(event);
}

std::size_t FlightRecorder::events_retained() const {
  return generated_.size() + admissions_.size() + packets_.size() +
         cwnds_.size() + completions_.size();
}

void FlightRecorder::dump(const std::string& path, const Anomaly* anomaly) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  AEQ_ASSERT_MSG(out.is_open(),
                 "FlightRecorder: cannot open dump output file");
  dump(out, anomaly);
}

void FlightRecorder::dump(std::ostream& out, const Anomaly* anomaly) {
  ++dumps_;

  // Stage each ring's retained events (oldest first) and index them.
  std::vector<RpcGenerated> generated;
  std::vector<AdmissionDecision> admissions;
  std::vector<PacketEvent> packets;
  std::vector<CwndUpdate> cwnds;
  std::vector<RpcComplete> completions;
  std::vector<Slot> slots;
  slots.reserve(events_retained());

  const sim::Time horizon =
      (anomaly != nullptr && config_.lookback > 0.0)
          ? anomaly->t - config_.lookback
          : -1.0;
  const auto stage = [&](auto& staged, std::uint8_t category,
                         const auto& event) {
    if (event.t < horizon) return;
    Slot slot;
    slot.t = event.t;
    slot.category = category;
    slot.index = static_cast<std::uint32_t>(staged.size());
    staged.push_back(event);
    slots.push_back(slot);
  };
  generated_.visit(
      [&](const RpcGenerated& e) { stage(generated, 0, e); });
  admissions_.visit(
      [&](const AdmissionDecision& e) { stage(admissions, 1, e); });
  packets_.visit([&](const PacketEvent& e) { stage(packets, 2, e); });
  cwnds_.visit([&](const CwndUpdate& e) { stage(cwnds, 3, e); });
  completions_.visit(
      [&](const RpcComplete& e) { stage(completions, 4, e); });

  // Each ring is already time-ordered; stable_sort on t merges them while
  // keeping same-timestamp events in a deterministic category order.
  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) { return a.t < b.t; });

  ChromeTraceSink sink(&out);
  for (std::size_t id = 0; id < port_names_.size(); ++id) {
    sink.on_port_registered(static_cast<std::uint32_t>(id), port_names_[id]);
  }
  for (const Slot& slot : slots) {
    switch (slot.category) {
      case 0:
        sink.on_rpc_generated(generated[slot.index]);
        break;
      case 1:
        sink.on_admission(admissions[slot.index]);
        break;
      case 2:
        sink.on_packet(packets[slot.index]);
        break;
      case 3:
        sink.on_cwnd(cwnds[slot.index]);
        break;
      case 4:
        sink.on_rpc_complete(completions[slot.index]);
        break;
    }
  }
  sim::Time end = slots.empty() ? 0.0 : slots.back().t;
  if (anomaly != nullptr) {
    sink.annotate(anomaly->t, describe(*anomaly));
    end = std::max(end, anomaly->t);
  }
  sink.flush(end);
}

}  // namespace aeq::obs
