// ChromeTraceSink: emits the run as Chrome trace_event JSON.
//
// The output loads directly in chrome://tracing or https://ui.perfetto.dev:
//  - each completed RPC is a complete ("X") span on the source host's track,
//    one thread-row per delivered QoS class, spanning exactly its RNL;
//  - admission decisions are instant ("i") events on the same track, with
//    p_admit in the args;
//  - each port's queue depth is a counter ("C") track (pid 10000+port),
//    updated on every enqueue/dequeue, with drops as instants;
//  - each flow's congestion window is a counter track on the source host.
//
// Events stream to the output as they arrive (no buffering of the run), so
// trace size is bounded by disk, not memory. flush() closes the JSON; the
// sink writes nothing after that.
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <unordered_set>

#include "obs/recorder.h"

namespace aeq::obs {

class ChromeTraceSink : public Sink {
 public:
  // Opens `path` for writing (truncates). Fails hard on open error: a trace
  // the user asked for but cannot get is a config error, not a warning.
  explicit ChromeTraceSink(const std::string& path);
  // Streams into a caller-owned ostream (tests).
  explicit ChromeTraceSink(std::ostream* out);
  ~ChromeTraceSink() override;

  void on_port_registered(std::uint32_t port,
                          const std::string& name) override;
  void on_rpc_generated(const RpcGenerated& event) override;
  void on_admission(const AdmissionDecision& event) override;
  void on_packet(const PacketEvent& event) override;
  void on_cwnd(const CwndUpdate& event) override;
  void on_rpc_complete(const RpcComplete& event) override;

  void flush(sim::Time now) override;

  // Writes a free-form global instant ("i", scope "g") at `t`. The flight
  // recorder uses this to mark the anomaly that triggered a dump so the
  // trigger is visible on the Perfetto timeline next to the evidence.
  void annotate(sim::Time t, const std::string& label);

  std::uint64_t events_written() const { return events_written_; }

 private:
  // pid namespaces inside the trace: hosts use their HostId verbatim, port
  // counter tracks live at kPortPidBase + port id.
  static constexpr std::uint32_t kPortPidBase = 10000;

  void write_prologue();
  // Starts one event object (handles the separating comma) and returns the
  // stream for the caller to finish the object.
  std::ostream& begin_event();
  void ensure_host_named(net::HostId host);

  std::ofstream file_;
  std::ostream* out_ = nullptr;
  bool finalized_ = false;
  bool first_event_ = true;
  std::uint64_t events_written_ = 0;
  std::unordered_set<net::HostId> named_hosts_;
};

}  // namespace aeq::obs
