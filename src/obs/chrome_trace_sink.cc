#include "obs/chrome_trace_sink.h"

#include <cstdio>

#include "sim/assert.h"

namespace aeq::obs {
namespace {

// Simulation time → trace microseconds, fixed 3 decimals so sub-µs packet
// spacing at 100G stays visible and output is locale-independent.
std::string fmt_us(sim::Time t) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", t / sim::kUsec);
  return buffer;
}

std::string json_escape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') escaped.push_back('\\');
    escaped.push_back(c);
  }
  return escaped;
}

const char* admission_name(const AdmissionDecision& event) {
  if (event.dropped) return "admission_drop";
  if (event.downgraded) return "downgrade";
  return "admit";
}

}  // namespace

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : file_(path, std::ios::out | std::ios::trunc), out_(&file_) {
  AEQ_ASSERT_MSG(file_.is_open(),
                 "ChromeTraceSink: cannot open trace output file");
  write_prologue();
}

ChromeTraceSink::ChromeTraceSink(std::ostream* out) : out_(out) {
  AEQ_ASSERT(out != nullptr);
  write_prologue();
}

ChromeTraceSink::~ChromeTraceSink() {
  // Close the JSON even if the run never reached flush() (e.g. a test that
  // destroys the recorder early); flush() makes this a no-op.
  if (!finalized_) flush(0.0);
}

void ChromeTraceSink::write_prologue() {
  *out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
}

std::ostream& ChromeTraceSink::begin_event() {
  if (!first_event_) *out_ << ",";
  first_event_ = false;
  *out_ << "\n";
  ++events_written_;
  return *out_;
}

void ChromeTraceSink::ensure_host_named(net::HostId host) {
  if (finalized_ || !named_hosts_.insert(host).second) return;
  begin_event() << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << host
                << ",\"tid\":0,\"args\":{\"name\":\"host " << host << "\"}}";
}

void ChromeTraceSink::on_port_registered(std::uint32_t port,
                                         const std::string& name) {
  if (finalized_) return;
  begin_event() << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":"
                << (kPortPidBase + port) << ",\"tid\":0,\"args\":{\"name\":\""
                << json_escape(name) << "\"}}";
}

void ChromeTraceSink::on_rpc_generated(const RpcGenerated& event) {
  if (finalized_) return;
  ensure_host_named(event.src);
  begin_event() << "{\"ph\":\"i\",\"name\":\"rpc_generated\",\"cat\":\"rpc\""
                << ",\"s\":\"t\",\"ts\":" << fmt_us(event.t)
                << ",\"pid\":" << event.src
                << ",\"tid\":" << static_cast<int>(event.qos_requested)
                << ",\"args\":{\"rpc_id\":" << event.rpc_id
                << ",\"dst\":" << event.dst << ",\"bytes\":" << event.bytes
                << "}}";
}

void ChromeTraceSink::on_admission(const AdmissionDecision& event) {
  if (finalized_) return;
  ensure_host_named(event.src);
  begin_event() << "{\"ph\":\"i\",\"name\":\"" << admission_name(event)
                << "\",\"cat\":\"admission\",\"s\":\"t\",\"ts\":"
                << fmt_us(event.t) << ",\"pid\":" << event.src
                << ",\"tid\":" << static_cast<int>(event.qos_from)
                << ",\"args\":{\"rpc_id\":" << event.rpc_id
                << ",\"dst\":" << event.dst
                << ",\"qos_to\":" << static_cast<int>(event.qos_to)
                << ",\"p_admit\":" << event.p_admit << "}}";
}

void ChromeTraceSink::on_packet(const PacketEvent& event) {
  if (finalized_) return;
  const std::uint32_t pid = kPortPidBase + event.port;
  if (event.kind == PacketEventKind::kDrop) {
    begin_event() << "{\"ph\":\"i\",\"name\":\"packet_drop\",\"cat\":\"net\""
                  << ",\"s\":\"p\",\"ts\":" << fmt_us(event.t)
                  << ",\"pid\":" << pid
                  << ",\"tid\":" << static_cast<int>(event.qos)
                  << ",\"args\":{\"bytes\":" << event.bytes << "}}";
    return;
  }
  begin_event() << "{\"ph\":\"C\",\"name\":\"qlen\",\"cat\":\"net\",\"ts\":"
                << fmt_us(event.t) << ",\"pid\":" << pid
                << ",\"args\":{\"bytes\":" << event.qlen_bytes
                << ",\"packets\":" << event.qlen_packets << "}}";
}

void ChromeTraceSink::on_cwnd(const CwndUpdate& event) {
  if (finalized_) return;
  ensure_host_named(event.src);
  begin_event() << "{\"ph\":\"C\",\"name\":\"cwnd dst" << event.dst << " q"
                << static_cast<int>(event.qos) << "\",\"cat\":\"transport\""
                << ",\"ts\":" << fmt_us(event.t) << ",\"pid\":" << event.src
                << ",\"args\":{\"packets\":" << event.cwnd_packets << "}}";
}

void ChromeTraceSink::on_rpc_complete(const RpcComplete& event) {
  if (finalized_) return;
  ensure_host_named(event.src);
  if (event.terminated) {
    begin_event() << "{\"ph\":\"i\",\"name\":\"rpc_terminated\""
                  << ",\"cat\":\"rpc\",\"s\":\"t\",\"ts\":" << fmt_us(event.t)
                  << ",\"pid\":" << event.src
                  << ",\"tid\":" << static_cast<int>(event.qos_requested)
                  << ",\"args\":{\"rpc_id\":" << event.rpc_id
                  << ",\"dst\":" << event.dst << "}}";
    return;
  }
  // The span covers exactly the RPC's network latency: it starts rnl before
  // the completion time, on the delivered-QoS row of the source host.
  begin_event() << "{\"ph\":\"X\",\"name\":\"rpc\",\"cat\":\"rpc\",\"ts\":"
                << fmt_us(event.t - event.rnl)
                << ",\"dur\":" << fmt_us(event.rnl)
                << ",\"pid\":" << event.src
                << ",\"tid\":" << static_cast<int>(event.qos_run)
                << ",\"args\":{\"rpc_id\":" << event.rpc_id
                << ",\"dst\":" << event.dst << ",\"bytes\":" << event.bytes
                << ",\"qos_requested\":"
                << static_cast<int>(event.qos_requested)
                << ",\"slo_met\":" << (event.slo_met ? "true" : "false")
                << ",\"downgraded\":" << (event.downgraded ? "true" : "false")
                << "}}";
}

void ChromeTraceSink::annotate(sim::Time t, const std::string& label) {
  if (finalized_) return;
  begin_event() << "{\"ph\":\"i\",\"name\":\"" << json_escape(label)
                << "\",\"cat\":\"anomaly\",\"s\":\"g\",\"ts\":" << fmt_us(t)
                << ",\"pid\":0,\"tid\":0}";
}

void ChromeTraceSink::flush(sim::Time /*now*/) {
  if (finalized_) return;
  finalized_ = true;
  *out_ << "\n]}\n";
  out_->flush();
}

}  // namespace aeq::obs
