// TimeseriesSink: fixed-width sim-time windows over the event stream.
//
// The middle layer between raw per-event sinks (ChromeTraceSink/CsvSink,
// gigabytes at production scale) and whole-run totals (CounterSink): every
// window of simulated time is folded into one bounded-size WindowStats
// record — per-QoS RNL percentiles from a fixed-memory log-bucketed
// histogram (no per-RPC storage), SLO-compliance rate, QoS-mix byte shares,
// per-channel-averaged p_admit, admission downgrade/drop counts, and
// per-port max/mean queue depth — and streamed out as CSV and/or JSON
// timeline rows. Memory is O(qos + ports + channels + retained windows),
// independent of the number of events.
//
// Windows are [k*W, (k+1)*W). Events carry nondecreasing times (the
// simulator dispatches in time order), so a window closes when the first
// event at or past its end arrives, or when advance_to() is driven by the
// experiment's periodic telemetry tick (which also closes empty windows —
// that is what lets the watchdog detect a total stall). Listeners run at
// window close, after the window's rows are written and retained; the
// Watchdog (obs/watchdog.h) is the canonical listener.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/recorder.h"
#include "stats/log_histogram.h"

namespace aeq::obs {

struct TimeseriesConfig {
  sim::Time window = 100 * sim::kUsec;  // window width (sim time)
  std::size_t num_qos = 3;
  std::string csv_path;   // "" = no CSV output
  std::string json_path;  // "" = no JSON output
  // How many closed windows to retain in memory (recent()) for the flight
  // recorder's "recent timeseries rows" dump and for tests.
  std::size_t recent_capacity = 128;
  // RNL histogram shape: percentiles carry <= `precision` relative error
  // within [rnl_min, rnl_max] (values clamp outside).
  double rnl_min = 0.1 * sim::kUsec;
  double rnl_max = 1.0;  // seconds
  double precision = 0.02;
};

// One closed window, fully aggregated. All RPC-level stats (completions,
// SLO verdicts, RNL percentiles) are attributed to the *requested* QoS —
// the paper's per-class accounting, which keeps downgraded RPCs visible to
// the class that suffered them — while `bytes` counts completed payload by
// the QoS the RPC was *delivered* on, so byte_share is the admitted QoS
// mix (§6 figures).
struct WindowStats {
  std::uint64_t index = 0;
  sim::Time start = 0.0;
  sim::Time end = 0.0;

  struct QosStats {
    std::uint64_t completed = 0;   // by requested QoS
    std::uint64_t terminated = 0;  // deadline kills + admission rejections
    std::uint64_t slo_met = 0;
    // slo_met / completed; 1.0 when nothing completed.
    double slo_compliance = 1.0;
    // RNL percentiles (seconds) over this window's completions; 0 if none.
    double rnl_p50 = 0.0;
    double rnl_p90 = 0.0;
    double rnl_p99 = 0.0;
    std::uint64_t bytes = 0;    // completed payload delivered on this QoS
    double byte_share = 0.0;    // bytes / window total (0 when no bytes)
  };
  std::vector<QosStats> qos;

  struct PortStats {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t drops = 0;
    std::uint64_t qlen_max_bytes = 0;
    double qlen_mean_bytes = 0.0;  // mean backlog over enqueue/dequeue ops
  };
  std::vector<PortStats> ports;  // indexed by registered port id

  // Admission-plane aggregates.
  std::uint64_t admits = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t admission_drops = 0;
  // p_admit averaged per (src, dst, qos) channel first (the unit the AIMD
  // operates on), then across channels — so one chatty channel cannot mask
  // a collapsed one — plus the worst channel's mean for the watchdog.
  double p_admit_mean = 1.0;
  double p_admit_min = 1.0;

  // Whole-window totals.
  std::uint64_t generated = 0;
  std::uint64_t completed_total = 0;
  std::uint64_t terminated_total = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t packet_drops = 0;
  std::uint64_t enqueued_total = 0;
  std::uint64_t dequeued_total = 0;
  std::uint64_t events = 0;  // every event folded into this window

  // Cumulative issue/finish counters up to this window's close; their
  // difference is the outstanding-RPC backlog the stall rule inspects.
  std::uint64_t cum_generated = 0;
  std::uint64_t cum_finished = 0;

  // Controller gauges sampled at window close (set_gauge_provider):
  // cluster mean and worst host per named gauge. Empty unless a provider
  // is attached, which keeps the default CSV/JSON bytes unchanged.
  struct GaugeStat {
    std::string name;
    double mean = 0.0;
    double min = 0.0;
  };
  std::vector<GaugeStat> gauges;
};

class TimeseriesSink : public Sink {
 public:
  explicit TimeseriesSink(const TimeseriesConfig& config);
  // Streams into caller-owned streams (tests); either may be null.
  TimeseriesSink(const TimeseriesConfig& config, std::ostream* csv,
                 std::ostream* json);

  void on_port_registered(std::uint32_t port,
                          const std::string& name) override;
  void on_rpc_generated(const RpcGenerated& event) override;
  void on_admission(const AdmissionDecision& event) override;
  void on_packet(const PacketEvent& event) override;
  void on_cwnd(const CwndUpdate& event) override;
  void on_rpc_complete(const RpcComplete& event) override;

  // Closes every window whose end is <= t (emitting empty windows across
  // gaps). Driven by the experiment's periodic tick so stalls surface even
  // when no events arrive.
  void advance_to(sim::Time t);

  // Closes the final (partial) window and the JSON document.
  void flush(sim::Time now) override;

  // Invoked with each window as it closes, in registration order.
  void add_window_listener(std::function<void(const WindowStats&)> fn);

  // Attaches a gauge sampler invoked at every window close (must be
  // read-only and deterministic, like the audit sweep — the runner wires
  // the admission controllers' gauges() here). Each closed window then
  // carries the samples as `gauge:<name>` CSV rows (mean/min in the
  // p_admit_mean/p_admit_min columns) and a JSON "gauges" array.
  using GaugeProvider = std::function<std::vector<WindowStats::GaugeStat>()>;
  void set_gauge_provider(GaugeProvider provider);

  std::uint64_t windows_closed() const { return windows_closed_; }
  const std::deque<WindowStats>& recent() const { return recent_; }
  const TimeseriesConfig& config() const { return config_; }

  // Re-renders the retained windows as one standalone CSV (header + rows):
  // the "recent timeseries rows" half of a flight-recorder dump.
  void write_recent_csv(const std::string& path) const;
  void write_recent_csv(std::ostream& out) const;

  static const char* csv_header();

 private:
  void init_streams();
  void ensure_window_for(sim::Time t);
  void close_window(sim::Time end);
  WindowStats harvest(sim::Time end);
  void write_csv_rows(const WindowStats& window, std::ostream& out) const;
  void write_json_window(const WindowStats& window);
  void reset_accumulators();

  TimeseriesConfig config_;
  std::ofstream csv_file_;
  std::ofstream json_file_;
  std::ostream* csv_ = nullptr;
  std::ostream* json_ = nullptr;
  bool json_first_ = true;
  bool finalized_ = false;

  std::vector<std::string> port_names_;
  std::vector<std::function<void(const WindowStats&)>> listeners_;
  GaugeProvider gauge_provider_;

  // --- accumulators of the currently open window ---
  std::uint64_t window_index_ = 0;
  struct QosAccum {
    std::uint64_t completed = 0;
    std::uint64_t terminated = 0;
    std::uint64_t slo_met = 0;
    std::uint64_t bytes = 0;  // delivered-QoS attribution
  };
  std::vector<QosAccum> qos_;
  std::vector<stats::LogHistogram> rnl_;  // per requested QoS
  struct PortAccum {
    std::uint64_t enqueued = 0;
    std::uint64_t dequeued = 0;
    std::uint64_t drops = 0;
    std::uint64_t qlen_max = 0;
    double qlen_sum = 0.0;
    std::uint64_t qlen_samples = 0;
  };
  std::vector<PortAccum> ports_;
  struct ChannelAccum {
    double p_admit_sum = 0.0;
    std::uint64_t decisions = 0;
  };
  // Ordered map => deterministic fold order for the floating-point means.
  std::map<std::uint64_t, ChannelAccum> channels_;
  std::uint64_t admits_ = 0;
  std::uint64_t downgrades_ = 0;
  std::uint64_t admission_drops_ = 0;
  std::uint64_t generated_ = 0;
  std::uint64_t events_ = 0;
  sim::Time last_event_time_ = 0.0;

  std::uint64_t cum_generated_ = 0;
  std::uint64_t cum_finished_ = 0;

  std::uint64_t windows_closed_ = 0;
  std::deque<WindowStats> recent_;
};

}  // namespace aeq::obs
