// Recorder: the single funnel every telemetry event flows through.
//
// Emitters (rpc::RpcStack, net::Port, transport::Flow, ...) hold a nullable
// `obs::Recorder*`. With tracing off the pointer is null and every emission
// site is one predictable branch — behaviour and output stay byte-identical
// to an untraced build. With tracing on, the recorder fans each event out to
// its registered sinks in registration order.
//
// Sinks implement the `Sink` interface below; all handlers default to no-ops
// so a sink overrides only the events it cares about. Sinks may be owned by
// the recorder (own_sink) or borrowed (add_sink) when the caller wants to
// inspect the sink afterwards (e.g. CounterSink::to_table()).
//
// Ports are registered up front (register_port) so packet events carry a
// dense uint32 id instead of a string; registration order is the experiment
// wiring order, which is deterministic for a fixed config.
//
// Sharded runs build one Recorder per shard; each gets a distinct
// first_port_id base so the global port-id space stays collision-free and
// obs::shard_merge can interleave the per-shard Chrome-trace tracks without
// two shards' ports landing on one pid (tests/shard_merge_test.cc).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/prof/profiler.h"

namespace aeq::obs {

class Sink {
 public:
  virtual ~Sink() = default;

  // A port id came into existence; `name` is stable for the run.
  virtual void on_port_registered(std::uint32_t /*port*/,
                                  const std::string& /*name*/) {}

  virtual void on_rpc_generated(const RpcGenerated& /*event*/) {}
  virtual void on_admission(const AdmissionDecision& /*event*/) {}
  virtual void on_packet(const PacketEvent& /*event*/) {}
  virtual void on_cwnd(const CwndUpdate& /*event*/) {}
  virtual void on_rpc_complete(const RpcComplete& /*event*/) {}

  // End of run; sinks that buffer or stream finalize their output here.
  virtual void flush(sim::Time /*now*/) {}
};

class Recorder {
 public:
  // `first_port_id` offsets every id this recorder assigns; per-shard
  // recorders pass disjoint bases so ids are globally unique across shards.
  Recorder() = default;
  explicit Recorder(std::uint32_t first_port_id)
      : first_port_id_(first_port_id) {}

  // Registers a sink the caller keeps alive for the recorder's lifetime.
  // Ports registered before the sink arrived are replayed immediately, so a
  // sink attached mid-run (e.g. a flight recorder armed on anomaly) still
  // learns every port's name.
  void add_sink(Sink* sink) {
    for (std::size_t id = 0; id < port_names_.size(); ++id) {
      sink->on_port_registered(
          first_port_id_ + static_cast<std::uint32_t>(id), port_names_[id]);
    }
    sinks_.push_back(sink);
  }

  // Registers a sink the recorder owns. Known ports replay as in add_sink.
  Sink* own_sink(std::unique_ptr<Sink> sink) {
    Sink* raw = sink.get();
    owned_.push_back(std::move(sink));
    add_sink(raw);
    return raw;
  }

  std::size_t sink_count() const { return sinks_.size(); }

  // Assigns the next port id (first_port_id + dense local index) and
  // announces it to the sinks.
  std::uint32_t register_port(const std::string& name) {
    const auto id =
        first_port_id_ + static_cast<std::uint32_t>(port_names_.size());
    port_names_.push_back(name);
    for (Sink* sink : sinks_) sink->on_port_registered(id, name);
    return id;
  }
  const std::string& port_name(std::uint32_t port) const {
    return port_names_.at(port - first_port_id_);
  }
  std::size_t port_count() const { return port_names_.size(); }
  std::uint32_t first_port_id() const { return first_port_id_; }

  void rpc_generated(const RpcGenerated& event) {
    const prof::ProfRegion region(prof::Region::kTelemetry);
    for (Sink* sink : sinks_) sink->on_rpc_generated(event);
  }
  void admission(const AdmissionDecision& event) {
    const prof::ProfRegion region(prof::Region::kTelemetry);
    for (Sink* sink : sinks_) sink->on_admission(event);
  }
  void packet(const PacketEvent& event) {
    const prof::ProfRegion region(prof::Region::kTelemetry);
    for (Sink* sink : sinks_) sink->on_packet(event);
  }
  void cwnd(const CwndUpdate& event) {
    const prof::ProfRegion region(prof::Region::kTelemetry);
    for (Sink* sink : sinks_) sink->on_cwnd(event);
  }
  void rpc_complete(const RpcComplete& event) {
    const prof::ProfRegion region(prof::Region::kTelemetry);
    for (Sink* sink : sinks_) sink->on_rpc_complete(event);
  }

  void flush(sim::Time now) {
    for (Sink* sink : sinks_) sink->flush(now);
  }

 private:
  std::vector<Sink*> sinks_;
  std::vector<std::unique_ptr<Sink>> owned_;
  std::vector<std::string> port_names_;
  std::uint32_t first_port_id_ = 0;
};

}  // namespace aeq::obs
