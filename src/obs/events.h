// Event taxonomy of the unified observability layer.
//
// One small, stable set of per-RPC lifecycle and per-packet events covers
// everything the paper's evaluation needs to explain *why* an RPC met or
// missed its SLO: when it was generated, what the admission controller
// decided (and at what p_admit), where its packets queued or dropped, how
// the congestion window moved, and the final RNL verdict. Emitters fill
// these plain structs; sinks (obs/recorder.h) decide what to do with them.
//
// Events are deliberately POD — no strings, no allocation — so constructing
// one on the hot path costs a handful of stores, and a disabled recorder
// (null pointer at every emission site) costs one predictable branch.
#pragma once

#include <cstdint>

#include "net/packet.h"
#include "sim/units.h"

namespace aeq::obs {

// An RPC entered the stack at its requested QoS (before admission).
struct RpcGenerated {
  sim::Time t = 0.0;
  std::uint64_t rpc_id = 0;
  net::HostId src = net::kNoHost;
  net::HostId dst = net::kNoHost;
  net::QoSLevel qos_requested = net::kQoSHigh;
  std::uint64_t bytes = 0;
};

// The admission controller's verdict for one RPC: admitted on its requested
// QoS, downgraded to `qos_to`, or rejected outright (quota-style policies).
struct AdmissionDecision {
  sim::Time t = 0.0;
  std::uint64_t rpc_id = 0;
  net::HostId src = net::kNoHost;
  net::HostId dst = net::kNoHost;
  net::QoSLevel qos_from = net::kQoSHigh;
  net::QoSLevel qos_to = net::kQoSHigh;
  double p_admit = 1.0;  // the channel's admit probability at decision time
  bool downgraded = false;
  bool dropped = false;
};

enum class PacketEventKind : std::uint8_t { kEnqueue, kDequeue, kDrop };

// A packet crossed (or failed to cross) one egress queue. `port` is the id
// the experiment registered for that port (Recorder::register_port);
// `qlen_*` is the queue backlog *after* the operation, which is what a
// timeline of these events turns into a queue-depth curve.
struct PacketEvent {
  sim::Time t = 0.0;
  PacketEventKind kind = PacketEventKind::kEnqueue;
  std::uint32_t port = 0;
  net::QoSLevel qos = net::kQoSHigh;
  std::uint32_t bytes = 0;
  std::uint64_t qlen_bytes = 0;
  std::uint64_t qlen_packets = 0;
};

// A flow's congestion window changed (ACK advance, loss, or idle restart).
struct CwndUpdate {
  sim::Time t = 0.0;
  net::HostId src = net::kNoHost;
  net::HostId dst = net::kNoHost;
  net::QoSLevel qos = net::kQoSHigh;
  double cwnd_packets = 0.0;
};

// Terminal event of an RPC: completed (with its measured RNL) or terminated
// (deadline kill / admission rejection). `slo_met` is evaluated against the
// SLO of the *requested* QoS, as in the paper's compliance accounting.
struct RpcComplete {
  sim::Time t = 0.0;
  std::uint64_t rpc_id = 0;
  net::HostId src = net::kNoHost;
  net::HostId dst = net::kNoHost;
  net::QoSLevel qos_requested = net::kQoSHigh;
  net::QoSLevel qos_run = net::kQoSHigh;
  std::uint64_t bytes = 0;
  sim::Time rnl = 0.0;
  bool slo_met = false;
  bool downgraded = false;
  bool terminated = false;
};

}  // namespace aeq::obs
