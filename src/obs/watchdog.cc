#include "obs/watchdog.h"

#include <cstdio>
#include <utility>

#include "sim/assert.h"

namespace aeq::obs {

const char* kind_name(Anomaly::Kind kind) {
  switch (kind) {
    case Anomaly::Kind::kSloCompliance:
      return "slo_compliance";
    case Anomaly::Kind::kPAdmitCollapse:
      return "p_admit_collapse";
    case Anomaly::Kind::kPortSaturation:
      return "port_saturation";
    case Anomaly::Kind::kStall:
      return "stall";
  }
  return "unknown";
}

std::string describe(const Anomaly& anomaly) {
  char buffer[256];
  int written = std::snprintf(
      buffer, sizeof(buffer), "t_us=%.3f window=%llu kind=%s",
      anomaly.t / sim::kUsec,
      static_cast<unsigned long long>(anomaly.window), kind_name(anomaly.kind));
  std::string line(buffer, static_cast<std::size_t>(written));
  if (anomaly.qos >= 0) line += " qos=" + std::to_string(anomaly.qos);
  if (anomaly.port >= 0) line += " port=" + std::to_string(anomaly.port);
  written = std::snprintf(buffer, sizeof(buffer),
                          " value=%.6g threshold=%.6g consecutive=%zu",
                          anomaly.value, anomaly.threshold,
                          anomaly.consecutive);
  line.append(buffer, static_cast<std::size_t>(written));
  return line;
}

Watchdog::Watchdog(const WatchdogConfig& config) : config_(config) {
  compliance_.resize(config_.compliance_target.size());
}

void Watchdog::add_callback(std::function<void(const Anomaly&)> fn) {
  AEQ_ASSERT(fn != nullptr);
  callbacks_.push_back(std::move(fn));
}

bool Watchdog::step(RuleState& state, bool bad, std::size_t needed) {
  if (!bad) {
    state.streak = 0;
    state.latched = false;
    return false;
  }
  ++state.streak;
  if (state.streak < needed || state.latched) return false;
  state.latched = true;
  return true;
}

void Watchdog::emit(Anomaly anomaly) {
  if (anomalies_.size() < config_.max_log) anomalies_.push_back(anomaly);
  for (const auto& callback : callbacks_) callback(anomaly);
}

void Watchdog::on_window(const WindowStats& window) {
  ++windows_seen_;
  if (window.end <= config_.quiet_until) return;

  // SLO compliance: per requested-QoS class, with a minimum sample size so
  // a window with two unlucky completions can't start a streak.
  const std::size_t monitored =
      std::min(compliance_.size(), window.qos.size());
  for (std::size_t q = 0; q < monitored; ++q) {
    const WindowStats::QosStats& qos = window.qos[q];
    const double target = config_.compliance_target[q];
    if (target <= 0.0) continue;
    if (qos.completed < config_.compliance_min_completions) continue;
    if (step(compliance_[q], qos.slo_compliance < target,
             config_.compliance_windows)) {
      Anomaly anomaly;
      anomaly.kind = Anomaly::Kind::kSloCompliance;
      anomaly.t = window.end;
      anomaly.window = window.index;
      anomaly.qos = static_cast<int>(q);
      anomaly.value = qos.slo_compliance;
      anomaly.threshold = target;
      anomaly.consecutive = compliance_[q].streak;
      emit(anomaly);
    }
  }

  // p_admit collapse: the worst channel's window-mean probability. Only
  // meaningful in windows that saw admission decisions.
  if (config_.p_admit_floor > 0.0 &&
      (window.admits + window.downgrades + window.admission_drops) > 0) {
    if (step(p_admit_, window.p_admit_min < config_.p_admit_floor,
             config_.p_admit_windows)) {
      Anomaly anomaly;
      anomaly.kind = Anomaly::Kind::kPAdmitCollapse;
      anomaly.t = window.end;
      anomaly.window = window.index;
      anomaly.value = window.p_admit_min;
      anomaly.threshold = config_.p_admit_floor;
      anomaly.consecutive = p_admit_.streak;
      emit(anomaly);
    }
  }

  // Port saturation: max backlog within the window against a byte limit.
  if (config_.saturation_qlen_bytes > 0) {
    if (saturation_.size() < window.ports.size()) {
      saturation_.resize(window.ports.size());
    }
    for (std::size_t p = 0; p < window.ports.size(); ++p) {
      const bool bad = window.ports[p].qlen_max_bytes >
                       config_.saturation_qlen_bytes;
      if (step(saturation_[p], bad, config_.saturation_windows)) {
        Anomaly anomaly;
        anomaly.kind = Anomaly::Kind::kPortSaturation;
        anomaly.t = window.end;
        anomaly.window = window.index;
        anomaly.port = static_cast<int>(p);
        anomaly.value = static_cast<double>(window.ports[p].qlen_max_bytes);
        anomaly.threshold = static_cast<double>(config_.saturation_qlen_bytes);
        anomaly.consecutive = saturation_[p].streak;
        emit(anomaly);
      }
    }
  }

  // Stall: work outstanding but the event stream has gone completely quiet.
  // Empty windows only exist because the experiment tick drives advance_to,
  // so this rule is what turns that tick into a liveness check.
  if (config_.stall_windows > 0 &&
      (config_.stall_horizon < 0.0 || window.end <= config_.stall_horizon)) {
    const bool outstanding = window.cum_generated > window.cum_finished;
    if (step(stall_, outstanding && window.events == 0,
             config_.stall_windows)) {
      Anomaly anomaly;
      anomaly.kind = Anomaly::Kind::kStall;
      anomaly.t = window.end;
      anomaly.window = window.index;
      anomaly.value =
          static_cast<double>(window.cum_generated - window.cum_finished);
      anomaly.threshold = 0.0;
      anomaly.consecutive = stall_.streak;
      emit(anomaly);
    }
  }
}

}  // namespace aeq::obs
