// CsvSink: flat timeseries of every event, one row each.
//
// The pandas/gnuplot-friendly counterpart of the Chrome sink: a single CSV
// with a shared column set, where columns an event type does not use are
// left empty. Rows stream out in emission order (simulation time order
// within one run).
//
//   time_us,event,host,peer,port,qos,rpc_id,bytes,value,detail
//
// `value` carries the event's primary scalar (p_admit, qlen bytes, cwnd
// packets, rnl µs); `detail` a short disposition tag (admit/downgrade/...,
// enqueue/dequeue/drop, slo_met/slo_miss).
#pragma once

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

#include "obs/recorder.h"

namespace aeq::obs {

class CsvSink : public Sink {
 public:
  explicit CsvSink(const std::string& path);
  explicit CsvSink(std::ostream* out);

  void on_rpc_generated(const RpcGenerated& event) override;
  void on_admission(const AdmissionDecision& event) override;
  void on_packet(const PacketEvent& event) override;
  void on_cwnd(const CwndUpdate& event) override;
  void on_rpc_complete(const RpcComplete& event) override;

  void flush(sim::Time now) override;

  std::uint64_t rows_written() const { return rows_written_; }

 private:
  // Writes one row; empty strings render as empty cells.
  void row(sim::Time t, const char* event, const std::string& host,
           const std::string& peer, const std::string& port,
           const std::string& qos, const std::string& rpc_id,
           const std::string& bytes, const std::string& value,
           const std::string& detail);

  std::ofstream file_;
  std::ostream* out_ = nullptr;
  std::uint64_t rows_written_ = 0;
};

}  // namespace aeq::obs
