// CounterSink: cheap aggregate counters over the event stream.
//
// The "always sensible" sink: no output file, no per-event storage — just
// totals (and small per-QoS arrays) that summarize a run. `to_table()`
// renders them through stats::Table so bench binaries can print or export
// the aggregate view next to their figure output.
#pragma once

#include <array>
#include <cstdint>

#include "obs/recorder.h"
#include "stats/table.h"

namespace aeq::obs {

class CounterSink : public Sink {
 public:
  void on_rpc_generated(const RpcGenerated& event) override;
  void on_admission(const AdmissionDecision& event) override;
  void on_packet(const PacketEvent& event) override;
  void on_cwnd(const CwndUpdate& event) override;
  void on_rpc_complete(const RpcComplete& event) override;

  std::uint64_t rpcs_generated() const { return rpcs_generated_; }
  std::uint64_t rpcs_completed() const { return rpcs_completed_; }
  std::uint64_t rpcs_terminated() const { return rpcs_terminated_; }
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t downgraded() const { return downgraded_; }
  std::uint64_t admission_dropped() const { return admission_dropped_; }
  std::uint64_t slo_met() const { return slo_met_; }
  std::uint64_t cwnd_updates() const { return cwnd_updates_; }

  // Payload bytes by terminal disposition, kept apart so the completed
  // figure agrees with RpcMetrics::bytes_completed (which never counts
  // terminated or admission-rejected RPCs as delivered traffic).
  std::uint64_t bytes_completed() const { return bytes_completed_; }
  std::uint64_t bytes_terminated() const { return bytes_terminated_; }

  // SLO-met fraction over *completed* RPCs (terminated ones never meet an
  // SLO and are excluded from the denominator), matching the accounting of
  // rpc::RpcMetrics::slo_met_fraction. 1.0 when nothing completed.
  double slo_compliance() const;

  std::uint64_t packets_enqueued(net::QoSLevel qos) const {
    return enqueued_[qos];
  }
  std::uint64_t packets_dequeued(net::QoSLevel qos) const {
    return dequeued_[qos];
  }
  std::uint64_t packets_dropped(net::QoSLevel qos) const {
    return dropped_[qos];
  }
  std::uint64_t total_packets_dropped() const;

  // Mean of the p_admit values sampled at each admission decision (1.0 when
  // no decisions were recorded).
  double mean_p_admit() const;

  // One row per counter: name, value. Per-QoS packet counters render one
  // row per class that saw traffic.
  stats::Table to_table() const;

 private:
  std::uint64_t rpcs_generated_ = 0;
  std::uint64_t rpcs_completed_ = 0;
  std::uint64_t rpcs_terminated_ = 0;
  std::uint64_t admitted_ = 0;
  std::uint64_t downgraded_ = 0;
  std::uint64_t admission_dropped_ = 0;
  std::uint64_t slo_met_ = 0;
  std::uint64_t cwnd_updates_ = 0;
  std::uint64_t bytes_completed_ = 0;
  std::uint64_t bytes_terminated_ = 0;
  double p_admit_sum_ = 0.0;
  std::uint64_t p_admit_samples_ = 0;
  std::array<std::uint64_t, net::kMaxQoSLevels> enqueued_{};
  std::array<std::uint64_t, net::kMaxQoSLevels> dequeued_{};
  std::array<std::uint64_t, net::kMaxQoSLevels> dropped_{};
};

}  // namespace aeq::obs
