// FlightRecorder: bounded ring-buffer sink for post-mortem trace dumps.
//
// Full Chrome traces of long runs are gigabytes; what a crash or anomaly
// investigation actually needs is the last few thousand events before the
// trigger. The flight recorder keeps one fixed-capacity ring per event
// category (events are POD, so a slot is a few dozen bytes) and records
// continuously at O(1) per event. Nothing is written until dump() is
// called — by the experiment's watchdog callback, or by the assert/audit
// failure hook (sim/assert.h) just before abort — at which point the
// retained events are merged in time order and replayed through a
// ChromeTraceSink into a Perfetto-loadable snapshot, with the triggering
// anomaly (if any) marked as a global instant on the timeline.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/recorder.h"
#include "obs/watchdog.h"

namespace aeq::obs {

struct FlightRecorderConfig {
  // Events retained per category. The five rings are independent so a
  // packet storm cannot evict the (much rarer) RPC lifecycle events.
  std::size_t capacity = 4096;
  // When dumping for an anomaly, keep only events within `lookback` of the
  // anomaly time (0 = keep everything retained).
  sim::Time lookback = 0.0;
};

class FlightRecorder : public Sink {
 public:
  explicit FlightRecorder(const FlightRecorderConfig& config);

  void on_port_registered(std::uint32_t port,
                          const std::string& name) override;
  void on_rpc_generated(const RpcGenerated& event) override;
  void on_admission(const AdmissionDecision& event) override;
  void on_packet(const PacketEvent& event) override;
  void on_cwnd(const CwndUpdate& event) override;
  void on_rpc_complete(const RpcComplete& event) override;

  // Writes a Chrome-trace snapshot of the retained events. `anomaly` (may
  // be null) is rendered as a global instant labelled with describe() and
  // bounds the snapshot to config().lookback before it.
  void dump(std::ostream& out, const Anomaly* anomaly = nullptr);
  void dump(const std::string& path, const Anomaly* anomaly = nullptr);

  std::uint64_t events_seen() const { return events_seen_; }
  std::size_t events_retained() const;
  std::uint64_t dumps() const { return dumps_; }
  const FlightRecorderConfig& config() const { return config_; }

 private:
  // Fixed-capacity ring of POD events; push overwrites the oldest.
  template <typename Event>
  class Ring {
   public:
    void reset(std::size_t capacity) {
      slots_.assign(capacity, Event{});
      next_ = 0;
      size_ = 0;
    }
    void push(const Event& event) {
      if (slots_.empty()) return;
      slots_[next_] = event;
      next_ = (next_ + 1) % slots_.size();
      if (size_ < slots_.size()) ++size_;
    }
    std::size_t size() const { return size_; }
    // Appends the retained events, oldest first.
    template <typename Fn>
    void visit(Fn&& fn) const {
      const std::size_t start = (next_ + slots_.size() - size_) %
                                (slots_.empty() ? 1 : slots_.size());
      for (std::size_t i = 0; i < size_; ++i) {
        fn(slots_[(start + i) % slots_.size()]);
      }
    }

   private:
    std::vector<Event> slots_;
    std::size_t next_ = 0;
    std::size_t size_ = 0;
  };

  FlightRecorderConfig config_;
  std::vector<std::string> port_names_;  // indexed by port id
  Ring<RpcGenerated> generated_;
  Ring<AdmissionDecision> admissions_;
  Ring<PacketEvent> packets_;
  Ring<CwndUpdate> cwnds_;
  Ring<RpcComplete> completions_;
  std::uint64_t events_seen_ = 0;
  std::uint64_t dumps_ = 0;
};

}  // namespace aeq::obs
