// Deterministic merge of per-shard telemetry outputs.
//
// A sharded run gives every shard its own Recorder and sink files (written
// to `<path>.shard<k>`) so the hot path never synchronizes on a shared
// stream. After the run the per-shard files are folded into the final
// `<path>` in shard-id order — a fixed order, so the merged bytes are
// identical for every rerun of the same seed and shard count (the same
// stability contract the serial sinks have; the interleaving differs from
// a serial run's, since events are grouped by shard rather than globally
// time-ordered, which Chrome/Perfetto and the CSV schema both permit).
#pragma once

#include <cstddef>
#include <string>

namespace aeq::obs {

// Merges `<path>.shard0` .. `<path>.shard<K-1>` Chrome trace_event JSON
// files (ChromeTraceSink output) into `path` and removes the inputs. The
// result is byte-compatible with a single ChromeTraceSink file: one
// prologue, the shards' event lists joined in order, one epilogue.
void merge_sharded_chrome_traces(const std::string& path, std::size_t shards);

// Same for CsvSink per-event CSVs: one header, rows concatenated in
// shard-id order.
void merge_sharded_csv_traces(const std::string& path, std::size_t shards);

// The per-shard temporary path for shard `k`.
std::string shard_trace_path(const std::string& path, std::size_t shard);

}  // namespace aeq::obs
