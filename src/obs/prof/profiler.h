// Execution profiler core: scoped RAII regions on per-thread fixed-memory
// stacks, folded into bounded log-histograms (DESIGN.md §14).
//
// The profiler answers "where do the 5.56M events/sec go?": every
// instrumented component (scheduler dispatch, each queue discipline,
// transport, admission policy, audit sweep, telemetry fan-out) opens a
// ProfRegion on entry, and the per-thread Collector attributes cycle cost
// per region — inclusive and self (inclusive minus instrumented children),
// plus a log2-bucketed duration histogram. Everything is fixed-size: a
// 32-frame region stack and one flat stats array per collector, so the
// hot path never allocates and the off path is a single thread_local load
// plus branch per region (the same nullable-pointer discipline as
// obs::Recorder). Timing is tree-sampled (every 64th dispatched event by
// default, deterministically chosen — see Collector) so the enabled path
// stays within a few percent of an unprofiled run.
//
// Observe-only contract: a collector only reads the cycle counter and
// writes its own memory — it never touches simulation state, schedules
// events, or emits output mid-run. Profiled runs are therefore
// byte-identical and schedule-digest-identical to unprofiled runs on both
// scheduler backends at any shard count (property-tested in
// tests/prof_test.cc and CI-diffed by the prof-smoke job).
//
// Wall-clock discipline: this header is the ONE place the library reads
// host clocks (tools/detlint.py bans them everywhere deterministic — the
// reads here are marked detlint:allow(wall-clock) and the module lives
// outside the linted directories by design). Cycle counts convert to
// seconds only at report time, via a calibration pair captured around the
// run (obs/prof/report.h).
#pragma once

#include <chrono>  // detlint:allow(wall-clock) — calibration only, observe-only
#include <cstddef>
#include <cstdint>

#include "sim/assert.h"

namespace aeq::obs::prof {

using Cycles = std::uint64_t;

// Raw timestamp-counter read: rdtsc on x86-64, the virtual counter on
// aarch64, steady_clock ticks elsewhere. Monotonic enough for aggregate
// attribution (modern invariant TSCs are core-synchronized); region exit
// clamps a backwards pair to zero rather than wrapping.
inline Cycles cycles_now() {
#if defined(__x86_64__)
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<Cycles>(hi) << 32) | lo;
#elif defined(__aarch64__)
  Cycles value = 0;
  asm volatile("mrs %0, cntvct_el0" : "=r"(value));
  return value;
#else
  return static_cast<Cycles>(
      // detlint:allow(wall-clock) — portable fallback, observe-only
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

// A (cycle counter, wall clock) pair. Two of these bracketing a run give
// the cycles-per-second rate without any up-front spin calibration.
struct Calibration {
  Cycles cycles = 0;
  double wall_seconds = 0.0;
};

inline Calibration calibration_point() {
  Calibration point;
  point.cycles = cycles_now();
  point.wall_seconds =
      std::chrono::duration<double>(
          // detlint:allow(wall-clock) — calibration for the report only
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return point;
}

inline double cycles_per_second(const Calibration& begin,
                                const Calibration& end) {
  const double wall = end.wall_seconds - begin.wall_seconds;
  if (wall <= 0.0 || end.cycles <= begin.cycles) return 1e9;  // degenerate
  return static_cast<double>(end.cycles - begin.cycles) / wall;
}

// The instrumented components. One id per attribution bucket; the queue
// disciplines get one each so a WFQ-vs-pfabric cost comparison falls out
// of a single profile. Adding a region is: extend the enum (before
// kRegionCount), name it in region_name(), open a ProfRegion at the site.
enum class Region : std::uint8_t {
  kDispatch = 0,    // sim::Simulator::dispatch — root of every event
  kWorkload,        // workload::TrafficGenerator arrival handler
  kAdmission,       // rpc::AdmissionController::admit (whatever the policy)
  kTransportTx,     // transport::HostStack::send_message
  kTransportRx,     // transport::HostStack::on_packet
  kPortTx,          // net::Port::try_transmit (serialization bookkeeping)
  kSwitchRoute,     // net::Switch::receive (route + forward)
  kQueueFifo,       // per-discipline enqueue/dequeue
  kQueueWfq,
  kQueueSpq,
  kQueueDwrr,
  kQueueRed,
  kQueuePfabric,
  kAudit,           // audit::Auditor::run_all sweep
  kTelemetry,       // obs::Recorder fan-out to sinks
  kRegionCount,
};

constexpr std::size_t kRegionCount =
    static_cast<std::size_t>(Region::kRegionCount);

inline const char* region_name(Region region) {
  switch (region) {
    case Region::kDispatch: return "engine/dispatch";
    case Region::kWorkload: return "workload/arrival";
    case Region::kAdmission: return "admission/admit";
    case Region::kTransportTx: return "transport/tx";
    case Region::kTransportRx: return "transport/rx";
    case Region::kPortTx: return "port/tx";
    case Region::kSwitchRoute: return "switch/route";
    case Region::kQueueFifo: return "queue/fifo";
    case Region::kQueueWfq: return "queue/wfq";
    case Region::kQueueSpq: return "queue/spq";
    case Region::kQueueDwrr: return "queue/dwrr";
    case Region::kQueueRed: return "queue/red";
    case Region::kQueuePfabric: return "queue/pfabric";
    case Region::kAudit: return "audit/sweep";
    case Region::kTelemetry: return "telemetry/emit";
    case Region::kRegionCount: break;
  }
  return "unknown";
}

// Maximum nesting depth of instrumented regions. The deepest real chain is
// dispatch > switch > queue (+ telemetry inside the port observer), so 32
// leaves an order of magnitude of headroom; overflowing it is a bug in the
// instrumentation, not load, and aborts.
constexpr std::size_t kMaxDepth = 32;

// Log2 duration histogram: bucket b counts durations in [2^b, 2^(b+1))
// cycles. 64 buckets cover any uint64 duration.
constexpr std::size_t kHistBuckets = 64;

inline std::size_t duration_bucket(Cycles cycles) {
  std::size_t bucket = 0;
  while (cycles > 1 && bucket + 1 < kHistBuckets) {
    cycles >>= 1;
    ++bucket;
  }
  return bucket;
}

struct RegionStats {
  std::uint64_t count = 0;
  Cycles total_cycles = 0;  // inclusive (children counted)
  Cycles self_cycles = 0;   // exclusive (instrumented children subtracted)
  std::uint64_t hist[kHistBuckets] = {};  // log2(inclusive cycles)
};

// Per-thread region stack + stats. One collector per executive thread: the
// serial run installs one on the main thread; the sharded run installs one
// per shard worker (sim::ShardedSimulator::set_profiling). Not
// thread-safe by design — a collector is owned by exactly one thread while
// installed, and read by the coordinator only with the workers parked (the
// executive's pool mutex orders the handover).
//
// Sampling: a timestamp read costs ~10-20ns on common hardware, and the
// simulator dispatches events in ~200ns — timing every region entry would
// be a double-digit tax (measured ~40%). The collector instead times every
// `sample_period`-th region *tree* — a burst of nested regions entered
// from tree-root level, which in practice is one dispatched event — in
// full, so parent/child self-time attribution stays exact inside a timed
// tree. Regions of the trees in between cost one thread_local read and a
// branch each (ProfRegion's kSkipping state — no collector call, no clock
// read). Trees are picked by a deterministic countdown, never a clock, so
// sampling cannot perturb the simulation. roots_entered / roots_sampled is
// the scale that converts sampled cycles into whole-run estimates at
// report time (obs/prof/report.cc); period 1 times everything and is what
// the unit tests use.
class Collector {
 public:
  static constexpr std::uint32_t kDefaultSamplePeriod = 64;

  explicit Collector(std::uint32_t sample_period = kDefaultSamplePeriod)
      : period_(sample_period == 0 ? 1 : sample_period) {}

  // The root-of-tree sampling decision: called by ProfRegion when a region
  // opens at tree-root level (thread state kIdle). True = time this tree
  // in full via enter/exit; false = skip it entirely (ProfRegion then
  // short-circuits every nested region off one thread_local read, so an
  // untimed tree costs no collector calls at all).
  bool sample_root() {
    ++roots_entered_;
    if (--countdown_ > 0) return false;
    countdown_ = period_;
    ++roots_sampled_;
    return true;
  }

  void enter(Region region) {
    AEQ_ASSERT_MSG(depth_ < kMaxDepth, "profiler region stack overflow");
    Frame& frame = stack_[depth_++];
    frame.region = region;
    frame.child_cycles = 0;
    frame.start = cycles_now();
  }

  void exit(Region region) {
    const Cycles end = cycles_now();
    AEQ_ASSERT_MSG(depth_ > 0, "profiler region stack underflow");
    Frame& frame = stack_[--depth_];
    AEQ_ASSERT_MSG(frame.region == region,
                   "mismatched profiler region exit (regions must nest)");
    const Cycles total = end > frame.start ? end - frame.start : 0;
    RegionStats& stats = stats_[static_cast<std::size_t>(region)];
    ++stats.count;
    stats.total_cycles += total;
    stats.self_cycles +=
        total > frame.child_cycles ? total - frame.child_cycles : 0;
    ++stats.hist[duration_bucket(total)];
    if (depth_ > 0) stack_[depth_ - 1].child_cycles += total;
  }

  std::size_t depth() const { return depth_; }
  std::uint32_t sample_period() const { return period_; }
  std::uint64_t roots_entered() const { return roots_entered_; }
  std::uint64_t roots_sampled() const { return roots_sampled_; }

  // Multiplier from sampled cycles/counts to whole-run estimates. Always
  // >= 1; exactly 1 at period 1 or before any tree completed.
  double sample_scale() const {
    if (roots_sampled_ == 0) return 1.0;
    return static_cast<double>(roots_entered_) /
           static_cast<double>(roots_sampled_);
  }

  const RegionStats& stats(Region region) const {
    return stats_[static_cast<std::size_t>(region)];
  }

  void reset() {
    depth_ = 0;
    countdown_ = 1;
    roots_entered_ = 0;
    roots_sampled_ = 0;
    for (RegionStats& stats : stats_) stats = RegionStats{};
  }

 private:
  struct Frame {
    Region region = Region::kDispatch;
    Cycles start = 0;
    Cycles child_cycles = 0;
  };

  Frame stack_[kMaxDepth];
  std::size_t depth_ = 0;
  std::uint32_t period_;
  std::uint32_t countdown_ = 1;  // first tree is always sampled
  std::uint64_t roots_entered_ = 0;
  std::uint64_t roots_sampled_ = 0;
  RegionStats stats_[kRegionCount];
};

// Sum of a collector's attributed self cycles across every region — the
// cycles it measured inside sampled trees. Scaled by sample_scale() this
// estimates the thread's total attributed time; the runner widens each
// thread's share denominator to it when the estimate overshoots the
// measured busy envelope, keeping self shares summing to <= 1.
inline Cycles attributed_self_cycles(const Collector& collector) {
  Cycles total = 0;
  for (std::size_t r = 0; r < kRegionCount; ++r) {
    total += collector.stats(static_cast<Region>(r)).self_cycles;
  }
  return total;
}

namespace detail {
// Null means profiling off: ProfRegion reduces to one load + branch.
inline thread_local Collector* tl_collector = nullptr;
// Per-thread tree state, encoded so ProfRegion's hot paths branch off a
// single thread_local read:
//   kIdle      — not inside a region tree; the next region is a root and
//                asks the installed collector's sample_root() whether to
//                time its tree
//   kSkipping  — inside an untimed tree; nested regions do nothing (the
//                root ProfRegion restores kIdle on destruction)
//   otherwise  — the Collector* timing the current tree
inline constexpr std::uintptr_t kIdle = 0;
inline constexpr std::uintptr_t kSkipping = 1;
inline thread_local std::uintptr_t tl_tree = kIdle;
}  // namespace detail

inline void install(Collector* collector) {
  detail::tl_collector = collector;
  detail::tl_tree = detail::kIdle;
}
inline Collector* current() { return detail::tl_collector; }

// Scoped region: opens `region` on the calling thread's collector for the
// enclosing scope. No-op (and allocation-free) when no collector is
// installed. Regions must strictly nest — ProfRegion's scoping guarantees
// that; hand-rolled enter/exit pairs that interleave abort (when timed).
class ProfRegion {
 public:
  explicit ProfRegion(Region region) : region_(region) {
    const std::uintptr_t tree = detail::tl_tree;
    if (tree > detail::kSkipping) {  // nested inside a timed tree
      collector_ = reinterpret_cast<Collector*>(tree);
      collector_->enter(region);
      return;
    }
    if (tree == detail::kSkipping) return;  // nested inside an untimed tree
    Collector* collector = detail::tl_collector;
    if (collector == nullptr) return;  // profiling off
    root_ = true;
    if (collector->sample_root()) {
      // tl_tree is a tri-state tag (idle / skipping / collector address);
      // detlint:allow(pointer-order) — the pointer is stored, not ordered.
      detail::tl_tree = reinterpret_cast<std::uintptr_t>(collector);
      collector_ = collector;
      collector_->enter(region);
    } else {
      detail::tl_tree = detail::kSkipping;
    }
  }
  ~ProfRegion() {
    if (collector_ != nullptr) collector_->exit(region_);
    if (root_) detail::tl_tree = detail::kIdle;
  }

  ProfRegion(const ProfRegion&) = delete;
  ProfRegion& operator=(const ProfRegion&) = delete;

 private:
  Collector* collector_ = nullptr;
  Region region_;
  bool root_ = false;
};

}  // namespace aeq::obs::prof
