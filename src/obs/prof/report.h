// Profile report assembly and export (DESIGN.md §14).
//
// The runner fills a Report from the run's collectors plus the PDES
// executive's introspection snapshot, and the writers here render it
// three ways:
//   * write_json       — the machine-readable `--prof=PATH` report
//                        (validated by tools/validate_trace.py --prof-json)
//   * write_chrome_tracks — per-shard flame rows (self time per region) as
//                        Chrome trace_event JSON, written as
//                        `<path>.shard<k>` files and folded into `<path>`
//                        by obs::merge_sharded_chrome_traces — the same
//                        merge the telemetry traces use
//   * write_text_summary — the end-of-run table printed to stderr (stderr,
//                        not stdout: profiled stdout must stay
//                        byte-identical to unprofiled stdout)
//
// All output happens strictly after the simulation finishes, so nothing
// here can perturb the schedule.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/prof/profiler.h"
#include "sim/sharded.h"

namespace aeq::obs::prof {

// One executive thread's share of the run: a shard worker, the serial main
// loop, or the sharded coordinator (barrier drains + post-run sweeps).
struct ThreadProfile {
  std::string label;            // "serial", "shard<k>", "coordinator"
  std::uint64_t events = 0;     // events this thread dispatched (0 = n/a)
  Cycles busy_cycles = 0;       // measured execution envelope
  Cycles wait_cycles = 0;       // parked at barriers (shard workers only)
  Collector collector;
};

// Sharded-executive introspection, lifted from sim::ExecutiveStats plus
// the fabric's mailbox counters.
struct ExecutiveReport {
  bool present = false;  // false for serial runs; "executive" key omitted
  std::uint64_t windows = 0;
  std::uint64_t backoff_windows = 0;
  // Cumulative window counts at each run phase boundary (main target,
  // drain target, ...); must be non-decreasing — the validator's
  // "monotonic epochs" invariant.
  std::vector<std::uint64_t> epochs;
  Cycles barrier_cycles = 0;
  double barrier_stall_share = 0.0;
  double load_imbalance = 0.0;
  std::uint64_t mailbox_depth_hwm = 0;
  std::uint64_t cross_shard_packets = 0;
  std::uint64_t mailbox_overflows = 0;
  std::array<std::uint64_t, sim::ExecutiveStats::kWindowHistBuckets>
      window_hist{};
};

struct Report {
  std::uint64_t events_processed = 0;
  double sim_time = 0.0;         // simulated seconds covered by the run
  double elapsed_seconds = 0.0;  // wall time between the calibration points
  double cycles_per_second = 1e9;
  std::size_t num_shards = 1;
  // Denominator for self_share. Per thread the runner takes
  // max(measured busy envelope, sample_scale × attributed self cycles)
  // and sums: with tree sampling the scaled attribution is an estimate
  // that can exceed the envelope on a noisy draw, and widening the
  // denominator to cover it keeps shares summing to <= 1 by construction
  // (the validator's share invariant).
  Cycles denominator_cycles = 0;
  std::vector<ThreadProfile> threads;
  ExecutiveReport executive;
};

// Sums a region's stats across every thread in the report.
RegionStats aggregate_region(const Report& report, Region region);

void write_json(const Report& report, const std::string& path);
void write_chrome_tracks(const Report& report, const std::string& path);
void write_text_summary(const Report& report, std::ostream& out);

}  // namespace aeq::obs::prof
