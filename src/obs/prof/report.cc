#include "obs/prof/report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/shard_merge.h"
#include "sim/assert.h"

namespace aeq::obs::prof {
namespace {

// Same numeric shapes as the telemetry sinks: %.6g scalars, %.3f
// microseconds — stable, locale-independent bytes.
std::string num(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", v);
  return buffer;
}

std::string us(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", seconds * 1e6);
  return buffer;
}

double to_seconds(double cycles, const Report& report) {
  return cycles / report.cycles_per_second;
}

// Region statistics with the tree-sampling correction applied: each
// thread's sampled cycles and counts scale by its roots_entered /
// roots_sampled ratio (profiler.h), giving whole-run estimates. The raw
// sampled call count rides along — it sizes the histogram and tells a
// reader how much evidence backs the estimate.
struct ScaledStats {
  double calls = 0.0;
  std::uint64_t sampled_calls = 0;
  double total_cycles = 0.0;
  double self_cycles = 0.0;
  std::uint64_t hist[kHistBuckets] = {};
};

// Folds `region` over every thread (or just `only`, when non-null).
ScaledStats scaled_region(const Report& report, Region region,
                          const ThreadProfile* only) {
  ScaledStats out;
  for (const ThreadProfile& thread : report.threads) {
    if (only != nullptr && &thread != only) continue;
    const RegionStats& stats = thread.collector.stats(region);
    const double scale = thread.collector.sample_scale();
    out.calls += scale * static_cast<double>(stats.count);
    out.sampled_calls += stats.count;
    out.total_cycles += scale * static_cast<double>(stats.total_cycles);
    out.self_cycles += scale * static_cast<double>(stats.self_cycles);
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      out.hist[b] += stats.hist[b];
    }
  }
  return out;
}

double self_share(const ScaledStats& stats, const Report& report) {
  if (report.denominator_cycles == 0) return 0.0;
  return stats.self_cycles / static_cast<double>(report.denominator_cycles);
}

void write_regions_json(std::ostream& out, const Report& report,
                        const ThreadProfile* thread) {
  out << "[";
  bool first = true;
  for (std::size_t r = 0; r < kRegionCount; ++r) {
    const auto region = static_cast<Region>(r);
    const ScaledStats stats = scaled_region(report, region, thread);
    if (stats.sampled_calls == 0) continue;
    out << (first ? "" : ",") << "\n  {\"name\":\"" << region_name(region)
        << "\",\"calls\":" << std::llround(stats.calls)
        << ",\"sampled_calls\":" << stats.sampled_calls
        << ",\"total_cycles\":" << std::llround(stats.total_cycles)
        << ",\"self_cycles\":" << std::llround(stats.self_cycles)
        << ",\"self_share\":" << num(self_share(stats, report))
        << ",\"self_seconds\":" << num(to_seconds(stats.self_cycles, report))
        << ",\"hist\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      if (stats.hist[b] == 0) continue;
      out << (first_bucket ? "" : ",") << "[" << b << "," << stats.hist[b]
          << "]";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << "\n ]";
}

}  // namespace

RegionStats aggregate_region(const Report& report, Region region) {
  RegionStats total;
  for (const ThreadProfile& thread : report.threads) {
    const RegionStats& stats = thread.collector.stats(region);
    total.count += stats.count;
    total.total_cycles += stats.total_cycles;
    total.self_cycles += stats.self_cycles;
    for (std::size_t b = 0; b < kHistBuckets; ++b) {
      total.hist[b] += stats.hist[b];
    }
  }
  return total;
}

void write_json(const Report& report, const std::string& path) {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  AEQ_ASSERT_MSG(out.is_open(), "prof: cannot open --prof report file");
  const double events_per_sec =
      report.elapsed_seconds > 0.0
          ? static_cast<double>(report.events_processed) /
                report.elapsed_seconds
          : 0.0;
  const std::uint32_t sample_period =
      report.threads.empty() ? 1
                             : report.threads.front().collector.sample_period();
  out << "{\"schema\":\"aeq-prof-v1\""
      << ",\n \"events_processed\":" << report.events_processed
      << ",\n \"sim_time\":" << num(report.sim_time)
      << ",\n \"elapsed_seconds\":" << num(report.elapsed_seconds)
      << ",\n \"events_per_sec\":" << num(events_per_sec)
      << ",\n \"cycles_per_second\":" << num(report.cycles_per_second)
      << ",\n \"num_shards\":" << report.num_shards
      << ",\n \"sample_period\":" << sample_period
      << ",\n \"denominator_cycles\":" << report.denominator_cycles
      << ",\n \"regions\":";
  write_regions_json(out, report, nullptr);
  out << ",\n \"threads\":[";
  for (std::size_t t = 0; t < report.threads.size(); ++t) {
    const ThreadProfile& thread = report.threads[t];
    out << (t == 0 ? "" : ",") << "\n  {\"label\":\"" << thread.label
        << "\",\"events\":" << thread.events
        << ",\"busy_cycles\":" << thread.busy_cycles
        << ",\"wait_cycles\":" << thread.wait_cycles
        << ",\"sampled_trees\":" << thread.collector.roots_sampled()
        << ",\"sample_scale\":" << num(thread.collector.sample_scale())
        << ",\"regions\":";
    write_regions_json(out, report, &thread);
    out << "}";
  }
  out << "\n ]";
  if (report.executive.present) {
    const ExecutiveReport& exec = report.executive;
    out << ",\n \"executive\":{\"windows\":" << exec.windows
        << ",\"backoff_windows\":" << exec.backoff_windows << ",\"epochs\":[";
    for (std::size_t e = 0; e < exec.epochs.size(); ++e) {
      out << (e == 0 ? "" : ",") << exec.epochs[e];
    }
    out << "],\"barrier_cycles\":" << exec.barrier_cycles
        << ",\"barrier_stall_share\":" << num(exec.barrier_stall_share)
        << ",\"load_imbalance\":" << num(exec.load_imbalance)
        << ",\"mailbox_depth_hwm\":" << exec.mailbox_depth_hwm
        << ",\"cross_shard_packets\":" << exec.cross_shard_packets
        << ",\"mailbox_overflows\":" << exec.mailbox_overflows
        << ",\"window_hist\":[";
    bool first = true;
    for (std::size_t b = 0; b < exec.window_hist.size(); ++b) {
      if (exec.window_hist[b] == 0) continue;
      out << (first ? "" : ",") << "[" << b << "," << exec.window_hist[b]
          << "]";
      first = false;
    }
    out << "]}";
  }
  out << "\n}\n";
}

void write_chrome_tracks(const Report& report, const std::string& path) {
  // One trace process per thread profile, each a single flame row laying
  // the regions out by cumulative self time. The per-thread files use the
  // exact ChromeTraceSink framing so merge_sharded_chrome_traces can fold
  // them — deliberately the same plumbing as the telemetry traces.
  constexpr std::uint32_t kProfPidBase = 900000;
  for (std::size_t t = 0; t < report.threads.size(); ++t) {
    const ThreadProfile& thread = report.threads[t];
    std::ofstream out(shard_trace_path(path, t),
                      std::ios::out | std::ios::trunc);
    AEQ_ASSERT_MSG(out.is_open(), "prof: cannot open trace track file");
    const std::uint32_t pid = kProfPidBase + static_cast<std::uint32_t>(t);
    out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    out << "\n{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":\"prof:" << thread.label
        << "\"}}";
    double cursor_seconds = 0.0;
    for (std::size_t r = 0; r < kRegionCount; ++r) {
      const auto region = static_cast<Region>(r);
      const ScaledStats stats = scaled_region(report, region, &thread);
      if (stats.sampled_calls == 0) continue;
      const double self_seconds = to_seconds(stats.self_cycles, report);
      out << ",\n{\"ph\":\"X\",\"name\":\"" << region_name(region)
          << "\",\"cat\":\"prof\",\"ts\":" << us(cursor_seconds)
          << ",\"dur\":" << us(self_seconds) << ",\"pid\":" << pid
          << ",\"tid\":0,\"args\":{\"calls\":" << std::llround(stats.calls)
          << ",\"self_share\":" << num(self_share(stats, report)) << "}}";
      cursor_seconds += self_seconds;
    }
    out << "\n]}\n";
  }
  merge_sharded_chrome_traces(path, report.threads.size());
}

void write_text_summary(const Report& report, std::ostream& out) {
  char line[192];
  const double events_per_sec =
      report.elapsed_seconds > 0.0
          ? static_cast<double>(report.events_processed) /
                report.elapsed_seconds
          : 0.0;
  const std::uint32_t sample_period =
      report.threads.empty() ? 1
                             : report.threads.front().collector.sample_period();
  std::snprintf(line, sizeof(line),
                "[prof] %llu events in %.3fs wall = %.2fM events/sec "
                "(%zu shard%s, 1-in-%u tree sampling)",
                static_cast<unsigned long long>(report.events_processed),
                report.elapsed_seconds, events_per_sec / 1e6,
                report.num_shards, report.num_shards == 1 ? "" : "s",
                sample_period);
  out << line << "\n";
  std::snprintf(line, sizeof(line), "[prof] %-18s %12s %7s %11s %11s %9s",
                "region", "calls", "self%", "self(ms)", "total(ms)",
                "ns/call");
  out << line << "\n";
  for (std::size_t r = 0; r < kRegionCount; ++r) {
    const auto region = static_cast<Region>(r);
    const ScaledStats stats = scaled_region(report, region, nullptr);
    if (stats.sampled_calls == 0) continue;
    // ns/call divides two scaled quantities, so the sample correction
    // cancels — it is exact over the timed trees.
    const double ns_per_call =
        1e9 * to_seconds(stats.total_cycles, report) / stats.calls;
    std::snprintf(line, sizeof(line),
                  "[prof] %-18s %12llu %6.1f%% %11.3f %11.3f %9.0f",
                  region_name(region),
                  static_cast<unsigned long long>(std::llround(stats.calls)),
                  100.0 * self_share(stats, report),
                  1e3 * to_seconds(stats.self_cycles, report),
                  1e3 * to_seconds(stats.total_cycles, report), ns_per_call);
    out << line << "\n";
  }
  if (report.executive.present) {
    const ExecutiveReport& exec = report.executive;
    const double grain =
        exec.windows == 0 ? 0.0
                          : static_cast<double>(report.events_processed) /
                                static_cast<double>(exec.windows);
    std::snprintf(line, sizeof(line),
                  "[prof] executive: %llu windows (%llu lookahead-limited), "
                  "%.0f events/window",
                  static_cast<unsigned long long>(exec.windows),
                  static_cast<unsigned long long>(exec.backoff_windows),
                  grain);
    out << line << "\n";
    std::snprintf(line, sizeof(line),
                  "[prof]   barrier stall %.1f%% | load imbalance %.2f | "
                  "mailbox hwm %llu (%llu overflows)",
                  100.0 * exec.barrier_stall_share, exec.load_imbalance,
                  static_cast<unsigned long long>(exec.mailbox_depth_hwm),
                  static_cast<unsigned long long>(exec.mailbox_overflows));
    out << line << "\n";
  }
  out.flush();
}

}  // namespace aeq::obs::prof
