#include "topo/sharding.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "net/queue_factory.h"
#include "sim/assert.h"

namespace aeq::topo {

ShardPlan make_shard_plan(const StarConfig& config, std::size_t num_shards) {
  AEQ_CHECK_GE(num_shards, 1u);
  AEQ_CHECK_GE(config.num_hosts, num_shards);
  ShardPlan plan;
  plan.num_shards = num_shards;
  plan.shard_of_host.resize(config.num_hosts);
  const std::size_t block =
      (config.num_hosts + num_shards - 1) / num_shards;  // ceil
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    plan.shard_of_host[h] = static_cast<std::uint32_t>(h / block);
  }
  // Min-latency cut: the cut edges are exactly the host<->switch hops, and
  // the star wires every one of them with config.link_delay, so the minimum
  // is the uniform delay itself. (A topology with heterogeneous cut delays
  // must take the min over its cut edges here.)
  const sim::Time min_cut = config.link_delay;
  AEQ_ASSERT_MSG(min_cut > 0.0 &&
                     min_cut < std::numeric_limits<sim::Time>::infinity(),
                 "sharding requires a positive cross-shard link delay");
  plan.lookahead = min_cut;
  return plan;
}

Network build_sharded_star(const std::vector<sim::Simulator*>& sims,
                           const StarConfig& config, const ShardPlan& plan,
                           net::ShardFabric& fabric) {
  AEQ_CHECK_GE(config.num_hosts, 2u);
  AEQ_CHECK_EQ(sims.size(), plan.num_shards);
  AEQ_CHECK_EQ(plan.shard_of_host.size(), config.num_hosts);
  AEQ_ASSERT_MSG(config.shared_buffer_bytes == 0,
                 "shared switch buffers span all downlinks and cannot be "
                 "partitioned across shards");

  Network network;
  std::vector<net::Switch*> switches;
  switches.reserve(plan.num_shards);
  for (std::size_t k = 0; k < plan.num_shards; ++k) {
    switches.push_back(network.add_switch(std::make_unique<net::Switch>(
        "tor-shard" + std::to_string(k))));
    fabric.set_local_switch(k, switches.back());
  }

  // Hosts in global id order; the NIC hands packets to the shard's link at
  // serialization end (LinkReceiver mode) instead of scheduling delivery
  // itself — the propagation leg is what the cut's lookahead is made of.
  for (std::size_t i = 0; i < config.num_hosts; ++i) {
    const auto id = static_cast<net::HostId>(i);
    const std::uint32_t shard = plan.shard_of(id);
    auto uplink = std::make_unique<net::Port>(
        *sims[shard], config.link_rate, config.link_delay,
        net::make_queue(config.host_queue));
    uplink->connect(fabric.nic_link(shard));
    network.add_host(std::make_unique<net::Host>(id, std::move(uplink)));
  }

  // Downlinks in global host order (register_downlink is indexed by host
  // id), each on its owner's switch and simulator; switches only route
  // their own hosts because the fabric never hands them foreign packets.
  for (std::size_t i = 0; i < config.num_hosts; ++i) {
    const auto id = static_cast<net::HostId>(i);
    const std::uint32_t shard = plan.shard_of(id);
    auto downlink = std::make_unique<net::Port>(
        *sims[shard], config.link_rate, config.link_delay,
        net::make_queue(config.switch_queue));
    downlink->connect(&network.host(id));
    const std::size_t port = switches[shard]->add_port(std::move(downlink));
    switches[shard]->set_route(id, port);
    network.register_downlink(&switches[shard]->port(port));
  }
  return network;
}

}  // namespace aeq::topo
