// Topology partitioning for the sharded (conservative-PDES) executive.
//
// A shard owns a contiguous block of hosts plus the switch egress ports
// that feed them, so every queue, flow, and controller touches exactly one
// shard's state. The only cut edges are host-NIC -> foreign-switch links;
// the plan records the minimum latency across that cut, which becomes the
// executive's lookahead window (sim::ShardedSimulator).
#pragma once

#include <cstdint>
#include <vector>

#include "net/shard_fabric.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "topo/network.h"

namespace aeq::topo {

struct ShardPlan {
  std::size_t num_shards = 1;
  std::vector<std::uint32_t> shard_of_host;  // host id -> owning shard
  // Minimum one-hop latency across the shard cut: every cross-shard packet
  // spends at least this long between its producing event (NIC tx-end) and
  // its effect (switch arrival), so it bounds the conservative window.
  sim::Time lookahead = 0.0;

  std::uint32_t shard_of(net::HostId id) const {
    return shard_of_host.at(static_cast<std::size_t>(id));
  }
};

// Contiguous block assignment (hosts [k*B, (k+1)*B) to shard k) over a star
// topology, with the min-latency cut computed from the link delays. All-to-
// all workloads are symmetric across hosts, so contiguous blocks balance
// load as well as any assignment while keeping shard_of() a division.
ShardPlan make_shard_plan(const StarConfig& config, std::size_t num_shards);

// Builds the star of `config` partitioned per `plan`: shard k's hosts get
// their NIC ports on sims[k] connected to fabric.nic_link(k), and a
// shard-local switch "tor-shard<k>" (on sims[k]) carries their downlinks.
// Host ids, downlink registration order, and per-host wiring match
// build_star exactly, so everything indexed by host id (metrics, audits,
// telemetry port names) is shard-count independent.
Network build_sharded_star(const std::vector<sim::Simulator*>& sims,
                           const StarConfig& config, const ShardPlan& plan,
                           net::ShardFabric& fabric);

}  // namespace aeq::topo
