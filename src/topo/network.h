// Owning container for a built topology: hosts, switches, and convenience
// accessors for the instrumented ports (each host's downlink is the usual
// oversubscription point in the paper's experiments).
#pragma once

#include <memory>
#include <vector>

#include "net/host.h"
#include "net/shared_buffer.h"
#include "net/switch.h"

namespace aeq::topo {

class Network {
 public:
  Network() = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  net::Host& host(net::HostId id) {
    return *hosts_.at(static_cast<std::size_t>(id));
  }
  const net::Host& host(net::HostId id) const {
    return *hosts_.at(static_cast<std::size_t>(id));
  }
  std::size_t num_hosts() const { return hosts_.size(); }

  net::Switch& fabric_switch(std::size_t i) { return *switches_.at(i); }
  const net::Switch& fabric_switch(std::size_t i) const {
    return *switches_.at(i);
  }
  std::size_t num_switches() const { return switches_.size(); }

  // The switch egress port that feeds host `id` (its downlink).
  net::Port& downlink(net::HostId id) {
    return *downlinks_.at(static_cast<std::size_t>(id));
  }
  const net::Port& downlink(net::HostId id) const {
    return *downlinks_.at(static_cast<std::size_t>(id));
  }

  // A shared buffer pool together with the (pooled) queues drawing on it,
  // recorded by the topology builders so the audit layer can state pool
  // conservation: pool.used == sum of member backlogs.
  struct PoolGroup {
    net::SharedBufferPool* pool = nullptr;
    std::vector<const net::QueueDiscipline*> members;
  };
  const std::vector<PoolGroup>& pool_groups() const { return pool_groups_; }

  // Builder API.
  net::Host* add_host(std::unique_ptr<net::Host> host);
  net::Switch* add_switch(std::unique_ptr<net::Switch> sw);
  void register_downlink(net::Port* port) { downlinks_.push_back(port); }
  net::SharedBufferPool* add_buffer_pool(
      std::unique_ptr<net::SharedBufferPool> pool) {
    pools_.push_back(std::move(pool));
    return pools_.back().get();
  }
  void register_pool_member(net::SharedBufferPool* pool,
                            const net::QueueDiscipline* queue) {
    for (PoolGroup& group : pool_groups_) {
      if (group.pool == pool) {
        group.members.push_back(queue);
        return;
      }
    }
    pool_groups_.push_back(PoolGroup{pool, {queue}});
  }

 private:
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<net::Switch>> switches_;
  std::vector<std::unique_ptr<net::SharedBufferPool>> pools_;
  std::vector<net::Port*> downlinks_;  // indexed by host id
  std::vector<PoolGroup> pool_groups_;
};

}  // namespace aeq::topo
