#include "topo/network.h"

#include "sim/assert.h"

namespace aeq::topo {

net::Host* Network::add_host(std::unique_ptr<net::Host> host) {
  AEQ_ASSERT(host != nullptr);
  AEQ_CHECK_EQ_MSG(host->id(), static_cast<net::HostId>(hosts_.size()),
                   "hosts must be added in id order");
  hosts_.push_back(std::move(host));
  return hosts_.back().get();
}

net::Switch* Network::add_switch(std::unique_ptr<net::Switch> sw) {
  AEQ_ASSERT(sw != nullptr);
  switches_.push_back(std::move(sw));
  return switches_.back().get();
}

}  // namespace aeq::topo
