#include "topo/builders.h"

#include "net/shared_buffer.h"

#include <memory>
#include <string>
#include <vector>

#include "sim/assert.h"

namespace aeq::topo {

namespace {

std::unique_ptr<net::Port> make_port(sim::Simulator& simulator,
                                     sim::Rate rate, sim::Time delay,
                                     const net::QueueConfig& queue) {
  return std::make_unique<net::Port>(simulator, rate, delay,
                                     net::make_queue(queue));
}

}  // namespace

Network build_star(sim::Simulator& simulator, const StarConfig& config) {
  AEQ_CHECK_GE(config.num_hosts, 2u);
  Network network;
  auto* fabric = network.add_switch(std::make_unique<net::Switch>("tor"));
  net::SharedBufferPool* pool = nullptr;
  if (config.shared_buffer_bytes != 0) {
    pool = network.add_buffer_pool(std::make_unique<net::SharedBufferPool>(
        config.shared_buffer_bytes, config.shared_buffer_alpha));
  }

  for (std::size_t i = 0; i < config.num_hosts; ++i) {
    const auto id = static_cast<net::HostId>(i);
    auto uplink = make_port(simulator, config.link_rate, config.link_delay,
                            config.host_queue);
    uplink->connect(fabric);
    // Host-NIC deliveries rank by source so the serial schedule is the one
    // a sharded run of the same seed reproduces (see Port).
    uplink->rank_deliveries_by_source();
    network.add_host(std::make_unique<net::Host>(id, std::move(uplink)));
  }
  for (std::size_t i = 0; i < config.num_hosts; ++i) {
    const auto id = static_cast<net::HostId>(i);
    std::unique_ptr<net::QueueDiscipline> queue =
        net::make_queue(config.switch_queue);
    if (pool != nullptr) {
      queue = std::make_unique<net::PooledQueue>(std::move(queue), *pool);
    }
    auto downlink = std::make_unique<net::Port>(
        simulator, config.link_rate, config.link_delay, std::move(queue));
    downlink->connect(&network.host(id));
    const std::size_t port = fabric->add_port(std::move(downlink));
    fabric->set_route(id, port);
    network.register_downlink(&fabric->port(port));
    if (pool != nullptr) {
      network.register_pool_member(pool, &fabric->port(port).queue());
    }
  }
  return network;
}

Network build_leaf_spine(sim::Simulator& simulator,
                         const LeafSpineConfig& config) {
  AEQ_CHECK_GE(config.hosts_per_leaf, 1u);
  AEQ_CHECK_GE(config.num_leaves, 2u);
  AEQ_CHECK_GE(config.num_spines, 1u);
  Network network;
  const std::size_t total_hosts = config.hosts_per_leaf * config.num_leaves;

  std::vector<net::Switch*> leaves;
  std::vector<net::Switch*> spines;
  for (std::size_t l = 0; l < config.num_leaves; ++l) {
    leaves.push_back(network.add_switch(
        std::make_unique<net::Switch>("leaf" + std::to_string(l))));
  }
  for (std::size_t s = 0; s < config.num_spines; ++s) {
    spines.push_back(network.add_switch(
        std::make_unique<net::Switch>("spine" + std::to_string(s))));
  }

  // Hosts and their uplinks into the owning leaf.
  for (std::size_t i = 0; i < total_hosts; ++i) {
    const auto id = static_cast<net::HostId>(i);
    auto uplink = make_port(simulator, config.edge_rate, config.link_delay,
                            config.host_queue);
    uplink->connect(leaves[i / config.hosts_per_leaf]);
    network.add_host(std::make_unique<net::Host>(id, std::move(uplink)));
  }

  // Leaf downlinks to hosts.
  for (std::size_t i = 0; i < total_hosts; ++i) {
    const auto id = static_cast<net::HostId>(i);
    net::Switch* leaf = leaves[i / config.hosts_per_leaf];
    auto downlink = make_port(simulator, config.edge_rate, config.link_delay,
                              config.switch_queue);
    downlink->connect(&network.host(id));
    const std::size_t port = leaf->add_port(std::move(downlink));
    leaf->set_route(id, port);
    network.register_downlink(&leaf->port(port));
  }

  // Leaf <-> spine wiring.
  for (std::size_t l = 0; l < config.num_leaves; ++l) {
    std::vector<std::size_t> uplink_ports;
    for (std::size_t s = 0; s < config.num_spines; ++s) {
      auto up = make_port(simulator, config.fabric_rate, config.link_delay,
                          config.switch_queue);
      up->connect(spines[s]);
      uplink_ports.push_back(leaves[l]->add_port(std::move(up)));

      auto down = make_port(simulator, config.fabric_rate, config.link_delay,
                            config.switch_queue);
      down->connect(leaves[l]);
      const std::size_t spine_port = spines[s]->add_port(std::move(down));
      // The spine routes every host under leaf l out of this port.
      for (std::size_t i = 0; i < config.hosts_per_leaf; ++i) {
        spines[s]->set_route(
            static_cast<net::HostId>(l * config.hosts_per_leaf + i),
            spine_port);
      }
    }
    // The leaf ECMPs remote destinations across its uplinks.
    for (std::size_t i = 0; i < total_hosts; ++i) {
      if (i / config.hosts_per_leaf == l) continue;
      leaves[l]->set_ecmp_route(static_cast<net::HostId>(i), uplink_ports);
    }
  }
  return network;
}

}  // namespace aeq::topo
