// Topology builders.
//
// `build_star` is the paper's workhorse: N hosts on a single switch, so each
// host downlink is a WFQ bottleneck under all-to-all fan-in (the 3-node,
// 20-node, 33-node and 144-node setups are all stars in our reproduction).
// `build_leaf_spine` provides a two-tier fabric with ECMP so overloads can
// also form on uplinks (paper §2.2.2 stresses that overloads occur anywhere).
#pragma once

#include <cstddef>

#include "net/queue_factory.h"
#include "sim/simulator.h"
#include "sim/units.h"
#include "topo/network.h"

namespace aeq::topo {

struct StarConfig {
  std::size_t num_hosts = 3;
  sim::Rate link_rate = sim::gbps(100);
  sim::Time link_delay = 0.5 * sim::kUsec;
  net::QueueConfig host_queue;    // host NIC egress discipline
  net::QueueConfig switch_queue;  // switch egress (downlink) discipline
  // When set, the switch's egress queues share one buffer pool of this many
  // bytes with Dynamic-Threshold admission (paper footnote 2) instead of
  // independent per-port capacities.
  std::uint64_t shared_buffer_bytes = 0;
  double shared_buffer_alpha = 1.0;
};

Network build_star(sim::Simulator& simulator, const StarConfig& config);

struct LeafSpineConfig {
  std::size_t hosts_per_leaf = 8;
  std::size_t num_leaves = 4;
  std::size_t num_spines = 2;
  sim::Rate edge_rate = sim::gbps(100);
  sim::Rate fabric_rate = sim::gbps(100);  // per uplink; oversubscription =
                                           // hosts_per_leaf*edge /
                                           // (num_spines*fabric)
  sim::Time link_delay = 0.5 * sim::kUsec;
  net::QueueConfig host_queue;
  net::QueueConfig switch_queue;
};

Network build_leaf_spine(sim::Simulator& simulator,
                         const LeafSpineConfig& config);

}  // namespace aeq::topo
