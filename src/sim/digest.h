// Schedule digests: a compact fingerprint of the dispatched event stream
// (DESIGN.md §12), used to prove the determinism contract end to end —
// same seed ⇒ same digest on either scheduler backend, at any shard count,
// and under any address-space layout.
//
// Per dispatched event the digest hashes exactly the schedule-defining
// coordinates: the event time's 8 IEEE-754 bytes and the 2-byte tie rank.
// Deliberately excluded:
//   * the insertion-sequence counter — it is per-scheduler, so a K-shard
//     run numbers events differently from a serial run even though it
//     dispatches the identical schedule;
//   * anything address-shaped (handler pointers, slot indices) — the whole
//     point is ASLR-independence.
//
// Two accumulators are kept:
//   * `ordered`: an FNV-1a fold of the per-event hashes in dispatch order —
//     the strongest statement for a fixed shard count (any reordering of
//     equal-time events changes it);
//   * `sum`/`count`: a commutative (wrapping-sum) combine of the same
//     per-event hashes. Shards dispatch concurrently, so there is no global
//     dispatch order to fold; the commutative form is invariant under the
//     interleaving and therefore comparable across shard counts.
// canonical() — what tests and the --schedule-digest flag print — is
// derived from the commutative pair, so one number is comparable across
// backends, shard counts, and processes.
//
// Compile gate: the AEQ_SCHED_DIGEST CMake option (default ON) compiles the
// accumulation hook into Simulator::dispatch; runs still pay nothing unless
// they opt in via ExperimentConfig::schedule_digest (one predictable branch
// per event otherwise). With the option off the hook vanishes entirely.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "sim/units.h"

namespace aeq::sim {

// True when the library was compiled with -DAEQ_SCHED_DIGEST (CMake option
// AEQ_SCHED_DIGEST, default ON).
#ifdef AEQ_SCHED_DIGEST
inline constexpr bool kDigestBuildEnabled = true;
#else
inline constexpr bool kDigestBuildEnabled = false;
#endif

inline constexpr std::uint64_t kFnv64Offset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnv64Prime = 1099511628211ull;

inline std::uint64_t fnv1a64(std::uint64_t h, const void* data,
                             std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h = (h ^ bytes[i]) * kFnv64Prime;
  }
  return h;
}

struct ScheduleDigest {
  std::uint64_t ordered = kFnv64Offset;
  std::uint64_t sum = 0;  // wrapping sum of per-event hashes
  std::uint64_t count = 0;

  void record(Time time, std::uint16_t rank) {
    std::uint64_t time_bits = 0;
    static_assert(sizeof(time_bits) == sizeof(Time),
                  "schedule digest assumes 64-bit event times");
    std::memcpy(&time_bits, &time, sizeof(time_bits));
    std::uint64_t h = kFnv64Offset;
    h = fnv1a64(h, &time_bits, sizeof(time_bits));
    h = fnv1a64(h, &rank, sizeof(rank));
    ordered = (ordered ^ h) * kFnv64Prime;
    sum += h;  // unsigned wrap is the commutative combine
    ++count;
  }

  // Folds another shard's digest in. Only the commutative pair survives
  // meaningfully; `ordered` is XOR-combined so the merge itself stays
  // shard-order-independent, but cross-shard-count comparisons must use
  // canonical().
  void merge(const ScheduleDigest& other) {
    ordered ^= other.ordered;
    sum += other.sum;
    count += other.count;
  }

  // The printable fingerprint: derived from the interleaving-invariant
  // accumulators, so it is the number that must match across backends,
  // shard counts, and ASLR layouts.
  std::uint64_t canonical() const {
    std::uint64_t h = kFnv64Offset;
    h = fnv1a64(h, &sum, sizeof(sum));
    h = fnv1a64(h, &count, sizeof(count));
    return h;
  }

  // canonical() as 16 lowercase hex digits (the --schedule-digest format).
  std::string hex() const {
    static const char* const kDigits = "0123456789abcdef";
    const std::uint64_t value = canonical();
    std::string out(16, '0');
    for (int i = 0; i < 16; ++i) {
      out[15 - i] = kDigits[(value >> (4 * i)) & 0xf];
    }
    return out;
  }
};

}  // namespace aeq::sim
