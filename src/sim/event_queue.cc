#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace aeq::sim {

EventId EventQueue::schedule(Time t, Handler handler) {
  AEQ_ASSERT(handler != nullptr);
  const EventId id = handles_.acquire();
  heap_.push_back(Node{t, next_seq_++, id, std::move(handler)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_;
  // A raw queue (unlike Simulator::schedule_at) permits scheduling below the
  // last popped time; the pop-order floor must follow the new minimum.
  AEQ_AUDIT_ONLY({
    if (t < last_popped_t_) last_popped_t_ = t;
  });
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only genuinely pending events can be cancelled; a fired or already
  // cancelled id fails generation validation and is a no-op. The heap node
  // stays behind as a tombstone skipped lazily by pop().
  if (!handles_.cancel(id)) return false;
  AEQ_ASSERT(live_ > 0);
  --live_;
  return true;
}

EventQueue::Node EventQueue::take_head() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Node node = std::move(heap_.back());
  heap_.pop_back();
  handles_.release(node.id);
  return node;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && !handles_.live(heap_.front().id)) take_head();
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  AEQ_ASSERT_MSG(!heap_.empty(), "pop() on empty event queue");
  Node node = take_head();
  --live_;
  // Scheduler contract shared with CalendarQueue: pops leave in strictly
  // increasing (time, insertion-sequence) order, the property the
  // backend-equivalence guarantee rests on.
  AEQ_AUDIT_ONLY({
    AEQ_CHECK_GE_MSG(node.t, last_popped_t_, "event popped out of time order");
    if (node.t == last_popped_t_) {
      AEQ_CHECK_GT_MSG(node.seq, last_popped_seq_,
                       "tied events popped out of insertion order");
    }
    last_popped_t_ = node.t;
    last_popped_seq_ = node.seq;
  });
  return Popped{node.t, std::move(node.handler)};
}

Time EventQueue::next_time() {
  drop_cancelled_head();
  AEQ_ASSERT_MSG(!heap_.empty(), "next_time() on empty event queue");
  return heap_.front().t;
}

}  // namespace aeq::sim
