#include "sim/event_queue.h"

#include <utility>

namespace aeq::sim {

EventId EventQueue::schedule(Time t, Handler handler) {
  AEQ_ASSERT(handler != nullptr);
  EventId id{next_seq_++};
  heap_.push(Node{t, id.seq, std::move(handler)});
  pending_.insert(id.seq);
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (!id) return false;
  // Only genuinely pending events can be cancelled; a fired or already
  // cancelled id is a no-op. The heap entry is skipped lazily by pop().
  if (pending_.erase(id.seq) == 0) return false;
  cancelled_.insert(id.seq);
  return true;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  AEQ_ASSERT_MSG(!heap_.empty(), "pop() on empty event queue");
  // priority_queue::top() is const&; move out via const_cast on the handler
  // is UB, so copy the node instead. Handlers are small closures in practice.
  Node node = heap_.top();
  heap_.pop();
  pending_.erase(node.seq);
  return Popped{node.t, std::move(node.handler)};
}

Time EventQueue::next_time() const {
  drop_cancelled_head();
  AEQ_ASSERT_MSG(!heap_.empty(), "next_time() on empty event queue");
  return heap_.top().t;
}

}  // namespace aeq::sim
