#include "sim/event_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace aeq::sim {

void EventQueue::sift_up(std::size_t i) {
  const Entry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!earlier(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(std::size_t i) {
  const Entry entry = heap_[i];
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = (i << 2) + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (earlier(heap_[c], heap_[best])) best = c;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

void EventQueue::reserve_events(std::size_t n) {
  if (n == 0) return;
  heap_.reserve(n);
  handles_.reserve(n);
  arena_.ensure(static_cast<std::uint32_t>(n - 1));
}

EventId EventQueue::schedule(Time t, Handler handler, std::uint16_t rank) {
  AEQ_ASSERT(handler != nullptr);
  const EventId id = handles_.acquire();
  const std::uint32_t index = HandleTable::slot_index(id);
  arena_.ensure(index);
  EventArena::Node& node = arena_.at(index);
  node.t = t;
  node.seq = pack_tie_key(rank, next_seq_++);
  node.id = id;
  node.handler = std::move(handler);
  heap_.push_back(Entry{node.t, node.seq, id});
  sift_up(heap_.size() - 1);
  ++live_;
  // A raw queue (unlike Simulator::schedule_at) permits scheduling below the
  // last popped time; the pop-order floor must follow the new minimum.
  AEQ_AUDIT_ONLY({
    if (t < last_popped_t_) last_popped_t_ = t;
  });
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only genuinely pending events can be cancelled; a fired or already
  // cancelled id fails generation validation and is a no-op. The heap entry
  // stays behind as a tombstone skipped lazily by pop().
  if (!handles_.cancel(id)) return false;
  AEQ_ASSERT(live_ > 0);
  --live_;
  return true;
}

EventQueue::Entry EventQueue::take_head() {
  const Entry entry = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return entry;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty() && !handles_.live(heap_.front().id)) {
    const Entry entry = take_head();
    // Destroy the tombstone's callback (it may own resources) before the
    // slot — and with it the arena node — goes back on the free list.
    arena_.at(HandleTable::slot_index(entry.id)).handler = nullptr;
    handles_.release(entry.id);
  }
}

bool EventQueue::pop_if_at_most(Time t_limit, Popped& out) {
  drop_cancelled_head();
  if (heap_.empty() || heap_.front().t > t_limit) return false;
  const Entry entry = take_head();
  EventArena::Node& node = arena_.at(HandleTable::slot_index(entry.id));
  out.time = entry.t;
  out.tie_key = entry.seq;
  out.handler = std::move(node.handler);
  handles_.release(entry.id);
  --live_;
  // Scheduler contract shared with CalendarQueue: pops leave in strictly
  // increasing (time, insertion-sequence) order, the property the
  // backend-equivalence guarantee rests on.
  AEQ_AUDIT_ONLY({
    AEQ_CHECK_GE_MSG(entry.t, last_popped_t_,
                     "event popped out of time order");
    if (entry.t == last_popped_t_) {
      AEQ_CHECK_GT_MSG(entry.seq, last_popped_seq_,
                       "tied events popped out of insertion order");
    }
    last_popped_t_ = entry.t;
    last_popped_seq_ = entry.seq;
  });
  return true;
}

EventQueue::Popped EventQueue::pop() {
  Popped out;
  const bool popped =
      pop_if_at_most(std::numeric_limits<Time>::infinity(), out);
  AEQ_ASSERT_MSG(popped, "pop() on empty event queue");
  return out;
}

Time EventQueue::next_time() {
  drop_cancelled_head();
  AEQ_ASSERT_MSG(!heap_.empty(), "next_time() on empty event queue");
  return heap_.front().t;
}

}  // namespace aeq::sim
