#include "sim/calendar_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace aeq::sim {

CalendarQueue::CalendarQueue(Time initial_bucket_width,
                             std::size_t initial_buckets)
    : buckets_(initial_buckets, EventArena::kNil),
      width_(initial_bucket_width) {
  AEQ_ASSERT(initial_bucket_width > 0.0 && initial_buckets >= 2);
}

void CalendarQueue::reserve_events(std::size_t n) {
  if (n == 0) return;
  handles_.reserve(n);
  arena_.ensure(static_cast<std::uint32_t>(n - 1));
  scratch_times_.reserve(n);
  // Bucket counts track the live-event count (maybe_resize keeps them
  // within [live/2, 4*live]), so reserving both layout vectors at the hint
  // makes later resizes allocation-free up to `n` live events.
  std::size_t max_buckets = buckets_.size();
  while (max_buckets < 2 * n && max_buckets < (1u << 20)) max_buckets *= 2;
  buckets_.reserve(max_buckets);
  scratch_buckets_.reserve(max_buckets);
}

EventId CalendarQueue::schedule(Time t, Handler handler,
                                std::uint16_t rank) {
  AEQ_ASSERT(handler != nullptr);
  AEQ_ASSERT_MSG(std::isfinite(t), "event time must be finite");
  AEQ_ASSERT_MSG(t >= floor_time_, "cannot schedule into the past");
  const EventId id = handles_.acquire();
  const std::uint32_t index = HandleTable::slot_index(id);
  arena_.ensure(index);
  EventArena::Node& node = arena_.at(index);
  node.t = t;
  node.seq = pack_tie_key(rank, next_seq_++);
  node.id = id;
  node.handler = std::move(handler);
  insert(index);
  ++live_;
  maybe_resize();
  return id;
}

void CalendarQueue::insert(std::uint32_t index) {
  EventArena::Node& node = arena_.at(index);
  // Keep chains sorted by (t, seq): they are short by design, so the linear
  // scan stays cheap and take_earliest can inspect heads only.
  std::uint32_t* link = &buckets_[bucket_of(node.t)];
  while (*link != EventArena::kNil) {
    const EventArena::Node& cur = arena_.at(*link);
    if (cur.t > node.t || (cur.t == node.t && cur.seq > node.seq)) break;
    link = &arena_.at(*link).next;
  }
  node.next = *link;
  *link = index;
}

bool CalendarQueue::cancel(EventId id) {
  // Lazy: the node stays in its bucket as a tombstone and is reclaimed when
  // drained. Generation validation makes cancel of a fired or already
  // cancelled id a reliable no-op.
  if (!handles_.cancel(id)) return false;
  AEQ_ASSERT(live_ > 0);
  --live_;
  return true;
}

void CalendarQueue::discard_tombstone(std::uint32_t index) {
  EventArena::Node& node = arena_.at(index);
  // Destroy the callback (it may own resources) before the slot — and with
  // it the arena node — goes back on the free list.
  node.handler = nullptr;
  node.next = EventArena::kNil;
  handles_.release(node.id);
}

std::uint32_t CalendarQueue::take_earliest() {
  // Scan buckets from the cursor; an event belongs to the current rotation
  // when its slot index (the same computation that placed it in its bucket,
  // see slot_of) has been reached by the cursor's slot.
  for (std::size_t scanned = 0; scanned <= buckets_.size(); ++scanned) {
    std::uint32_t* head = &buckets_[cursor_];
    while (*head != EventArena::kNil) {
      const std::uint32_t index = *head;
      EventArena::Node& node = arena_.at(index);
      if (slot_of(node.t) > slot_) break;  // future rotation
      *head = node.next;  // unlink the chain head
      node.next = EventArena::kNil;
      if (!handles_.live(node.id)) {  // tombstone: reclaim and skip
        discard_tombstone(index);
        continue;
      }
      // Re-anchor at the popped event so the cursor never runs ahead of
      // simulated time (resizes can leave it misaligned).
      slot_ = slot_of(node.t);
      cursor_ = bucket_of(node.t);
      return index;
    }
    cursor_ = (cursor_ + 1) % buckets_.size();
    ++slot_;
  }
  // A full rotation found nothing in-window: events are sparse. Jump the
  // calendar to the earliest event anywhere (direct search).
  Time best = std::numeric_limits<Time>::infinity();
  for (std::uint32_t& head : buckets_) {
    // Drop tombstoned heads so the scan sees live minima.
    while (head != EventArena::kNil && !handles_.live(arena_.at(head).id)) {
      const std::uint32_t dead = head;
      head = arena_.at(dead).next;
      discard_tombstone(dead);
    }
    if (head != EventArena::kNil) best = std::min(best, arena_.at(head).t);
  }
  AEQ_ASSERT_MSG(best < std::numeric_limits<Time>::infinity(),
                 "take_earliest on empty calendar");
  slot_ = slot_of(best);
  cursor_ = bucket_of(best);
  return take_earliest();
}

bool CalendarQueue::pop_if_at_most(Time t_limit, Popped& out) {
  if (live_ == 0) return false;
  // Save the scan anchor: when the earliest event is past the limit it goes
  // back in, and the cursor must not have committed the epoch advance (see
  // next_time()).
  const std::uint64_t saved_slot = slot_;
  const std::size_t saved_cursor = cursor_;
  const std::uint32_t index = take_earliest();
  EventArena::Node& node = arena_.at(index);
  const Time t = node.t;
  if (t > t_limit) {
    insert(index);  // put it back; its handle stays live
    slot_ = saved_slot;
    cursor_ = saved_cursor;
    return false;
  }
  const std::uint64_t seq = node.seq;
  out.time = t;
  out.tie_key = seq;
  out.handler = std::move(node.handler);
  handles_.release(node.id);
  --live_;
  floor_time_ = t;
  maybe_resize();
  // Scheduler contract shared with EventQueue: pops leave in strictly
  // increasing (time, insertion-sequence) order, the property the
  // backend-equivalence guarantee rests on.
  AEQ_AUDIT_ONLY({
    AEQ_CHECK_GE_MSG(t, last_popped_t_, "event popped out of time order");
    if (t == last_popped_t_) {
      AEQ_CHECK_GT_MSG(seq, last_popped_seq_,
                       "tied events popped out of insertion order");
    }
    last_popped_t_ = t;
    last_popped_seq_ = seq;
  });
  return true;
}

CalendarQueue::Popped CalendarQueue::pop() {
  Popped out;
  const bool popped =
      pop_if_at_most(std::numeric_limits<Time>::infinity(), out);
  AEQ_ASSERT_MSG(popped, "pop() on empty calendar queue");
  return out;
}

Time CalendarQueue::next_time() {
  AEQ_ASSERT(live_ > 0);
  // Peek without committing the epoch advance: take_earliest re-anchors
  // the cursor at the earliest event, which may lie arbitrarily far in the
  // future — a later schedule() between this peek and the next pop() must
  // still be allowed at any t >= the last *popped* time.
  const std::uint64_t saved_slot = slot_;
  const std::size_t saved_cursor = cursor_;
  const std::uint32_t index = take_earliest();
  const Time t = arena_.at(index).t;
  insert(index);  // put it back; its handle stays live
  slot_ = saved_slot;
  cursor_ = saved_cursor;
  return t;
}

void CalendarQueue::maybe_resize() {
  const std::size_t n = buckets_.size();
  if (live_ > 2 * n && n < (1u << 20)) {
    resize(n * 2);
  } else if (live_ < n / 4 && n > 256) {
    resize(n / 2);
  }
}

// Brown's width rule: sample the earliest pending events and size a bucket
// at a few average inter-event gaps, so the cluster the cursor is about to
// drain spreads across many buckets (short sorted-insert scans) instead of
// piling into one. Falls back to the current width when the sample is too
// small or degenerate (e.g. all events at the same instant).
Time CalendarQueue::estimate_width(
    const std::vector<std::uint32_t>& old_heads) {
  std::vector<Time>& times = scratch_times_;
  times.clear();
  times.reserve(live_);
  for (std::uint32_t head : old_heads) {
    for (std::uint32_t i = head; i != EventArena::kNil;
         i = arena_.at(i).next) {
      const EventArena::Node& node = arena_.at(i);
      if (handles_.live(node.id)) times.push_back(node.t);
    }
  }
  const std::size_t k = std::min<std::size_t>(times.size(), 64);
  if (k < 8) return width_;
  std::nth_element(times.begin(), times.begin() + (k - 1), times.end());
  std::sort(times.begin(), times.begin() + k);
  const Time span = times[k - 1] - times[0];
  if (span <= 0.0) return width_;
  return std::max(3.0 * span / static_cast<Time>(k - 1), 1e-12);
}

void CalendarQueue::resize(std::size_t new_buckets) {
  // Estimate against the intact old layout, then swap it into the scratch
  // vector: both directions reuse the scratch's capacity, so recurring
  // grow/shrink cycles cost no allocator traffic.
  width_ = estimate_width(buckets_);
  scratch_buckets_.assign(new_buckets, EventArena::kNil);
  buckets_.swap(scratch_buckets_);
  const std::vector<std::uint32_t>& old = scratch_buckets_;
  // Re-anchor at the last popped time: every live event is at or after it,
  // so its slot (under the new width) is a valid scan start.
  slot_ = slot_of(floor_time_);
  cursor_ = static_cast<std::size_t>(slot_ % new_buckets);
  for (std::uint32_t head : old) {
    std::uint32_t i = head;
    while (i != EventArena::kNil) {
      const std::uint32_t next = arena_.at(i).next;
      arena_.at(i).next = EventArena::kNil;
      if (!handles_.live(arena_.at(i).id)) {  // purge tombstones wholesale
        discard_tombstone(i);
      } else {
        insert(i);
      }
      i = next;
    }
  }
}

}  // namespace aeq::sim
