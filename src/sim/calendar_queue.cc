#include "sim/calendar_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace aeq::sim {

CalendarQueue::CalendarQueue(Time initial_bucket_width,
                             std::size_t initial_buckets)
    : buckets_(initial_buckets), width_(initial_bucket_width) {
  AEQ_ASSERT(initial_bucket_width > 0.0 && initial_buckets >= 2);
}

EventId CalendarQueue::schedule(Time t, Handler handler) {
  AEQ_ASSERT(handler != nullptr);
  AEQ_ASSERT_MSG(std::isfinite(t), "event time must be finite");
  AEQ_ASSERT_MSG(t >= floor_time_, "cannot schedule into the past");
  const EventId id = handles_.acquire();
  insert(Node{t, next_seq_++, id, std::move(handler)});
  ++live_;
  maybe_resize();
  return id;
}

void CalendarQueue::insert(Node node) {
  auto& bucket = buckets_[bucket_of(node.t)];
  // Keep buckets sorted by (t, seq): bucket lists are short by design, so
  // the linear scan stays cheap and pop() can take the front.
  auto it = bucket.begin();
  while (it != bucket.end() &&
         (it->t < node.t || (it->t == node.t && it->seq < node.seq))) {
    ++it;
  }
  bucket.insert(it, std::move(node));
}

bool CalendarQueue::cancel(EventId id) {
  // Lazy: the node stays in its bucket as a tombstone and is reclaimed when
  // drained. Generation validation makes cancel of a fired or already
  // cancelled id a reliable no-op.
  if (!handles_.cancel(id)) return false;
  AEQ_ASSERT(live_ > 0);
  --live_;
  return true;
}

CalendarQueue::Node CalendarQueue::take_earliest() {
  // Scan buckets from the cursor; an event belongs to the current rotation
  // when its slot index (the same computation that placed it in its bucket,
  // see slot_of) has been reached by the cursor's slot.
  for (std::size_t scanned = 0; scanned <= buckets_.size(); ++scanned) {
    auto& bucket = buckets_[cursor_];
    while (!bucket.empty()) {
      if (slot_of(bucket.front().t) > slot_) break;  // future rotation
      Node node = std::move(bucket.front());
      bucket.pop_front();
      if (!handles_.live(node.id)) {  // tombstone: reclaim and skip
        handles_.release(node.id);
        continue;
      }
      // Re-anchor at the popped event so the cursor never runs ahead of
      // simulated time (resizes can leave it misaligned).
      slot_ = slot_of(node.t);
      cursor_ = bucket_of(node.t);
      return node;
    }
    cursor_ = (cursor_ + 1) % buckets_.size();
    ++slot_;
  }
  // A full rotation found nothing in-window: events are sparse. Jump the
  // calendar to the earliest event anywhere (direct search).
  Time best = std::numeric_limits<Time>::infinity();
  for (auto& bucket : buckets_) {
    // Drop tombstoned heads so the scan sees live minima.
    while (!bucket.empty() && !handles_.live(bucket.front().id)) {
      handles_.release(bucket.front().id);
      bucket.pop_front();
    }
    if (!bucket.empty()) best = std::min(best, bucket.front().t);
  }
  AEQ_ASSERT_MSG(best < std::numeric_limits<Time>::infinity(),
                 "take_earliest on empty calendar");
  slot_ = slot_of(best);
  cursor_ = bucket_of(best);
  return take_earliest();
}

CalendarQueue::Popped CalendarQueue::pop() {
  AEQ_ASSERT_MSG(live_ > 0, "pop() on empty calendar queue");
  Node node = take_earliest();
  handles_.release(node.id);
  --live_;
  floor_time_ = node.t;
  maybe_resize();
  // Scheduler contract shared with EventQueue: pops leave in strictly
  // increasing (time, insertion-sequence) order, the property the
  // backend-equivalence guarantee rests on.
  AEQ_AUDIT_ONLY({
    AEQ_CHECK_GE_MSG(node.t, last_popped_t_, "event popped out of time order");
    if (node.t == last_popped_t_) {
      AEQ_CHECK_GT_MSG(node.seq, last_popped_seq_,
                       "tied events popped out of insertion order");
    }
    last_popped_t_ = node.t;
    last_popped_seq_ = node.seq;
  });
  return Popped{node.t, std::move(node.handler)};
}

Time CalendarQueue::next_time() {
  AEQ_ASSERT(live_ > 0);
  // Peek without committing the epoch advance: take_earliest re-anchors
  // the cursor at the earliest event, which may lie arbitrarily far in the
  // future — a later schedule() between this peek and the next pop() must
  // still be allowed at any t >= the last *popped* time.
  const std::uint64_t saved_slot = slot_;
  const std::size_t saved_cursor = cursor_;
  Node node = take_earliest();
  const Time t = node.t;
  insert(std::move(node));  // put it back; its handle stays live
  slot_ = saved_slot;
  cursor_ = saved_cursor;
  return t;
}

void CalendarQueue::maybe_resize() {
  const std::size_t n = buckets_.size();
  if (live_ > 2 * n && n < (1u << 20)) {
    resize(n * 2);
  } else if (live_ < n / 4 && n > 256) {
    resize(n / 2);
  }
}

// Brown's width rule: sample the earliest pending events and size a bucket
// at a few average inter-event gaps, so the cluster the cursor is about to
// drain spreads across many buckets (short sorted-insert scans) instead of
// piling into one. Falls back to the current width when the sample is too
// small or degenerate (e.g. all events at the same instant).
Time CalendarQueue::estimate_width(
    const std::vector<std::list<Node>>& old) const {
  std::vector<Time> times;
  times.reserve(live_);
  for (const auto& bucket : old) {
    for (const auto& node : bucket) {
      if (handles_.live(node.id)) times.push_back(node.t);
    }
  }
  const std::size_t k = std::min<std::size_t>(times.size(), 64);
  if (k < 8) return width_;
  std::nth_element(times.begin(), times.begin() + (k - 1), times.end());
  std::sort(times.begin(), times.begin() + k);
  const Time span = times[k - 1] - times[0];
  if (span <= 0.0) return width_;
  return std::max(3.0 * span / static_cast<Time>(k - 1), 1e-12);
}

void CalendarQueue::resize(std::size_t new_buckets) {
  std::vector<std::list<Node>> old = std::move(buckets_);
  width_ = estimate_width(old);
  buckets_.assign(new_buckets, {});
  // Re-anchor at the last popped time: every live event is at or after it,
  // so its slot (under the new width) is a valid scan start.
  slot_ = slot_of(floor_time_);
  cursor_ = static_cast<std::size_t>(slot_ % new_buckets);
  for (auto& bucket : old) {
    for (auto& node : bucket) {
      if (!handles_.live(node.id)) {  // purge tombstones wholesale
        handles_.release(node.id);
        continue;
      }
      insert(std::move(node));
    }
  }
}

}  // namespace aeq::sim
