#include "sim/calendar_queue.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace aeq::sim {

CalendarQueue::CalendarQueue(Time initial_bucket_width,
                             std::size_t initial_buckets)
    : buckets_(initial_buckets), width_(initial_bucket_width) {
  AEQ_ASSERT(initial_bucket_width > 0.0 && initial_buckets >= 2);
}

EventId CalendarQueue::schedule(Time t, Handler handler) {
  AEQ_ASSERT(handler != nullptr);
  AEQ_ASSERT_MSG(t >= current_, "cannot schedule into the past");
  EventId id{next_seq_++};
  insert(Node{t, id.seq, std::move(handler)});
  ++live_;
  maybe_resize();
  return id;
}

void CalendarQueue::insert(Node node) {
  auto& bucket = buckets_[bucket_of(node.t)];
  // Keep buckets sorted by (t, seq): bucket lists are short by design, so
  // the linear scan stays cheap and pop() can take the front.
  auto it = bucket.begin();
  while (it != bucket.end() &&
         (it->t < node.t || (it->t == node.t && it->seq < node.seq))) {
    ++it;
  }
  bucket.insert(it, std::move(node));
}

bool CalendarQueue::cancel(EventId id) {
  if (!id) return false;
  // Lazy: mark and skip at pop. Membership is implied by the seq being
  // smaller than next_seq_ and not yet popped; we cannot check cheaply, so
  // only pending ids may be cancelled (same contract as EventQueue enforced
  // by callers; double-cancel returns false).
  auto [it, inserted] = cancelled_.insert(id.seq);
  (void)it;
  if (!inserted) return false;
  AEQ_ASSERT(live_ > 0);
  --live_;
  return true;
}

CalendarQueue::Node CalendarQueue::take_earliest() {
  // Scan buckets from the cursor; an event "belongs" to the current
  // rotation when its time falls inside the cursor bucket's window.
  for (std::size_t scanned = 0; scanned <= buckets_.size(); ++scanned) {
    auto& bucket = buckets_[cursor_];
    const Time window_end = current_ + width_;
    while (!bucket.empty()) {
      if (bucket.front().t >= window_end) break;  // future rotation
      Node node = std::move(bucket.front());
      bucket.pop_front();
      if (cancelled_.erase(node.seq) > 0) continue;  // skip cancelled
      // Re-anchor the epoch at the popped event so current_ never exceeds
      // simulated time (resizes can leave it misaligned).
      current_ = std::floor(node.t / width_) * width_;
      cursor_ = bucket_of(node.t);
      return node;
    }
    cursor_ = (cursor_ + 1) % buckets_.size();
    current_ += width_;
  }
  // A full rotation found nothing in-window: events are sparse. Jump the
  // calendar to the earliest event anywhere (direct search).
  Time best = std::numeric_limits<Time>::infinity();
  for (auto& bucket : buckets_) {
    // Drop cancelled heads so the scan sees live minima.
    while (!bucket.empty() && cancelled_.count(bucket.front().seq)) {
      cancelled_.erase(bucket.front().seq);
      bucket.pop_front();
    }
    if (!bucket.empty()) best = std::min(best, bucket.front().t);
  }
  AEQ_ASSERT_MSG(best < std::numeric_limits<Time>::infinity(),
                 "take_earliest on empty calendar");
  current_ = best - std::fmod(best, width_);
  cursor_ = bucket_of(best);
  return take_earliest();
}

CalendarQueue::Popped CalendarQueue::pop() {
  AEQ_ASSERT_MSG(live_ > 0, "pop() on empty calendar queue");
  Node node = take_earliest();
  --live_;
  maybe_resize();
  return Popped{node.t, std::move(node.handler)};
}

Time CalendarQueue::next_time() {
  AEQ_ASSERT(live_ > 0);
  Node node = take_earliest();
  const Time t = node.t;
  insert(std::move(node));  // put it back
  return t;
}

void CalendarQueue::maybe_resize() {
  const std::size_t n = buckets_.size();
  if (live_ > 2 * n && n < (1u << 20)) {
    resize(n * 2, width_ / 2);
  } else if (live_ < n / 4 && n > 256) {
    resize(n / 2, width_ * 2);
  }
}

void CalendarQueue::resize(std::size_t new_buckets, Time new_width) {
  std::vector<std::list<Node>> old = std::move(buckets_);
  buckets_.assign(new_buckets, {});
  width_ = new_width;
  current_ = std::floor(current_ / width_) * width_;  // re-align the epoch
  cursor_ = bucket_of(current_);
  for (auto& bucket : old) {
    for (auto& node : bucket) insert(std::move(node));
  }
}

}  // namespace aeq::sim
