// Heap scheduler backend.
//
// Events are arbitrary callables scheduled at an absolute simulated time.
// Ties are broken by insertion order (a monotonically increasing sequence
// number), which makes every run deterministic for a fixed seed.
// Cancellation is lazy: cancelled events stay in the heap as tombstones and
// are skipped when popped, which keeps schedule/cancel O(log n)/O(1).
//
// The heap is a hand-rolled 4-ary implicit heap over 24-byte
// (time, seq, id) entries: a quarter of the depth of a binary heap, with
// each node's children adjacent in memory, which roughly halves the
// pop-path cache misses that dominate the event loop. Handlers stay put in
// the shared EventArena, addressed by the id's slot index, so sift
// operations move three words instead of a whole callback and steady-state
// scheduling never touches the allocator.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/assert.h"
#include "sim/scheduler.h"
#include "sim/units.h"

namespace aeq::sim {

class EventQueue final : public EventScheduler {
 public:
  EventId schedule(Time t, Handler handler,
                   std::uint16_t rank = kTieRankDefault) override;
  bool cancel(EventId id) override;
  Popped pop() override;
  bool pop_if_at_most(Time t_limit, Popped& out) override;
  void reserve_events(std::size_t n) override;

  bool empty() const override { return live_ == 0; }
  std::size_t size() const override { return live_; }
  Time next_time() override;

 private:
  struct Entry {
    Time t;
    std::uint64_t seq;
    EventId id;
  };
  static bool earlier(const Entry& a, const Entry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  // Drains tombstones off the heap top so the head is a live event.
  void drop_cancelled_head();
  // Removes and returns the head entry; the caller settles its arena node
  // and handle slot.
  Entry take_head();

  std::vector<Entry> heap_;
  EventArena arena_;
  HandleTable handles_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  // Last popped (time, seq), consulted only by the AEQ_AUDIT build's
  // pop-order check: both backends promise strictly increasing order.
  Time last_popped_t_ = -1.0;
  std::uint64_t last_popped_seq_ = 0;
};

}  // namespace aeq::sim
