// Binary-heap scheduler backend.
//
// Events are arbitrary callables scheduled at an absolute simulated time.
// Ties are broken by insertion order (a monotonically increasing sequence
// number), which makes every run deterministic for a fixed seed.
// Cancellation is lazy: cancelled events stay in the heap as tombstones and
// are skipped when popped, which keeps schedule/cancel O(log n)/O(1). The
// heap is an explicit vector driven by std::push_heap/std::pop_heap so pop()
// can move the handler out instead of copying it, and cancellation validity
// is tracked by the generation-stamped HandleTable instead of per-event
// hash-set bookkeeping.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/assert.h"
#include "sim/scheduler.h"
#include "sim/units.h"

namespace aeq::sim {

class EventQueue final : public EventScheduler {
 public:
  EventId schedule(Time t, Handler handler) override;
  bool cancel(EventId id) override;
  Popped pop() override;

  bool empty() const override { return live_ == 0; }
  std::size_t size() const override { return live_; }
  Time next_time() override;

 private:
  struct Node {
    Time t;
    std::uint64_t seq;
    EventId id;
    Handler handler;
  };
  struct Later {
    bool operator()(const Node& a, const Node& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  // Drains tombstones off the heap top so the head is a live event.
  void drop_cancelled_head();
  // Removes and returns the head node, reclaiming its handle slot.
  Node take_head();

  std::vector<Node> heap_;
  HandleTable handles_;
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  // Last popped (time, seq), consulted only by the AEQ_AUDIT build's
  // pop-order check: both backends promise strictly increasing order.
  Time last_popped_t_ = -1.0;
  std::uint64_t last_popped_seq_ = 0;
};

}  // namespace aeq::sim
