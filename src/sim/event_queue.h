// The discrete-event priority queue at the heart of the simulator.
//
// Events are arbitrary callables scheduled at an absolute simulated time.
// Ties are broken by insertion order (a monotonically increasing sequence
// number), which makes every run deterministic for a fixed seed.
// Cancellation is lazy: cancelled events stay in the heap and are skipped
// when popped, which keeps schedule/cancel O(log n)/O(1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/assert.h"
#include "sim/units.h"

namespace aeq::sim {

// Opaque handle to a scheduled event; value 0 means "no event".
struct EventId {
  std::uint64_t seq = 0;
  explicit operator bool() const { return seq != 0; }
  friend bool operator==(EventId a, EventId b) { return a.seq == b.seq; }
};

class EventQueue {
 public:
  using Handler = std::function<void()>;

  // Schedules `handler` to run at absolute time `t`. `t` must not be in the
  // past relative to the last popped event.
  EventId schedule(Time t, Handler handler);

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or the id is invalid.
  bool cancel(EventId id);

  // Pops the earliest pending (non-cancelled) event and returns it.
  // Precondition: !empty().
  struct Popped {
    Time time;
    Handler handler;
  };
  Popped pop();

  // True when no live (non-cancelled) events remain.
  bool empty() const { return pending_.empty(); }

  // Number of live events.
  std::size_t size() const { return pending_.size(); }

  // Time of the earliest live event. Precondition: !empty().
  Time next_time() const;

 private:
  struct Node {
    Time t;
    std::uint64_t seq;
    Handler handler;
  };
  struct Later {
    bool operator()(const Node& a, const Node& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Node, std::vector<Node>, Later> heap_;
  // Seqs scheduled and not yet fired or cancelled. Needed so cancel() of an
  // already-fired id is a reliable no-op.
  mutable std::unordered_set<std::uint64_t> pending_;
  mutable std::unordered_set<std::uint64_t> cancelled_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace aeq::sim
