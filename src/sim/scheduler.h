// The event-scheduler concept behind the simulation executive.
//
// Two backends implement it: the binary-heap EventQueue (robust default for
// arbitrary horizons) and the O(1)-amortized CalendarQueue (Brown 1988,
// faster for the dense short-horizon profile of a packet simulator). Both
// pop events in strictly increasing (time, insertion-sequence) order, so a
// run is bit-identical on either backend for a fixed seed; the
// scheduler-equivalence property test enforces this.
//
// Cancellation is generation-stamped rather than hash-based: an EventId
// packs a slot index and a generation counter, and a HandleTable validates
// ids in O(1) with no per-event unordered_set traffic. Cancelled events stay
// in the backend's structure as tombstones and are skipped (and their slots
// reclaimed) lazily when drained.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/units.h"

namespace aeq::sim {

// Opaque handle to a scheduled event; value 0 means "no event".
struct EventId {
  std::uint64_t value = 0;
  explicit operator bool() const { return value != 0; }
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

// Generation-stamped slot table shared by the scheduler backends.
//
// acquire() hands out an id whose high 32 bits are the slot's current
// generation (>= 1, so packed ids are never 0) and whose low 32 bits are the
// slot index. cancel() and live() validate the generation, which makes
// cancel-after-fire and double-cancel reliable no-ops without any hashing:
// release() bumps the generation when the event's node is drained from the
// owning structure, instantly invalidating stale ids even after the slot is
// reused.
class HandleTable {
 public:
  EventId acquire() {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{1, false});
    }
    slots_[index].cancelled = false;
    return EventId{pack(index, slots_[index].generation)};
  }

  // Pending -> cancelled. False when the id already fired, was already
  // cancelled, or is invalid.
  bool cancel(EventId id) {
    const std::uint32_t index = index_of(id);
    if (index >= slots_.size()) return false;
    Slot& slot = slots_[index];
    if (slot.generation != generation_of(id) || slot.cancelled) return false;
    slot.cancelled = true;
    return true;
  }

  // True while the event is pending (not fired, not cancelled).
  bool live(EventId id) const {
    const std::uint32_t index = index_of(id);
    return index < slots_.size() &&
           slots_[index].generation == generation_of(id) &&
           !slots_[index].cancelled;
  }

  // Reclaims the slot once the owning structure drains the event's node
  // (fired or tombstone). Must be called exactly once per acquire().
  void release(EventId id) {
    const std::uint32_t index = index_of(id);
    Slot& slot = slots_[index];
    if (++slot.generation == 0) slot.generation = 1;  // keep ids nonzero
    free_.push_back(index);
  }

 private:
  struct Slot {
    std::uint32_t generation;
    bool cancelled;
  };

  static std::uint64_t pack(std::uint32_t index, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) | index;
  }
  static std::uint32_t index_of(EventId id) {
    return static_cast<std::uint32_t>(id.value);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id.value >> 32);
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

// The scheduler concept: what Simulator needs from an event structure.
class EventScheduler {
 public:
  using Handler = std::function<void()>;

  struct Popped {
    Time time;
    Handler handler;
  };

  virtual ~EventScheduler() = default;

  // Schedules `handler` to run at absolute time `t`. `t` must not be in the
  // past relative to the last popped event.
  virtual EventId schedule(Time t, Handler handler) = 0;

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or the id is invalid.
  virtual bool cancel(EventId id) = 0;

  // Pops the earliest pending (non-cancelled) event. Precondition: !empty().
  virtual Popped pop() = 0;

  // True when no live (non-cancelled) events remain.
  virtual bool empty() const = 0;

  // Number of live events.
  virtual std::size_t size() const = 0;

  // Time of the earliest live event; non-const because the calendar backend
  // may compact tombstones while scanning. Precondition: !empty().
  virtual Time next_time() = 0;
};

enum class SchedulerBackend {
  kHeap,      // binary-heap EventQueue
  kCalendar,  // CalendarQueue (Brown 1988)
};

const char* backend_name(SchedulerBackend backend);

std::unique_ptr<EventScheduler> make_scheduler(SchedulerBackend backend);

}  // namespace aeq::sim
