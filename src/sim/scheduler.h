// The event-scheduler concept behind the simulation executive.
//
// Two backends implement it: the binary-heap EventQueue (robust default for
// arbitrary horizons) and the O(1)-amortized CalendarQueue (Brown 1988,
// faster for the dense short-horizon profile of a packet simulator). Both
// pop events in strictly increasing (time, tie-rank, insertion-sequence)
// order, so a run is bit-identical on either backend for a fixed seed; the
// scheduler-equivalence property test enforces this.
//
// The tie rank exists for the sharded (PDES) executive. Equal-timestamp
// events are common (zero-delay chains, phase-locked ack-clocking), and
// breaking those ties purely by insertion order would tie the schedule to
// *when* each event was inserted — which differs between the serial
// executive (a link's delivery event is inserted at tx-start) and the
// sharded one (the same delivery is inserted at tx-end or at a lookahead
// barrier). Events whose insertion point is mode-dependent therefore carry
// an explicit rank derived from simulation identity (the packet's source
// host; see net::Port), which both executives compute identically; rank
// beats insertion order, so the dispatch schedule — and every metric — is
// the same serially and sharded. Events scheduled without a rank get
// kTieRankDefault (sorts after every ranked event at the same timestamp)
// and keep pure insertion order among themselves.
//
// Cancellation is generation-stamped rather than hash-based: an EventId
// packs a slot index and a generation counter, and a HandleTable validates
// ids in O(1) with no per-event unordered_set traffic. Cancelled events stay
// in the backend's structure as tombstones and are skipped (and their slots
// reclaimed) lazily when drained.
//
// Event storage is allocation-free in steady state: handlers are
// InlineFunctions (fixed inline capture buffer, no heap fallback) living in
// an EventArena whose node indices are the HandleTable's slot indices, so
// the handle free list doubles as the node free list and schedule/pop/cancel
// recycle storage without touching the allocator once the live-event
// high-water mark stops rising.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/assert.h"
#include "sim/units.h"
#include "util/inline_function.h"

namespace aeq::sim {

// Inline capture budget for event callbacks. 48 bytes covers every capture
// in the tree (the largest — trace replay's [stack, record] — is exactly
// 48); oversized captures fail to compile rather than silently allocating.
// Raising this inflates every arena node, so prefer shrinking captures.
inline constexpr std::size_t kHandlerInlineBytes = 48;

using EventHandler = util::InlineFunction<void(), kHandlerInlineBytes>;

// Tie rank for events scheduled without an explicit one: sorts after every
// ranked event at the same timestamp. Ranked events must use values
// strictly below this.
inline constexpr std::uint16_t kTieRankDefault = 0xffff;

// The (rank, insertion-counter) pair packed into one comparable word: rank
// in the top 16 bits, counter in the low 48 (2^48 schedules before
// wrap — checked). Backends order entries by (time, this key), so the
// comparator is exactly the old (time, seq) two-word compare.
inline std::uint64_t pack_tie_key(std::uint16_t rank,
                                  std::uint64_t counter) {
  AEQ_DCHECK(counter < (1ull << 48));
  return (static_cast<std::uint64_t>(rank) << 48) | counter;
}

// The rank half of a packed tie key.
inline std::uint16_t tie_rank_of(std::uint64_t tie_key) {
  return static_cast<std::uint16_t>(tie_key >> 48);
}

// Opaque handle to a scheduled event; value 0 means "no event".
struct EventId {
  std::uint64_t value = 0;
  explicit operator bool() const { return value != 0; }
  friend bool operator==(EventId a, EventId b) { return a.value == b.value; }
};

// Generation-stamped slot table shared by the scheduler backends.
//
// acquire() hands out an id whose high 32 bits are the slot's current
// generation (>= 1, so packed ids are never 0) and whose low 32 bits are the
// slot index. cancel() and live() validate the generation, which makes
// cancel-after-fire and double-cancel reliable no-ops without any hashing:
// release() bumps the generation when the event's node is drained from the
// owning structure, instantly invalidating stale ids even after the slot is
// reused.
class HandleTable {
 public:
  EventId acquire() {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(Slot{1, false});
    }
    // Fresh and recycled slots converge here under the same invariants:
    // release() reclaims slots clean (cancelled false, generation bumped but
    // never wrapped to 0), so a handed-out id can never pack to 0.
    const Slot& slot = slots_[index];
    AEQ_DCHECK(slot.generation >= 1);
    AEQ_DCHECK(!slot.cancelled);
    return EventId{pack(index, slot.generation)};
  }

  // Pending -> cancelled. False when the id already fired, was already
  // cancelled, or is invalid.
  bool cancel(EventId id) {
    const std::uint32_t index = index_of(id);
    if (index >= slots_.size()) return false;
    Slot& slot = slots_[index];
    if (slot.generation != generation_of(id) || slot.cancelled) return false;
    slot.cancelled = true;
    return true;
  }

  // True while the event is pending (not fired, not cancelled).
  bool live(EventId id) const {
    const std::uint32_t index = index_of(id);
    return index < slots_.size() &&
           slots_[index].generation == generation_of(id) &&
           !slots_[index].cancelled;
  }

  // Reclaims the slot once the owning structure drains the event's node
  // (fired or tombstone). Must be called exactly once per acquire(): a
  // double or stale release would put the slot on the free list twice and
  // corrupt every id handed out from it afterwards, so validity is checked
  // — fatally in debug builds, and under AEQ_AUDIT in any build type.
  void release(EventId id) {
    const std::uint32_t index = index_of(id);
    AEQ_DCHECK_MSG(index < slots_.size(),
                   "release() of out-of-range event id");
    AEQ_AUDIT_ONLY(AEQ_CHECK_LT_MSG(index, slots_.size(),
                                    "release() of out-of-range event id"));
    Slot& slot = slots_[index];
    AEQ_DCHECK_MSG(slot.generation == generation_of(id),
                   "double release() or release() of a reused slot");
    AEQ_AUDIT_ONLY(
        AEQ_CHECK_EQ_MSG(slot.generation, generation_of(id),
                         "double release() or release() of a reused slot"));
    if (++slot.generation == 0) slot.generation = 1;  // keep ids nonzero
    slot.cancelled = false;  // reclaimed slots are handed out clean
    free_.push_back(index);
  }

  // Slot index packed into an id — also the event's EventArena node index.
  static std::uint32_t slot_index(EventId id) { return index_of(id); }

  // Pre-sizes the slot and free-list vectors for `n` concurrent events so
  // later acquire/release traffic below that mark never grows them.
  void reserve(std::size_t n) {
    slots_.reserve(n);
    free_.reserve(n);
  }

 private:
  struct Slot {
    std::uint32_t generation;
    bool cancelled;
  };

  static std::uint64_t pack(std::uint32_t index, std::uint32_t generation) {
    return (static_cast<std::uint64_t>(generation) << 32) | index;
  }
  static std::uint32_t index_of(EventId id) {
    return static_cast<std::uint32_t>(id.value);
  }
  static std::uint32_t generation_of(EventId id) {
    return static_cast<std::uint32_t>(id.value >> 32);
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

// Chunked, index-stable event-node storage shared by both scheduler
// backends. A node's index IS its HandleTable slot index, so the handle
// table's free list doubles as the node free list: once the table reaches
// its high-water mark, schedule/pop/cancel recycle nodes with zero
// allocator traffic. Chunks are never freed or moved, so Node references
// stay valid across growth and the calendar's intrusive `next` links can
// be plain indices.
class EventArena {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Node {
    Time t = 0.0;
    std::uint64_t seq = 0;
    EventId id{};
    std::uint32_t next = kNil;  // intrusive chain link (calendar buckets)
    EventHandler handler;
  };

  Node& at(std::uint32_t index) {
    AEQ_DCHECK((index >> kChunkShift) < chunks_.size());
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }
  const Node& at(std::uint32_t index) const {
    AEQ_DCHECK((index >> kChunkShift) < chunks_.size());
    return chunks_[index >> kChunkShift][index & kChunkMask];
  }

  // Grows (by whole chunks) until `index` is addressable. This is the only
  // allocation site — reached only while the live-event high-water mark is
  // still rising, i.e. during warmup.
  void ensure(std::uint32_t index) {
    const std::size_t chunk = index >> kChunkShift;
    while (chunks_.size() <= chunk) {
      chunks_.push_back(std::make_unique<Node[]>(kChunkSize));
    }
  }

 private:
  static constexpr std::uint32_t kChunkShift = 9;  // 512 nodes per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kChunkMask = kChunkSize - 1;

  std::vector<std::unique_ptr<Node[]>> chunks_;
};

// The scheduler concept: what Simulator needs from an event structure.
class EventScheduler {
 public:
  using Handler = EventHandler;

  struct Popped {
    Time time;
    // The event's packed (rank, insertion-seq) ordering key — what broke
    // ties at this timestamp. Consumed by the schedule digest
    // (sim/digest.h); rank lives in the top 16 bits (tie_rank_of).
    std::uint64_t tie_key;
    Handler handler;
  };

  virtual ~EventScheduler() = default;

  // Schedules `handler` to run at absolute time `t`. `t` must not be in the
  // past relative to the last popped event. `rank` breaks equal-timestamp
  // ties before insertion order does (see the header comment); the default
  // preserves pure insertion-order semantics.
  virtual EventId schedule(Time t, Handler handler,
                           std::uint16_t rank = kTieRankDefault) = 0;

  // Cancels a pending event. Returns false if the event already ran, was
  // already cancelled, or the id is invalid.
  virtual bool cancel(EventId id) = 0;

  // Pre-sizes internal storage (arena chunks, handle table, heap/buckets)
  // for `n` concurrent pending events, so a run whose live-event count
  // stays below `n` performs no steady-state allocations. A hint: the
  // structure still grows past it on demand.
  virtual void reserve_events(std::size_t n) = 0;

  // Pops the earliest pending (non-cancelled) event. Precondition: !empty().
  virtual Popped pop() = 0;

  // Pops the earliest live event into `out` if its time is <= t_limit;
  // returns false (structure untouched) when the queue is empty or the
  // earliest event is later. The executive's dispatch loop uses this
  // instead of next_time()+pop(): one head scan per event instead of two
  // (for the calendar backend next_time() is a full pop-and-reinsert).
  virtual bool pop_if_at_most(Time t_limit, Popped& out) = 0;

  // True when no live (non-cancelled) events remain.
  virtual bool empty() const = 0;

  // Number of live events.
  virtual std::size_t size() const = 0;

  // Time of the earliest live event; non-const because the calendar backend
  // may compact tombstones while scanning. Precondition: !empty().
  virtual Time next_time() = 0;
};

enum class SchedulerBackend {
  kHeap,      // binary-heap EventQueue
  kCalendar,  // CalendarQueue (Brown 1988)
};

const char* backend_name(SchedulerBackend backend);

std::unique_ptr<EventScheduler> make_scheduler(SchedulerBackend backend);

}  // namespace aeq::sim
