#include "sim/simulator.h"

#include <utility>

#include "sim/assert.h"

namespace aeq::sim {

EventId Simulator::schedule_at(Time t, EventScheduler::Handler handler) {
  AEQ_CHECK_GE_MSG(t, now_, "cannot schedule into the past");
  return queue_->schedule(t, std::move(handler));
}

void Simulator::dispatch_one() {
  auto [t, handler] = queue_->pop();
  AEQ_DCHECK(t >= now_);
  now_ = t;
  // Keep the diagnostic clock in step so AEQ_CHECK failure reports anywhere
  // in the call tree below carry the simulated time.
  detail::g_sim_now = now_;
  ++events_processed_;
  handler();
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_->empty() && !stopped_) dispatch_one();
}

void Simulator::run_until(Time t_end) {
  AEQ_CHECK_GE_MSG(t_end, now_, "run_until target precedes current time");
  stopped_ = false;
  while (!queue_->empty() && !stopped_ && queue_->next_time() <= t_end) {
    dispatch_one();
  }
  if (!stopped_ && now_ < t_end) {
    now_ = t_end;
    detail::g_sim_now = now_;
  }
}

}  // namespace aeq::sim
