#include "sim/simulator.h"

#include <limits>
#include <utility>

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::sim {

EventId Simulator::schedule_at(Time t, EventScheduler::Handler handler,
                               std::uint16_t rank) {
  AEQ_CHECK_GE_MSG(t, now_, "cannot schedule into the past");
  return queue_->schedule(t, std::move(handler), rank);
}

void Simulator::enable_schedule_digest() {
  AEQ_ASSERT_MSG(kDigestBuildEnabled,
                 "schedule digests need an AEQ_SCHED_DIGEST=ON build");
  digest_enabled_ = true;
}

void Simulator::dispatch(EventScheduler::Popped& popped) {
  AEQ_DCHECK(popped.time >= now_);
  now_ = popped.time;
  // Keep the diagnostic clock in step so AEQ_CHECK failure reports anywhere
  // in the call tree below carry the simulated time.
  detail::g_sim_now = now_;
  ++events_processed_;
#ifdef AEQ_SCHED_DIGEST
  if (digest_enabled_) {
    digest_.record(popped.time, tie_rank_of(popped.tie_key));
  }
#endif
  // Root profiling region: every handler's cost lands under dispatch;
  // instrumented callees subtract themselves into their own buckets. One
  // thread-local load + branch when profiling is off (obs/prof/profiler.h).
  const obs::prof::ProfRegion prof(obs::prof::Region::kDispatch);
  popped.handler();
}

void Simulator::run() {
  stopped_ = false;
  EventScheduler::Popped popped;
  while (!stopped_ &&
         queue_->pop_if_at_most(std::numeric_limits<Time>::infinity(),
                                popped)) {
    dispatch(popped);
  }
}

void Simulator::run_until(Time t_end) {
  AEQ_CHECK_GE_MSG(t_end, now_, "run_until target precedes current time");
  stopped_ = false;
  EventScheduler::Popped popped;
  while (!stopped_ && queue_->pop_if_at_most(t_end, popped)) {
    dispatch(popped);
  }
  if (!stopped_ && now_ < t_end) {
    now_ = t_end;
    detail::g_sim_now = now_;
  }
}

}  // namespace aeq::sim
