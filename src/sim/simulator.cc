#include "sim/simulator.h"

#include <utility>

#include "sim/assert.h"

namespace aeq::sim {

EventId Simulator::schedule_at(Time t, EventScheduler::Handler handler) {
  AEQ_ASSERT_MSG(t >= now_, "cannot schedule into the past");
  return queue_->schedule(t, std::move(handler));
}

void Simulator::dispatch_one() {
  auto [t, handler] = queue_->pop();
  AEQ_DCHECK(t >= now_);
  now_ = t;
  ++events_processed_;
  handler();
}

void Simulator::run() {
  stopped_ = false;
  while (!queue_->empty() && !stopped_) dispatch_one();
}

void Simulator::run_until(Time t_end) {
  AEQ_ASSERT(t_end >= now_);
  stopped_ = false;
  while (!queue_->empty() && !stopped_ && queue_->next_time() <= t_end) {
    dispatch_one();
  }
  if (!stopped_ && now_ < t_end) now_ = t_end;
}

}  // namespace aeq::sim
