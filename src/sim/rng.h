// Deterministic random number generation for simulations.
//
// Every stochastic component takes an explicit Rng (seeded by the experiment
// config) so that runs are reproducible and components can be reseeded
// independently. No global RNG state (C++ Core Guidelines I.2/I.3).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "sim/assert.h"

namespace aeq::sim {

// SplitMix64 finalizer (Steele, Lea & Flood / Stafford mix13): bijective on
// uint64, so distinct inputs always yield distinct outputs. Pure integer
// arithmetic — the value is identical on every platform and compiler.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;  // golden-ratio increment
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Derives the seed for sweep point `index` from a base seed: element
// `index` of the SplitMix64 stream whose state walks from `base` in
// golden-ratio steps. Distinct (base, index) pairs map to distinct seeds
// for any fixed base (the finalizer is a bijection over the stepped
// state), so parallel sweep points never share an RNG stream, and the
// derivation involves no floating point — same value everywhere, forever.
constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
  return splitmix64(base + index * 0x9E3779B97F4A7C15ull);
}

// A thin, deterministic wrapper around std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    AEQ_DCHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    AEQ_DCHECK(n > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  // Exponentially distributed value with the given mean.
  double exponential(double mean) {
    AEQ_DCHECK(mean > 0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Samples an index from a discrete distribution with the given
  // (not necessarily normalized, non-negative) weights.
  std::size_t discrete(std::span<const double> weights);

  // Derives a new independent generator; useful for giving each component
  // its own stream.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace aeq::sim
