// Deterministic random number generation for simulations.
//
// Every stochastic component takes an explicit Rng (seeded by the experiment
// config) so that runs are reproducible and components can be reseeded
// independently. No global RNG state (C++ Core Guidelines I.2/I.3).
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "sim/assert.h"

namespace aeq::sim {

// A thin, deterministic wrapper around std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  // Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    AEQ_DCHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  // Uniform integer in [0, n).
  std::uint64_t index(std::uint64_t n) {
    AEQ_DCHECK(n > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform() < p; }

  // Exponentially distributed value with the given mean.
  double exponential(double mean) {
    AEQ_DCHECK(mean > 0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Samples an index from a discrete distribution with the given
  // (not necessarily normalized, non-negative) weights.
  std::size_t discrete(std::span<const double> weights);

  // Derives a new independent generator; useful for giving each component
  // its own stream.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace aeq::sim
