// Conservative parallel discrete-event executive (PDES over shards).
//
// A ShardedSimulator owns K independent Simulators ("shards") and advances
// them in lockstep lookahead windows: if every pending cross-shard
// interaction takes at least `lookahead` of simulated time to land (the
// minimum cut latency of the partitioned topology), then all events in
//
//   (window_start, min(t_end, earliest_pending + lookahead)]
//
// can run concurrently without any shard observing an effect from another
// shard "from the past". Between windows the coordinator thread runs the
// registered barrier callback, which drains the cross-shard mailboxes
// (net::ShardFabric) and schedules the handed-over packets into their
// destination shards — every message carries an arrival timestamp at least
// `lookahead` after its send, so it always lands at or beyond the horizon
// just executed.
//
// The window horizon is adaptive (bounded-lag / YAWNS style): it chases the
// globally earliest pending event instead of marching in fixed lookahead
// steps, so idle gaps cost one barrier instead of gap/lookahead barriers.
//
// Threading model: one persistent worker thread per shard, parked on a
// condition variable between windows. The coordinator publishes a target
// time, wakes all workers, and waits for the last one to finish. The pool
// mutex orders every cross-window access (mailbox overflow handover, the
// drain callback's schedule_at into foreign shards, next_event_time scans),
// so the protocol is data-race-free by construction — CI runs a 4-shard
// configuration under ThreadSanitizer to keep it that way.
//
// Determinism: shards touch disjoint simulation state, the drain callback
// runs single-threaded in fixed (destination, source, FIFO) order, and each
// shard's Simulator dispatches exactly as it would serially. Same seed ⇒
// same schedule ⇒ same metrics, for any shard count (property-tested in
// tests/sharded_test.cc).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aeq::sim {

class ShardedSimulator {
 public:
  // `lookahead` must be strictly positive: it is the window depth, and a
  // zero-lookahead cut would serialize the shards one event at a time.
  ShardedSimulator(std::size_t num_shards, SchedulerBackend backend,
                   Time lookahead);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  Simulator& shard(std::size_t k) { return *shards_.at(k); }
  std::size_t num_shards() const { return shards_.size(); }
  Time lookahead() const { return lookahead_; }

  // Invoked on the coordinator thread after every window, with all workers
  // parked: the only place cross-shard state may move. The callback may
  // schedule new events into any shard (at times >= the window horizon).
  void set_barrier_callback(std::function<void()> fn) {
    barrier_callback_ = std::move(fn);
  }

  // Advances every shard to exactly `t_end` (their clocks end equal), in
  // conservative windows. Callable repeatedly with increasing targets.
  void run_until(Time t_end);

  // Simulated time every shard has reached (between run_until calls).
  Time now() const { return now_; }

  // Sum of events dispatched across shards. With audit and telemetry off
  // this equals the serial run's count — the cross-shard handoff path
  // schedules one NIC tx-end event plus one arrival event per packet,
  // exactly like the serial two-event link pipeline (checked by the
  // BENCH_hotpath sharded section).
  std::uint64_t events_processed() const;

  std::size_t pending_events() const;

  // Number of lookahead windows executed (barrier count), for perf
  // diagnostics: events_processed / windows_executed is the parallelism
  // grain the cut achieved.
  std::uint64_t windows_executed() const { return windows_; }

  // Schedule digest across all shards (sim/digest.h). Shards dispatch
  // concurrently, so the merged digest folds the per-shard commutative
  // accumulators; its canonical() equals the serial run's for the same
  // seed. Call only between run_until calls (workers parked).
  void enable_schedule_digest() {
    for (auto& shard : shards_) shard->enable_schedule_digest();
  }
  ScheduleDigest schedule_digest() const {
    ScheduleDigest merged;
    for (const auto& shard : shards_) merged.merge(shard->schedule_digest());
    return merged;
  }

 private:
  // Runs every shard to `horizon` on the worker pool and waits for all.
  void parallel_window(Time horizon);
  void worker_loop(std::size_t k);

  std::vector<std::unique_ptr<Simulator>> shards_;
  Time lookahead_;
  Time now_ = 0.0;
  std::uint64_t windows_ = 0;
  std::function<void()> barrier_callback_;

  // Worker pool: epoch_ increments publish a new window target; running_
  // counts workers still inside it. The lock protocol is machine-checked:
  // every guarded member is only touched under mutex_ (clang
  // -Wthread-safety via the AEQ_THREAD_SAFETY build, DESIGN.md §12).
  util::Mutex mutex_;
  util::CondVar work_cv_;
  util::CondVar done_cv_;
  std::uint64_t epoch_ AEQ_GUARDED_BY(mutex_) = 0;
  Time target_ AEQ_GUARDED_BY(mutex_) = 0.0;
  std::size_t running_ AEQ_GUARDED_BY(mutex_) = 0;
  bool shutdown_ AEQ_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace aeq::sim
