// Conservative parallel discrete-event executive (PDES over shards).
//
// A ShardedSimulator owns K independent Simulators ("shards") and advances
// them in lockstep lookahead windows: if every pending cross-shard
// interaction takes at least `lookahead` of simulated time to land (the
// minimum cut latency of the partitioned topology), then all events in
//
//   (window_start, min(t_end, earliest_pending + lookahead)]
//
// can run concurrently without any shard observing an effect from another
// shard "from the past". Between windows the coordinator thread runs the
// registered barrier callback, which drains the cross-shard mailboxes
// (net::ShardFabric) and schedules the handed-over packets into their
// destination shards — every message carries an arrival timestamp at least
// `lookahead` after its send, so it always lands at or beyond the horizon
// just executed.
//
// The window horizon is adaptive (bounded-lag / YAWNS style): it chases the
// globally earliest pending event instead of marching in fixed lookahead
// steps, so idle gaps cost one barrier instead of gap/lookahead barriers.
//
// Threading model: one persistent worker thread per shard, parked on a
// condition variable between windows. The coordinator publishes a target
// time, wakes all workers, and waits for the last one to finish. The pool
// mutex orders every cross-window access (mailbox overflow handover, the
// drain callback's schedule_at into foreign shards, next_event_time scans),
// so the protocol is data-race-free by construction — CI runs a 4-shard
// configuration under ThreadSanitizer to keep it that way.
//
// Determinism: shards touch disjoint simulation state, the drain callback
// runs single-threaded in fixed (destination, source, FIFO) order, and each
// shard's Simulator dispatches exactly as it would serially. Same seed ⇒
// same schedule ⇒ same metrics, for any shard count (property-tested in
// tests/sharded_test.cc).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulator.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aeq::obs::prof {
class Collector;
}  // namespace aeq::obs::prof

namespace aeq::sim {

// Introspection snapshot of the PDES executive (DESIGN.md §14). All cycle
// fields are raw timestamp-counter deltas (obs::prof::cycles_now units);
// they are observe-only and never feed back into the simulation.
struct ShardExecStats {
  std::uint64_t busy_cycles = 0;  // inside Simulator::run_until on a window
  std::uint64_t wait_cycles = 0;  // parked between windows (barrier + idle)
  std::uint64_t events = 0;       // events dispatched by this shard
};

struct ExecutiveStats {
  // Log2 histogram of window length in 1/16ths of the lookahead: bucket 4
  // is a window of exactly one lookahead, lower buckets are backed-off or
  // event-sparse windows, higher buckets are idle-gap skips.
  static constexpr std::size_t kWindowHistBuckets = 32;

  std::uint64_t windows = 0;
  // Windows whose horizon was set by the 4-ulp backoff (earliest +
  // lookahead won over t_end) rather than the run target.
  std::uint64_t backoff_windows = 0;
  // Coordinator cycles inside the barrier callback (mailbox drain).
  // Only accumulated while profiling is enabled.
  std::uint64_t barrier_cycles = 0;
  std::array<std::uint64_t, kWindowHistBuckets> window_hist{};
  std::vector<ShardExecStats> shards;

  std::uint64_t total_busy_cycles() const {
    std::uint64_t total = 0;
    for (const ShardExecStats& shard : shards) total += shard.busy_cycles;
    return total;
  }
  std::uint64_t total_wait_cycles() const {
    std::uint64_t total = 0;
    for (const ShardExecStats& shard : shards) total += shard.wait_cycles;
    return total;
  }
  // max(busy) / mean(busy): 1.0 is a perfectly balanced cut, K is one
  // shard doing all the work. 0 when no cycles were measured.
  double load_imbalance() const;
  // Σwait / (Σbusy + Σwait): the fraction of worker wall time spent parked
  // at barriers instead of dispatching events.
  double barrier_stall_share() const;
};

class ShardedSimulator {
 public:
  // `lookahead` must be strictly positive: it is the window depth, and a
  // zero-lookahead cut would serialize the shards one event at a time.
  ShardedSimulator(std::size_t num_shards, SchedulerBackend backend,
                   Time lookahead);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  Simulator& shard(std::size_t k) { return *shards_.at(k); }
  std::size_t num_shards() const { return shards_.size(); }
  Time lookahead() const { return lookahead_; }

  // Invoked on the coordinator thread after every window, with all workers
  // parked: the only place cross-shard state may move. The callback may
  // schedule new events into any shard (at times >= the window horizon).
  void set_barrier_callback(std::function<void()> fn) {
    barrier_callback_ = std::move(fn);
  }

  // Advances every shard to exactly `t_end` (their clocks end equal), in
  // conservative windows. Callable repeatedly with increasing targets.
  void run_until(Time t_end);

  // Simulated time every shard has reached (between run_until calls).
  Time now() const { return now_; }

  // Sum of events dispatched across shards. With audit and telemetry off
  // this equals the serial run's count — the cross-shard handoff path
  // schedules one NIC tx-end event plus one arrival event per packet,
  // exactly like the serial two-event link pipeline (checked by the
  // BENCH_hotpath sharded section).
  std::uint64_t events_processed() const;

  std::size_t pending_events() const;

  // Number of lookahead windows executed (barrier count), for perf
  // diagnostics: events_processed / windows_executed is the parallelism
  // grain the cut achieved.
  std::uint64_t windows_executed() const { return windows_; }

  // Schedule digest across all shards (sim/digest.h). Shards dispatch
  // concurrently, so the merged digest folds the per-shard commutative
  // accumulators; its canonical() equals the serial run's for the same
  // seed. Call only between run_until calls (workers parked).
  void enable_schedule_digest() {
    for (auto& shard : shards_) shard->enable_schedule_digest();
  }
  ScheduleDigest schedule_digest() const {
    ScheduleDigest merged;
    for (const auto& shard : shards_) merged.merge(shard->schedule_digest());
    return merged;
  }

  // Profiling handover: `collectors` (one per shard, or empty to disable)
  // are installed as each worker's thread-local profiler collector for
  // subsequent windows, and per-shard busy/wait cycle accounting turns on.
  // Observe-only — enabling this cannot change the schedule. Call only
  // between run_until calls (workers parked); the pool mutex publishes the
  // pointers to the workers.
  void set_profiling(std::vector<obs::prof::Collector*> collectors);

  // Executive introspection snapshot. Window counts and the window-size
  // histogram are always maintained (they derive from simulated time and
  // cost nothing); cycle fields are nonzero only after set_profiling.
  // Call only between run_until calls.
  ExecutiveStats executive_stats();

 private:
  // Runs every shard to `horizon` on the worker pool and waits for all.
  void parallel_window(Time horizon);
  void worker_loop(std::size_t k);

  std::vector<std::unique_ptr<Simulator>> shards_;
  Time lookahead_;
  Time now_ = 0.0;
  std::uint64_t windows_ = 0;
  std::function<void()> barrier_callback_;

  // Coordinator-thread-only introspection (no lock needed: written in
  // run_until / set_profiling, read in executive_stats, all coordinator
  // calls). The window histogram derives from simulated time, so it is
  // deterministic; the cycle counters are wall-derived and gated on
  // prof_enabled_ so an unprofiled run never reads the TSC here.
  std::uint64_t backoff_windows_ = 0;
  std::uint64_t barrier_cycles_ = 0;
  std::array<std::uint64_t, ExecutiveStats::kWindowHistBuckets>
      window_hist_{};
  bool prof_enabled_ = false;

  // Worker pool: epoch_ increments publish a new window target; running_
  // counts workers still inside it. The lock protocol is machine-checked:
  // every guarded member is only touched under mutex_ (clang
  // -Wthread-safety via the AEQ_THREAD_SAFETY build, DESIGN.md §12).
  util::Mutex mutex_;
  util::CondVar work_cv_;
  util::CondVar done_cv_;
  std::uint64_t epoch_ AEQ_GUARDED_BY(mutex_) = 0;
  Time target_ AEQ_GUARDED_BY(mutex_) = 0.0;
  std::size_t running_ AEQ_GUARDED_BY(mutex_) = 0;
  bool shutdown_ AEQ_GUARDED_BY(mutex_) = false;
  // Profiling handover state: workers read their collector pointer and the
  // flag at each epoch pickup (already under mutex_) and write their cycle
  // totals back under the same lock they use to decrement running_.
  bool profiling_ AEQ_GUARDED_BY(mutex_) = false;
  std::vector<obs::prof::Collector*> collectors_ AEQ_GUARDED_BY(mutex_);
  std::vector<ShardExecStats> shard_exec_ AEQ_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;
};

}  // namespace aeq::sim
