#include "sim/rng.h"

#include <numeric>

namespace aeq::sim {

std::size_t Rng::discrete(std::span<const double> weights) {
  AEQ_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AEQ_DCHECK(w >= 0.0);
    total += w;
  }
  AEQ_ASSERT_MSG(total > 0.0, "discrete distribution needs positive mass");
  double target = uniform() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // guard against floating-point round-off
}

}  // namespace aeq::sim
