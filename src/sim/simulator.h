// The simulation executive: a clock plus a pluggable event scheduler.
//
// A Simulator is an explicit object passed (by reference) to every component
// that needs to schedule work; there is no global simulation state. The
// scheduler backend (binary heap or calendar queue) is chosen at
// construction; both dispatch events in identical order for a fixed seed,
// so the choice is purely a performance knob.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "sim/digest.h"
#include "sim/scheduler.h"
#include "sim/units.h"

namespace aeq::sim {

class Simulator {
 public:
  explicit Simulator(SchedulerBackend backend = SchedulerBackend::kHeap)
      : backend_(backend), queue_(make_scheduler(backend)) {}

  // Current simulated time.
  Time now() const { return now_; }

  // Which scheduler backend this executive runs on.
  SchedulerBackend backend() const { return backend_; }

  // Schedules `handler` at absolute time `t` (must be >= now()). `rank`
  // breaks equal-timestamp ties ahead of insertion order — see
  // sim/scheduler.h; the default keeps plain insertion-order semantics.
  EventId schedule_at(Time t, EventScheduler::Handler handler,
                      std::uint16_t rank = kTieRankDefault);

  // Schedules `handler` `dt` seconds from now (dt >= 0).
  EventId schedule_in(Time dt, EventScheduler::Handler handler,
                      std::uint16_t rank = kTieRankDefault) {
    return schedule_at(now_ + dt, std::move(handler), rank);
  }

  // Cancels a pending event; safe to call with an already-fired id.
  void cancel(EventId id) { queue_->cancel(id); }

  // Pre-sizes the scheduler for `n` concurrent pending events (see
  // EventScheduler::reserve_events): below that mark the event loop
  // performs no steady-state allocations.
  void reserve_events(std::size_t n) { queue_->reserve_events(n); }

  // Runs until the event queue drains or stop() is called.
  void run();

  // Runs all events with time <= `t_end`; afterwards now() == t_end
  // (even if the queue drained earlier). Pending later events remain queued.
  void run_until(Time t_end);

  // Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  // Total events dispatched so far (for micro-benchmarks and sanity checks).
  std::uint64_t events_processed() const { return events_processed_; }

  // Schedule digest (sim/digest.h): when enabled, dispatch() folds every
  // popped (time, tie-rank) into the digest. Requires the AEQ_SCHED_DIGEST
  // build (default ON); enabling in a build without it is a fatal error
  // rather than a silently empty digest.
  void enable_schedule_digest();
  bool schedule_digest_enabled() const { return digest_enabled_; }
  const ScheduleDigest& schedule_digest() const { return digest_; }

  // Timestamp of the earliest pending event, +infinity when the queue is
  // empty. The sharded executive uses this to pick the next conservative
  // window; for the calendar backend it costs a head scan, so call it once
  // per window, not per event.
  Time next_event_time() {
    return queue_->empty() ? std::numeric_limits<Time>::infinity()
                           : queue_->next_time();
  }

  std::size_t pending_events() const { return queue_->size(); }

 private:
  void dispatch(EventScheduler::Popped& popped);

  SchedulerBackend backend_;
  std::unique_ptr<EventScheduler> queue_;
  Time now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
  bool digest_enabled_ = false;
  ScheduleDigest digest_;
};

}  // namespace aeq::sim
