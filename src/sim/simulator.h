// The simulation executive: a clock plus the event queue.
//
// A Simulator is an explicit object passed (by reference) to every component
// that needs to schedule work; there is no global simulation state.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"
#include "sim/units.h"

namespace aeq::sim {

class Simulator {
 public:
  // Current simulated time.
  Time now() const { return now_; }

  // Schedules `handler` at absolute time `t` (must be >= now()).
  EventId schedule_at(Time t, EventQueue::Handler handler);

  // Schedules `handler` `dt` seconds from now (dt >= 0).
  EventId schedule_in(Time dt, EventQueue::Handler handler) {
    return schedule_at(now_ + dt, std::move(handler));
  }

  // Cancels a pending event; safe to call with an already-fired id.
  void cancel(EventId id) { queue_.cancel(id); }

  // Runs until the event queue drains or stop() is called.
  void run();

  // Runs all events with time <= `t_end`; afterwards now() == t_end
  // (even if the queue drained earlier). Pending later events remain queued.
  void run_until(Time t_end);

  // Requests that run()/run_until() return after the current event.
  void stop() { stopped_ = true; }

  // Total events dispatched so far (for micro-benchmarks and sanity checks).
  std::uint64_t events_processed() const { return events_processed_; }

  std::size_t pending_events() const { return queue_.size(); }

 private:
  void dispatch_one();

  EventQueue queue_;
  Time now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t events_processed_ = 0;
};

}  // namespace aeq::sim
