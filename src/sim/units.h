// Time and rate units used throughout the simulator.
//
// Simulated time is a double in seconds. Rates are bytes per second.
// The helpers below keep unit conversions explicit and greppable.
#pragma once

#include <cstdint>

namespace aeq::sim {

// Simulated time, in seconds.
using Time = double;

inline constexpr Time kSec = 1.0;
inline constexpr Time kMsec = 1e-3;
inline constexpr Time kUsec = 1e-6;
inline constexpr Time kNsec = 1e-9;

// Rate, in bytes per second.
using Rate = double;

// Converts a link speed in gigabits per second to bytes per second.
constexpr Rate gbps(double gigabits_per_sec) {
  return gigabits_per_sec * 1e9 / 8.0;
}

// Time to serialize `bytes` onto a link of rate `r` bytes/sec.
constexpr Time serialization_delay(std::uint64_t bytes, Rate r) {
  return static_cast<Time>(bytes) / r;
}

// Common payload sizes.
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * 1024;

}  // namespace aeq::sim
