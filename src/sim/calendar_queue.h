// Calendar queue (Brown 1988): an O(1)-amortized scheduler backend for
// workloads whose event horizon is short and dense — exactly a packet
// simulator's profile. Selectable behind Simulator alongside the binary-heap
// EventQueue; both pop in identical (time, sequence) order.
//
// Buckets cover `bucket_width` of simulated time each and wrap around a
// ring of `num_buckets`; events further than one rotation ahead sit in their
// modulo bucket and are reached via a lazy sparse-jump scan. The structure
// resizes itself (doubling/halving buckets) when occupancy drifts far from
// one event per bucket, and each resize re-estimates the bucket width from
// the gaps between the earliest pending events (Brown's sampling rule) so a
// dense head cluster spreads across many buckets instead of piling into
// one. Cancellation is validated by the generation-stamped HandleTable;
// tombstones are reclaimed when their bucket position is drained, and a
// resize purges them wholesale.
//
// A bucket is just a head index into the shared EventArena; nodes chain
// through their intrusive `next` links in (time, seq) order. Insert, pop,
// and resize relink indices without moving nodes, so the steady-state event
// loop performs no allocation (the old std::list backend allocated a list
// node per event).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/assert.h"
#include "sim/scheduler.h"
#include "sim/units.h"

namespace aeq::sim {

class CalendarQueue final : public EventScheduler {
 public:
  explicit CalendarQueue(Time initial_bucket_width = 1 * kUsec,
                         std::size_t initial_buckets = 256);

  EventId schedule(Time t, Handler handler,
                   std::uint16_t rank = kTieRankDefault) override;
  bool cancel(EventId id) override;
  Popped pop() override;
  bool pop_if_at_most(Time t_limit, Popped& out) override;
  void reserve_events(std::size_t n) override;

  bool empty() const override { return live_ == 0; }
  std::size_t size() const override { return live_; }
  Time next_time() override;  // not const: may compact tombstones

  std::size_t num_buckets() const { return buckets_.size(); }

 private:
  // Slot index = which `width_`-wide window an event belongs to. Window
  // membership during the cursor scan and bucket placement both derive from
  // this one expression: using separate float arithmetic for the two (as a
  // textbook `current_ + width_` rolling window does) lets truncation in
  // t / width_ land an event one slot below the window that the rolling sum
  // says should contain it, and the scan then skips it as "future rotation"
  // on every pass — it only resurfaces, late and out of order, via the
  // sparse-jump fallback once the calendar drains.
  std::uint64_t slot_of(Time t) const {
    return static_cast<std::uint64_t>(t / width_);
  }
  std::size_t bucket_of(Time t) const {
    return static_cast<std::size_t>(slot_of(t) % buckets_.size());
  }
  // Chains the arena node `index` into its bucket in (t, seq) order.
  void insert(std::uint32_t index);
  // Destroys a cancelled node's callback and reclaims its handle slot.
  void discard_tombstone(std::uint32_t index);
  void maybe_resize();
  void resize(std::size_t new_buckets);
  Time estimate_width(const std::vector<std::uint32_t>& old_heads);
  // Advances cursor_ to the bucket holding the earliest event; returns the
  // node's index (unlinked from its bucket, handle still held) — the core
  // calendar scan.
  std::uint32_t take_earliest();

  std::vector<std::uint32_t> buckets_;  // head node index, kNil when empty
  // Scratch storage reused across resizes (bucket layout swap and the
  // width-estimation sample): capacity persists, so steady-state resizes
  // allocate only when the calendar outgrows every previous record.
  std::vector<std::uint32_t> scratch_buckets_;
  std::vector<Time> scratch_times_;
  EventArena arena_;
  Time width_;
  std::uint64_t slot_ = 0;  // slot index of the cursor bucket's window
  Time floor_time_ = 0.0;   // last popped time: no event may precede it
  std::size_t cursor_ = 0;  // bucket being drained
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  HandleTable handles_;
  // Last popped (time, seq), consulted only by the AEQ_AUDIT build's
  // pop-order check: both backends promise strictly increasing order.
  Time last_popped_t_ = -1.0;
  std::uint64_t last_popped_seq_ = 0;
};

}  // namespace aeq::sim
