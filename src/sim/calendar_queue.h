// Calendar queue (Brown 1988): an O(1)-amortized event scheduler for
// workloads whose event horizon is short and dense — exactly a packet
// simulator's profile. Offered as an alternative to the binary-heap
// EventQueue with the same interface; the micro benchmarks compare both.
//
// Buckets cover `bucket_width` of simulated time each and wrap around a
// ring of `num_buckets`; events further than one rotation ahead sit in an
// overflow list that is consulted lazily. The structure resizes itself
// (doubling/halving buckets) when occupancy drifts far from one event per
// bucket, the classic heuristic.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_set>
#include <vector>

#include "sim/assert.h"
#include "sim/event_queue.h"
#include "sim/units.h"

namespace aeq::sim {

class CalendarQueue {
 public:
  using Handler = std::function<void()>;

  explicit CalendarQueue(Time initial_bucket_width = 1 * kUsec,
                         std::size_t initial_buckets = 256);

  EventId schedule(Time t, Handler handler);
  bool cancel(EventId id);

  struct Popped {
    Time time;
    Handler handler;
  };
  Popped pop();

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }
  Time next_time();  // not const: may need to scan forward

  std::size_t num_buckets() const { return buckets_.size(); }

 private:
  struct Node {
    Time t;
    std::uint64_t seq;
    Handler handler;
  };

  std::size_t bucket_of(Time t) const {
    return static_cast<std::size_t>(t / width_) % buckets_.size();
  }
  void insert(Node node);
  void maybe_resize();
  void resize(std::size_t new_buckets, Time new_width);
  // Advances cursor_ to the bucket holding the earliest event; returns the
  // node (removed) — the core calendar scan.
  Node take_earliest();

  std::vector<std::list<Node>> buckets_;
  Time width_;
  Time current_ = 0.0;      // lower edge of the cursor bucket's epoch
  std::size_t cursor_ = 0;  // bucket being drained
  std::size_t live_ = 0;
  std::uint64_t next_seq_ = 1;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace aeq::sim
