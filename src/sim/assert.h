// Lightweight contract-checking macros used across the library.
//
// AEQ_ASSERT is active in all build types (the simulator is a research tool:
// a silently-corrupted run is worse than an abort). Use AEQ_DCHECK for checks
// that are too hot for release builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace aeq::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "AEQ_ASSERT failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace aeq::detail

#define AEQ_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) ::aeq::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define AEQ_ASSERT_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr))                                                       \
      ::aeq::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

#ifdef NDEBUG
#define AEQ_DCHECK(expr) ((void)0)
#else
#define AEQ_DCHECK(expr) AEQ_ASSERT(expr)
#endif
