// Lightweight contract-checking macros used across the library.
//
// AEQ_ASSERT is active in all build types (the simulator is a research tool:
// a silently-corrupted run is worse than an abort). Use AEQ_DCHECK for checks
// that are too hot for release builds.
//
// AEQ_CHECK_EQ/NE/LE/LT/GE/GT compare two operands and, on failure, print
// both operand values plus the current simulated time and (when running
// inside the audit registry, src/audit/) the name of the failing invariant
// check. Prefer them over AEQ_ASSERT(a == b): the extra context turns "an
// assert fired somewhere in a 10-second run" into an actionable report.
//
// The AEQ_AUDIT compile flag (CMake option -DAEQ_AUDIT=ON) additionally
// enables hot-path invariant hooks wrapped in AEQ_AUDIT_ONLY(...) — e.g.
// per-event scheduler monotonicity and per-update AIMD step-direction
// checks — which are too frequent to keep in ordinary builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <type_traits>

#ifdef AEQ_AUDIT
#define AEQ_AUDIT_ENABLED 1
#else
#define AEQ_AUDIT_ENABLED 0
#endif

// Expands its arguments only in AEQ_AUDIT builds. Use for hot-path checks
// (and the bookkeeping they need) that would be measurable overhead in
// ordinary runs.
#if AEQ_AUDIT_ENABLED
#define AEQ_AUDIT_ONLY(...) __VA_ARGS__
#else
#define AEQ_AUDIT_ONLY(...)
#endif

namespace aeq::detail {

// Simulated time of the event being dispatched on this thread, maintained by
// sim::Simulator so assertion failures can report *when* they happened.
// Negative while no simulator is running.
inline thread_local double g_sim_now = -1.0;

// Name of the audit-registry check currently executing on this thread
// ("component/check", see audit::Auditor::run_all); null outside the
// registry. Lets AEQ_CHECK_* failures name the violated invariant without
// every check closure threading a label through.
inline thread_local const char* g_audit_check = nullptr;

// Last-gasp hook invoked (once) before an AEQ_ASSERT / AEQ_CHECK_* failure
// aborts the process. The experiment harness points this at the flight
// recorder (obs::FlightRecorder) so an audit-invariant violation still dumps
// the recent event window to disk before the abort. Thread-local because
// parallel sweeps run one experiment per worker thread; the hook is cleared
// before it is invoked so a failure inside the dump itself cannot recurse.
inline thread_local void (*g_failure_sink)(void*) = nullptr;
inline thread_local void* g_failure_sink_arg = nullptr;

inline void invoke_failure_sink() {
  if (g_failure_sink == nullptr) return;
  auto* hook = g_failure_sink;
  void* arg = g_failure_sink_arg;
  g_failure_sink = nullptr;
  g_failure_sink_arg = nullptr;
  hook(arg);
}

inline void print_failure_context() {
  if (g_sim_now >= 0.0) {
    std::fprintf(stderr, " [t=%.9gs]", g_sim_now);
  }
  if (g_audit_check != nullptr) {
    std::fprintf(stderr, " [audit check: %s]", g_audit_check);
  }
}

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "AEQ_ASSERT failed: %s at %s:%d", expr, file, line);
  print_failure_context();
  std::fprintf(stderr, "%s%s\n", msg[0] ? " — " : "", msg);
  invoke_failure_sink();
  std::abort();
}

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& lhs,
                                    const std::string& rhs, const char* msg) {
  std::fprintf(stderr, "AEQ_CHECK failed: %s (%s vs %s) at %s:%d",
               expr, lhs.c_str(), rhs.c_str(), file, line);
  print_failure_context();
  std::fprintf(stderr, "%s%s\n", msg[0] ? " — " : "", msg);
  invoke_failure_sink();
  std::abort();
}

// Renders an operand for a failure report. Arithmetic types are promoted so
// char-sized integers (e.g. QoSLevel) print as numbers, not glyphs.
template <typename T>
std::string operand_repr(const T& value) {
  std::ostringstream os;
  if constexpr (std::is_arithmetic_v<std::decay_t<T>>) {
    os << +value;
  } else {
    os << value;
  }
  return os.str();
}

}  // namespace aeq::detail

#define AEQ_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr)) ::aeq::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define AEQ_ASSERT_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr))                                                       \
      ::aeq::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));    \
  } while (0)

#ifdef NDEBUG
#define AEQ_DCHECK(expr) ((void)0)
#define AEQ_DCHECK_MSG(expr, msg) ((void)0)
#else
#define AEQ_DCHECK(expr) AEQ_ASSERT(expr)
#define AEQ_DCHECK_MSG(expr, msg) AEQ_ASSERT_MSG(expr, msg)
#endif

// Implementation detail shared by the comparison checks. Operands are
// evaluated exactly once; the formatting path is cold (failure only).
#define AEQ_CHECK_OP_(op, a, b, msg)                                       \
  do {                                                                     \
    auto&& aeq_chk_lhs_ = (a);                                             \
    auto&& aeq_chk_rhs_ = (b);                                             \
    if (!(aeq_chk_lhs_ op aeq_chk_rhs_)) {                                 \
      ::aeq::detail::check_fail(#a " " #op " " #b, __FILE__, __LINE__,     \
                                ::aeq::detail::operand_repr(aeq_chk_lhs_), \
                                ::aeq::detail::operand_repr(aeq_chk_rhs_), \
                                (msg));                                    \
    }                                                                      \
  } while (0)

#define AEQ_CHECK_EQ(a, b) AEQ_CHECK_OP_(==, a, b, "")
#define AEQ_CHECK_NE(a, b) AEQ_CHECK_OP_(!=, a, b, "")
#define AEQ_CHECK_LE(a, b) AEQ_CHECK_OP_(<=, a, b, "")
#define AEQ_CHECK_LT(a, b) AEQ_CHECK_OP_(<, a, b, "")
#define AEQ_CHECK_GE(a, b) AEQ_CHECK_OP_(>=, a, b, "")
#define AEQ_CHECK_GT(a, b) AEQ_CHECK_OP_(>, a, b, "")

#define AEQ_CHECK_EQ_MSG(a, b, msg) AEQ_CHECK_OP_(==, a, b, msg)
#define AEQ_CHECK_NE_MSG(a, b, msg) AEQ_CHECK_OP_(!=, a, b, msg)
#define AEQ_CHECK_LE_MSG(a, b, msg) AEQ_CHECK_OP_(<=, a, b, msg)
#define AEQ_CHECK_LT_MSG(a, b, msg) AEQ_CHECK_OP_(<, a, b, msg)
#define AEQ_CHECK_GE_MSG(a, b, msg) AEQ_CHECK_OP_(>=, a, b, msg)
#define AEQ_CHECK_GT_MSG(a, b, msg) AEQ_CHECK_OP_(>, a, b, msg)
