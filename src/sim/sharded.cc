#include "sim/sharded.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/assert.h"

namespace aeq::sim {

ShardedSimulator::ShardedSimulator(std::size_t num_shards,
                                   SchedulerBackend backend, Time lookahead)
    : lookahead_(lookahead) {
  AEQ_CHECK_GE(num_shards, 1u);
  AEQ_ASSERT_MSG(lookahead_ > 0.0,
                 "conservative sharding needs a positive lookahead (a "
                 "zero-latency cross-shard link would serialize the run)");
  shards_.reserve(num_shards);
  for (std::size_t k = 0; k < num_shards; ++k) {
    shards_.push_back(std::make_unique<Simulator>(backend));
  }
  workers_.reserve(num_shards);
  for (std::size_t k = 0; k < num_shards; ++k) {
    workers_.emplace_back([this, k] { worker_loop(k); });
  }
}

ShardedSimulator::~ShardedSimulator() {
  {
    const util::MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardedSimulator::worker_loop(std::size_t k) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Time target = 0.0;
    {
      const util::MutexLock lock(mutex_);
      while (!shutdown_ && epoch_ == seen_epoch) work_cv_.wait(mutex_);
      if (shutdown_) return;
      seen_epoch = epoch_;
      target = target_;
    }
    shards_[k]->run_until(target);
    {
      const util::MutexLock lock(mutex_);
      --running_;
    }
    done_cv_.notify_one();
  }
}

void ShardedSimulator::parallel_window(Time horizon) {
  {
    const util::MutexLock lock(mutex_);
    target_ = horizon;
    running_ = shards_.size();
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    const util::MutexLock lock(mutex_);
    while (running_ != 0) done_cv_.wait(mutex_);
  }
  ++windows_;
}

void ShardedSimulator::run_until(Time t_end) {
  AEQ_CHECK_GE(t_end, now_);
  for (;;) {
    // Safe horizon: the earliest pending event anywhere, plus lookahead.
    // Any cross-shard message produced inside the window lands at least
    // `lookahead_` after its producing event, hence at or beyond the
    // horizon — so no shard can receive a message from its own past.
    Time earliest = std::numeric_limits<Time>::infinity();
    for (auto& shard : shards_) {
      earliest = std::min(earliest, shard->next_event_time());
    }
    if (earliest > t_end) {
      // Nothing left on this side of t_end: just advance the clocks.
      for (auto& shard : shards_) shard->run_until(t_end);
      now_ = t_end;
      return;
    }
    // Back the horizon off by a few ulps: arrival timestamps are computed
    // by the producing shard as tx_start + (ser + delay) — the serial
    // executive's exact expression, kept bit-identical on purpose — and
    // that sum can round up to ~3 ulps below the infinitely-precise
    // earliest + lookahead. The margin is ~1e-16 relative, ten orders of
    // magnitude under any real lookahead, so windows still make progress.
    Time safe = earliest + lookahead_;
    safe -= 4.0 * std::abs(safe) * std::numeric_limits<Time>::epsilon();
    AEQ_DCHECK(safe > earliest);
    const Time horizon = std::min(t_end, safe);
    parallel_window(horizon);
    now_ = horizon;
    // Barrier: hand cross-shard mailboxes over while every worker is
    // parked. The callback schedules arrivals >= horizon into the
    // destination shards, which the next window (or iteration) picks up.
    if (barrier_callback_) barrier_callback_();
    if (now_ >= t_end) return;
  }
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->events_processed();
  return total;
}

std::size_t ShardedSimulator::pending_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_events();
  return total;
}

}  // namespace aeq::sim
