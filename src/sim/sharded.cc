#include "sim/sharded.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/prof/profiler.h"
#include "sim/assert.h"

namespace aeq::sim {

namespace {

// Log2 bucket of a window/lookahead ratio in 1/16ths (bucket 4 == one
// lookahead exactly); saturates at the histogram edge.
std::size_t window_bucket(double ratio) {
  if (!(ratio > 0.0)) return 0;
  auto scaled = static_cast<std::uint64_t>(ratio * 16.0);
  std::size_t bucket = 0;
  while (scaled > 1 && bucket + 1 < ExecutiveStats::kWindowHistBuckets) {
    scaled >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

double ExecutiveStats::load_imbalance() const {
  std::uint64_t max_busy = 0;
  std::uint64_t sum_busy = 0;
  for (const ShardExecStats& shard : shards) {
    max_busy = std::max(max_busy, shard.busy_cycles);
    sum_busy += shard.busy_cycles;
  }
  if (sum_busy == 0 || shards.empty()) return 0.0;
  const double mean = static_cast<double>(sum_busy) /
                      static_cast<double>(shards.size());
  return static_cast<double>(max_busy) / mean;
}

double ExecutiveStats::barrier_stall_share() const {
  const std::uint64_t busy = total_busy_cycles();
  const std::uint64_t wait = total_wait_cycles();
  if (busy + wait == 0) return 0.0;
  return static_cast<double>(wait) / static_cast<double>(busy + wait);
}

ShardedSimulator::ShardedSimulator(std::size_t num_shards,
                                   SchedulerBackend backend, Time lookahead)
    : lookahead_(lookahead) {
  AEQ_CHECK_GE(num_shards, 1u);
  AEQ_ASSERT_MSG(lookahead_ > 0.0,
                 "conservative sharding needs a positive lookahead (a "
                 "zero-latency cross-shard link would serialize the run)");
  shards_.reserve(num_shards);
  for (std::size_t k = 0; k < num_shards; ++k) {
    shards_.push_back(std::make_unique<Simulator>(backend));
  }
  {
    const util::MutexLock lock(mutex_);
    shard_exec_.resize(num_shards);
  }
  workers_.reserve(num_shards);
  for (std::size_t k = 0; k < num_shards; ++k) {
    workers_.emplace_back([this, k] { worker_loop(k); });
  }
}

void ShardedSimulator::set_profiling(
    std::vector<obs::prof::Collector*> collectors) {
  AEQ_ASSERT_MSG(collectors.empty() || collectors.size() == shards_.size(),
                 "set_profiling needs one collector per shard (or none)");
  const util::MutexLock lock(mutex_);
  collectors_ = std::move(collectors);
  profiling_ = !collectors_.empty();
  prof_enabled_ = profiling_;
}

ExecutiveStats ShardedSimulator::executive_stats() {
  ExecutiveStats stats;
  stats.windows = windows_;
  stats.backoff_windows = backoff_windows_;
  stats.barrier_cycles = barrier_cycles_;
  stats.window_hist = window_hist_;
  {
    const util::MutexLock lock(mutex_);
    stats.shards = shard_exec_;
  }
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    stats.shards[k].events = shards_[k]->events_processed();
  }
  return stats;
}

ShardedSimulator::~ShardedSimulator() {
  {
    const util::MutexLock lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ShardedSimulator::worker_loop(std::size_t k) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Time target = 0.0;
    bool profiling = false;
    obs::prof::Collector* collector = nullptr;
    {
      const util::MutexLock lock(mutex_);
      // Wait-time accounting: only when profiling was on both before and
      // after the park, so enabling it mid-park doesn't charge pre-enable
      // idle time to the profile.
      const bool was_profiling = profiling_;
      const obs::prof::Cycles wait_start =
          was_profiling ? obs::prof::cycles_now() : 0;
      while (!shutdown_ && epoch_ == seen_epoch) work_cv_.wait(mutex_);
      if (was_profiling && profiling_) {
        const obs::prof::Cycles wait_end = obs::prof::cycles_now();
        shard_exec_[k].wait_cycles +=
            wait_end > wait_start ? wait_end - wait_start : 0;
      }
      if (shutdown_) return;
      seen_epoch = epoch_;
      target = target_;
      profiling = profiling_;
      if (profiling) collector = collectors_[k];
    }
    obs::prof::install(collector);
    const obs::prof::Cycles busy_start =
        profiling ? obs::prof::cycles_now() : 0;
    shards_[k]->run_until(target);
    const obs::prof::Cycles busy_end =
        profiling ? obs::prof::cycles_now() : 0;
    obs::prof::install(nullptr);
    {
      const util::MutexLock lock(mutex_);
      if (profiling) {
        shard_exec_[k].busy_cycles +=
            busy_end > busy_start ? busy_end - busy_start : 0;
      }
      --running_;
    }
    done_cv_.notify_one();
  }
}

void ShardedSimulator::parallel_window(Time horizon) {
  {
    const util::MutexLock lock(mutex_);
    target_ = horizon;
    running_ = shards_.size();
    ++epoch_;
  }
  work_cv_.notify_all();
  {
    const util::MutexLock lock(mutex_);
    while (running_ != 0) done_cv_.wait(mutex_);
  }
  ++windows_;
}

void ShardedSimulator::run_until(Time t_end) {
  AEQ_CHECK_GE(t_end, now_);
  for (;;) {
    // Safe horizon: the earliest pending event anywhere, plus lookahead.
    // Any cross-shard message produced inside the window lands at least
    // `lookahead_` after its producing event, hence at or beyond the
    // horizon — so no shard can receive a message from its own past.
    Time earliest = std::numeric_limits<Time>::infinity();
    for (auto& shard : shards_) {
      earliest = std::min(earliest, shard->next_event_time());
    }
    if (earliest > t_end) {
      // Nothing left on this side of t_end: just advance the clocks.
      for (auto& shard : shards_) shard->run_until(t_end);
      now_ = t_end;
      return;
    }
    // Back the horizon off by a few ulps: arrival timestamps are computed
    // by the producing shard as tx_start + (ser + delay) — the serial
    // executive's exact expression, kept bit-identical on purpose — and
    // that sum can round up to ~3 ulps below the infinitely-precise
    // earliest + lookahead. The margin is ~1e-16 relative, ten orders of
    // magnitude under any real lookahead, so windows still make progress.
    Time safe = earliest + lookahead_;
    safe -= 4.0 * std::abs(safe) * std::numeric_limits<Time>::epsilon();
    AEQ_DCHECK(safe > earliest);
    const Time horizon = std::min(t_end, safe);
    // Window introspection (deterministic: simulated time only). A window
    // whose horizon is the backed-off safe bound — not the run target —
    // was lookahead-limited; the histogram tracks how much of the
    // theoretical lookahead grain each window achieved.
    if (safe < t_end) ++backoff_windows_;
    ++window_hist_[window_bucket((horizon - now_) / lookahead_)];
    parallel_window(horizon);
    now_ = horizon;
    // Barrier: hand cross-shard mailboxes over while every worker is
    // parked. The callback schedules arrivals >= horizon into the
    // destination shards, which the next window (or iteration) picks up.
    if (barrier_callback_) {
      if (prof_enabled_) {
        const obs::prof::Cycles barrier_start = obs::prof::cycles_now();
        barrier_callback_();
        const obs::prof::Cycles barrier_end = obs::prof::cycles_now();
        barrier_cycles_ +=
            barrier_end > barrier_start ? barrier_end - barrier_start : 0;
      } else {
        barrier_callback_();
      }
    }
    if (now_ >= t_end) return;
  }
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->events_processed();
  return total;
}

std::size_t ShardedSimulator::pending_events() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_events();
  return total;
}

}  // namespace aeq::sim
