#include "sim/scheduler.h"

#include "sim/calendar_queue.h"
#include "sim/event_queue.h"

namespace aeq::sim {

const char* backend_name(SchedulerBackend backend) {
  switch (backend) {
    case SchedulerBackend::kHeap:
      return "heap";
    case SchedulerBackend::kCalendar:
      return "calendar";
  }
  return "unknown";
}

std::unique_ptr<EventScheduler> make_scheduler(SchedulerBackend backend) {
  if (backend == SchedulerBackend::kCalendar) {
    return std::make_unique<CalendarQueue>();
  }
  return std::make_unique<EventQueue>();
}

}  // namespace aeq::sim
