#include "tools/flags.h"

namespace aeq::tools {

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      error_ = "expected --flag, got '" + arg + "'";
      return false;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
  return true;
}

std::string Flags::get(const std::string& name,
                       const std::string& fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

double Flags::get_double(const std::string& name, double fallback) const {
  const std::string value = get(name);
  if (value.empty()) return fallback;
  try {
    return std::stod(value);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::int64_t Flags::get_int(const std::string& name,
                            std::int64_t fallback) const {
  const std::string value = get(name);
  if (value.empty()) return fallback;
  try {
    return std::stoll(value);
  } catch (const std::exception&) {
    return fallback;
  }
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const std::string value = get(name);
  if (value.empty()) return fallback;
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

std::vector<double> Flags::get_list(const std::string& name,
                                    std::vector<double> fallback) const {
  const std::string value = get(name);
  if (value.empty()) return fallback;
  std::vector<double> out;
  std::stringstream stream(value);
  std::string token;
  while (std::getline(stream, token, ',')) {
    try {
      out.push_back(std::stod(token));
    } catch (const std::exception&) {
      return fallback;
    }
  }
  return out.empty() ? fallback : out;
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace aeq::tools
