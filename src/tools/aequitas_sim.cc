// aequitas_sim — the operator-facing CLI simulator (paper §6.1: "our open
// source simulator also serves as a tool for datacenter operators to help
// define the admissible region and set the right SLOs").
//
// Examples:
//   # 33-host all-to-all with Aequitas, 32KB RPCs, SLO 25/50us:
//   aequitas_sim --hosts=33 --mix=0.6,0.3,0.1 --slo-us=25,50 --rpc-kb=32
//
//   # Baseline (no admission control) sweep point with production sizes:
//   aequitas_sim --aequitas=off --sizes=production --duration-ms=20
//
//   # Theory only: print the admissible region for the fabric envelope:
//   aequitas_sim --theory --phi=4 --mu=0.8 --rho=1.4
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "analysis/admissible.h"
#include "runner/experiment.h"
#include "stats/export.h"
#include "tools/flags.h"
#include "workload/trace.h"

namespace {

using namespace aeq;

int run_theory(const tools::Flags& flags) {
  analysis::TwoQosParams params{.phi = flags.get_double("phi", 4.0),
                                .mu = flags.get_double("mu", 0.8),
                                .rho = flags.get_double("rho", 1.4)};
  std::printf("WFQ delay bounds, phi=%.1f mu=%.2f rho=%.2f\n", params.phi,
              params.mu, params.rho);
  std::printf("%-14s %-14s %-14s\n", "QoSh-share(%)", "Delay(QoSh)",
              "Delay(QoSl)");
  for (int pct = 5; pct <= 95; pct += 5) {
    const double x = pct / 100.0;
    std::printf("%-14d %-14.4f %-14.4f\n", pct,
                analysis::delay_high(params, x),
                analysis::delay_low(params, x));
  }
  std::printf("\nadmissible region edge: QoSh-share <= %.1f%%\n",
              100 * analysis::max_admissible_share(params));
  for (double slo : {0.01, 0.05, 0.10, 0.20}) {
    std::printf("max share within normalized delay SLO %.2f: %.1f%%\n", slo,
                100 * analysis::max_share_within_slo(params, slo));
  }
  return 0;
}

void print_usage() {
  std::printf(
      "aequitas_sim — packet-level Aequitas simulator\n\n"
      "workload:\n"
      "  --hosts=N            number of hosts (star topology; default 33)\n"
      "  --load=F             average per-host load, fraction of 100G "
      "(default 0.8)\n"
      "  --burst=F            burst load rho (default 1.4)\n"
      "  --mix=H,M,L          input QoS mix byte shares (default "
      "0.6,0.3,0.1)\n"
      "  --rpc-kb=N           fixed RPC size in KB (default 32)\n"
      "  --sizes=production   use production-shaped per-class sizes\n"
      "  --trace=FILE         replay an RPC trace CSV instead\n"
      "policy:\n"
      "  --aequitas=on|off    admission control (default on)\n"
      "  --slo-us=H,M         absolute SLO per QoS for the fixed RPC size "
      "(default 25,50)\n"
      "  --slo-us-per-mtu=H,M normalized SLOs (overrides --slo-us)\n"
      "  --alpha=F --beta=F   AIMD parameters (default 0.01/0.01)\n"
      "  --weights=A,B,C      WFQ weights (default 8,4,1)\n"
      "  --scheduler=wfq|dwrr|spq|fifo\n"
      "  --cc=swift|dctcp|fixed\n"
      "run:\n"
      "  --warmup-ms=N --duration-ms=N (default 10/15)\n"
      "  --seed=N\n"
      "  --csv=FILE           also dump per-QoS latency quantiles as CSV\n"
      "  --theory             print delay bounds instead of simulating "
      "(--phi --mu --rho)\n");
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags;
  if (!flags.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n", flags.error().c_str());
    return 2;
  }
  if (flags.get_bool("help", false)) {
    print_usage();
    return 0;
  }
  if (flags.get_bool("theory", false)) return run_theory(flags);

  runner::ExperimentConfig config;
  config.num_hosts = static_cast<std::size_t>(flags.get_int("hosts", 33));
  config.num_qos = 3;
  config.wfq_weights = flags.get_list("weights", {8.0, 4.0, 1.0});
  config.num_qos = config.wfq_weights.size();
  config.enable_aequitas = flags.get_bool("aequitas", true);
  config.alpha = flags.get_double("alpha", 0.01);
  config.beta_per_mtu = flags.get_double("beta", 0.01);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  const std::string scheduler = flags.get("scheduler", "wfq");
  if (scheduler == "dwrr") {
    config.scheduler = net::SchedulerType::kDwrr;
  } else if (scheduler == "spq") {
    config.scheduler = net::SchedulerType::kSpq;
  } else if (scheduler == "fifo") {
    config.scheduler = net::SchedulerType::kFifo;
  }
  const std::string cc = flags.get("cc", "swift");
  if (cc == "dctcp") {
    config.cc_kind = runner::ExperimentConfig::CcKind::kDctcp;
  } else if (cc == "fixed") {
    config.cc_kind = runner::ExperimentConfig::CcKind::kFixedWindow;
  }

  const double rpc_kb = flags.get_double("rpc-kb", 32.0);
  const double size_mtus =
      std::max(1.0, rpc_kb * 1024 / config.transport.mtu_bytes);
  std::vector<double> slo_per_mtu =
      flags.get_list("slo-us-per-mtu", {});
  if (slo_per_mtu.empty()) {
    const auto slo_abs = flags.get_list("slo-us", {25.0, 50.0});
    for (double s : slo_abs) slo_per_mtu.push_back(s / size_mtus);
  }
  std::vector<sim::Time> targets;
  for (std::size_t q = 0; q + 1 < config.num_qos; ++q) {
    targets.push_back(
        (q < slo_per_mtu.size() ? slo_per_mtu[q] : slo_per_mtu.back()) *
        sim::kUsec);
  }
  targets.push_back(0.0);  // scavenger
  config.slo = rpc::SloConfig::make(targets, 99.9);

  runner::Experiment experiment(config);

  const sim::Time warmup = flags.get_double("warmup-ms", 10.0) * sim::kMsec;
  const sim::Time duration =
      flags.get_double("duration-ms", 15.0) * sim::kMsec;

  const std::string trace_path = flags.get("trace");
  if (!trace_path.empty()) {
    std::ifstream in(trace_path);
    if (!in) {
      std::fprintf(stderr, "error: cannot open trace '%s'\n",
                   trace_path.c_str());
      return 2;
    }
    const auto parsed = workload::parse_trace_csv(in);
    for (const std::string& err : parsed.errors) {
      std::fprintf(stderr, "trace: %s\n", err.c_str());
    }
    std::vector<rpc::RpcStack*> stacks;
    for (std::size_t h = 0; h < config.num_hosts; ++h) {
      stacks.push_back(&experiment.stack(static_cast<net::HostId>(h)));
    }
    const auto stats = workload::replay_trace(experiment.simulator(),
                                              parsed.records, stacks);
    std::printf("trace: %zu RPCs scheduled, %zu skipped\n", stats.scheduled,
                stats.skipped);
  } else {
    const auto mix = flags.get_list("mix", {0.6, 0.3, 0.1});
    const bool production = flags.get("sizes") == "production";
    workload::GeneratorConfig gen_template;
    const double load = flags.get_double("load", 0.8);
    const double burst = flags.get_double("burst", 1.4);
    gen_template.burst_over_avg = std::max(1.0, burst / load);
    const workload::SizeDistribution* fixed = nullptr;
    if (!production) {
      fixed = experiment.own(std::make_unique<workload::FixedSize>(
          static_cast<std::uint64_t>(rpc_kb * 1024)));
    }
    for (std::size_t h = 0; h < config.num_hosts; ++h) {
      workload::GeneratorConfig gen = gen_template;
      for (std::size_t c = 0; c < 3 && c < mix.size(); ++c) {
        workload::ClassLoad cls;
        cls.priority = static_cast<rpc::Priority>(c);
        cls.byte_rate = mix[c] * load * config.link_rate;
        cls.sizes = production
                        ? experiment.own(workload::production_size_dist(
                              static_cast<rpc::Priority>(c)))
                        : fixed;
        gen.classes.push_back(cls);
      }
      experiment.add_generator(static_cast<net::HostId>(h), gen);
    }
  }

  experiment.run(warmup, duration);

  const auto& metrics = experiment.metrics();
  std::printf("\n%zu hosts, %s, %s, aequitas=%s — warmup %.0fms + %.0fms\n",
              config.num_hosts, scheduler.c_str(), cc.c_str(),
              config.enable_aequitas ? "on" : "off", warmup / sim::kMsec,
              duration / sim::kMsec);
  std::printf("%-8s %-12s %-12s %-14s %-12s %-12s %-12s\n", "QoS",
              "mean(us)", "p99(us)", "p99.9(us)", "share(%)", "downgr.",
              "meetSLO(%)");
  for (std::size_t q = 0; q < config.num_qos; ++q) {
    const auto qos = static_cast<net::QoSLevel>(q);
    const auto& rnl = metrics.rnl_by_run_qos(qos);
    std::printf("%-8zu %-12.1f %-12.1f %-14.1f %-12.1f %-12llu %-12.1f\n",
                q, rnl.mean() / sim::kUsec, rnl.p99() / sim::kUsec,
                rnl.p999() / sim::kUsec, 100 * metrics.admitted_share(qos),
                static_cast<unsigned long long>(metrics.downgraded(qos)),
                100 * metrics.slo_met_fraction(qos));
  }
  std::printf("completed %llu RPCs; mean downlink utilization %.1f%%\n",
              static_cast<unsigned long long>(metrics.total_completed()),
              100 * experiment.mean_downlink_utilization());

  const std::string csv_path = flags.get("csv");
  if (!csv_path.empty()) {
    std::ofstream out(csv_path);
    for (std::size_t q = 0; q < config.num_qos; ++q) {
      out << "# qos " << q << "\n";
      stats::write_quantiles_csv(
          out, metrics.rnl_by_run_qos(static_cast<net::QoSLevel>(q)));
    }
    std::printf("quantiles written to %s\n", csv_path.c_str());
  }

  for (const std::string& name : flags.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s (see --help)\n",
                 name.c_str());
  }
  return 0;
}
