// Minimal command-line flag parsing for the CLI tools: --name=value or
// --name value; typed getters with defaults; collects unknown-flag errors.
#pragma once

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace aeq::tools {

class Flags {
 public:
  // Parses argv; returns false (and fills error()) on malformed input.
  bool parse(int argc, char** argv);

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  double get_double(const std::string& name, double fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  // Comma-separated list of doubles, e.g. --mix=0.5,0.3,0.2.
  std::vector<double> get_list(const std::string& name,
                               std::vector<double> fallback) const;

  // Names seen on the command line but never queried — typo detection.
  std::vector<std::string> unused() const;

  const std::string& error() const { return error_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::string error_;
};

}  // namespace aeq::tools
