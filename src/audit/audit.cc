#include "audit/audit.h"

#include <algorithm>
#include <utility>

#include "obs/prof/profiler.h"

namespace aeq::audit {

void Auditor::add_check(std::string component, std::string name,
                        CheckFn fn) {
  AEQ_ASSERT_MSG(fn != nullptr, "audit check needs a body");
  Check check;
  check.qualified = component + "/" + name;
  check.component = std::move(component);
  check.name = std::move(name);
  check.fn = std::move(fn);
  checks_.push_back(std::move(check));
}

void Auditor::run_all() {
  const obs::prof::ProfRegion prof(obs::prof::Region::kAudit);
  for (Check& check : checks_) {
    // Expose the check's name to AEQ_CHECK_* failure reports; the string
    // outlives the call (owned by checks_, stable across push_backs because
    // run_all never registers).
    detail::g_audit_check = check.qualified.c_str();
    check.fn();
    ++check.evaluations;
  }
  detail::g_audit_check = nullptr;
  ++passes_;
}

Report Auditor::report() const {
  Report report;
  report.entries.reserve(checks_.size());
  for (const Check& check : checks_) {
    report.entries.push_back(
        Report::Entry{check.component, check.name, check.evaluations});
    report.total_evaluations += check.evaluations;
  }
  // Deterministic report order by contract: sorted by (component, name),
  // independent of registration order, so serialized reports diff cleanly
  // across code motion that re-orders component construction. stable_sort
  // keeps duplicate registrations in registration order.
  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const Report::Entry& a, const Report::Entry& b) {
                     if (a.component != b.component)
                       return a.component < b.component;
                     return a.name < b.name;
                   });
  return report;
}

std::size_t Report::num_components() const {
  std::vector<std::string> names;
  names.reserve(entries.size());
  for (const Entry& entry : entries) names.push_back(entry.component);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names.size();
}

void Report::write(std::ostream& os) const {
  os << "audit report: " << entries.size() << " checks over "
     << num_components() << " components, " << total_evaluations
     << " evaluations, 0 violations\n";
  for (const Entry& entry : entries) {
    os << "  " << entry.component << "/" << entry.name << ": "
       << entry.evaluations << " evaluations\n";
  }
}

}  // namespace aeq::audit
