// Invariant-audit registry (the machine-checked safety net for the paper's
// accounting-sensitive claims).
//
// Aequitas' WFQ delay bounds (§4, Appendix B) are derived from virtual-time
// and conservation invariants of the queueing plane; a silent accounting bug
// skews a figure without failing a test. The audit layer makes those
// invariants executable: core components register named checks with an
// Auditor, the experiment harness evaluates the registry periodically during
// a run and once at the end, and any violation aborts loudly through the
// AEQ_CHECK_* macros (sim/assert.h), printing the operand values, the
// simulated time, and the name of the violated check.
//
// Two knobs gate the cost:
//   * runtime: ExperimentConfig::audit decides whether an experiment builds
//     and evaluates a registry at all (cold-path, poll-based checks);
//   * compile time: -DAEQ_AUDIT additionally enables per-event hot-path
//     hooks (AEQ_AUDIT_ONLY in sim/, net/, core/, transport/) and flips the
//     runtime default on (kBuildEnabled).
//
// See src/audit/checks.h for the invariant catalogue and DESIGN.md §8 for
// the mapping from each check to the paper property it guards.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "sim/assert.h"

namespace aeq::audit {

// True when the library was compiled with -DAEQ_AUDIT (CMake option
// AEQ_AUDIT=ON): hot-path hooks are active and runtime auditing defaults on.
inline constexpr bool kBuildEnabled = AEQ_AUDIT_ENABLED != 0;

// End-of-run summary: which invariants were evaluated how often, per
// component. A run that aborts never produces one, so a report with nonzero
// evaluations is itself the "zero violations" statement for CI.
// Entries are sorted by (component, name) — the serialized report is
// independent of check registration order (DESIGN.md §12).
struct Report {
  struct Entry {
    std::string component;
    std::string name;
    std::uint64_t evaluations = 0;
  };
  std::vector<Entry> entries;
  std::uint64_t total_evaluations = 0;

  std::size_t num_components() const;
  void write(std::ostream& os) const;
};

// Registry of named invariant checks. A check is a closure that reads
// component state and asserts its invariants via AEQ_CHECK_*; a violation
// aborts the process (a corrupted run must not produce a figure). The
// Auditor only schedules, counts, and reports.
class Auditor {
 public:
  using CheckFn = std::function<void()>;

  // Registers `fn` as invariant `name` of `component`. The closure must
  // only read the audited component (checks run interleaved with the
  // simulation and must not perturb it).
  void add_check(std::string component, std::string name, CheckFn fn);

  // Evaluates every registered check once, in registration order.
  void run_all();

  std::size_t num_checks() const { return checks_.size(); }

  // Number of completed run_all() sweeps.
  std::uint64_t passes() const { return passes_; }

  Report report() const;

 private:
  struct Check {
    std::string component;
    std::string name;
    std::string qualified;  // "component/name", for failure reports
    CheckFn fn;
    std::uint64_t evaluations = 0;
  };

  std::vector<Check> checks_;
  std::uint64_t passes_ = 0;
};

}  // namespace aeq::audit
