// The invariant catalogue: registration helpers that attach the library's
// machine-checked invariants to an audit::Auditor.
//
// Each helper registers named, read-only closures over one component. The
// catalogue (component/check -> paper property it guards):
//
//   queue/conservation-{packets,bytes}   offered == dequeued + dropped +
//                                        resident, for every discipline
//                                        (FIFO, WFQ, SPQ, DWRR, RED,
//                                        pFabric). Work conservation is the
//                                        ground assumption of the WFQ delay
//                                        bound (paper §4.1, Appendix B).
//   queue/counter-bounds                 enqueued <= offered, dequeued <=
//                                        enqueued, dropped <= offered.
//   queue/class-sums                     per-QoS backlogs and drops sum to
//                                        the queue totals for classful
//                                        disciplines (per-class byte counts
//                                        feed the QoS-mix figures).
//   wfq/tag-order, wfq/virtual-time-monotone
//                                        start/finish-tag ordering and a
//                                        non-decreasing virtual clock — the
//                                        invariants the per-QoS delay bound
//                                        is derived from (§4, Appendix B).
//   pool/conservation, pool/used-within-total
//                                        Dynamic-Threshold shared buffer:
//                                        pool.used equals the sum of member
//                                        backlogs and never exceeds the pool
//                                        (footnote 2's commodity-switch
//                                        buffering model).
//   port/link-conservation               dequeued == delivered + in-flight.
//   port/busy-time-bounded               serialization time fits in [0, now]
//                                        (utilization figures depend on it).
//   switch/routing-conservation          every received packet was offered
//                                        to exactly one egress queue.
//   sim/time-monotone                    the simulated clock never runs
//                                        backwards (scheduler contract,
//                                        identical for heap and calendar
//                                        backends).
//   admission/invariants                 the controller's own invariant
//                                        sweep (for Aequitas: every
//                                        channel's p_admit in
//                                        [p_admit_floor, 1] — the §5.1
//                                        starvation guard and the AIMD
//                                        clamp of Algorithm 1; for the
//                                        ticket pool: non-negative
//                                        in-flight and a clamped limit;
//                                        for the bandit: Q-values inside
//                                        the reward hull; for SWP: pacing
//                                        rate and token bounds).
//   admission/gauge-bounds               every introspection gauge
//                                        (rpc::Gauge) sits inside its
//                                        documented [lo, hi] and is finite
//                                        unless a bound is explicitly
//                                        unbounded.
//   quota/allocation-bounds              per-QoS allocations are non-negative
//                                        and sum to at most the operator
//                                        budget (§5.2: quota cannot
//                                        over-promise the admissible region).
//   transport/flow-invariants            cumulative-ACK stream ordering and
//                                        congestion-window bounds (Swift /
//                                        DCTCP window clamps, §6.1's
//                                        well-functioning-CC assumption).
//
// All closures only read the audited objects, so enabling the audit never
// perturbs the simulation trajectory. Violations abort via AEQ_CHECK_*
// (sim/assert.h) with operand values, sim time, and the check name.
#pragma once

#include <string>
#include <vector>

#include "audit/audit.h"

namespace aeq::core {
class AequitasController;
class QuotaServer;
}  // namespace aeq::core
namespace aeq::net {
class Port;
class QueueDiscipline;
class SharedBufferPool;
class Switch;
class WfqQueue;
}  // namespace aeq::net
namespace aeq::rpc {
class AdmissionController;
}  // namespace aeq::rpc
namespace aeq::sim {
class Simulator;
}  // namespace aeq::sim
namespace aeq::topo {
class Network;
}  // namespace aeq::topo
namespace aeq::transport {
class HostStack;
}  // namespace aeq::transport

namespace aeq::audit {

// Conservation and counter-sanity checks for one queue discipline. When the
// discipline is (or decorates) a WfqQueue, the WFQ tag checks are attached
// too. `num_qos` bounds the per-class sums.
void register_queue_checks(Auditor& auditor, std::string component,
                           const net::QueueDiscipline& queue,
                           std::size_t num_qos);

// WFQ virtual-time/tag invariants (normally attached via
// register_queue_checks; exposed for unit tests).
void register_wfq_checks(Auditor& auditor, std::string component,
                         const net::WfqQueue& queue);

// Shared-buffer conservation over the queues drawing on `pool`.
void register_pool_checks(Auditor& auditor, std::string component,
                          const net::SharedBufferPool& pool,
                          std::vector<const net::QueueDiscipline*> members);

// Link-level conservation and busy-time sanity for one port, plus the queue
// checks for its discipline.
void register_port_checks(Auditor& auditor, std::string component,
                          const net::Port& port, const sim::Simulator& sim,
                          std::size_t num_qos);

// Routing conservation across the switch plus port checks for every egress.
void register_switch_checks(Auditor& auditor, std::string component,
                            const net::Switch& fabric_switch,
                            const sim::Simulator& sim, std::size_t num_qos);

// Clock monotonicity of the simulation executive.
void register_simulator_checks(Auditor& auditor, const sim::Simulator& sim);

// Policy-agnostic admission-controller checks (any rpc::AdmissionController):
//   * invariants    — the controller's own audit_invariants() sweep
//   * gauge-bounds  — every gauge's value sits inside its documented
//                     [lo, hi] (rpc::Gauge), and is finite unless a bound
//                     is explicitly kGaugeUnbounded
void register_admission_checks(Auditor& auditor, std::string component,
                               const rpc::AdmissionController& controller,
                               const sim::Simulator& sim);

// Legacy alias: AIMD state bounds for one Aequitas controller. Forwards to
// register_admission_checks (the concrete type adds nothing anymore).
void register_aequitas_checks(Auditor& auditor, std::string component,
                              const core::AequitasController& controller,
                              const sim::Simulator& sim);

// Quota-server conservation (per-QoS allocation sums within budget).
void register_quota_checks(Auditor& auditor, std::string component,
                           const core::QuotaServer& server);

// Stream-ordering and congestion-window invariants for every flow of a
// host's transport stack.
void register_transport_checks(Auditor& auditor, std::string component,
                               const transport::HostStack& stack);

// Whole-topology sweep: host NIC ports, switches (all egress ports), and
// shared-buffer pool groups. This is what the experiment harness installs.
void register_network_checks(Auditor& auditor, const topo::Network& network,
                             const sim::Simulator& sim, std::size_t num_qos);

}  // namespace aeq::audit
