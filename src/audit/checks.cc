#include "audit/checks.h"

#include <cstdint>
#include <utility>

#include "core/aequitas.h"
#include "core/quota.h"
#include "net/port.h"
#include "net/queue.h"
#include "net/shared_buffer.h"
#include "net/switch.h"
#include "net/wfq.h"
#include "rpc/admission.h"
#include "sim/simulator.h"
#include "topo/network.h"
#include "transport/flow.h"
#include "transport/host_stack.h"

namespace aeq::audit {

void register_queue_checks(Auditor& auditor, std::string component,
                           const net::QueueDiscipline& queue,
                           std::size_t num_qos) {
  auditor.add_check(component, "conservation-packets", [&queue] {
    const net::QueueStats& s = queue.stats();
    AEQ_CHECK_EQ_MSG(
        s.offered_packets,
        s.dequeued_packets + s.dropped_packets + queue.backlog_packets(),
        "queue lost or invented packets");
  });
  auditor.add_check(component, "conservation-bytes", [&queue] {
    const net::QueueStats& s = queue.stats();
    AEQ_CHECK_EQ_MSG(
        s.offered_bytes,
        s.dequeued_bytes + s.dropped_bytes + queue.backlog_bytes(),
        "queue lost or invented bytes");
  });
  auditor.add_check(component, "counter-bounds", [&queue] {
    const net::QueueStats& s = queue.stats();
    AEQ_CHECK_LE(s.enqueued_packets, s.offered_packets);
    AEQ_CHECK_LE(s.enqueued_bytes, s.offered_bytes);
    AEQ_CHECK_LE(s.dequeued_packets, s.enqueued_packets);
    AEQ_CHECK_LE(s.dequeued_bytes, s.enqueued_bytes);
    AEQ_CHECK_LE(s.dropped_packets, s.offered_packets);
    AEQ_CHECK_LE(s.dropped_bytes, s.offered_bytes);
  });
  auditor.add_check(component, "class-sums", [&queue, num_qos] {
    std::uint64_t class_backlog = 0;
    std::uint64_t class_drop_packets = 0;
    std::uint64_t class_drop_bytes = 0;
    for (std::size_t q = 0; q < num_qos; ++q) {
      const auto qos = static_cast<net::QoSLevel>(q);
      class_backlog += queue.class_backlog_bytes(qos);
      class_drop_packets += queue.class_dropped_packets(qos);
      class_drop_bytes += queue.class_dropped_bytes(qos);
    }
    // The QueueDiscipline base maintains the per-class counters for every
    // discipline, so whenever any class reports backlog the per-class
    // backlogs must partition the total exactly. (The guard keeps the check
    // vacuous for an idle queue and for out-of-plane traffic parked above
    // num_qos, which the sum below does not see.)
    if (class_backlog != 0) {
      AEQ_CHECK_EQ_MSG(class_backlog, queue.backlog_bytes(),
                       "per-class backlogs do not partition queue backlog");
    }
    // Class drops never exceed the totals (a shared-buffer decorator adds
    // pool rejections to its own total on top of the inner class drops).
    AEQ_CHECK_LE(class_drop_packets, queue.stats().dropped_packets);
    AEQ_CHECK_LE(class_drop_bytes, queue.stats().dropped_bytes);
  });

  // Attach the WFQ tag invariants when this discipline is (or wraps) a
  // virtual-time WFQ.
  const net::QueueDiscipline* inner = &queue;
  if (const auto* pooled = dynamic_cast<const net::PooledQueue*>(inner)) {
    inner = &pooled->inner();
  }
  if (const auto* wfq = dynamic_cast<const net::WfqQueue*>(inner)) {
    register_wfq_checks(auditor, std::move(component), *wfq);
  }
}

void register_wfq_checks(Auditor& auditor, std::string component,
                         const net::WfqQueue& queue) {
  auditor.add_check(component, "wfq-tag-order",
                    [&queue] { queue.audit_tags(); });
  auditor.add_check(component, "wfq-virtual-time-monotone",
                    [&queue, prev = queue.virtual_time()]() mutable {
                      const double v = queue.virtual_time();
                      AEQ_CHECK_GE_MSG(v, prev,
                                       "WFQ virtual clock ran backwards");
                      prev = v;
                    });
}

void register_pool_checks(Auditor& auditor, std::string component,
                          const net::SharedBufferPool& pool,
                          std::vector<const net::QueueDiscipline*> members) {
  auditor.add_check(component, "used-within-total", [&pool] {
    AEQ_CHECK_LE_MSG(pool.used(), pool.total(),
                     "shared buffer pool over-committed");
  });
  auditor.add_check(component, "conservation",
                    [&pool, members = std::move(members)] {
                      std::uint64_t backlog = 0;
                      for (const net::QueueDiscipline* member : members) {
                        backlog += member->backlog_bytes();
                      }
                      AEQ_CHECK_EQ_MSG(pool.used(), backlog,
                                       "pool reservation leaked or lost");
                    });
}

void register_port_checks(Auditor& auditor, std::string component,
                          const net::Port& port, const sim::Simulator& sim,
                          std::size_t num_qos) {
  auditor.add_check(component, "link-conservation", [&port] {
    AEQ_CHECK_EQ_MSG(port.queue().stats().dequeued_packets,
                     port.delivered_packets() + port.in_flight_packets(),
                     "packet left the queue but neither delivered nor "
                     "propagating");
  });
  auditor.add_check(component, "busy-time-bounded", [&port, &sim] {
    const sim::Time now = sim.now();
    AEQ_CHECK_GE(port.busy_time(), 0.0);
    // Tolerance: busy time is a sum of exact sub-intervals of [0, now] and
    // may round up by a few ulps across millions of packets.
    AEQ_CHECK_LE_MSG(port.busy_time(), now * (1.0 + 1e-9) + 1e-9,
                     "port was busy longer than simulated time");
  });
  register_queue_checks(auditor, std::move(component), port.queue(), num_qos);
}

void register_switch_checks(Auditor& auditor, std::string component,
                            const net::Switch& fabric_switch,
                            const sim::Simulator& sim, std::size_t num_qos) {
  auditor.add_check(component, "routing-conservation", [&fabric_switch] {
    std::uint64_t offered = 0;
    for (std::size_t p = 0; p < fabric_switch.num_ports(); ++p) {
      offered += fabric_switch.port(p).queue().stats().offered_packets;
    }
    AEQ_CHECK_EQ_MSG(fabric_switch.received_packets(), offered,
                     "switch received packets it never offered to a port");
  });
  for (std::size_t p = 0; p < fabric_switch.num_ports(); ++p) {
    register_port_checks(auditor,
                         component + "/port" + std::to_string(p),
                         fabric_switch.port(p), sim, num_qos);
  }
}

void register_simulator_checks(Auditor& auditor, const sim::Simulator& sim) {
  auditor.add_check("sim", "time-monotone",
                    [&sim, prev = sim.now()]() mutable {
                      const sim::Time now = sim.now();
                      AEQ_CHECK_GE_MSG(now, prev,
                                       "simulated clock ran backwards");
                      prev = now;
                    });
}

void register_admission_checks(Auditor& auditor, std::string component,
                               const rpc::AdmissionController& controller,
                               const sim::Simulator& sim) {
  auditor.add_check(component, "invariants", [&controller, &sim] {
    controller.audit_invariants(sim.now());
  });
  auditor.add_check(std::move(component), "gauge-bounds", [&controller] {
    for (const rpc::Gauge& gauge : controller.gauges()) {
      // NaN fails both comparisons, so a poisoned gauge aborts here too.
      AEQ_CHECK_GE_MSG(gauge.value, gauge.lo,
                       "admission gauge below its documented lower bound");
      AEQ_CHECK_LE_MSG(gauge.value, gauge.hi,
                       "admission gauge above its documented upper bound");
    }
  });
}

void register_aequitas_checks(Auditor& auditor, std::string component,
                              const core::AequitasController& controller,
                              const sim::Simulator& sim) {
  register_admission_checks(
      auditor, std::move(component),
      static_cast<const rpc::AdmissionController&>(controller), sim);
}

void register_quota_checks(Auditor& auditor, std::string component,
                           const core::QuotaServer& server) {
  auditor.add_check(std::move(component), "allocation-bounds",
                    [&server] { server.audit_invariants(); });
}

void register_transport_checks(Auditor& auditor, std::string component,
                               const transport::HostStack& stack) {
  auditor.add_check(std::move(component), "flow-invariants", [&stack] {
    stack.for_each_flow(
        [](const transport::Flow& flow) { flow.audit_invariants(); });
  });
}

void register_network_checks(Auditor& auditor, const topo::Network& network,
                             const sim::Simulator& sim, std::size_t num_qos) {
  for (std::size_t h = 0; h < network.num_hosts(); ++h) {
    const auto id = static_cast<net::HostId>(h);
    register_port_checks(auditor, "host" + std::to_string(h) + "-nic",
                         network.host(id).egress(), sim, num_qos);
  }
  for (std::size_t s = 0; s < network.num_switches(); ++s) {
    register_switch_checks(auditor, network.fabric_switch(s).name(),
                           network.fabric_switch(s), sim, num_qos);
  }
  std::size_t pool_index = 0;
  for (const topo::Network::PoolGroup& group : network.pool_groups()) {
    register_pool_checks(auditor, "pool" + std::to_string(pool_index++),
                         *group.pool, group.members);
  }
}

}  // namespace aeq::audit
