#include "runner/protocol_experiment.h"

#include <algorithm>
#include <utility>

#include "protocols/deadline_transport.h"
#include "sim/assert.h"

namespace aeq::runner {

const char* baseline_name(BaselineProtocol protocol) {
  switch (protocol) {
    case BaselineProtocol::kPfabric: return "pFabric";
    case BaselineProtocol::kQjump: return "QJump";
    case BaselineProtocol::kHoma: return "Homa";
    case BaselineProtocol::kD3: return "D3";
    case BaselineProtocol::kPdq: return "PDQ";
  }
  return "?";
}

namespace {

net::QueueConfig queue_for(const ProtocolExperimentConfig& config) {
  net::QueueConfig queue;
  switch (config.protocol) {
    case BaselineProtocol::kPfabric:
      queue.type = net::SchedulerType::kPfabric;
      queue.capacity_bytes = config.pfabric_buffer_bytes;
      break;
    case BaselineProtocol::kQjump:
      queue.type = net::SchedulerType::kSpq;
      queue.weights.assign(config.num_qos, 1.0);  // class count only
      queue.capacity_bytes = 8 * sim::kMiB;
      break;
    case BaselineProtocol::kHoma:
      queue.type = net::SchedulerType::kSpq;
      queue.weights.assign(config.homa.num_levels, 1.0);
      queue.capacity_bytes = 8 * sim::kMiB;
      break;
    case BaselineProtocol::kD3:
    case BaselineProtocol::kPdq:
      queue.type = net::SchedulerType::kFifo;
      queue.capacity_bytes = 8 * sim::kMiB;
      break;
  }
  return queue;
}

}  // namespace

ProtocolExperiment::ProtocolExperiment(
    const ProtocolExperimentConfig& config)
    : config_(config), sim_(config.scheduler_backend) {
  AEQ_ASSERT(config_.slo.num_qos() == config_.num_qos);

  topo::StarConfig star;
  star.num_hosts = config_.num_hosts;
  star.link_rate = config_.link_rate;
  star.link_delay = config_.link_delay;
  star.host_queue = queue_for(config_);
  star.switch_queue = star.host_queue;
  network_ = topo::build_star(sim_, star);

  metrics_ = std::make_unique<rpc::RpcMetrics>(config_.num_qos, config_.slo,
                                               network_.num_hosts());

  if (config_.protocol == BaselineProtocol::kD3 ||
      config_.protocol == BaselineProtocol::kPdq) {
    fabric_ = std::make_unique<protocols::DeadlineFabric>(
        sim_,
        config_.protocol == BaselineProtocol::kD3
            ? protocols::DeadlineMode::kD3
            : protocols::DeadlineMode::kPdq,
        config_.link_rate, config_.deadline_epoch);
  }

  rpc::RpcStackConfig stack_config;
  stack_config.num_qos = config_.num_qos;
  stack_config.mtu_bytes = config_.mtu_bytes;

  protocols::BaseTransportConfig base;
  base.mtu_bytes = config_.mtu_bytes;

  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const auto id = static_cast<net::HostId>(i);
    net::Host& host = network_.host(id);
    std::unique_ptr<transport::MessageTransport> transport;
    switch (config_.protocol) {
      case BaselineProtocol::kPfabric: {
        protocols::PfabricConfig pf;
        pf.base = base;
        pf.base.rto = 100 * sim::kUsec;  // aggressive, per pFabric's design
        pf.window_packets = config_.pfabric_window_packets;
        transport =
            std::make_unique<protocols::PfabricTransport>(sim_, host, pf);
        break;
      }
      case BaselineProtocol::kQjump: {
        protocols::QjumpConfig qj;
        qj.base = base;
        for (double fraction : config_.qjump_level_rate_fraction) {
          qj.level_rate.push_back(fraction <= 0.0
                                      ? 0.0
                                      : fraction * config_.link_rate);
        }
        transport =
            std::make_unique<protocols::QjumpTransport>(sim_, host, qj);
        break;
      }
      case BaselineProtocol::kHoma: {
        protocols::HomaConfig homa = config_.homa;
        homa.base = base;
        transport =
            std::make_unique<protocols::HomaTransport>(sim_, host, homa);
        break;
      }
      case BaselineProtocol::kD3:
      case BaselineProtocol::kPdq: {
        protocols::BaseTransportConfig dl = base;
        dl.rto = 1 * sim::kMsec;  // rate-paced; recovery is rare
        transport = std::make_unique<protocols::DeadlineTransport>(
            sim_, host, *fabric_, dl);
        break;
      }
    }
    transports_.push_back(std::move(transport));
    stacks_.push_back(std::make_unique<rpc::RpcStack>(
        sim_, id, *transports_.back(), admission_, *metrics_,
        stack_config));
  }
}

const workload::SizeDistribution* ProtocolExperiment::own(
    std::unique_ptr<workload::SizeDistribution> dist) {
  owned_dists_.push_back(std::move(dist));
  return owned_dists_.back().get();
}

workload::TrafficGenerator& ProtocolExperiment::add_generator(
    net::HostId id, const workload::GeneratorConfig& generator_config,
    workload::DestinationPicker picker) {
  if (!picker) {
    picker = workload::uniform_destinations(network_.num_hosts(), id);
  }
  sim::Rng rng(config_.seed * 7919 + static_cast<std::uint64_t>(id) + 1);
  generators_.push_back(std::make_unique<workload::TrafficGenerator>(
      sim_, stack(id), std::move(picker), generator_config, rng));
  return *generators_.back();
}

void ProtocolExperiment::run(sim::Time warmup, sim::Time duration,
                             sim::Time drain) {
  metrics_->set_warmup(warmup);
  for (auto& generator : generators_) {
    generator->run(sim_.now(), warmup + duration);
  }
  sim_.run_until(warmup + duration);
  sim_.run_until(warmup + duration + drain);
}

double ProtocolExperiment::mean_downlink_utilization() const {
  double total = 0.0;
  const sim::Time now = sim_.now();
  if (now <= 0.0) return 0.0;
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    total += network_.downlink(static_cast<net::HostId>(i)).utilization(now);
  }
  return total / static_cast<double>(network_.num_hosts());
}

double ProtocolExperiment::goodput_utilization() const {
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  for (std::size_t q = 0; q < config_.num_qos; ++q) {
    const auto qos = static_cast<net::QoSLevel>(q);
    offered += metrics_->bytes_requested(qos);
    delivered += metrics_->bytes_completed(qos);
  }
  if (offered == 0) return 0.0;
  return std::min(1.0, static_cast<double>(delivered) /
                           static_cast<double>(offered));
}

}  // namespace aeq::runner
