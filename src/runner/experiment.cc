#include "runner/experiment.h"

#include <iostream>
#include <string>
#include <utility>

#include "audit/checks.h"
#include "obs/chrome_trace_sink.h"
#include "obs/csv_sink.h"
#include "sim/assert.h"

namespace aeq::runner {

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config), sim_(config.scheduler_backend) {
  AEQ_CHECK_GE(config_.num_qos, 2u);
  AEQ_ASSERT_MSG(config_.slo.num_qos() == config_.num_qos,
                 "SLO config must cover every QoS level");
  // The legacy use_fixed_window alias may only restate the fixed-window
  // choice; combined with a conflicting cc_kind it is a configuration error
  // (it used to silently override the requested transport).
  AEQ_ASSERT_MSG(!config_.use_fixed_window ||
                     config_.cc_kind == ExperimentConfig::CcKind::kSwift ||
                     config_.cc_kind == ExperimentConfig::CcKind::kFixedWindow,
                 "ExperimentConfig::use_fixed_window conflicts with the "
                 "configured cc_kind; use cc_kind = CcKind::kFixedWindow "
                 "instead of the legacy flag");
  if (config_.use_fixed_window) {
    config_.cc_kind = ExperimentConfig::CcKind::kFixedWindow;
  }

  net::QueueConfig queue;
  queue.type = config_.scheduler;
  queue.weights = config_.wfq_weights;
  queue.capacity_bytes = config_.buffer_bytes;
  queue.ecn_threshold_bytes = config_.ecn_threshold_bytes;
  queue.per_class_capacity_bytes = config_.per_class_buffer_bytes;
  queue.reserve_packets = config_.queue_reserve_packets;
  if (config_.cc_kind == ExperimentConfig::CcKind::kDctcp &&
      queue.ecn_threshold_bytes == 0) {
    // DCTCP needs marking; default to ~20 MTUs as in its paper's guidance.
    queue.ecn_threshold_bytes = 20ull * config_.transport.mtu_bytes;
  }
  AEQ_ASSERT(config_.scheduler == net::SchedulerType::kPfabric ||
             config_.wfq_weights.size() == config_.num_qos);

  if (config_.use_leaf_spine) {
    topo::LeafSpineConfig ls = config_.leaf_spine;
    ls.host_queue = queue;
    ls.switch_queue = queue;
    network_ = topo::build_leaf_spine(sim_, ls);
    config_.num_hosts = network_.num_hosts();
  } else {
    topo::StarConfig star;
    star.num_hosts = config_.num_hosts;
    star.link_rate = config_.link_rate;
    star.link_delay = config_.link_delay;
    star.host_queue = queue;
    star.switch_queue = queue;
    network_ = topo::build_star(sim_, star);
  }

  if (config_.queue_reserve_packets != 0) {
    // make_queue already pre-sized each discipline's rings; extend the hint
    // to every port's in-flight ring so links never grow storage either.
    for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
      network_.host(static_cast<net::HostId>(i))
          .egress()
          .reserve_packets(config_.queue_reserve_packets);
    }
    for (std::size_t s = 0; s < network_.num_switches(); ++s) {
      net::Switch& sw = network_.fabric_switch(s);
      for (std::size_t p = 0; p < sw.num_ports(); ++p) {
        sw.port(p).reserve_packets(config_.queue_reserve_packets);
      }
    }
  }
  sim_.reserve_events(config_.reserve_events);

  metrics_ = std::make_unique<rpc::RpcMetrics>(config_.num_qos, config_.slo,
                                               network_.num_hosts());

  sim::Rng seeder(config_.seed);
  rpc::RpcStackConfig stack_config;
  stack_config.num_qos = config_.num_qos;
  stack_config.mtu_bytes = config_.transport.mtu_bytes;

  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const auto id = static_cast<net::HostId>(i);
    auto cc_factory = [this]() -> std::unique_ptr<transport::CongestionControl> {
      if (config_.cc_kind == ExperimentConfig::CcKind::kFixedWindow) {
        return std::make_unique<transport::FixedWindowCC>(
            config_.fixed_window_packets);
      }
      if (config_.cc_kind == ExperimentConfig::CcKind::kDctcp) {
        return std::make_unique<transport::DctcpCC>(config_.dctcp);
      }
      return std::make_unique<transport::SwiftCC>(config_.swift);
    };
    host_stacks_.push_back(std::make_unique<transport::HostStack>(
        sim_, network_.host(id), network_.num_hosts(), config_.transport,
        cc_factory));

    if (config_.admission_factory) {
      aequitas_.push_back(nullptr);
      controllers_.push_back(
          config_.admission_factory(sim_, id, seeder.fork()));
    } else if (config_.enable_aequitas) {
      core::AequitasConfig aeq;
      aeq.alpha = config_.alpha;
      aeq.beta_per_mtu = config_.beta_per_mtu;
      aeq.p_admit_floor = config_.p_admit_floor;
      aeq.slo = config_.slo;
      auto controller =
          std::make_unique<core::AequitasController>(aeq, seeder.fork());
      aequitas_.push_back(controller.get());
      controllers_.push_back(std::move(controller));
    } else {
      aequitas_.push_back(nullptr);
      controllers_.push_back(std::make_unique<rpc::AlwaysAdmit>());
    }

    stacks_.push_back(std::make_unique<rpc::RpcStack>(
        sim_, id, *host_stacks_.back(), *controllers_.back(), *metrics_,
        stack_config));
  }

  // Fold the legacy trace aliases into the spec before wiring.
  if (!config_.trace.empty()) config_.telemetry.trace = config_.trace;
  if (!config_.trace_csv.empty()) {
    config_.telemetry.trace_csv = config_.trace_csv;
  }
  if (config_.audit) register_audit_checks();
  if (config_.telemetry.any()) wire_telemetry();
}

Experiment::~Experiment() {
  // Disarm the assert-failure hook if it still points at this experiment
  // (parallel sweeps run one experiment per thread; both slots are
  // thread_local, so this races with nobody).
  if (detail::g_failure_sink_arg == this) {
    detail::g_failure_sink = nullptr;
    detail::g_failure_sink_arg = nullptr;
  }
}

void Experiment::trace_to(const std::string& chrome_json,
                          const std::string& csv) {
  if (chrome_json.empty() && csv.empty()) return;
  TelemetrySpec spec;
  spec.trace = chrome_json;
  spec.trace_csv = csv;
  enable_telemetry(spec);
}

void Experiment::enable_telemetry(const TelemetrySpec& spec) {
  AEQ_ASSERT_MSG(recorder_ == nullptr, "telemetry is already enabled");
  if (!spec.any()) return;
  config_.telemetry = spec;
  config_.trace = spec.trace;
  config_.trace_csv = spec.trace_csv;
  wire_telemetry();
}

void Experiment::fill_watchdog_defaults(obs::WatchdogConfig& config) const {
  // Compliance alarms derive from the configured SLO percentiles, backed
  // off by a margin so ordinary jitter around the target stays silent: a
  // 99.9% SLO alarms when a window's compliance drops below ~90%.
  constexpr double kAlarmMargin = 0.9;
  if (config.compliance_target.empty()) {
    config.compliance_target.assign(config_.num_qos, 0.0);
    for (std::size_t q = 0; q < config_.num_qos; ++q) {
      const auto qos = static_cast<net::QoSLevel>(q);
      if (!config_.slo.has_slo(qos)) continue;  // scavenger class: no alarm
      config.compliance_target[q] =
          kAlarmMargin * config_.slo.target_percentile[q] / 100.0;
    }
  }
  if (config.saturation_qlen_bytes == 0) {
    config.saturation_qlen_bytes = static_cast<std::uint64_t>(
        0.95 * static_cast<double>(config_.buffer_bytes));
  }
  // "Pinned at the controller's own floor" — separates pathological
  // collapse from ordinary heavy throttling of misbehaving channels.
  if (config.p_admit_floor < 0.0) {
    config.p_admit_floor = 1.5 * config_.p_admit_floor;
  }
}

void Experiment::on_anomaly(const obs::Anomaly& anomaly) {
  if (watchdog_log_ != nullptr) {
    *watchdog_log_ << "[watchdog] " << obs::describe(anomaly) << std::endl;
  }
  // The first anomaly gets the flight dump: its ring still holds the onset
  // of the problem, which later anomalies' rings may have evicted.
  if (flight_ != nullptr && !flight_dumped_) {
    flight_dumped_ = true;
    flight_->dump(config_.telemetry.flight_recorder, &anomaly);
    if (timeseries_ != nullptr) {
      timeseries_->write_recent_csv(config_.telemetry.flight_recorder +
                                    ".timeseries.csv");
    }
  }
}

void Experiment::failure_dump(void* self) {
  auto* experiment = static_cast<Experiment*>(self);
  if (experiment->flight_ == nullptr || experiment->flight_dumped_) return;
  experiment->flight_dumped_ = true;
  experiment->flight_->dump(experiment->config_.telemetry.flight_recorder);
  if (experiment->timeseries_ != nullptr) {
    experiment->timeseries_->write_recent_csv(
        experiment->config_.telemetry.flight_recorder + ".timeseries.csv");
  }
}

void Experiment::wire_telemetry() {
  const TelemetrySpec& spec = config_.telemetry;
  recorder_ = std::make_unique<obs::Recorder>();
  if (!spec.trace.empty()) {
    recorder_->own_sink(std::make_unique<obs::ChromeTraceSink>(spec.trace));
  }
  if (!spec.trace_csv.empty()) {
    recorder_->own_sink(std::make_unique<obs::CsvSink>(spec.trace_csv));
  }
  if (!spec.flight_recorder.empty()) {
    flight_ = static_cast<obs::FlightRecorder*>(
        recorder_->own_sink(std::make_unique<obs::FlightRecorder>(
            spec.flight_recorder_config)));
    // Arm the last-gasp hook: an assert/audit failure dumps the ring
    // before aborting.
    detail::g_failure_sink = &Experiment::failure_dump;
    detail::g_failure_sink_arg = this;
  }
  // The timeseries sink registers after the flight recorder so that when a
  // window closes mid-event and the watchdog fires, the ring already holds
  // the event that closed the window.
  if (spec.windowed()) {
    obs::TimeseriesConfig ts;
    ts.window = spec.timeseries_width;
    ts.num_qos = config_.num_qos;
    ts.csv_path = spec.timeseries_csv;
    ts.json_path = spec.timeseries_json;
    timeseries_ = static_cast<obs::TimeseriesSink*>(
        recorder_->own_sink(std::make_unique<obs::TimeseriesSink>(ts)));
  }
  if (spec.watchdog) {
    obs::WatchdogConfig wd = spec.watchdog_config;
    fill_watchdog_defaults(wd);
    watchdog_ = std::make_unique<obs::Watchdog>(wd);
    if (!spec.watchdog_log.empty()) {
      watchdog_log_file_.open(spec.watchdog_log,
                              std::ios::out | std::ios::trunc);
      AEQ_ASSERT_MSG(watchdog_log_file_.is_open(),
                     "cannot open watchdog log file");
      watchdog_log_ = &watchdog_log_file_;
    } else {
      watchdog_log_ = &std::cerr;
    }
    timeseries_->add_window_listener(
        [this](const obs::WindowStats& window) {
          watchdog_->on_window(window);
        });
    watchdog_->add_callback(
        [this](const obs::Anomaly& anomaly) { on_anomaly(anomaly); });
  }
  // Stable port naming: host NICs first (in host order), then each fabric
  // switch's egress ports. Names land in the trace as process labels.
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const std::uint32_t pid =
        recorder_->register_port("host" + std::to_string(i) + "-nic");
    network_.host(static_cast<net::HostId>(i))
        .egress()
        .set_observer(recorder_.get(), pid);
  }
  for (std::size_t s = 0; s < network_.num_switches(); ++s) {
    net::Switch& sw = network_.fabric_switch(s);
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const std::uint32_t pid = recorder_->register_port(
          sw.name() + "-port" + std::to_string(p));
      sw.port(p).set_observer(recorder_.get(), pid);
    }
  }
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    host_stacks_[i]->set_observer(recorder_.get());
    stacks_[i]->set_observer(recorder_.get());
  }
}

void Experiment::register_audit_checks() {
  auditor_ = std::make_unique<audit::Auditor>();
  audit::register_simulator_checks(*auditor_, sim_);
  audit::register_network_checks(*auditor_, network_, sim_, config_.num_qos);
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const std::string host = "host" + std::to_string(i);
    audit::register_transport_checks(*auditor_, host + "-transport",
                                     *host_stacks_[i]);
    if (aequitas_[i] != nullptr) {
      audit::register_aequitas_checks(*auditor_, host + "-aequitas",
                                      *aequitas_[i], sim_);
    }
  }
}

void Experiment::schedule_audit(sim::Time at, sim::Time end) {
  if (at > end) return;
  sim_.schedule_at(at, [this, at, end] {
    auditor_->run_all();
    schedule_audit(at + config_.audit_interval, end);
  });
}

// Periodic clock for the windowed telemetry: advance_to only *reads* sink
// state, so (like the audit sweep) the extra events cannot perturb the
// simulation. Without the tick a fully stalled run would never close
// another window and the watchdog's stall rule could never fire.
void Experiment::schedule_telemetry_tick(sim::Time at, sim::Time end) {
  if (at > end) return;
  sim_.schedule_at(at, [this, at, end] {
    timeseries_->advance_to(at);
    schedule_telemetry_tick(at + config_.telemetry.timeseries_width, end);
  });
}

const workload::SizeDistribution* Experiment::own(
    std::unique_ptr<workload::SizeDistribution> dist) {
  owned_dists_.push_back(std::move(dist));
  return owned_dists_.back().get();
}

workload::TrafficGenerator& Experiment::add_generator(
    net::HostId id, const workload::GeneratorConfig& generator_config,
    workload::DestinationPicker picker) {
  if (!picker) {
    picker = workload::uniform_destinations(network_.num_hosts(), id);
  }
  sim::Rng rng(config_.seed * 7919 + static_cast<std::uint64_t>(id) + 1);
  generators_.push_back(std::make_unique<workload::TrafficGenerator>(
      sim_, stack(id), std::move(picker), generator_config, rng));
  return *generators_.back();
}

void Experiment::sample_every(sim::Time interval,
                              std::function<void(sim::Time)> fn) {
  AEQ_ASSERT(interval > 0.0 && fn != nullptr);
  samplers_.push_back(Sampler{interval, std::move(fn)});
}

void Experiment::schedule_sampler(std::size_t index, sim::Time at) {
  if (at >= run_end_) return;
  sim_.schedule_at(at, [this, index, at] {
    samplers_[index].fn(at);
    schedule_sampler(index, at + samplers_[index].interval);
  });
}

void Experiment::run(sim::Time warmup, sim::Time duration, sim::Time drain) {
  AEQ_CHECK_GT(duration, 0.0);
  metrics_->set_warmup(warmup);
  // The warmup transient (admission probabilities converging down from 1)
  // is expected turbulence, not an anomaly; going quiet after generation
  // ends is the drain working, not a stall.
  if (watchdog_) {
    watchdog_->set_quiet_until(warmup);
    watchdog_->set_stall_horizon(warmup + duration);
  }
  run_end_ = warmup + duration;
  for (auto& generator : generators_) {
    generator->run(sim_.now(), run_end_);
  }
  for (std::size_t s = 0; s < samplers_.size(); ++s) {
    schedule_sampler(s, sim_.now() + samplers_[s].interval);
  }
  if (auditor_) {
    AEQ_ASSERT(config_.audit_interval > 0.0);
    schedule_audit(sim_.now() + config_.audit_interval, run_end_ + drain);
  }
  if (timeseries_ != nullptr) {
    AEQ_ASSERT(config_.telemetry.timeseries_width > 0.0);
    schedule_telemetry_tick(sim_.now() + config_.telemetry.timeseries_width,
                            run_end_ + drain);
  }
  sim_.run_until(run_end_);
  // Let in-flight RPCs finish so tail percentiles include them.
  sim_.run_until(run_end_ + drain);
  // One final sweep over the drained state (catches leaks that only show
  // once queues empty, e.g. a pool reservation that never released).
  if (auditor_) auditor_->run_all();
  if (recorder_) recorder_->flush(sim_.now());
}

double Experiment::mean_downlink_utilization() const {
  double total = 0.0;
  const sim::Time now = sim_.now();
  if (now <= 0.0) return 0.0;
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    total += network_.downlink(static_cast<net::HostId>(i)).utilization(now);
  }
  return total / static_cast<double>(network_.num_hosts());
}

}  // namespace aeq::runner
