#include "runner/experiment.h"

#include <string>
#include <utility>

#include "audit/checks.h"
#include "obs/chrome_trace_sink.h"
#include "obs/csv_sink.h"
#include "sim/assert.h"

namespace aeq::runner {

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config), sim_(config.scheduler_backend) {
  AEQ_CHECK_GE(config_.num_qos, 2u);
  AEQ_ASSERT_MSG(config_.slo.num_qos() == config_.num_qos,
                 "SLO config must cover every QoS level");
  // The legacy use_fixed_window alias may only restate the fixed-window
  // choice; combined with a conflicting cc_kind it is a configuration error
  // (it used to silently override the requested transport).
  AEQ_ASSERT_MSG(!config_.use_fixed_window ||
                     config_.cc_kind == ExperimentConfig::CcKind::kSwift ||
                     config_.cc_kind == ExperimentConfig::CcKind::kFixedWindow,
                 "ExperimentConfig::use_fixed_window conflicts with the "
                 "configured cc_kind; use cc_kind = CcKind::kFixedWindow "
                 "instead of the legacy flag");
  if (config_.use_fixed_window) {
    config_.cc_kind = ExperimentConfig::CcKind::kFixedWindow;
  }

  net::QueueConfig queue;
  queue.type = config_.scheduler;
  queue.weights = config_.wfq_weights;
  queue.capacity_bytes = config_.buffer_bytes;
  queue.ecn_threshold_bytes = config_.ecn_threshold_bytes;
  queue.per_class_capacity_bytes = config_.per_class_buffer_bytes;
  if (config_.cc_kind == ExperimentConfig::CcKind::kDctcp &&
      queue.ecn_threshold_bytes == 0) {
    // DCTCP needs marking; default to ~20 MTUs as in its paper's guidance.
    queue.ecn_threshold_bytes = 20ull * config_.transport.mtu_bytes;
  }
  AEQ_ASSERT(config_.scheduler == net::SchedulerType::kPfabric ||
             config_.wfq_weights.size() == config_.num_qos);

  if (config_.use_leaf_spine) {
    topo::LeafSpineConfig ls = config_.leaf_spine;
    ls.host_queue = queue;
    ls.switch_queue = queue;
    network_ = topo::build_leaf_spine(sim_, ls);
    config_.num_hosts = network_.num_hosts();
  } else {
    topo::StarConfig star;
    star.num_hosts = config_.num_hosts;
    star.link_rate = config_.link_rate;
    star.link_delay = config_.link_delay;
    star.host_queue = queue;
    star.switch_queue = queue;
    network_ = topo::build_star(sim_, star);
  }

  metrics_ = std::make_unique<rpc::RpcMetrics>(config_.num_qos, config_.slo,
                                               network_.num_hosts());

  sim::Rng seeder(config_.seed);
  rpc::RpcStackConfig stack_config;
  stack_config.num_qos = config_.num_qos;
  stack_config.mtu_bytes = config_.transport.mtu_bytes;

  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const auto id = static_cast<net::HostId>(i);
    auto cc_factory = [this]() -> std::unique_ptr<transport::CongestionControl> {
      if (config_.cc_kind == ExperimentConfig::CcKind::kFixedWindow) {
        return std::make_unique<transport::FixedWindowCC>(
            config_.fixed_window_packets);
      }
      if (config_.cc_kind == ExperimentConfig::CcKind::kDctcp) {
        return std::make_unique<transport::DctcpCC>(config_.dctcp);
      }
      return std::make_unique<transport::SwiftCC>(config_.swift);
    };
    host_stacks_.push_back(std::make_unique<transport::HostStack>(
        sim_, network_.host(id), network_.num_hosts(), config_.transport,
        cc_factory));

    if (config_.admission_factory) {
      aequitas_.push_back(nullptr);
      controllers_.push_back(
          config_.admission_factory(sim_, id, seeder.fork()));
    } else if (config_.enable_aequitas) {
      core::AequitasConfig aeq;
      aeq.alpha = config_.alpha;
      aeq.beta_per_mtu = config_.beta_per_mtu;
      aeq.p_admit_floor = config_.p_admit_floor;
      aeq.slo = config_.slo;
      auto controller =
          std::make_unique<core::AequitasController>(aeq, seeder.fork());
      aequitas_.push_back(controller.get());
      controllers_.push_back(std::move(controller));
    } else {
      aequitas_.push_back(nullptr);
      controllers_.push_back(std::make_unique<rpc::AlwaysAdmit>());
    }

    stacks_.push_back(std::make_unique<rpc::RpcStack>(
        sim_, id, *host_stacks_.back(), *controllers_.back(), *metrics_,
        stack_config));
  }

  if (config_.audit) register_audit_checks();
  if (!config_.trace.empty() || !config_.trace_csv.empty()) enable_tracing();
}

void Experiment::trace_to(const std::string& chrome_json,
                          const std::string& csv) {
  AEQ_ASSERT_MSG(recorder_ == nullptr, "tracing is already enabled");
  if (chrome_json.empty() && csv.empty()) return;
  config_.trace = chrome_json;
  config_.trace_csv = csv;
  enable_tracing();
}

void Experiment::enable_tracing() {
  recorder_ = std::make_unique<obs::Recorder>();
  if (!config_.trace.empty()) {
    recorder_->own_sink(std::make_unique<obs::ChromeTraceSink>(config_.trace));
  }
  if (!config_.trace_csv.empty()) {
    recorder_->own_sink(std::make_unique<obs::CsvSink>(config_.trace_csv));
  }
  // Stable port naming: host NICs first (in host order), then each fabric
  // switch's egress ports. Names land in the trace as process labels.
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const std::uint32_t pid =
        recorder_->register_port("host" + std::to_string(i) + "-nic");
    network_.host(static_cast<net::HostId>(i))
        .egress()
        .set_observer(recorder_.get(), pid);
  }
  for (std::size_t s = 0; s < network_.num_switches(); ++s) {
    net::Switch& sw = network_.fabric_switch(s);
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const std::uint32_t pid = recorder_->register_port(
          sw.name() + "-port" + std::to_string(p));
      sw.port(p).set_observer(recorder_.get(), pid);
    }
  }
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    host_stacks_[i]->set_observer(recorder_.get());
    stacks_[i]->set_observer(recorder_.get());
  }
}

void Experiment::register_audit_checks() {
  auditor_ = std::make_unique<audit::Auditor>();
  audit::register_simulator_checks(*auditor_, sim_);
  audit::register_network_checks(*auditor_, network_, sim_, config_.num_qos);
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const std::string host = "host" + std::to_string(i);
    audit::register_transport_checks(*auditor_, host + "-transport",
                                     *host_stacks_[i]);
    if (aequitas_[i] != nullptr) {
      audit::register_aequitas_checks(*auditor_, host + "-aequitas",
                                      *aequitas_[i], sim_);
    }
  }
}

void Experiment::schedule_audit(sim::Time at, sim::Time end) {
  if (at > end) return;
  sim_.schedule_at(at, [this, at, end] {
    auditor_->run_all();
    schedule_audit(at + config_.audit_interval, end);
  });
}

const workload::SizeDistribution* Experiment::own(
    std::unique_ptr<workload::SizeDistribution> dist) {
  owned_dists_.push_back(std::move(dist));
  return owned_dists_.back().get();
}

workload::TrafficGenerator& Experiment::add_generator(
    net::HostId id, const workload::GeneratorConfig& generator_config,
    workload::DestinationPicker picker) {
  if (!picker) {
    picker = workload::uniform_destinations(network_.num_hosts(), id);
  }
  sim::Rng rng(config_.seed * 7919 + static_cast<std::uint64_t>(id) + 1);
  generators_.push_back(std::make_unique<workload::TrafficGenerator>(
      sim_, stack(id), std::move(picker), generator_config, rng));
  return *generators_.back();
}

void Experiment::sample_every(sim::Time interval,
                              std::function<void(sim::Time)> fn) {
  AEQ_ASSERT(interval > 0.0 && fn != nullptr);
  samplers_.push_back(Sampler{interval, std::move(fn)});
}

void Experiment::schedule_sampler(std::size_t index, sim::Time at) {
  if (at >= run_end_) return;
  sim_.schedule_at(at, [this, index, at] {
    samplers_[index].fn(at);
    schedule_sampler(index, at + samplers_[index].interval);
  });
}

void Experiment::run(sim::Time warmup, sim::Time duration, sim::Time drain) {
  AEQ_CHECK_GT(duration, 0.0);
  metrics_->set_warmup(warmup);
  run_end_ = warmup + duration;
  for (auto& generator : generators_) {
    generator->run(sim_.now(), run_end_);
  }
  for (std::size_t s = 0; s < samplers_.size(); ++s) {
    schedule_sampler(s, sim_.now() + samplers_[s].interval);
  }
  if (auditor_) {
    AEQ_ASSERT(config_.audit_interval > 0.0);
    schedule_audit(sim_.now() + config_.audit_interval, run_end_ + drain);
  }
  sim_.run_until(run_end_);
  // Let in-flight RPCs finish so tail percentiles include them.
  sim_.run_until(run_end_ + drain);
  // One final sweep over the drained state (catches leaks that only show
  // once queues empty, e.g. a pool reservation that never released).
  if (auditor_) auditor_->run_all();
  if (recorder_) recorder_->flush(sim_.now());
}

double Experiment::mean_downlink_utilization() const {
  double total = 0.0;
  const sim::Time now = sim_.now();
  if (now <= 0.0) return 0.0;
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    total += network_.downlink(static_cast<net::HostId>(i)).utilization(now);
  }
  return total / static_cast<double>(network_.num_hosts());
}

}  // namespace aeq::runner
