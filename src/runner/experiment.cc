#include "runner/experiment.h"

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "audit/checks.h"
#include "obs/chrome_trace_sink.h"
#include "obs/csv_sink.h"
#include "obs/shard_merge.h"
#include "policy/registry.h"
#include "sim/assert.h"
#include "topo/sharding.h"

namespace aeq::runner {

// Folds the legacy admission knobs (enable_aequitas, alpha, beta_per_mtu,
// p_admit_floor, admission_factory) into config_.admission. Each alias may
// only RESTATE what the spec already says; a conflicting combination used
// to be silently resolved (factory > enable_aequitas > scalars) and is now
// a configuration error, like use_fixed_window vs cc_kind.
void Experiment::resolve_admission_spec() {
  policy::AdmissionSpec& spec = config_.admission;
  const policy::AequitasParams defaults;

  if (config_.admission_factory) {
    AEQ_ASSERT_MSG(spec.factory == nullptr,
                   "ExperimentConfig::admission_factory conflicts with "
                   "admission.factory; set only one");
    AEQ_ASSERT_MSG(spec.kind == policy::kAequitas,
                   "ExperimentConfig::admission_factory conflicts with the "
                   "configured admission.kind; use admission.factory (or "
                   "drop the kind override)");
    spec.factory = config_.admission_factory;
  }
  if (!config_.enable_aequitas && spec.factory == nullptr) {
    AEQ_ASSERT_MSG(spec.kind == policy::kAequitas ||
                       spec.kind == policy::kAlwaysAdmit,
                   "ExperimentConfig::enable_aequitas = false conflicts "
                   "with the configured admission.kind; set admission.kind "
                   "= \"always-admit\" instead of the legacy flag");
    spec.kind = policy::kAlwaysAdmit;
  }
  const bool aequitas_knobs_apply =
      spec.factory == nullptr && spec.kind == policy::kAequitas;
  auto fold_scalar = [&](double legacy, double& target, double fallback,
                         const char* name) {
    if (legacy == fallback) return;  // alias left at its default: nothing set
    AEQ_ASSERT_MSG(aequitas_knobs_apply,
                   "a legacy Aequitas knob (alpha/beta_per_mtu/"
                   "p_admit_floor) is set but the resolved admission policy "
                   "is not \"aequitas\"");
    AEQ_ASSERT_MSG(target == fallback || target == legacy, name);
    target = legacy;
  };
  fold_scalar(config_.alpha, spec.aequitas.alpha, defaults.alpha,
              "ExperimentConfig::alpha conflicts with "
              "admission.aequitas.alpha");
  fold_scalar(config_.beta_per_mtu, spec.aequitas.beta_per_mtu,
              defaults.beta_per_mtu,
              "ExperimentConfig::beta_per_mtu conflicts with "
              "admission.aequitas.beta_per_mtu");
  fold_scalar(config_.p_admit_floor, spec.aequitas.p_admit_floor,
              defaults.p_admit_floor,
              "ExperimentConfig::p_admit_floor conflicts with "
              "admission.aequitas.p_admit_floor");
}

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config), sim_(config.scheduler_backend) {
  AEQ_CHECK_GE(config_.num_qos, 2u);
  AEQ_ASSERT_MSG(config_.slo.num_qos() == config_.num_qos,
                 "SLO config must cover every QoS level");
  resolve_admission_spec();
  // The legacy use_fixed_window alias may only restate the fixed-window
  // choice; combined with a conflicting cc_kind it is a configuration error
  // (it used to silently override the requested transport).
  AEQ_ASSERT_MSG(!config_.use_fixed_window ||
                     config_.cc_kind == ExperimentConfig::CcKind::kSwift ||
                     config_.cc_kind == ExperimentConfig::CcKind::kFixedWindow,
                 "ExperimentConfig::use_fixed_window conflicts with the "
                 "configured cc_kind; use cc_kind = CcKind::kFixedWindow "
                 "instead of the legacy flag");
  if (config_.use_fixed_window) {
    config_.cc_kind = ExperimentConfig::CcKind::kFixedWindow;
  }

  net::QueueConfig queue;
  queue.type = config_.scheduler;
  queue.weights = config_.wfq_weights;
  queue.capacity_bytes = config_.buffer_bytes;
  queue.ecn_threshold_bytes = config_.ecn_threshold_bytes;
  queue.per_class_capacity_bytes = config_.per_class_buffer_bytes;
  queue.reserve_packets = config_.queue_reserve_packets;
  if (config_.cc_kind == ExperimentConfig::CcKind::kDctcp &&
      queue.ecn_threshold_bytes == 0) {
    // DCTCP needs marking; default to ~20 MTUs as in its paper's guidance.
    queue.ecn_threshold_bytes = 20ull * config_.transport.mtu_bytes;
  }
  AEQ_ASSERT(config_.scheduler == net::SchedulerType::kPfabric ||
             config_.wfq_weights.size() == config_.num_qos);

  AEQ_CHECK_GE(config_.shards, 1u);
  if (config_.use_leaf_spine) {
    AEQ_ASSERT_MSG(config_.shards == 1,
                   "sharded execution supports star topologies only");
    topo::LeafSpineConfig ls = config_.leaf_spine;
    ls.host_queue = queue;
    ls.switch_queue = queue;
    network_ = topo::build_leaf_spine(sim_, ls);
    config_.num_hosts = network_.num_hosts();
  } else if (config_.shards > 1) {
    AEQ_CHECK_GE(config_.num_hosts, config_.shards);
    topo::StarConfig star;
    star.num_hosts = config_.num_hosts;
    star.link_rate = config_.link_rate;
    star.link_delay = config_.link_delay;
    star.host_queue = queue;
    star.switch_queue = queue;
    const topo::ShardPlan plan = topo::make_shard_plan(star, config_.shards);
    sharded_ = std::make_unique<sim::ShardedSimulator>(
        config_.shards, config_.scheduler_backend, plan.lookahead);
    std::vector<sim::Simulator*> sims;
    sims.reserve(config_.shards);
    for (std::size_t k = 0; k < config_.shards; ++k) {
      sims.push_back(&sharded_->shard(k));
    }
    fabric_ = std::make_unique<net::ShardFabric>(sims, plan.shard_of_host);
    network_ = topo::build_sharded_star(sims, star, plan, *fabric_);
    sharded_->set_barrier_callback([this] { fabric_->drain_all(); });
  } else {
    topo::StarConfig star;
    star.num_hosts = config_.num_hosts;
    star.link_rate = config_.link_rate;
    star.link_delay = config_.link_delay;
    star.host_queue = queue;
    star.switch_queue = queue;
    network_ = topo::build_star(sim_, star);
  }

  if (config_.schedule_digest) {
    if (sharded_) {
      sharded_->enable_schedule_digest();
    } else {
      sim_.enable_schedule_digest();
    }
  }

  if (config_.queue_reserve_packets != 0) {
    // make_queue already pre-sized each discipline's rings; extend the hint
    // to every port's in-flight ring so links never grow storage either.
    for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
      network_.host(static_cast<net::HostId>(i))
          .egress()
          .reserve_packets(config_.queue_reserve_packets);
    }
    for (std::size_t s = 0; s < network_.num_switches(); ++s) {
      net::Switch& sw = network_.fabric_switch(s);
      for (std::size_t p = 0; p < sw.num_ports(); ++p) {
        sw.port(p).reserve_packets(config_.queue_reserve_packets);
      }
    }
  }
  if (sharded_) {
    for (std::size_t k = 0; k < config_.shards; ++k) {
      sharded_->shard(k).reserve_events(config_.reserve_events);
    }
  } else {
    sim_.reserve_events(config_.reserve_events);
  }

  metrics_ = std::make_unique<rpc::RpcMetrics>(config_.num_qos, config_.slo,
                                               network_.num_hosts());
  if (sharded_) {
    // Each shard records its own hosts' RPCs into a private sink; run()
    // folds them into metrics_ in shard-id order (sample-exact merge).
    for (std::size_t k = 0; k < config_.shards; ++k) {
      shard_metrics_.push_back(std::make_unique<rpc::RpcMetrics>(
          config_.num_qos, config_.slo, network_.num_hosts()));
    }
  }

  sim::Rng seeder(config_.seed);
  rpc::RpcStackConfig stack_config;
  stack_config.num_qos = config_.num_qos;
  stack_config.mtu_bytes = config_.transport.mtu_bytes;

  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const auto id = static_cast<net::HostId>(i);
    auto cc_factory = [this]() -> std::unique_ptr<transport::CongestionControl> {
      if (config_.cc_kind == ExperimentConfig::CcKind::kFixedWindow) {
        return std::make_unique<transport::FixedWindowCC>(
            config_.fixed_window_packets);
      }
      if (config_.cc_kind == ExperimentConfig::CcKind::kDctcp) {
        return std::make_unique<transport::DctcpCC>(config_.dctcp);
      }
      return std::make_unique<transport::SwiftCC>(config_.swift);
    };
    host_stacks_.push_back(std::make_unique<transport::HostStack>(
        host_simulator(id), network_.host(id), network_.num_hosts(),
        config_.transport, cc_factory));

    if (config_.admission.factory) {
      controllers_.push_back(
          config_.admission.factory(host_simulator(id), id, seeder.fork()));
    } else {
      policy::PolicyContext context;
      context.host = id;
      context.num_qos = config_.num_qos;
      context.slo = config_.slo;
      context.link_rate = config_.link_rate;
      context.mtu_bytes = config_.transport.mtu_bytes;
      context.rng = seeder.fork();
      controllers_.push_back(
          policy::make_controller(config_.admission, std::move(context)));
    }

    stacks_.push_back(std::make_unique<rpc::RpcStack>(
        host_simulator(id), id, *host_stacks_.back(), *controllers_.back(),
        host_metrics(id), stack_config));
  }

  // Fold the legacy trace aliases into the spec before wiring.
  if (!config_.trace.empty()) config_.telemetry.trace = config_.trace;
  if (!config_.trace_csv.empty()) {
    config_.telemetry.trace_csv = config_.trace_csv;
  }
  if (config_.audit) {
    sharded_ ? register_shard_audit_checks() : register_audit_checks();
  }
  if (config_.telemetry.any()) {
    sharded_ ? wire_shard_telemetry() : wire_telemetry();
  }
}

Experiment::~Experiment() {
  // Disarm the assert-failure hook if it still points at this experiment
  // (parallel sweeps run one experiment per thread; both slots are
  // thread_local, so this races with nobody).
  if (detail::g_failure_sink_arg == this) {
    detail::g_failure_sink = nullptr;
    detail::g_failure_sink_arg = nullptr;
  }
}

void Experiment::trace_to(const std::string& chrome_json,
                          const std::string& csv) {
  if (chrome_json.empty() && csv.empty()) return;
  TelemetrySpec spec;
  spec.trace = chrome_json;
  spec.trace_csv = csv;
  enable_telemetry(spec);
}

void Experiment::enable_telemetry(const TelemetrySpec& spec) {
  AEQ_ASSERT_MSG(recorder_ == nullptr && shard_recorders_.empty(),
                 "telemetry is already enabled");
  if (!spec.any()) return;
  config_.telemetry = spec;
  config_.trace = spec.trace;
  config_.trace_csv = spec.trace_csv;
  sharded_ ? wire_shard_telemetry() : wire_telemetry();
}

void Experiment::enable_profiling(const std::string& path) {
  if (path.empty()) return;
  AEQ_ASSERT_MSG(config_.prof.empty() || config_.prof == path,
                 "profiling is already enabled with a different path");
  AEQ_ASSERT_MSG(prof_run_ == nullptr, "enable_profiling must precede run()");
  config_.prof = path;
}

// --- Execution profiling (DESIGN.md §14) ----------------------------------
//
// start_profiling() installs the collectors before the first event
// dispatches; finish_profiling() uninstalls them after the drain, assembles
// the Report and writes all three outputs (JSON, Chrome tracks, stderr
// summary). Both run strictly outside the simulation, so a profiled run
// executes the exact schedule an unprofiled run does (tests/prof_test.cc
// pins byte- and digest-identity).

void Experiment::start_profiling() {
  AEQ_ASSERT(prof_run_ == nullptr);
  prof_run_ = std::make_unique<ProfRun>();
  prof_run_->events_at_start = sharded_ ? 0 : sim_.events_processed();
  if (sharded_) {
    std::vector<obs::prof::Collector*> collectors;
    collectors.reserve(config_.shards);
    for (std::size_t k = 0; k < config_.shards; ++k) {
      prof_run_->shard_collectors.push_back(
          std::make_unique<obs::prof::Collector>());
      collectors.push_back(prof_run_->shard_collectors.back().get());
    }
    sharded_->set_profiling(std::move(collectors));
  }
  // This thread's collector: serial runs attribute the whole simulation
  // here; sharded runs only the coordinator's barrier drains and the
  // post-run sweeps that execute on this thread.
  obs::prof::install(&prof_run_->main);
  prof_run_->begin = obs::prof::calibration_point();
}

void Experiment::finish_profiling() {
  AEQ_ASSERT(prof_run_ != nullptr);
  const obs::prof::Calibration end_point = obs::prof::calibration_point();
  obs::prof::install(nullptr);

  obs::prof::Report report;
  report.sim_time = now();
  report.num_shards = sharded_ ? config_.shards : 1;
  report.cycles_per_second =
      obs::prof::cycles_per_second(prof_run_->begin, end_point);
  report.elapsed_seconds =
      end_point.wall_seconds - prof_run_->begin.wall_seconds;
  const obs::prof::Cycles envelope =
      end_point.cycles > prof_run_->begin.cycles
          ? end_point.cycles - prof_run_->begin.cycles
          : 0;
  // Per-thread denominator contribution. The measured busy envelope is
  // the truth, but with tree sampling the report scales each collector's
  // attribution by sample_scale(), and a noisy draw can push that
  // estimate past the envelope — widen to whichever is larger so scaled
  // shares still sum to <= 1 by construction (report.h).
  const auto share_denominator = [](const obs::prof::Collector& collector,
                                    obs::prof::Cycles busy) {
    const double scaled = collector.sample_scale() *
                          static_cast<double>(
                              obs::prof::attributed_self_cycles(collector));
    return scaled > static_cast<double>(busy)
               ? static_cast<obs::prof::Cycles>(scaled)
               : busy;
  };

  if (sharded_) {
    sharded_->set_profiling({});
    const sim::ExecutiveStats exec = sharded_->executive_stats();
    for (std::size_t k = 0; k < config_.shards; ++k) {
      obs::prof::ThreadProfile thread;
      thread.label = "shard" + std::to_string(k);
      thread.events = exec.shards[k].events;
      thread.busy_cycles = exec.shards[k].busy_cycles;
      thread.wait_cycles = exec.shards[k].wait_cycles;
      thread.collector = *prof_run_->shard_collectors[k];
      report.events_processed += thread.events;
      report.threads.push_back(std::move(thread));
    }
    obs::prof::ThreadProfile coordinator;
    coordinator.label = "coordinator";
    coordinator.busy_cycles = envelope;
    coordinator.collector = prof_run_->main;
    report.threads.push_back(std::move(coordinator));
    report.denominator_cycles = 0;
    for (std::size_t k = 0; k < config_.shards; ++k) {
      report.denominator_cycles += share_denominator(
          *prof_run_->shard_collectors[k], exec.shards[k].busy_cycles);
    }
    report.denominator_cycles += share_denominator(prof_run_->main, envelope);

    report.executive.present = true;
    report.executive.windows = exec.windows;
    report.executive.backoff_windows = exec.backoff_windows;
    report.executive.epochs = prof_run_->epochs;
    report.executive.barrier_cycles = exec.barrier_cycles;
    report.executive.barrier_stall_share = exec.barrier_stall_share();
    report.executive.load_imbalance = exec.load_imbalance();
    report.executive.window_hist = exec.window_hist;
    report.executive.mailbox_depth_hwm = fabric_->mailbox_depth_hwm();
    report.executive.cross_shard_packets = fabric_->cross_shard_packets();
    report.executive.mailbox_overflows = fabric_->mailbox_overflows();
  } else {
    obs::prof::ThreadProfile thread;
    thread.label = "serial";
    thread.events = sim_.events_processed() - prof_run_->events_at_start;
    thread.busy_cycles = envelope;
    thread.collector = prof_run_->main;
    report.events_processed = thread.events;
    report.threads.push_back(std::move(thread));
    report.denominator_cycles = share_denominator(prof_run_->main, envelope);
  }

  obs::prof::write_json(report, config_.prof);
  obs::prof::write_chrome_tracks(report, config_.prof + ".trace.json");
  obs::prof::write_text_summary(report, std::cerr);
  prof_run_.reset();
}

std::vector<obs::WindowStats::GaugeStat> Experiment::sample_admission_gauges()
    const {
  std::vector<obs::WindowStats::GaugeStat> out;
  if (controllers_.empty()) return out;
  // The first controller defines the gauge set — every host runs the same
  // policy, so names and order must agree across the fleet (asserted
  // below). Each output row is one gauge's fleet mean and fleet min.
  const std::vector<rpc::Gauge> first = controllers_[0]->gauges();
  if (first.empty()) return out;
  std::vector<double> sum(first.size(), 0.0);
  std::vector<double> min(first.size(), 0.0);
  for (std::size_t h = 0; h < controllers_.size(); ++h) {
    const std::vector<rpc::Gauge> gauges =
        h == 0 ? first : controllers_[h]->gauges();
    AEQ_ASSERT_MSG(gauges.size() == first.size(),
                   "admission gauge sets differ across hosts");
    for (std::size_t g = 0; g < gauges.size(); ++g) {
      AEQ_ASSERT_MSG(std::string(gauges[g].name) == first[g].name,
                     "admission gauge names differ across hosts");
      sum[g] += gauges[g].value;
      min[g] = h == 0 ? gauges[g].value : std::min(min[g], gauges[g].value);
    }
  }
  out.reserve(first.size());
  for (std::size_t g = 0; g < first.size(); ++g) {
    out.push_back({first[g].name,
                   sum[g] / static_cast<double>(controllers_.size()), min[g]});
  }
  return out;
}

void Experiment::fill_watchdog_defaults(obs::WatchdogConfig& config) const {
  // Compliance alarms derive from the configured SLO percentiles, backed
  // off by a margin so ordinary jitter around the target stays silent: a
  // 99.9% SLO alarms when a window's compliance drops below ~90%.
  constexpr double kAlarmMargin = 0.9;
  if (config.compliance_target.empty()) {
    config.compliance_target.assign(config_.num_qos, 0.0);
    for (std::size_t q = 0; q < config_.num_qos; ++q) {
      const auto qos = static_cast<net::QoSLevel>(q);
      if (!config_.slo.has_slo(qos)) continue;  // scavenger class: no alarm
      config.compliance_target[q] =
          kAlarmMargin * config_.slo.target_percentile[q] / 100.0;
    }
  }
  if (config.saturation_qlen_bytes == 0) {
    config.saturation_qlen_bytes = static_cast<std::uint64_t>(
        0.95 * static_cast<double>(config_.buffer_bytes));
  }
  // "Pinned at the controller's own floor" — separates pathological
  // collapse from ordinary heavy throttling of misbehaving channels.
  // (Resolved spec: resolve_admission_spec folded any legacy knob here.)
  if (config.p_admit_floor < 0.0) {
    config.p_admit_floor = 1.5 * config_.admission.aequitas.p_admit_floor;
  }
}

void Experiment::on_anomaly(const obs::Anomaly& anomaly) {
  if (watchdog_log_ != nullptr) {
    *watchdog_log_ << "[watchdog] " << obs::describe(anomaly) << std::endl;
  }
  // The first anomaly gets the flight dump: its ring still holds the onset
  // of the problem, which later anomalies' rings may have evicted.
  if (flight_ != nullptr && !flight_dumped_) {
    flight_dumped_ = true;
    flight_->dump(config_.telemetry.flight_recorder, &anomaly);
    if (timeseries_ != nullptr) {
      timeseries_->write_recent_csv(config_.telemetry.flight_recorder +
                                    ".timeseries.csv");
    }
  }
}

void Experiment::failure_dump(void* self) {
  auto* experiment = static_cast<Experiment*>(self);
  if (experiment->flight_ == nullptr || experiment->flight_dumped_) return;
  experiment->flight_dumped_ = true;
  experiment->flight_->dump(experiment->config_.telemetry.flight_recorder);
  if (experiment->timeseries_ != nullptr) {
    experiment->timeseries_->write_recent_csv(
        experiment->config_.telemetry.flight_recorder + ".timeseries.csv");
  }
}

void Experiment::wire_telemetry() {
  const TelemetrySpec& spec = config_.telemetry;
  recorder_ = std::make_unique<obs::Recorder>();
  if (!spec.trace.empty()) {
    recorder_->own_sink(std::make_unique<obs::ChromeTraceSink>(spec.trace));
  }
  if (!spec.trace_csv.empty()) {
    recorder_->own_sink(std::make_unique<obs::CsvSink>(spec.trace_csv));
  }
  if (!spec.flight_recorder.empty()) {
    flight_ = static_cast<obs::FlightRecorder*>(
        recorder_->own_sink(std::make_unique<obs::FlightRecorder>(
            spec.flight_recorder_config)));
    // Arm the last-gasp hook: an assert/audit failure dumps the ring
    // before aborting.
    detail::g_failure_sink = &Experiment::failure_dump;
    detail::g_failure_sink_arg = this;
  }
  // The timeseries sink registers after the flight recorder so that when a
  // window closes mid-event and the watchdog fires, the ring already holds
  // the event that closed the window.
  if (spec.windowed()) {
    obs::TimeseriesConfig ts;
    ts.window = spec.timeseries_width;
    ts.num_qos = config_.num_qos;
    ts.csv_path = spec.timeseries_csv;
    ts.json_path = spec.timeseries_json;
    timeseries_ = static_cast<obs::TimeseriesSink*>(
        recorder_->own_sink(std::make_unique<obs::TimeseriesSink>(ts)));
    // Every closed window also samples the admission controllers' gauges
    // (read-only, like the audit sweep), giving `--controller=` shoot-outs
    // a per-window gauge timeline next to the admission-plane columns.
    timeseries_->set_gauge_provider(
        [this] { return sample_admission_gauges(); });
  }
  if (spec.watchdog) {
    obs::WatchdogConfig wd = spec.watchdog_config;
    fill_watchdog_defaults(wd);
    watchdog_ = std::make_unique<obs::Watchdog>(wd);
    if (!spec.watchdog_log.empty()) {
      watchdog_log_file_.open(spec.watchdog_log,
                              std::ios::out | std::ios::trunc);
      AEQ_ASSERT_MSG(watchdog_log_file_.is_open(),
                     "cannot open watchdog log file");
      watchdog_log_ = &watchdog_log_file_;
    } else {
      watchdog_log_ = &std::cerr;
    }
    timeseries_->add_window_listener(
        [this](const obs::WindowStats& window) {
          watchdog_->on_window(window);
        });
    watchdog_->add_callback(
        [this](const obs::Anomaly& anomaly) { on_anomaly(anomaly); });
  }
  // Stable port naming: host NICs first (in host order), then each fabric
  // switch's egress ports. Names land in the trace as process labels.
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const std::uint32_t pid =
        recorder_->register_port("host" + std::to_string(i) + "-nic");
    network_.host(static_cast<net::HostId>(i))
        .egress()
        .set_observer(recorder_.get(), pid);
  }
  for (std::size_t s = 0; s < network_.num_switches(); ++s) {
    net::Switch& sw = network_.fabric_switch(s);
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const std::uint32_t pid = recorder_->register_port(
          sw.name() + "-port" + std::to_string(p));
      sw.port(p).set_observer(recorder_.get(), pid);
    }
  }
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    host_stacks_[i]->set_observer(recorder_.get());
    stacks_[i]->set_observer(recorder_.get());
  }
}

// Sharded variant of wire_telemetry: one Recorder per shard so emission
// never synchronizes across workers, each writing to `<path>.shard<k>`.
// Port names match the serial naming scheme ("host<i>-nic",
// "<switch>-port<p>") and registration order within a shard is global host
// order, so per-shard files are deterministic; run() merges them into the
// final path in shard-id order (obs::merge_sharded_*), giving stable bytes
// for any rerun of the same seed and shard count.
//
// Port-id bases: each recorder numbers its ports from a cumulative base
// (shard k's base = total ports owned by shards < k) so ids — and
// therefore Chrome-trace pids — are globally unique. Without the bases
// every shard numbered from 0 and the merged trace folded same-index
// ports from different shards into one track
// (tests/shard_merge_test.cc::PortTracksStayDistinctAcrossShards).
void Experiment::wire_shard_telemetry() {
  const TelemetrySpec& spec = config_.telemetry;
  AEQ_ASSERT_MSG(!spec.windowed() && spec.flight_recorder.empty(),
                 "windowed telemetry (timeseries/watchdog/flight recorder) "
                 "is not yet supported with shards > 1; use --trace / "
                 "--trace-csv");
  std::vector<std::uint32_t> port_count(config_.shards, 0);
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    ++port_count[fabric_->shard_of(static_cast<net::HostId>(i))];
  }
  for (std::size_t s = 0; s < network_.num_switches(); ++s) {
    port_count[s] += static_cast<std::uint32_t>(
        network_.fabric_switch(s).num_ports());
  }
  shard_recorders_.resize(config_.shards);
  std::uint32_t base = 0;
  for (std::size_t k = 0; k < config_.shards; ++k) {
    shard_recorders_[k] = std::make_unique<obs::Recorder>(base);
    base += port_count[k];
    if (!spec.trace.empty()) {
      shard_recorders_[k]->own_sink(std::make_unique<obs::ChromeTraceSink>(
          obs::shard_trace_path(spec.trace, k)));
    }
    if (!spec.trace_csv.empty()) {
      shard_recorders_[k]->own_sink(std::make_unique<obs::CsvSink>(
          obs::shard_trace_path(spec.trace_csv, k)));
    }
  }
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const auto id = static_cast<net::HostId>(i);
    obs::Recorder& recorder = *shard_recorders_[fabric_->shard_of(id)];
    const std::uint32_t pid =
        recorder.register_port("host" + std::to_string(i) + "-nic");
    network_.host(id).egress().set_observer(&recorder, pid);
    host_stacks_[i]->set_observer(&recorder);
    stacks_[i]->set_observer(&recorder);
  }
  for (std::size_t s = 0; s < network_.num_switches(); ++s) {
    net::Switch& sw = network_.fabric_switch(s);
    obs::Recorder& recorder = *shard_recorders_[s];
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const std::uint32_t pid =
          recorder.register_port(sw.name() + "-port" + std::to_string(p));
      sw.port(p).set_observer(&recorder, pid);
    }
  }
}

void Experiment::register_audit_checks() {
  auditor_ = std::make_unique<audit::Auditor>();
  audit::register_simulator_checks(*auditor_, sim_);
  audit::register_network_checks(*auditor_, network_, sim_, config_.num_qos);
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const std::string host = "host" + std::to_string(i);
    audit::register_transport_checks(*auditor_, host + "-transport",
                                     *host_stacks_[i]);
    audit::register_admission_checks(*auditor_, host + "-admission",
                                     *controllers_[i], sim_);
  }
}

// Sharded variant: one auditor per shard, covering exactly that shard's
// components (its hosts' NIC ports + transports + controllers, its switch,
// its simulator). Mid-run checks therefore never read state another shard
// is mutating; the periodic sweep runs inside each shard's own event
// stream. Checks stay read-only, so results are identical with audit on.
void Experiment::register_shard_audit_checks() {
  shard_auditors_.resize(config_.shards);
  for (std::size_t k = 0; k < config_.shards; ++k) {
    shard_auditors_[k] = std::make_unique<audit::Auditor>();
    audit::register_simulator_checks(*shard_auditors_[k],
                                     sharded_->shard(k));
  }
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    const auto id = static_cast<net::HostId>(i);
    const std::size_t k = fabric_->shard_of(id);
    audit::Auditor& auditor = *shard_auditors_[k];
    const std::string host = "host" + std::to_string(i);
    audit::register_port_checks(auditor, host + "-nic",
                                network_.host(id).egress(),
                                sharded_->shard(k), config_.num_qos);
    audit::register_transport_checks(auditor, host + "-transport",
                                     *host_stacks_[i]);
    audit::register_admission_checks(auditor, host + "-admission",
                                     *controllers_[i], sharded_->shard(k));
  }
  for (std::size_t s = 0; s < network_.num_switches(); ++s) {
    // build_sharded_star creates exactly one switch per shard, in order.
    audit::register_switch_checks(*shard_auditors_[s],
                                  network_.fabric_switch(s).name(),
                                  network_.fabric_switch(s),
                                  sharded_->shard(s), config_.num_qos);
  }
}

void Experiment::schedule_audit(sim::Time at, sim::Time end) {
  if (at > end) return;
  sim_.schedule_at(at, [this, at, end] {
    auditor_->run_all();
    schedule_audit(at + config_.audit_interval, end);
  });
}

void Experiment::schedule_shard_audit(std::size_t k, sim::Time at,
                                      sim::Time end) {
  if (at > end) return;
  sharded_->shard(k).schedule_at(at, [this, k, at, end] {
    shard_auditors_[k]->run_all();
    schedule_shard_audit(k, at + config_.audit_interval, end);
  });
}

// Periodic clock for the windowed telemetry: advance_to only *reads* sink
// state, so (like the audit sweep) the extra events cannot perturb the
// simulation. Without the tick a fully stalled run would never close
// another window and the watchdog's stall rule could never fire.
void Experiment::schedule_telemetry_tick(sim::Time at, sim::Time end) {
  if (at > end) return;
  sim_.schedule_at(at, [this, at, end] {
    timeseries_->advance_to(at);
    schedule_telemetry_tick(at + config_.telemetry.timeseries_width, end);
  });
}

const workload::SizeDistribution* Experiment::own(
    std::unique_ptr<workload::SizeDistribution> dist) {
  owned_dists_.push_back(std::move(dist));
  return owned_dists_.back().get();
}

workload::TrafficGenerator& Experiment::add_generator(
    net::HostId id, const workload::GeneratorConfig& generator_config,
    workload::DestinationPicker picker) {
  if (!picker) {
    picker = workload::uniform_destinations(network_.num_hosts(), id);
  }
  sim::Rng rng(config_.seed * 7919 + static_cast<std::uint64_t>(id) + 1);
  generators_.push_back(std::make_unique<workload::TrafficGenerator>(
      host_simulator(id), stack(id), std::move(picker), generator_config,
      rng));
  return *generators_.back();
}

void Experiment::sample_every(sim::Time interval,
                              std::function<void(sim::Time)> fn) {
  AEQ_ASSERT(interval > 0.0 && fn != nullptr);
  samplers_.push_back(Sampler{interval, std::move(fn)});
}

void Experiment::schedule_sampler(std::size_t index, sim::Time at) {
  if (at >= run_end_) return;
  sim_.schedule_at(at, [this, index, at] {
    samplers_[index].fn(at);
    schedule_sampler(index, at + samplers_[index].interval);
  });
}

void Experiment::run(sim::Time warmup, sim::Time duration, sim::Time drain) {
  AEQ_CHECK_GT(duration, 0.0);
  metrics_->set_warmup(warmup);
  for (auto& shard_metrics : shard_metrics_) {
    shard_metrics->set_warmup(warmup);
  }
  if (sharded_) {
    AEQ_ASSERT_MSG(samplers_.empty(),
                   "sample_every is not supported with shards > 1 (samplers "
                   "read cross-shard state mid-run)");
    // Per-shard metrics merge into metrics_ below; a second run() would
    // double-count the first run's samples.
    AEQ_ASSERT_MSG(!ran_, "a sharded experiment supports one run() call");
    ran_ = true;
  }
  // The warmup transient (admission probabilities converging down from 1)
  // is expected turbulence, not an anomaly; going quiet after generation
  // ends is the drain working, not a stall.
  if (watchdog_) {
    watchdog_->set_quiet_until(warmup);
    watchdog_->set_stall_horizon(warmup + duration);
  }
  run_end_ = warmup + duration;
  if (!config_.prof.empty()) start_profiling();
  const sim::Time start = now();
  for (auto& generator : generators_) {
    generator->run(start, run_end_);
  }
  for (std::size_t s = 0; s < samplers_.size(); ++s) {
    schedule_sampler(s, start + samplers_[s].interval);
  }
  if (auditor_ || !shard_auditors_.empty()) {
    AEQ_ASSERT(config_.audit_interval > 0.0);
    if (sharded_) {
      for (std::size_t k = 0; k < config_.shards; ++k) {
        schedule_shard_audit(k, start + config_.audit_interval,
                             run_end_ + drain);
      }
    } else {
      schedule_audit(start + config_.audit_interval, run_end_ + drain);
    }
  }
  if (timeseries_ != nullptr) {
    AEQ_ASSERT(config_.telemetry.timeseries_width > 0.0);
    schedule_telemetry_tick(start + config_.telemetry.timeseries_width,
                            run_end_ + drain);
  }
  if (sharded_) {
    sharded_->run_until(run_end_);
    if (prof_run_) prof_run_->epochs.push_back(sharded_->windows_executed());
    // Let in-flight RPCs finish so tail percentiles include them.
    sharded_->run_until(run_end_ + drain);
    if (prof_run_) prof_run_->epochs.push_back(sharded_->windows_executed());
    // Post-drain audit sweep per shard, then fold the per-shard metric
    // sinks into the global one in shard-id order (sample-exact; see
    // rpc::RpcMetrics::merge) and stitch the per-shard trace files.
    for (auto& shard_auditor : shard_auditors_) shard_auditor->run_all();
    AEQ_ASSERT_MSG(fabric_->idle(),
                   "cross-shard mailboxes still hold packets after drain");
    for (auto& shard_metrics : shard_metrics_) {
      metrics_->merge(*shard_metrics);
    }
    for (auto& shard_recorder : shard_recorders_) {
      shard_recorder->flush(sharded_->now());
    }
    if (!shard_recorders_.empty()) {
      if (!config_.telemetry.trace.empty()) {
        obs::merge_sharded_chrome_traces(config_.telemetry.trace,
                                         config_.shards);
      }
      if (!config_.telemetry.trace_csv.empty()) {
        obs::merge_sharded_csv_traces(config_.telemetry.trace_csv,
                                      config_.shards);
      }
    }
    if (prof_run_) finish_profiling();
    return;
  }
  sim_.run_until(run_end_);
  // Let in-flight RPCs finish so tail percentiles include them.
  sim_.run_until(run_end_ + drain);
  // One final sweep over the drained state (catches leaks that only show
  // once queues empty, e.g. a pool reservation that never released).
  if (auditor_) auditor_->run_all();
  if (recorder_) recorder_->flush(sim_.now());
  if (prof_run_) finish_profiling();
}

double Experiment::mean_downlink_utilization() const {
  double total = 0.0;
  const sim::Time now = this->now();
  if (now <= 0.0) return 0.0;
  for (std::size_t i = 0; i < network_.num_hosts(); ++i) {
    total += network_.downlink(static_cast<net::HostId>(i)).utilization(now);
  }
  return total / static_cast<double>(network_.num_hosts());
}

}  // namespace aeq::runner
