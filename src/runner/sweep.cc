#include "runner/sweep.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <thread>
#include <utility>

#include "sim/assert.h"
#include "sim/rng.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace aeq::runner {

std::size_t default_jobs() {
  if (const char* env = std::getenv("AEQ_JOBS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_jobs(std::int64_t flag_value) {
  return flag_value > 0 ? static_cast<std::size_t>(flag_value)
                        : default_jobs();
}

namespace detail {

void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body) {
  AEQ_CHECK_GT(jobs, 0u);
  if (count == 0) return;

  std::atomic<std::size_t> next{0};
  // Lowest-index failure wins, so the surfaced error does not depend on
  // worker scheduling. The slot's lock protocol is annotated so clang
  // -Wthread-safety proves every access happens under the mutex.
  struct ErrorSlot {
    util::Mutex mutex;
    std::size_t index AEQ_GUARDED_BY(mutex) =
        std::numeric_limits<std::size_t>::max();
    std::exception_ptr error AEQ_GUARDED_BY(mutex);
  } slot;

  auto worker = [&] {
    while (true) {
      const std::size_t index = next.fetch_add(1);
      if (index >= count) return;
      try {
        body(index);
      } catch (...) {
        const util::MutexLock lock(slot.mutex);
        if (index < slot.index) {
          slot.index = index;
          slot.error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  const std::size_t extra = std::min(jobs, count) - 1;
  threads.reserve(extra);
  for (std::size_t t = 0; t < extra; ++t) threads.emplace_back(worker);
  worker();  // the caller thread is worker 0
  for (std::thread& thread : threads) thread.join();

  std::exception_ptr error;
  {
    // Workers are joined; the lock is only needed to satisfy the analysis
    // (and costs nothing uncontended).
    const util::MutexLock lock(slot.mutex);
    error = slot.error;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace detail

SweepRunner::SweepRunner(SweepOptions options)
    : options_(options), jobs_(resolve_jobs(
          options.jobs > 0 ? static_cast<std::int64_t>(options.jobs) : 0)) {}

std::size_t SweepRunner::submit(PointFn fn) {
  AEQ_ASSERT(fn != nullptr);
  points_.push_back(std::move(fn));
  return points_.size() - 1;
}

std::uint64_t SweepRunner::point_seed(std::size_t index) const {
  return sim::derive_seed(options_.base_seed, index);
}

std::vector<PointResult> SweepRunner::run() {
  results_.resize(points_.size());
  const std::size_t first = completed_;
  const std::size_t fresh = points_.size() - first;
  detail::run_indexed(fresh, jobs_, [&](std::size_t offset) {
    const std::size_t index = first + offset;
    const PointContext context{index, point_seed(index)};
    results_[index] = points_[index](context);
  });
  completed_ = points_.size();
  return results_;
}

}  // namespace aeq::runner
