// Parallel sweep execution with deterministic, structured results.
//
// Every figure/ablation in bench/ is a grid of *independent* simulation
// points (the simulator holds no global mutable state), so wall-clock time
// is gated by the embarrassingly parallel layer above a single run. A
// SweepRunner takes N closures that each construct and run an Experiment
// and return a structured PointResult, executes them on a fixed-size
// worker pool, and hands the results back in SUBMISSION order — so
// rendered output is byte-identical to the serial run regardless of
// completion order, and `--jobs 1` equals `--jobs N` for a fixed seed.
//
// Determinism contract:
//  * each point gets its own seed, sim::derive_seed(base_seed, index) —
//    a pure-integer SplitMix64 derivation, stable across platforms — so
//    points never share an RNG stream;
//  * closures must not touch shared mutable state (they own their
//    Experiment); everything a point wants to report goes into its
//    PointResult;
//  * results are stored by point index and exceptions are rethrown on the
//    caller thread, lowest index first.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "stats/table.h"

namespace aeq::runner {

// Worker-pool width: `flag_value` (a --jobs flag) when > 0, else the
// AEQ_JOBS environment variable when set and positive, else
// std::thread::hardware_concurrency() (at least 1).
std::size_t default_jobs();
std::size_t resolve_jobs(std::int64_t flag_value);

// What one sweep point hands back to the main thread. Rows feed the
// result table (most points contribute exactly one row; calibration or
// per-QoS points may contribute several); metrics carries named scalars
// for cross-point post-processing (least-squares fits, normalization
// bases, speedup ratios) without parsing the rendered output.
struct PointResult {
  std::vector<stats::Row> rows;
  std::map<std::string, double> metrics;

  static PointResult single(stats::Row row) {
    PointResult result;
    result.rows.push_back(std::move(row));
    return result;
  }
};

struct PointContext {
  std::size_t index = 0;   // submission index
  std::uint64_t seed = 0;  // sim::derive_seed(base_seed, index)
};

using PointFn = std::function<PointResult(const PointContext&)>;

struct SweepOptions {
  std::size_t jobs = 0;        // 0 => default_jobs()
  std::uint64_t base_seed = 1;
};

namespace detail {
// Runs body(0), ..., body(count - 1) across `jobs` worker threads (the
// caller thread doubles as worker 0). Indices are claimed from an atomic
// counter; any exceptions are captured and the lowest-index one is
// rethrown on the caller thread after all workers join.
void run_indexed(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)>& body);
}  // namespace detail

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  // Registers a point; returns its index. The closure runs on a worker
  // thread and must be self-contained (see determinism contract above).
  std::size_t submit(PointFn fn);

  // Seed point `index` will receive, for reproducing one point serially.
  std::uint64_t point_seed(std::size_t index) const;

  std::size_t size() const { return points_.size(); }
  std::size_t jobs() const { return jobs_; }
  std::uint64_t base_seed() const { return options_.base_seed; }

  // Executes all submitted points and returns their results in submission
  // order. May be called again after further submit()s; already-run points
  // are not re-executed.
  std::vector<PointResult> run();

 private:
  SweepOptions options_;
  std::size_t jobs_;
  std::vector<PointFn> points_;
  std::vector<PointResult> results_;
  std::size_t completed_ = 0;
};

// Generic fan-out for benches whose points produce richer payloads than
// PointResult (histogram CDFs, per-group percentile trackers, ...): runs
// fn(index) for index in [0, count) on `jobs` workers and returns the
// results in index order. R must be default-constructible and movable.
template <typename Fn>
auto parallel_points(std::size_t count, std::size_t jobs, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> results(count);
  detail::run_indexed(count, jobs,
                      [&](std::size_t index) { results[index] = fn(index); });
  return results;
}

}  // namespace aeq::runner
