// Harness for the related-work comparison (Figure 22): wires one of the
// baseline protocol stacks (pFabric / QJump / Homa / D3 / PDQ) into a star
// topology with the scheduler that protocol assumes, plus the usual RPC
// stacks, metrics and generators. Aequitas itself runs through the regular
// runner::Experiment (WFQ + Swift + admission control).
#pragma once

#include <memory>
#include <vector>

#include "net/queue_factory.h"
#include "protocols/deadline_fabric.h"
#include "protocols/homa.h"
#include "protocols/pfabric.h"
#include "protocols/qjump.h"
#include "rpc/metrics.h"
#include "rpc/rpc_stack.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace aeq::runner {

enum class BaselineProtocol { kPfabric, kQjump, kHoma, kD3, kPdq };

const char* baseline_name(BaselineProtocol protocol);

struct ProtocolExperimentConfig {
  // Event-scheduler backend (see ExperimentConfig::scheduler_backend).
  sim::SchedulerBackend scheduler_backend = sim::SchedulerBackend::kCalendar;

  BaselineProtocol protocol = BaselineProtocol::kPfabric;
  std::size_t num_hosts = 33;
  sim::Rate link_rate = sim::gbps(100);
  sim::Time link_delay = 0.5 * sim::kUsec;
  std::size_t num_qos = 3;  // RPC priority space for SLO accounting
  rpc::SloConfig slo;
  std::uint32_t mtu_bytes = 4096;
  std::uint64_t seed = 1;

  // Protocol knobs (defaults follow each paper's guidance scaled to 100G).
  std::uint64_t pfabric_buffer_bytes = 160 * 1024;  // ~2.5 BDP
  std::uint32_t pfabric_window_packets = 16;
  std::vector<double> qjump_level_rate_fraction = {0.05, 0.20, 0.0};
  protocols::HomaConfig homa;
  sim::Time deadline_epoch = 20 * sim::kUsec;
};

class ProtocolExperiment {
 public:
  explicit ProtocolExperiment(const ProtocolExperimentConfig& config);

  sim::Simulator& simulator() { return sim_; }
  topo::Network& network() { return network_; }
  rpc::RpcMetrics& metrics() { return *metrics_; }
  rpc::RpcStack& stack(net::HostId id) {
    return *stacks_.at(static_cast<std::size_t>(id));
  }
  protocols::DeadlineFabric* fabric() { return fabric_.get(); }

  const workload::SizeDistribution* own(
      std::unique_ptr<workload::SizeDistribution> dist);
  workload::TrafficGenerator& add_generator(
      net::HostId id, const workload::GeneratorConfig& generator_config,
      workload::DestinationPicker picker = nullptr);

  void run(sim::Time warmup, sim::Time duration,
           sim::Time drain = 2 * sim::kMsec);

  // Offered payload bytes during [0, warmup+duration) vs delivered payload.
  double goodput_utilization() const;

  // Fraction of [0, now] the host downlinks spent transmitting — the
  // "achieved vs maximum goodput" proxy used for Figure 22 (terminated
  // flows leave the links idle).
  double mean_downlink_utilization() const;

 private:
  ProtocolExperimentConfig config_;
  sim::Simulator sim_;
  topo::Network network_;
  std::unique_ptr<protocols::DeadlineFabric> fabric_;
  std::unique_ptr<rpc::RpcMetrics> metrics_;
  rpc::AlwaysAdmit admission_;
  std::vector<std::unique_ptr<transport::MessageTransport>> transports_;
  std::vector<std::unique_ptr<rpc::RpcStack>> stacks_;
  std::vector<std::unique_ptr<workload::TrafficGenerator>> generators_;
  std::vector<std::unique_ptr<workload::SizeDistribution>> owned_dists_;
};

}  // namespace aeq::runner
