// Experiment harness: wires a topology, per-host transport stacks, RPC
// stacks, admission controllers, the shared metrics sink, and traffic
// generators into one runnable object. Every bench/example builds on this.
#pragma once

#include <fstream>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "core/aequitas.h"
#include "net/queue_factory.h"
#include "net/shard_fabric.h"
#include "obs/flight_recorder.h"
#include "obs/prof/report.h"
#include "obs/recorder.h"
#include "obs/timeseries_sink.h"
#include "obs/watchdog.h"
#include "policy/spec.h"
#include "rpc/metrics.h"
#include "rpc/rpc_stack.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "transport/dctcp.h"
#include "transport/host_stack.h"
#include "transport/swift.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace aeq::runner {

// Everything the telemetry pipeline can attach to one experiment. All
// outputs are independent; any non-empty path (or `watchdog`) creates the
// obs::Recorder and wires every port, flow, and RPC stack. With the whole
// spec empty no recorder exists and every emission site reduces to a single
// null-pointer test, so results stay bit-identical with telemetry on or off.
struct TelemetrySpec {
  // Raw per-event streams (PR-4 sinks).
  std::string trace;      // Chrome trace_event JSON (Perfetto-loadable)
  std::string trace_csv;  // flat per-event CSV

  // Windowed timeline (obs::TimeseriesSink): per-QoS RNL percentiles,
  // SLO compliance, byte shares, p_admit, port queue depths — one bounded
  // record per `timeseries_width` of simulated time.
  std::string timeseries_csv;
  std::string timeseries_json;
  sim::Time timeseries_width = 100 * sim::kUsec;

  // Online anomaly detection over closed windows (obs::Watchdog). Enabled
  // implies a TimeseriesSink even when both timeseries paths are empty.
  // Anomaly lines go to `watchdog_log` ("" = stderr). Zero/empty thresholds
  // in `watchdog_config` are auto-filled by the experiment: compliance
  // targets from the SLO percentiles (with an alarm margin), saturation
  // from the port buffer size.
  bool watchdog = false;
  std::string watchdog_log;
  obs::WatchdogConfig watchdog_config;

  // Post-mortem ring buffer (obs::FlightRecorder). The path is where the
  // Chrome-trace snapshot lands when the watchdog first fires or when an
  // AEQ_ASSERT/AEQ_CHECK (including audit invariants) aborts the run; the
  // recent timeseries rows land next to it at `<path>.timeseries.csv`.
  std::string flight_recorder;
  obs::FlightRecorderConfig flight_recorder_config;

  bool windowed() const {
    return !timeseries_csv.empty() || !timeseries_json.empty() || watchdog;
  }
  bool any() const {
    return !trace.empty() || !trace_csv.empty() || windowed() ||
           !flight_recorder.empty();
  }
};

struct ExperimentConfig {
  // Simulation executive: which event-scheduler backend dispatches events.
  // Both produce identical results for a fixed seed (enforced by the
  // scheduler-equivalence property test); the calendar queue is the fast
  // path for dense packet-level workloads and therefore the default.
  sim::SchedulerBackend scheduler_backend = sim::SchedulerBackend::kCalendar;

  // Topology (single-switch star unless use_leaf_spine).
  std::size_t num_hosts = 3;
  sim::Rate link_rate = sim::gbps(100);
  sim::Time link_delay = 0.5 * sim::kUsec;
  bool use_leaf_spine = false;
  topo::LeafSpineConfig leaf_spine;  // consulted when use_leaf_spine

  // QoS plane.
  std::size_t num_qos = 3;
  std::vector<double> wfq_weights = {8.0, 4.0, 1.0};
  net::SchedulerType scheduler = net::SchedulerType::kWfq;
  std::uint64_t buffer_bytes = 8 * sim::kMiB;  // per port, shared
  // Per-class drop isolation at every port (see QueueConfig); 0 = off.
  std::uint64_t per_class_buffer_bytes = 0;
  // Pre-sizes every port queue's per-class packet ring (see
  // QueueConfig::reserve_packets): with a hint above the run's deepest
  // backlog the event loop performs zero steady-state allocations, which
  // the allocation regression test pins down. 0 = grow on demand.
  std::size_t queue_reserve_packets = 0;
  // Pre-sizes the event scheduler (arena/handle-table/heap or calendar
  // buckets) for this many concurrent pending events; same contract as
  // queue_reserve_packets. 0 = grow on demand.
  std::size_t reserve_events = 0;

  // Intra-run parallelism: partition the (star) topology into this many
  // shards, each with its own event scheduler, advanced in conservative
  // lookahead windows on a worker pool (sim::ShardedSimulator). Same seed
  // and workload produce metrics identical to shards=1 for any value —
  // enforced by the shard-determinism property suite. shards=1 is the
  // plain serial executive with zero overhead. Requires a star topology;
  // sample_every and windowed telemetry (timeseries/watchdog/flight
  // recorder) are not yet supported above 1.
  std::size_t shards = 1;

  // Transport.
  enum class CcKind { kSwift, kDctcp, kFixedWindow };
  transport::TransportConfig transport;
  CcKind cc_kind = CcKind::kSwift;
  transport::SwiftConfig swift;
  transport::DctcpConfig dctcp;
  // ECN marking threshold applied to every queue (needed by DCTCP).
  std::uint64_t ecn_threshold_bytes = 0;
  bool use_fixed_window = false;  // legacy alias for CcKind::kFixedWindow
  double fixed_window_packets = 64.0;

  // Admission control: which policy every host runs, resolved through the
  // policy registry (src/policy/). The default spec is Aequitas with the
  // paper's AIMD knobs; set admission.kind to sweep competing policies
  // ("always-admit", "ticket-pool", "bandit", "swp-pacing", or anything
  // registered via policy::register_policy).
  policy::AdmissionSpec admission;

  // Legacy aliases, folded into `admission` at construction (the
  // use_fixed_window/cc_kind precedent): each may only RESTATE what the
  // spec already says — a conflicting combination is a configuration
  // error that aborts.
  //   admission_factory   -> admission.factory
  //   enable_aequitas     -> admission.kind ("aequitas"/"always-admit")
  //   alpha, beta_per_mtu, p_admit_floor -> admission.aequitas.*
  std::function<std::unique_ptr<rpc::AdmissionController>(
      sim::Simulator&, net::HostId, sim::Rng)>
      admission_factory;
  bool enable_aequitas = true;
  double alpha = 0.01;
  double beta_per_mtu = 0.01;
  double p_admit_floor = 0.01;
  rpc::SloConfig slo;  // required (also drives SLO-met accounting)

  // Invariant auditing (src/audit/): when set, the experiment registers the
  // full check catalogue over its components and evaluates it every
  // `audit_interval` of simulated time plus once after the drain. Checks are
  // read-only, so results are bit-identical with auditing on or off.
  // Defaults on in -DAEQ_AUDIT builds (which additionally enable the
  // per-event hot-path hooks), off otherwise.
  bool audit = audit::kBuildEnabled;
  sim::Time audit_interval = 50 * sim::kUsec;

  // Telemetry (src/obs/): see TelemetrySpec. `trace` / `trace_csv` are
  // legacy aliases for telemetry.trace / telemetry.trace_csv, folded into
  // the spec at construction.
  TelemetrySpec telemetry;
  std::string trace;
  std::string trace_csv;

  // Execution profiling (src/obs/prof/, DESIGN.md §14): when non-empty,
  // run() attributes cycle cost per component into this JSON report path
  // (plus `<prof>.trace.json` Chrome-trace flame rows and a text summary
  // on stderr). Observe-only: schedules and stdout/artifact bytes are
  // identical with profiling on or off, on both backends at any shard
  // count (tests/prof_test.cc pins this).
  std::string prof;

  // Schedule digest (sim/digest.h): when true, every dispatched event's
  // (time, tie-rank) is folded into a digest exposed by
  // Experiment::schedule_digest(). Read-only with respect to the run —
  // results are bit-identical either way. Requires an AEQ_SCHED_DIGEST=ON
  // build (the default).
  bool schedule_digest = false;

  std::uint64_t seed = 1;
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);
  ~Experiment();

  // The serial executive; only meaningful when config().shards == 1 (a
  // sharded experiment runs on shard simulators instead — see sharded()).
  sim::Simulator& simulator() { return sim_; }

  // The parallel executive; null when config().shards == 1.
  sim::ShardedSimulator* sharded() { return sharded_.get(); }

  // The cross-shard packet fabric; null when config().shards == 1.
  net::ShardFabric* shard_fabric() { return fabric_.get(); }

  // Current simulated time / total events dispatched, valid in both modes.
  sim::Time now() const {
    return sharded_ ? sharded_->now() : sim_.now();
  }
  std::uint64_t events_processed() const {
    return sharded_ ? sharded_->events_processed() : sim_.events_processed();
  }

  // Merged schedule digest, valid in both modes; all-zero counts unless
  // config().schedule_digest was set. Its canonical() form is invariant
  // across backends, shard counts, and address-space layouts for a fixed
  // seed (DESIGN.md §12).
  sim::ScheduleDigest schedule_digest() const {
    return sharded_ ? sharded_->schedule_digest() : sim_.schedule_digest();
  }

  topo::Network& network() { return network_; }
  rpc::RpcMetrics& metrics() { return *metrics_; }
  rpc::RpcStack& stack(net::HostId id) {
    return *stacks_.at(static_cast<std::size_t>(id));
  }
  transport::HostStack& host_stack(net::HostId id) {
    return *host_stacks_.at(static_cast<std::size_t>(id));
  }
  // Host `id`'s admission controller, whatever policy it runs. The base
  // interface (gauges(), audit_invariants(), on_window()) is the
  // policy-agnostic surface benches and checks should prefer.
  rpc::AdmissionController& admission(net::HostId id) {
    return *controllers_.at(static_cast<std::size_t>(id));
  }
  const rpc::AdmissionController& admission(net::HostId id) const {
    return *controllers_.at(static_cast<std::size_t>(id));
  }

  // Typed shim for Aequitas-specific introspection (per-channel p_admit,
  // increment_window): null when host `id` runs any other policy.
  core::AequitasController* aequitas(net::HostId id) {
    return dynamic_cast<core::AequitasController*>(
        controllers_.at(static_cast<std::size_t>(id)).get());
  }

  const ExperimentConfig& config() const { return config_; }

  // The invariant-audit registry; null when ExperimentConfig::audit is off.
  // A sharded experiment audits per shard instead — see shard_auditor().
  audit::Auditor* auditor() { return auditor_.get(); }

  // Shard k's audit registry (sharded mode with audit on; null otherwise).
  // Each shard audits exactly its own components so mid-run checks never
  // read another shard's in-flight state.
  audit::Auditor* shard_auditor(std::size_t k) {
    return k < shard_auditors_.size() ? shard_auditors_[k].get() : nullptr;
  }

  // The telemetry recorder; null unless some TelemetrySpec output is set.
  // Extra sinks (e.g. obs::CounterSink) may be attached before run().
  obs::Recorder* tracing() { return recorder_.get(); }

  // The windowed-telemetry components; null unless the spec enables them.
  obs::TimeseriesSink* timeseries() { return timeseries_; }
  obs::Watchdog* watchdog() { return watchdog_.get(); }
  obs::FlightRecorder* flight_recorder() { return flight_; }

  // Post-construction equivalent of setting ExperimentConfig::telemetry:
  // creates the recorder and wires every port, flow, and RPC stack. Must be
  // called before run(), at most once, and only when the config did not
  // already enable telemetry.
  void enable_telemetry(const TelemetrySpec& spec);

  // Legacy alias: enable_telemetry with just trace / trace_csv set.
  void trace_to(const std::string& chrome_json,
                const std::string& csv = "");

  // Post-construction equivalent of setting ExperimentConfig::prof. Must
  // be called before run(); at most one profile path per experiment.
  void enable_profiling(const std::string& path);

  // Registers and owns a size distribution for the experiment's lifetime.
  const workload::SizeDistribution* own(
      std::unique_ptr<workload::SizeDistribution> dist);

  // Attaches a generator to host `id`; destinations default to uniform
  // all-to-all.
  workload::TrafficGenerator& add_generator(
      net::HostId id, const workload::GeneratorConfig& generator_config,
      workload::DestinationPicker picker = nullptr);

  // Runs generators over [0, warmup + duration); metrics exclude RPCs
  // issued during warmup. Afterwards drains in-flight work for up to
  // `drain` extra simulated seconds.
  void run(sim::Time warmup, sim::Time duration,
           sim::Time drain = 2 * sim::kMsec);

  // Registers a callback invoked every `interval` of simulated time during
  // run() (e.g. to sample p_admit or outstanding gauges).
  void sample_every(sim::Time interval, std::function<void(sim::Time)> fn);

  // Aggregate utilization of all host downlinks over [0, now].
  double mean_downlink_utilization() const;

 private:
  void resolve_admission_spec();
  void schedule_sampler(std::size_t index, sim::Time at);
  void register_audit_checks();
  void register_shard_audit_checks();
  void schedule_audit(sim::Time at, sim::Time end);
  void schedule_shard_audit(std::size_t k, sim::Time at, sim::Time end);
  void wire_shard_telemetry();
  // The executive a given host's components schedule into.
  sim::Simulator& host_simulator(net::HostId id) {
    return sharded_ ? sharded_->shard(fabric_->shard_of(id)) : sim_;
  }
  rpc::RpcMetrics& host_metrics(net::HostId id) {
    return sharded_ ? *shard_metrics_[fabric_->shard_of(id)] : *metrics_;
  }
  void schedule_telemetry_tick(sim::Time at, sim::Time end);
  void wire_telemetry();
  void start_profiling();
  void finish_profiling();
  std::vector<obs::WindowStats::GaugeStat> sample_admission_gauges() const;
  void fill_watchdog_defaults(obs::WatchdogConfig& config) const;
  void on_anomaly(const obs::Anomaly& anomaly);
  // Last-gasp hook (sim/assert.h): dumps the flight recorder and recent
  // timeseries rows before an assert/audit failure aborts the process.
  static void failure_dump(void* self);

  ExperimentConfig config_;
  sim::Simulator sim_;
  // Sharded-mode state (config_.shards > 1): the parallel executive, the
  // cross-shard mailbox fabric, and per-shard metrics sinks merged into
  // metrics_ after the run.
  std::unique_ptr<sim::ShardedSimulator> sharded_;
  std::unique_ptr<net::ShardFabric> fabric_;
  std::vector<std::unique_ptr<rpc::RpcMetrics>> shard_metrics_;
  std::vector<std::unique_ptr<audit::Auditor>> shard_auditors_;
  std::vector<std::unique_ptr<obs::Recorder>> shard_recorders_;
  bool ran_ = false;
  topo::Network network_;
  std::unique_ptr<audit::Auditor> auditor_;
  std::unique_ptr<obs::Recorder> recorder_;
  obs::TimeseriesSink* timeseries_ = nullptr;  // owned by recorder_
  obs::FlightRecorder* flight_ = nullptr;      // owned by recorder_
  std::unique_ptr<obs::Watchdog> watchdog_;
  std::ofstream watchdog_log_file_;
  std::ostream* watchdog_log_ = nullptr;
  bool flight_dumped_ = false;
  std::unique_ptr<rpc::RpcMetrics> metrics_;
  std::vector<std::unique_ptr<transport::HostStack>> host_stacks_;
  std::vector<std::unique_ptr<rpc::AdmissionController>> controllers_;
  std::vector<std::unique_ptr<rpc::RpcStack>> stacks_;
  std::vector<std::unique_ptr<workload::TrafficGenerator>> generators_;
  std::vector<std::unique_ptr<workload::SizeDistribution>> owned_dists_;
  struct Sampler {
    sim::Time interval;
    std::function<void(sim::Time)> fn;
  };
  std::vector<Sampler> samplers_;
  sim::Time run_end_ = 0.0;

  // Live profiling state for the current run() (config_.prof non-empty):
  // the main-thread collector (serial loop, or the sharded coordinator's
  // barrier drains and post-run sweeps), per-shard worker collectors, the
  // opening calibration point, and the executive's cumulative window
  // counts at each run-phase boundary.
  struct ProfRun {
    obs::prof::Collector main;
    std::vector<std::unique_ptr<obs::prof::Collector>> shard_collectors;
    obs::prof::Calibration begin;
    std::vector<std::uint64_t> epochs;
    // Serial runs may call run() repeatedly; the report counts only the
    // events dispatched inside this profiled run.
    std::uint64_t events_at_start = 0;
  };
  std::unique_ptr<ProfRun> prof_run_;
};

}  // namespace aeq::runner
