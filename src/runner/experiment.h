// Experiment harness: wires a topology, per-host transport stacks, RPC
// stacks, admission controllers, the shared metrics sink, and traffic
// generators into one runnable object. Every bench/example builds on this.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "audit/audit.h"
#include "core/aequitas.h"
#include "net/queue_factory.h"
#include "obs/recorder.h"
#include "rpc/metrics.h"
#include "rpc/rpc_stack.h"
#include "sim/simulator.h"
#include "topo/builders.h"
#include "transport/dctcp.h"
#include "transport/host_stack.h"
#include "transport/swift.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace aeq::runner {

struct ExperimentConfig {
  // Simulation executive: which event-scheduler backend dispatches events.
  // Both produce identical results for a fixed seed (enforced by the
  // scheduler-equivalence property test); the calendar queue is the fast
  // path for dense packet-level workloads and therefore the default.
  sim::SchedulerBackend scheduler_backend = sim::SchedulerBackend::kCalendar;

  // Topology (single-switch star unless use_leaf_spine).
  std::size_t num_hosts = 3;
  sim::Rate link_rate = sim::gbps(100);
  sim::Time link_delay = 0.5 * sim::kUsec;
  bool use_leaf_spine = false;
  topo::LeafSpineConfig leaf_spine;  // consulted when use_leaf_spine

  // QoS plane.
  std::size_t num_qos = 3;
  std::vector<double> wfq_weights = {8.0, 4.0, 1.0};
  net::SchedulerType scheduler = net::SchedulerType::kWfq;
  std::uint64_t buffer_bytes = 8 * sim::kMiB;  // per port, shared
  // Per-class drop isolation at every port (see QueueConfig); 0 = off.
  std::uint64_t per_class_buffer_bytes = 0;

  // Transport.
  enum class CcKind { kSwift, kDctcp, kFixedWindow };
  transport::TransportConfig transport;
  CcKind cc_kind = CcKind::kSwift;
  transport::SwiftConfig swift;
  transport::DctcpConfig dctcp;
  // ECN marking threshold applied to every queue (needed by DCTCP).
  std::uint64_t ecn_threshold_bytes = 0;
  bool use_fixed_window = false;  // legacy alias for CcKind::kFixedWindow
  double fixed_window_packets = 64.0;

  // Admission control: Aequitas when true, pass-through otherwise.
  // `admission_factory`, when set, overrides both and installs a custom
  // controller per host (ablations, quota policies, misalignment models).
  std::function<std::unique_ptr<rpc::AdmissionController>(
      sim::Simulator&, net::HostId, sim::Rng)>
      admission_factory;
  bool enable_aequitas = true;
  double alpha = 0.01;
  double beta_per_mtu = 0.01;
  double p_admit_floor = 0.01;
  rpc::SloConfig slo;  // required (also drives SLO-met accounting)

  // Invariant auditing (src/audit/): when set, the experiment registers the
  // full check catalogue over its components and evaluates it every
  // `audit_interval` of simulated time plus once after the drain. Checks are
  // read-only, so results are bit-identical with auditing on or off.
  // Defaults on in -DAEQ_AUDIT builds (which additionally enable the
  // per-event hot-path hooks), off otherwise.
  bool audit = audit::kBuildEnabled;
  sim::Time audit_interval = 50 * sim::kUsec;

  // Telemetry (src/obs/): setting `trace` writes a Chrome trace_event JSON
  // file (load in chrome://tracing or Perfetto); `trace_csv` writes a flat
  // per-event CSV timeseries. Either one attaches an obs::Recorder to every
  // port, transport flow, and RPC stack. When both are empty no recorder is
  // created and every emission site reduces to a single null-pointer test,
  // so results are bit-identical with tracing on or off.
  std::string trace;
  std::string trace_csv;

  std::uint64_t seed = 1;
};

class Experiment {
 public:
  explicit Experiment(const ExperimentConfig& config);

  sim::Simulator& simulator() { return sim_; }
  topo::Network& network() { return network_; }
  rpc::RpcMetrics& metrics() { return *metrics_; }
  rpc::RpcStack& stack(net::HostId id) {
    return *stacks_.at(static_cast<std::size_t>(id));
  }
  transport::HostStack& host_stack(net::HostId id) {
    return *host_stacks_.at(static_cast<std::size_t>(id));
  }
  // Null when Aequitas is disabled.
  core::AequitasController* aequitas(net::HostId id) {
    return aequitas_.at(static_cast<std::size_t>(id));
  }

  const ExperimentConfig& config() const { return config_; }

  // The invariant-audit registry; null when ExperimentConfig::audit is off.
  audit::Auditor* auditor() { return auditor_.get(); }

  // The telemetry recorder; null unless ExperimentConfig::trace or
  // trace_csv is set. Extra sinks (e.g. obs::CounterSink) may be attached
  // before run().
  obs::Recorder* tracing() { return recorder_.get(); }

  // Post-construction equivalent of setting ExperimentConfig::trace /
  // trace_csv: creates the recorder and wires every port, flow, and RPC
  // stack. Must be called before run(), at most once, and only when the
  // config did not already enable tracing.
  void trace_to(const std::string& chrome_json,
                const std::string& csv = "");

  // Registers and owns a size distribution for the experiment's lifetime.
  const workload::SizeDistribution* own(
      std::unique_ptr<workload::SizeDistribution> dist);

  // Attaches a generator to host `id`; destinations default to uniform
  // all-to-all.
  workload::TrafficGenerator& add_generator(
      net::HostId id, const workload::GeneratorConfig& generator_config,
      workload::DestinationPicker picker = nullptr);

  // Runs generators over [0, warmup + duration); metrics exclude RPCs
  // issued during warmup. Afterwards drains in-flight work for up to
  // `drain` extra simulated seconds.
  void run(sim::Time warmup, sim::Time duration,
           sim::Time drain = 2 * sim::kMsec);

  // Registers a callback invoked every `interval` of simulated time during
  // run() (e.g. to sample p_admit or outstanding gauges).
  void sample_every(sim::Time interval, std::function<void(sim::Time)> fn);

  // Aggregate utilization of all host downlinks over [0, now].
  double mean_downlink_utilization() const;

 private:
  void schedule_sampler(std::size_t index, sim::Time at);
  void register_audit_checks();
  void schedule_audit(sim::Time at, sim::Time end);
  void enable_tracing();

  ExperimentConfig config_;
  sim::Simulator sim_;
  topo::Network network_;
  std::unique_ptr<audit::Auditor> auditor_;
  std::unique_ptr<obs::Recorder> recorder_;
  std::unique_ptr<rpc::RpcMetrics> metrics_;
  std::vector<std::unique_ptr<transport::HostStack>> host_stacks_;
  std::vector<std::unique_ptr<rpc::AdmissionController>> controllers_;
  std::vector<core::AequitasController*> aequitas_;
  std::vector<std::unique_ptr<rpc::RpcStack>> stacks_;
  std::vector<std::unique_ptr<workload::TrafficGenerator>> generators_;
  std::vector<std::unique_ptr<workload::SizeDistribution>> owned_dists_;
  struct Sampler {
    sim::Time interval;
    std::function<void(sim::Time)> fn;
  };
  std::vector<Sampler> samplers_;
  sim::Time run_end_ = 0.0;
};

}  // namespace aeq::runner
