#!/usr/bin/env bash
# Regenerates BENCH_hotpath.json: the committed speed artifact for the
# hot-path overhaul (DESIGN.md §10) and the sharded executive (DESIGN.md
# §11). Runs perf_probe end to end on both scheduler backends with
# telemetry off and fully on, sweeps the conservative-PDES shard count
# (1/2/4, calendar backend), runs the micro_core scheduler/queue
# microbenchmarks, captures a per-component execution profile (serial and
# 4-shard `--prof` runs, DESIGN.md §14), and emits one JSON document whose
# schema is checked by `tools/validate_trace.py --bench-json`.
#
# The absolute numbers are machine dependent; `pre_overhaul` pins what the
# same probe measured on the reference machine before the overhaul so the
# speedup is visible next to the current numbers. The sharded section
# records the machine's core count alongside the per-shard-count rates:
# speedup_vs_serial is only meaningful (and only floor-checked by the
# validator) when cores >= shards — on fewer cores the workers time-slice
# and the section degrades to an overhead measurement.
#
# Usage: tools/bench_hotpath.sh [build-dir] [out.json]
#        (defaults: build BENCH_hotpath.json)
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_hotpath.json}
probe="$build_dir/bench/perf_probe"
micro="$build_dir/bench/micro_core"
probe_args=(--warmup-ms=2 --run-ms=8 --backend=both)

for bin in "$probe" "$micro"; do
  [[ -x "$bin" ]] || {
    echo "bench_hotpath: $bin not found (build the bench targets first)" >&2
    exit 1
  }
done

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

# perf_probe prints one "[backend] ... N events in T = R M events/sec" line
# per backend; --backend=both runs the same deterministic workload on each.
# The telemetry runs go backend-by-backend: the bench telemetry flags
# attach to exactly one experiment (trace-point 0, the first), so a single
# --backend=both invocation would leave the second backend untraced.
"$probe" "${probe_args[@]}" > "$scratch/plain.txt"
for backend in heap calendar; do
  "$probe" --warmup-ms=2 --run-ms=8 --backend="$backend" \
    --timeseries "$scratch/$backend-ts" \
    --watchdog "$scratch/$backend-watchdog.log" \
    --flight-recorder "$scratch/$backend-flight.json" \
    >> "$scratch/telemetry.txt"
done
# Shard-count sweep: serial reference first (shards=1 is the plain serial
# executive), then the parallel windows. Same seed and workload, so the
# event counts must agree exactly across shard counts — the validator
# enforces that identity.
for shards in 1 2 4; do
  "$probe" --warmup-ms=2 --run-ms=8 --backend=calendar --shards="$shards" \
    >> "$scratch/sharded.txt"
done
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)

# Execution profile (schema v3): break the headline events/sec down by
# component (obs/prof regions) and, at 4 shards, by shard. Profiling is
# observe-only, so these runs dispatch the identical event sequence as the
# unprofiled ones above — the generator script checks the counts agree.
"$probe" --warmup-ms=2 --run-ms=8 --backend=calendar \
  --prof="$scratch/prof_serial.json" > /dev/null 2>&1
"$probe" --warmup-ms=2 --run-ms=8 --backend=calendar --shards=4 \
  --prof="$scratch/prof_sharded.json" > /dev/null 2>&1

"$micro" --benchmark_format=json --benchmark_out="$scratch/micro.json" \
  --benchmark_min_time=0.2 > /dev/null

python3 - "$scratch" "$out" "${probe_args[*]}" "$cores" <<'EOF'
import json
import re
import sys

scratch, out, probe_args = sys.argv[1], sys.argv[2], sys.argv[3]
cores = int(sys.argv[4])

LINE = re.compile(
    r"\[(\w+)\s*\].*?(\d+) events in [\d.]+s = ([\d.]+)M events/sec"
)
# Sharded runs label themselves "[calendar x<K>]"; shards=1 prints the
# plain backend label.
SHARDED_LINE = re.compile(
    r"\[(\w+)(?: x(\d+))?\s*\].*?(\d+) events in [\d.]+s = "
    r"([\d.]+)M events/sec"
)


def parse_probe(path, telemetry):
    results = []
    with open(path) as handle:
        for line in handle:
            match = LINE.search(line)
            if not match:
                continue
            results.append(
                {
                    "backend": match.group(1),
                    "telemetry": telemetry,
                    "events": int(match.group(2)),
                    "events_per_sec_millions": float(match.group(3)),
                }
            )
    if len(results) != 2:
        sys.exit(f"bench_hotpath: expected 2 backend lines in {path}")
    return results


def parse_sharded(path):
    results = []
    with open(path) as handle:
        for line in handle:
            match = SHARDED_LINE.search(line)
            if not match:
                continue
            results.append(
                {
                    "shards": int(match.group(2) or 1),
                    "events": int(match.group(3)),
                    "events_per_sec_millions": float(match.group(4)),
                }
            )
    if len(results) != 3 or results[0]["shards"] != 1:
        sys.exit(f"bench_hotpath: expected shards=1/2/4 lines in {path}")
    serial = results[0]["events_per_sec_millions"]
    for entry in results:
        entry["speedup_vs_serial"] = round(
            entry["events_per_sec_millions"] / serial, 3
        )
    return results


def profile_regions(report):
    """Flattens a --prof report's aggregate regions for the bench doc."""
    regions = []
    for region in report["regions"]:
        regions.append(
            {
                "name": region["name"],
                "calls": region["calls"],
                "self_share": round(region["self_share"], 4),
                "ns_per_call": round(
                    1e9 * region["self_seconds"] / region["calls"], 1
                ),
            }
        )
    return regions


def profile_section(serial_path, sharded_path):
    serial = json.load(open(serial_path))
    sharded = json.load(open(sharded_path))
    if serial["events_processed"] != sharded["events_processed"]:
        sys.exit(
            "bench_hotpath: profiled event counts diverge "
            f"(serial {serial['events_processed']}, "
            f"sharded {sharded['events_processed']})"
        )
    executive = sharded["executive"]
    total_busy = sum(
        t["busy_cycles"] for t in sharded["threads"] if t["label"] != "coordinator"
    )
    per_shard = [
        {
            "label": t["label"],
            "events": t["events"],
            "busy_share": round(t["busy_cycles"] / total_busy, 4)
            if total_busy
            else 0.0,
        }
        for t in sharded["threads"]
        if t["label"] != "coordinator"
    ]
    return {
        "command": "perf_probe --warmup-ms=2 --run-ms=8 --backend=calendar"
        " [--shards=4] --prof=...",
        "serial": {
            "events": serial["events_processed"],
            "events_per_sec_millions": round(
                serial["events_per_sec"] / 1e6, 2
            ),
            "regions": profile_regions(serial),
        },
        "sharded": {
            "shards": sharded["num_shards"],
            "events": sharded["events_processed"],
            "events_per_sec_millions": round(
                sharded["events_per_sec"] / 1e6, 2
            ),
            "windows": executive["windows"],
            "barrier_stall_share": round(
                executive["barrier_stall_share"], 4
            ),
            "load_imbalance": round(executive["load_imbalance"], 3),
            "mailbox_depth_hwm": executive["mailbox_depth_hwm"],
            "regions": profile_regions(sharded),
            "per_shard": per_shard,
        },
    }


micro = json.load(open(f"{scratch}/micro.json"))
micro_results = []
for bench in micro["benchmarks"]:
    entry = {
        "name": bench["name"],
        "cpu_ns_per_op": round(bench["cpu_time"], 1),
    }
    label = bench.get("label")
    if label:
        entry["name"] = f'{bench["name"].rsplit("/", 1)[0]}/{label}'
    if "items_per_second" in bench:
        entry["items_per_second"] = round(bench["items_per_second"])
    micro_results.append(entry)

doc = {
    "schema_version": 3,
    "benchmark": "hotpath",
    "perf_probe": {
        "command": f"perf_probe {probe_args}",
        "results": parse_probe(f"{scratch}/plain.txt", False)
        + parse_probe(f"{scratch}/telemetry.txt", True),
    },
    "sharded": {
        "command": "perf_probe --warmup-ms=2 --run-ms=8 --backend=calendar"
        " --shards=<1|2|4>",
        "cores": cores,
        "results": parse_sharded(f"{scratch}/sharded.txt"),
    },
    "micro_core": {
        "command": "micro_core --benchmark_min_time=0.2",
        "results": micro_results,
    },
    "profile": profile_section(
        f"{scratch}/prof_serial.json", f"{scratch}/prof_sharded.json"
    ),
    # Same probe, same machine, commit before the hot-path overhaul.
    "pre_overhaul": {
        "heap_events_per_sec_millions": 2.10,
        "calendar_events_per_sec_millions": 1.85,
    },
}

with open(out, "w") as handle:
    json.dump(doc, handle, indent=2)
    handle.write("\n")
print(f"bench_hotpath: wrote {out}")
EOF
