#!/usr/bin/env bash
# Regenerates BENCH_hotpath.json: the committed speed artifact for the
# hot-path overhaul (DESIGN.md §10) and the sharded executive (DESIGN.md
# §11). Runs perf_probe end to end on both scheduler backends with
# telemetry off and fully on, sweeps the conservative-PDES shard count
# (1/2/4, calendar backend), runs the micro_core scheduler/queue
# microbenchmarks, and emits one JSON document whose schema is checked by
# `tools/validate_trace.py --bench-json`.
#
# The absolute numbers are machine dependent; `pre_overhaul` pins what the
# same probe measured on the reference machine before the overhaul so the
# speedup is visible next to the current numbers. The sharded section
# records the machine's core count alongside the per-shard-count rates:
# speedup_vs_serial is only meaningful (and only floor-checked by the
# validator) when cores >= shards — on fewer cores the workers time-slice
# and the section degrades to an overhead measurement.
#
# Usage: tools/bench_hotpath.sh [build-dir] [out.json]
#        (defaults: build BENCH_hotpath.json)
set -euo pipefail

build_dir=${1:-build}
out=${2:-BENCH_hotpath.json}
probe="$build_dir/bench/perf_probe"
micro="$build_dir/bench/micro_core"
probe_args=(--warmup-ms=2 --run-ms=8 --backend=both)

for bin in "$probe" "$micro"; do
  [[ -x "$bin" ]] || {
    echo "bench_hotpath: $bin not found (build the bench targets first)" >&2
    exit 1
  }
done

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

# perf_probe prints one "[backend] ... N events in T = R M events/sec" line
# per backend; --backend=both runs the same deterministic workload on each.
# The telemetry runs go backend-by-backend: the bench telemetry flags
# attach to exactly one experiment (trace-point 0, the first), so a single
# --backend=both invocation would leave the second backend untraced.
"$probe" "${probe_args[@]}" > "$scratch/plain.txt"
for backend in heap calendar; do
  "$probe" --warmup-ms=2 --run-ms=8 --backend="$backend" \
    --timeseries "$scratch/$backend-ts" \
    --watchdog "$scratch/$backend-watchdog.log" \
    --flight-recorder "$scratch/$backend-flight.json" \
    >> "$scratch/telemetry.txt"
done
# Shard-count sweep: serial reference first (shards=1 is the plain serial
# executive), then the parallel windows. Same seed and workload, so the
# event counts must agree exactly across shard counts — the validator
# enforces that identity.
for shards in 1 2 4; do
  "$probe" --warmup-ms=2 --run-ms=8 --backend=calendar --shards="$shards" \
    >> "$scratch/sharded.txt"
done
cores=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)

"$micro" --benchmark_format=json --benchmark_out="$scratch/micro.json" \
  --benchmark_min_time=0.2 > /dev/null

python3 - "$scratch" "$out" "${probe_args[*]}" "$cores" <<'EOF'
import json
import re
import sys

scratch, out, probe_args = sys.argv[1], sys.argv[2], sys.argv[3]
cores = int(sys.argv[4])

LINE = re.compile(
    r"\[(\w+)\s*\].*?(\d+) events in [\d.]+s = ([\d.]+)M events/sec"
)
# Sharded runs label themselves "[calendar x<K>]"; shards=1 prints the
# plain backend label.
SHARDED_LINE = re.compile(
    r"\[(\w+)(?: x(\d+))?\s*\].*?(\d+) events in [\d.]+s = "
    r"([\d.]+)M events/sec"
)


def parse_probe(path, telemetry):
    results = []
    with open(path) as handle:
        for line in handle:
            match = LINE.search(line)
            if not match:
                continue
            results.append(
                {
                    "backend": match.group(1),
                    "telemetry": telemetry,
                    "events": int(match.group(2)),
                    "events_per_sec_millions": float(match.group(3)),
                }
            )
    if len(results) != 2:
        sys.exit(f"bench_hotpath: expected 2 backend lines in {path}")
    return results


def parse_sharded(path):
    results = []
    with open(path) as handle:
        for line in handle:
            match = SHARDED_LINE.search(line)
            if not match:
                continue
            results.append(
                {
                    "shards": int(match.group(2) or 1),
                    "events": int(match.group(3)),
                    "events_per_sec_millions": float(match.group(4)),
                }
            )
    if len(results) != 3 or results[0]["shards"] != 1:
        sys.exit(f"bench_hotpath: expected shards=1/2/4 lines in {path}")
    serial = results[0]["events_per_sec_millions"]
    for entry in results:
        entry["speedup_vs_serial"] = round(
            entry["events_per_sec_millions"] / serial, 3
        )
    return results


micro = json.load(open(f"{scratch}/micro.json"))
micro_results = []
for bench in micro["benchmarks"]:
    entry = {
        "name": bench["name"],
        "cpu_ns_per_op": round(bench["cpu_time"], 1),
    }
    label = bench.get("label")
    if label:
        entry["name"] = f'{bench["name"].rsplit("/", 1)[0]}/{label}'
    if "items_per_second" in bench:
        entry["items_per_second"] = round(bench["items_per_second"])
    micro_results.append(entry)

doc = {
    "schema_version": 2,
    "benchmark": "hotpath",
    "perf_probe": {
        "command": f"perf_probe {probe_args}",
        "results": parse_probe(f"{scratch}/plain.txt", False)
        + parse_probe(f"{scratch}/telemetry.txt", True),
    },
    "sharded": {
        "command": "perf_probe --warmup-ms=2 --run-ms=8 --backend=calendar"
        " --shards=<1|2|4>",
        "cores": cores,
        "results": parse_sharded(f"{scratch}/sharded.txt"),
    },
    "micro_core": {
        "command": "micro_core --benchmark_min_time=0.2",
        "results": micro_results,
    },
    # Same probe, same machine, commit before the hot-path overhaul.
    "pre_overhaul": {
        "heap_events_per_sec_millions": 2.10,
        "calendar_events_per_sec_millions": 1.85,
    },
}

with open(out, "w") as handle:
    json.dump(doc, handle, indent=2)
    handle.write("\n")
print(f"bench_hotpath: wrote {out}")
EOF
