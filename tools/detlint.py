#!/usr/bin/env python3
"""detlint — determinism lint for the Aequitas simulator tree.

The repo's headline invariant is that a run is a pure function of its seed:
same seed => same schedule => same metrics, bit for bit, on either scheduler
backend and at any shard count (DESIGN.md §12). This checker statically
enforces the source-level side of that contract. It is compile-database
driven: the file set is taken from the compile_commands.json that CMake
exports (CMAKE_EXPORT_COMPILE_COMMANDS), plus the headers next to it, so it
lints exactly what the build builds.

The container toolchain has no libclang, so the analysis is a token-level
pass over a comment/string-stripped lex of each file — deliberately in the
cpplint tradition: a real lexer (raw strings, line continuations, nested
comments) feeding per-rule token automata, not line regexes. Each rule
documents what it would miss relative to a full AST walk.

Rules (see DESIGN.md §12 for the catalogue rationale):

  wall-clock        no reading of host clocks (std::chrono system/steady/
                    high_resolution clocks, time(), gettimeofday, ...) —
                    simulated time comes from sim::Simulator::now() only.
  raw-rand          no ambient randomness (rand/srand, std::random_device,
                    drand48, getentropy, random_shuffle) — all randomness
                    flows from sim::Rng seeded by ExperimentConfig::seed.
  unordered-iter    no iteration (range-for, .begin(), .for_each()) over
                    std::unordered_map/set or util::FlatMap64: iteration
                    order is unspecified and must never escape into event
                    scheduling, metrics, or serialized output. Sites that
                    re-establish a total order (sort by a unique key) or
                    fold commutatively carry a detlint:allow with the
                    justification.
  pointer-order     no ordering or hashing by pointer value
                    (std::hash<T*>, std::less<T*>,
                    reinterpret_cast<[u]intptr_t>) — addresses change under
                    ASLR, so any pointer-keyed order is run-dependent.
  static-local      no mutable function-local `static` state in the
                    simulation library dirs — hidden cross-run state breaks
                    run-to-run independence inside one process (sweeps run
                    many Experiments per process).
  thread-primitive  concurrency primitives (std::thread/mutex/atomic/...,
                    util::SpscChannel/Mutex) only in the annotated
                    concurrency layer (sim/sharded, runner/sweep,
                    net/shard_fabric, sim/assert's failure hook) — simulation
                    logic must stay single-threaded-per-shard.
  env-read          no std::getenv in simulation code: environment must not
                    influence results (AEQ_JOBS in runner/sweep only sizes
                    the worker pool, never the schedule).

Suppression: a `detlint:allow(rule)` (comma-list accepted) inside a comment
on the offending line or the line directly above silences that rule there.
Every allow should carry a short justification in the same comment.

Usage:
  tools/detlint.py [--build BUILD_DIR] [--mode src|all] [--paths F...]
  tools/detlint.py --self-test      # run the fixture corpus in tests/detlint
  tools/detlint.py --list-rules
Exit status: 0 clean, 1 findings, 2 usage/environment error.
"""

import argparse
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories holding simulation logic that must be free of hidden mutable
# state and ad-hoc threading (rules static-local / thread-primitive).
DETERMINISTIC_DIRS = (
    "src/sim/", "src/net/", "src/core/", "src/policy/", "src/rpc/",
    "src/transport/", "src/protocols/", "src/runner/",
)

# Per-rule whitelists: path suffixes where the rule does not apply. Keep
# these short and justified — prefer an inline detlint:allow at the site.
WHITELIST = {
    # The perf speedometers genuinely measure wall-clock time; it never
    # feeds back into the simulation.
    "wall-clock": ("bench/perf_probe.cc",),
    "raw-rand": (),
    "unordered-iter": (),
    "pointer-order": (),
    "static-local": (),
    # The annotated concurrency layer (DESIGN.md §11/§12): the PDES
    # executive, the sweep worker pool, the cross-shard fabric, the lock
    # wrappers, and the assert header's thread_local failure hook.
    "thread-primitive": (
        "src/sim/sharded.h", "src/sim/sharded.cc",
        "src/runner/sweep.h", "src/runner/sweep.cc",
        "src/net/shard_fabric.h", "src/net/shard_fabric.cc",
        "src/util/spsc_channel.h", "src/util/mutex.h",
        "src/util/thread_annotations.h", "src/sim/assert.h",
    ),
    # AEQ_JOBS sizes the sweep worker pool; results are identical for any
    # value (sweep determinism contract), so it is not a schedule input.
    "env-read": ("src/runner/sweep.cc",),
}

RULES = {
    "wall-clock": "host clock read (simulated time must come from sim::now)",
    "raw-rand": "ambient randomness (use sim::Rng seeded from the config)",
    "unordered-iter": "iteration over an unordered container "
                      "(order may escape into the schedule or output)",
    "pointer-order": "ordering/hashing by pointer value (ASLR-dependent)",
    "static-local": "mutable function-local static in simulation code",
    "thread-primitive": "concurrency primitive outside the annotated "
                        "concurrency layer",
    "env-read": "environment read in simulation code",
}

ALLOW_RE = re.compile(r"detlint:allow\(([^)]*)\)")
EXPECT_RE = re.compile(r"detlint:expect\(([^)]*)\)")


class Finding:
    def __init__(self, path, line, rule, detail=""):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def __str__(self):
        msg = RULES[self.rule]
        if self.detail:
            msg = "%s: %s" % (msg, self.detail)
        return "%s:%d: [%s] %s" % (self.path, self.line, self.rule, msg)


# --------------------------------------------------------------------------
# Lexing: strip comments and string/char literals (preserving line numbers),
# collect the comment text per line for suppression / expectation markers.

def strip_comments(text):
    """Returns (code, comments) where code has comments and literal bodies
    blanked out and comments maps line -> concatenated comment text."""
    code = []
    comments = {}
    i, n = 0, len(text)
    line = 1

    def note(ln, s):
        comments[ln] = comments.get(ln, "") + s

    while i < n:
        c = text[i]
        if c == "\n":
            code.append(c)
            line += 1
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            # Line continuations extend // comments.
            while j < n and text[j - 1] == "\\":
                k = text.find("\n", j + 1)
                j = n if k < 0 else k
            note(line, text[i:j])
            code.append(" " * 0)
            line += text.count("\n", i, j)
            code.append("\n" * text.count("\n", i, j))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            # A block comment marks every line it touches.
            ln = line
            for part in text[i:j].split("\n"):
                note(ln, part)
                ln += 1
            code.append("\n" * text.count("\n", i, j))
            line += text.count("\n", i, j)
            i = j
        elif c == '"' and text[i - 1] == "R" and i + 1 < n:
            # Raw string literal R"delim( ... )delim".
            m = re.match(r'"([^(\s\\]{0,16})\(', text[i:])
            if not m:
                i += 1
                code.append(c)
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i)
            j = n if j < 0 else j + len(close)
            code.append('""')
            code.append("\n" * text.count("\n", i, j))
            line += text.count("\n", i, j)
            i = j
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                j += 1
            j = min(j + 1, n)
            code.append(c + c)
            code.append("\n" * text.count("\n", i, j))
            line += text.count("\n", i, j)
            i = j
        else:
            code.append(c)
            i += 1
    return "".join(code), comments


TOKEN_RE = re.compile(r"[A-Za-z_]\w*|\d[\w.]*|::|->|.")


def tokenize(code):
    """Returns a list of (token, line) covering the stripped code."""
    tokens = []
    for ln, text in enumerate(code.split("\n"), start=1):
        if text.startswith("#"):
            # Preprocessor lines: keep include targets findable but skip the
            # rest (macro bodies routinely look like violations).
            continue
        for tok in TOKEN_RE.findall(text):
            if not tok.isspace():
                tokens.append((tok, ln))
    return tokens


def skip_angle(tokens, i):
    """tokens[i] == '<': returns (index past matching '>', inner tokens)."""
    depth = 0
    inner = []
    while i < len(tokens):
        tok = tokens[i][0]
        if tok == "<":
            depth += 1
        elif tok == ">" or tok == ">>":
            depth -= 2 if tok == ">>" else 1
            if depth <= 0:
                return i + 1, inner
        elif tok in "(){};":
            return i, inner  # not a template argument list after all
        if depth > 0 and tok != "<":
            inner.append(tok)
        i += 1
    return i, inner


# --------------------------------------------------------------------------
# Symbol pass: names declared (in this file or its paired header) with an
# unordered container type, including `using` aliases of such types.

UNORDERED_TYPES = {"unordered_map", "unordered_set",
                   "unordered_multimap", "unordered_multiset", "FlatMap64"}


def unordered_symbols(tokens):
    symbols = set()
    aliases = set()
    i = 0
    while i < len(tokens):
        tok = tokens[i][0]
        if tok == "using" and i + 2 < len(tokens) and tokens[i + 2][0] == "=":
            # using Alias = ...unordered_map<...>...;
            alias = tokens[i + 1][0]
            j = i + 3
            rhs = []
            while j < len(tokens) and tokens[j][0] != ";":
                rhs.append(tokens[j][0])
                j += 1
            if UNORDERED_TYPES.intersection(rhs) or aliases.intersection(rhs):
                aliases.add(alias)
            i = j
            continue
        if tok in UNORDERED_TYPES or tok in aliases:
            j = i + 1
            if j < len(tokens) and tokens[j][0] == "<":
                j, _ = skip_angle(tokens, j)
            # Skip refs/pointers/cv, take the declared name(s).
            while j < len(tokens) and tokens[j][0] in ("&", "*", "const"):
                j += 1
            if j < len(tokens) and re.fullmatch(r"[A-Za-z_]\w*",
                                                tokens[j][0]):
                nxt = tokens[j + 1][0] if j + 1 < len(tokens) else ""
                if nxt in (";", "=", "{", ",", ")"):
                    symbols.add(tokens[j][0])
        i += 1
    return symbols


# --------------------------------------------------------------------------
# Scope tracking (for static-local): classify each brace scope as namespace,
# class, function body, or plain block; a block inherits "inside a function"
# from its parent.

CLASS_KEYS = {"class", "struct", "union", "enum"}
CONTROL_KEYS = {"if", "for", "while", "switch", "catch"}


def scope_stack_pass(tokens):
    """Yields (index, inside_fn) for every token."""
    stack = []  # each entry: True if this scope is (inside) a function body
    # Tokens since the last ; { } — the "declaration head" used to classify
    # an opening brace.
    head = []
    for idx, (tok, _ln) in enumerate(tokens):
        inside = bool(stack) and stack[-1]
        yield idx, inside
        if tok == "{":
            h = head
            inherits = inside
            if "namespace" in h:
                stack.append(False)
            elif CLASS_KEYS.intersection(h) and "return" not in h:
                # class/struct/enum definition head (e.g. `class X final :`)
                stack.append(inherits)  # members handled via head anyway
                if not inherits:
                    stack[-1] = False
            elif h and h[-1] in (")", "const", "noexcept", "override",
                                 "final", "try", "else", "do", "]"):
                stack.append(True)  # function/lambda/control body
            elif h and CONTROL_KEYS.intersection(h):
                stack.append(True)
            else:
                stack.append(inherits)  # init-list / block
            head = []
        elif tok == "}":
            if stack:
                stack.pop()
            head = []
        elif tok == ";":
            head = []
        else:
            head.append(tok)
            if len(head) > 64:
                del head[:32]


# --------------------------------------------------------------------------
# Rule implementations. Each takes (tokens, path, symbols) and yields
# Finding objects.

WALL_CLOCK_IDS = {"system_clock", "steady_clock", "high_resolution_clock",
                  "gettimeofday", "clock_gettime", "timespec_get",
                  "localtime", "gmtime", "mktime", "strftime", "ftime"}
RAND_IDS = {"srand", "random_device", "arc4random", "drand48", "lrand48",
            "srandom", "random_shuffle", "getentropy", "rand_r"}
THREAD_STD_IDS = {"thread", "jthread", "mutex", "shared_mutex",
                  "recursive_mutex", "timed_mutex", "condition_variable",
                  "condition_variable_any", "atomic", "atomic_flag",
                  "async", "future", "promise", "barrier", "latch",
                  "counting_semaphore", "binary_semaphore", "stop_token"}
THREAD_UTIL_IDS = {"SpscChannel", "Mutex", "MutexLock", "CondVar"}


def qualified_by(tokens, i, names):
    """True when tokens[i] is preceded by `<name> ::` for name in names."""
    return (i >= 2 and tokens[i - 1][0] == "::" and
            tokens[i - 2][0] in names)


def rule_wall_clock(tokens, path, symbols):
    for i, (tok, ln) in enumerate(tokens):
        if tok in WALL_CLOCK_IDS:
            yield Finding(path, ln, "wall-clock", tok)
        elif tok in ("time", "clock") and qualified_by(tokens, i, {"std"}):
            if i + 1 < len(tokens) and tokens[i + 1][0] == "(":
                yield Finding(path, ln, "wall-clock", "std::" + tok + "()")
        elif tok == "time" and i + 2 < len(tokens) \
                and tokens[i + 1][0] == "(" \
                and tokens[i + 2][0] in ("nullptr", "0", "NULL", "&"):
            yield Finding(path, ln, "wall-clock", "time()")


def rule_raw_rand(tokens, path, symbols):
    for i, (tok, ln) in enumerate(tokens):
        if tok in RAND_IDS:
            yield Finding(path, ln, "raw-rand", tok)
        elif tok == "rand" and i + 1 < len(tokens) \
                and tokens[i + 1][0] == "(":
            yield Finding(path, ln, "raw-rand", "rand()")


def rule_unordered_iter(tokens, path, symbols):
    n = len(tokens)
    for i, (tok, ln) in enumerate(tokens):
        if tok == "for" and i + 1 < n and tokens[i + 1][0] == "(":
            # Range-for: find the ':' at paren depth 1, then check whether
            # the range expression mentions a tracked unordered symbol.
            depth = 0
            j = i + 1
            colon = -1
            while j < n:
                t = tokens[j][0]
                if t == "(":
                    depth += 1
                elif t == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif t == ":" and depth == 1:
                    colon = j
                elif t == ";" and depth == 1:
                    colon = -1  # classic for loop
                    break
                j += 1
            if colon > 0:
                rng = [t for t, _ in tokens[colon + 1:j]]
                hits = symbols.intersection(rng)
                if hits:
                    yield Finding(path, ln, "unordered-iter",
                                  "range-for over " + sorted(hits)[0])
        elif tok in symbols and i + 2 < n and tokens[i + 1][0] == ".":
            member = tokens[i + 2][0]
            if member in ("begin", "cbegin", "rbegin", "for_each"):
                yield Finding(path, ln, "unordered-iter",
                              "%s.%s()" % (tok, member))


def rule_pointer_order(tokens, path, symbols):
    n = len(tokens)
    for i, (tok, ln) in enumerate(tokens):
        if tok in ("hash", "less", "greater") and i + 1 < n \
                and tokens[i + 1][0] == "<":
            _, inner = skip_angle(tokens, i + 1)
            if "*" in inner:
                yield Finding(path, ln, "pointer-order",
                              "std::%s over a pointer type" % tok)
        elif tok == "reinterpret_cast" and i + 1 < n \
                and tokens[i + 1][0] == "<":
            _, inner = skip_angle(tokens, i + 1)
            if "uintptr_t" in inner or "intptr_t" in inner:
                yield Finding(path, ln, "pointer-order",
                              "pointer-to-integer cast")


def rule_static_local(tokens, path, symbols):
    if not path.startswith(DETERMINISTIC_DIRS):
        return
    inside = dict(scope_stack_pass(tokens))
    n = len(tokens)
    for i, (tok, ln) in enumerate(tokens):
        if tok != "static" or not inside.get(i):
            continue
        # Collect the decl head after `static` up to the declarator; const
        # or constexpr anywhere in it makes the state immutable.
        j = i + 1
        head = []
        while j < n and tokens[j][0] not in ("=", ";", "{", "("):
            head.append(tokens[j][0])
            j += 1
        if not {"const", "constexpr", "constinit"}.intersection(head):
            yield Finding(path, ln, "static-local",
                          " ".join(head[:4]) or "static local")


def rule_thread_primitive(tokens, path, symbols):
    if not path.startswith(DETERMINISTIC_DIRS):
        return
    for i, (tok, ln) in enumerate(tokens):
        if tok in THREAD_STD_IDS and qualified_by(tokens, i, {"std"}):
            yield Finding(path, ln, "thread-primitive", "std::" + tok)
        elif tok in THREAD_UTIL_IDS and qualified_by(tokens, i, {"util"}):
            yield Finding(path, ln, "thread-primitive", "util::" + tok)
        elif tok == "thread_local":
            yield Finding(path, ln, "thread-primitive", "thread_local")
        elif tok.startswith("pthread_"):
            yield Finding(path, ln, "thread-primitive", tok)


def rule_env_read(tokens, path, symbols):
    for i, (tok, ln) in enumerate(tokens):
        if tok in ("getenv", "secure_getenv"):
            yield Finding(path, ln, "env-read", tok)


RULE_FNS = {
    "wall-clock": rule_wall_clock,
    "raw-rand": rule_raw_rand,
    "unordered-iter": rule_unordered_iter,
    "pointer-order": rule_pointer_order,
    "static-local": rule_static_local,
    "thread-primitive": rule_thread_primitive,
    "env-read": rule_env_read,
}
assert set(RULE_FNS) == set(RULES)


# --------------------------------------------------------------------------
# Driver.

def allowed_rules(comments, line):
    """Rules suppressed at `line` (marker on the line or the one above)."""
    out = set()
    for ln in (line, line - 1):
        for m in ALLOW_RE.finditer(comments.get(ln, "")):
            out.update(r.strip() for r in m.group(1).split(","))
    return out


def lint_file(path, text, header_text=None, use_whitelist=True):
    code, comments = strip_comments(text)
    tokens = tokenize(code)
    symbols = unordered_symbols(tokens)
    if header_text is not None:
        hcode, _ = strip_comments(header_text)
        symbols |= unordered_symbols(tokenize(hcode))
    findings = []
    for rule, fn in RULE_FNS.items():
        if use_whitelist and path.endswith(WHITELIST[rule]):
            continue
        for finding in fn(tokens, path, symbols):
            if finding.rule not in allowed_rules(comments, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, comments


def collect_files(build_dir, mode):
    """File set: compile-database sources under src/ plus src/ headers;
    --mode=all adds bench/ and tests/ (minus the fixture corpus)."""
    files = set()
    db_path = os.path.join(build_dir, "compile_commands.json")
    if os.path.isfile(db_path):
        with open(db_path) as fh:
            for entry in json.load(fh):
                rel = os.path.relpath(
                    os.path.join(entry.get("directory", ""), entry["file"]),
                    REPO_ROOT)
                if rel.startswith("src" + os.sep):
                    files.add(rel)
    roots = ["src"]
    if mode == "all":
        roots += ["bench", "tests"]
    for root in roots:
        for dirpath, _dirs, names in os.walk(os.path.join(REPO_ROOT, root)):
            rel_dir = os.path.relpath(dirpath, REPO_ROOT)
            if rel_dir.startswith(os.path.join("tests", "detlint")):
                continue  # the negative-fixture corpus is *meant* to fire
            for name in names:
                if name.endswith(".h") or (name.endswith(".cc")
                                           and root != "src"):
                    files.add(os.path.join(rel_dir, name))
                elif name.endswith(".cc") and not os.path.isfile(db_path):
                    files.add(os.path.join(rel_dir, name))
    return sorted(files)


def paired_header(path):
    if path.endswith(".cc"):
        header = path[:-3] + ".h"
        full = os.path.join(REPO_ROOT, header)
        if os.path.isfile(full):
            with open(full) as fh:
                return fh.read()
    return None


def run_lint(files, use_whitelist=True):
    findings = []
    for rel in files:
        full = os.path.join(REPO_ROOT, rel)
        with open(full) as fh:
            text = fh.read()
        file_findings, _ = lint_file(rel.replace(os.sep, "/"), text,
                                     paired_header(rel), use_whitelist)
        findings.extend(file_findings)
    return findings


def self_test():
    """Runs the corpus in tests/detlint: every detlint:expect(rule) line must
    fire exactly that rule; nothing else may fire; each rule needs at least
    one expectation (so the corpus keeps covering the whole catalogue)."""
    corpus_dir = os.path.join(REPO_ROOT, "tests", "detlint")
    fixtures = sorted(f for f in os.listdir(corpus_dir) if f.endswith(".cc"))
    if not fixtures:
        print("detlint --self-test: no fixtures in tests/detlint", file=sys.stderr)
        return 2
    failures = []
    covered = set()
    for name in fixtures:
        with open(os.path.join(corpus_dir, name)) as fh:
            text = fh.read()
        # Fixtures are linted as if they lived in the simulation library so
        # directory-restricted rules apply; whitelists are disabled.
        vpath = "src/sim/" + name
        findings, comments = lint_file(vpath, text, use_whitelist=False)
        expected = {}  # line -> set of rules
        for ln, comment in comments.items():
            for m in EXPECT_RE.finditer(comment):
                rules = {r.strip() for r in m.group(1).split(",")}
                unknown = rules - set(RULES)
                if unknown:
                    failures.append("%s:%d: unknown rule in expect: %s"
                                    % (name, ln, ",".join(sorted(unknown))))
                expected.setdefault(ln, set()).update(rules & set(RULES))
        got = {}
        for f in findings:
            got.setdefault(f.line, set()).add(f.rule)
        for ln, rules in sorted(expected.items()):
            missing = rules - got.get(ln, set())
            for rule in sorted(missing):
                failures.append("%s:%d: expected [%s] did not fire"
                                % (name, ln, rule))
            covered.update(rules)
        for ln, rules in sorted(got.items()):
            spurious = rules - expected.get(ln, set())
            for rule in sorted(spurious):
                failures.append("%s:%d: unexpected [%s] finding"
                                % (name, ln, rule))
    uncovered = set(RULES) - covered
    for rule in sorted(uncovered):
        failures.append("rule [%s] has no firing fixture in tests/detlint"
                        % rule)
    if failures:
        for failure in failures:
            print("detlint --self-test: " + failure)
        return 1
    print("detlint --self-test: %d fixtures, %d rules covered, all pass"
          % (len(fixtures), len(covered)))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(prog="detlint.py", add_help=True)
    parser.add_argument("--build", default="build",
                        help="build dir holding compile_commands.json")
    parser.add_argument("--mode", choices=("src", "all"), default="src",
                        help="src: library only; all: also bench/ + tests/")
    parser.add_argument("--paths", nargs="*",
                        help="explicit repo-relative files (overrides the "
                             "compile-database file set)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the negative-fixture corpus")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print("%-18s %s" % (rule, RULES[rule]))
        return 0
    if args.self_test:
        return self_test()

    os.chdir(REPO_ROOT)
    if args.paths:
        files = args.paths
    else:
        files = collect_files(args.build, args.mode)
    if not files:
        print("detlint: no files to lint (configure first: cmake -B %s -S .)"
              % args.build, file=sys.stderr)
        return 2
    findings = run_lint(files)
    for finding in findings:
        print(finding)
    summary = "detlint: %d files, %d findings" % (len(files), len(findings))
    print(summary)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
