#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the library sources using the
# compile database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS, on by
# default).
#
# Usage: tools/lint.sh [build-dir]
#   build-dir  directory holding compile_commands.json (default: build)
#
# Exits 0 when clang-tidy finds nothing, non-zero on findings. When
# clang-tidy is not installed the script reports that and exits 0 so local
# workflows without the tool keep working; CI installs it and runs this for
# real (.github/workflows/ci.yml, job `lint`).
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

tidy="$(command -v clang-tidy || true)"
if [[ -z "${tidy}" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; skipping (install clang-tidy to lint locally)" >&2
  exit 0
fi

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "lint.sh: ${db} not found — configure first: cmake -B ${build_dir} -S ." >&2
  exit 1
fi

# Library sources only: tests/bench link GTest/benchmark headers that trip
# third-party lint noise; the warning-hardened -Werror build covers them.
mapfile -t sources < <(find src -name '*.cc' | sort)

echo "lint.sh: ${tidy} over ${#sources[@]} files (database: ${db})"
"${tidy}" -p "${build_dir}" --quiet "${sources[@]}"
echo "lint.sh: clean"
