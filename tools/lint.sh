#!/usr/bin/env bash
# Static-analysis entry point: detlint (determinism lint, always — it is
# pure stdlib Python) plus clang-tidy over the library sources using the
# compile database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS, on by
# default). clang-tidy runs twice: once with the repo config (.clang-tidy)
# and once with only the clang static analyzer checks (clang-analyzer-*),
# which path-sensitively models null derefs, use-after-move, and leaks the
# style checks do not.
#
# Usage: tools/lint.sh [build-dir] [--all]
#   build-dir  directory holding compile_commands.json (default: build)
#   --all      also detlint bench/ and tests/ (rules that guard the
#              simulation core are relaxed there only via whitelist, not by
#              skipping the files)
#
# Exits 0 when everything is clean, non-zero on findings. When clang-tidy
# is not installed the tidy passes report that and are skipped so local
# workflows without the tool keep working; CI installs it and runs this for
# real (.github/workflows/ci.yml, jobs `lint` and `detlint`).
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="build"
detlint_mode="src"
for arg in "$@"; do
  case "${arg}" in
    --all) detlint_mode="all" ;;
    *) build_dir="${arg}" ;;
  esac
done

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "lint.sh: ${db} not found — configure first: cmake -B ${build_dir} -S ." >&2
  exit 1
fi

# --- determinism lint -------------------------------------------------------
echo "lint.sh: detlint --self-test"
python3 tools/detlint.py --self-test
echo "lint.sh: detlint --mode ${detlint_mode}"
python3 tools/detlint.py --build "${build_dir}" --mode "${detlint_mode}"

# --- clang-tidy -------------------------------------------------------------
tidy="$(command -v clang-tidy || true)"
if [[ -z "${tidy}" ]]; then
  echo "lint.sh: clang-tidy not found on PATH; skipping tidy passes (install clang-tidy to lint locally)" >&2
  exit 0
fi

# Library sources only: tests/bench link GTest/benchmark headers that trip
# third-party lint noise; the warning-hardened -Werror build covers them.
mapfile -t sources < <(find src -name '*.cc' | sort)

echo "lint.sh: ${tidy} over ${#sources[@]} files (database: ${db})"
"${tidy}" -p "${build_dir}" --quiet "${sources[@]}"

echo "lint.sh: ${tidy} clang-analyzer pass"
"${tidy}" -p "${build_dir}" --quiet \
  --checks='-*,clang-analyzer-*' "${sources[@]}"

echo "lint.sh: clean"
