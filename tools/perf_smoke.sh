#!/usr/bin/env bash
# Perf smoke: assert that perf_probe's events/sec with tracing disabled has
# not regressed more than AEQ_PERF_TOLERANCE percent (default 5) against
# the committed baseline in tools/perf_baseline_ci.txt.
#
# The baseline is an absolute events/sec number and therefore machine
# dependent; it guards the observability instrumentation (a null-recorder
# branch on every emission site) from quietly growing hot-path cost on a
# comparable machine. Refresh it on the reference machine with:
#
#   AEQ_PERF_UPDATE_BASELINE=1 tools/perf_smoke.sh <build-dir>
#
# Usage: tools/perf_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build_dir=${1:-build}
probe="$build_dir/bench/perf_probe"
baseline_file="$(dirname "$0")/perf_baseline_ci.txt"
tolerance_pct=${AEQ_PERF_TOLERANCE:-5}

if [[ ! -x "$probe" ]]; then
  echo "perf_smoke: $probe not found (build the bench targets first)" >&2
  exit 1
fi

# Best-of-3 to damp scheduler noise; the workload itself is deterministic
# (the probe prints identical event counts every run).
best=0
for _ in 1 2 3; do
  rate=$("$probe" --warmup-ms=2 --run-ms=4 --backend=both |
    sed -n 's/.*= \([0-9.]*\)M events\/sec.*/\1/p' | sort -g | tail -1)
  [[ -n "$rate" ]] || { echo "perf_smoke: could not parse events/sec" >&2; exit 1; }
  best=$(awk -v a="$best" -v b="$rate" 'BEGIN { print (b > a) ? b : a }')
done

if [[ "${AEQ_PERF_UPDATE_BASELINE:-0}" == "1" ]]; then
  {
    echo "# perf_probe events/sec baseline (millions), tracing disabled."
    echo "# Best of 3 x '--warmup-ms=2 --run-ms=4 --backend=both', best backend."
    echo "# Refresh: AEQ_PERF_UPDATE_BASELINE=1 tools/perf_smoke.sh <build-dir>"
    echo "events_per_sec_millions=$best"
  } > "$baseline_file"
  echo "perf_smoke: baseline updated to ${best}M events/sec"
  exit 0
fi

baseline=$(sed -n 's/^events_per_sec_millions=//p' "$baseline_file")
[[ -n "$baseline" ]] || { echo "perf_smoke: no baseline in $baseline_file" >&2; exit 1; }

floor=$(awk -v b="$baseline" -v t="$tolerance_pct" 'BEGIN { print b * (1 - t / 100) }')
echo "perf_smoke: measured ${best}M events/sec, baseline ${baseline}M," \
  "floor ${floor}M (tolerance ${tolerance_pct}%)"
awk -v m="$best" -v f="$floor" 'BEGIN { exit !(m >= f) }' || {
  echo "perf_smoke: REGRESSION — ${best}M < ${floor}M events/sec" >&2
  exit 1
}
echo "perf_smoke: OK"
