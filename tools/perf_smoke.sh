#!/usr/bin/env bash
# Perf smoke: assert that perf_probe's events/sec has not regressed more
# than AEQ_PERF_TOLERANCE percent (default 5) against the committed
# baseline in tools/perf_baseline_ci.txt.
#
# Four modes, four baseline keys in the same file:
#   default               tracing disabled (events_per_sec_millions) — guards
#                         the null-recorder branch on every emission site
#   AEQ_PERF_TELEMETRY=1  full windowed telemetry on (timeseries + watchdog +
#                         flight recorder; events_per_sec_millions_telemetry)
#                         — guards the enabled-path cost of the pipeline
#   AEQ_PERF_SHARDED=1    2-shard conservative-PDES run on the calendar
#                         backend (events_per_sec_millions_sharded) — guards
#                         the barrier/mailbox overhead. This is a throughput
#                         floor, not a speedup check (it must hold even on a
#                         single-core CI runner, where the two shard workers
#                         time-slice); speedup is recorded and gated by
#                         tools/bench_hotpath.sh + validate_trace.py, which
#                         know the core count.
#   AEQ_PERF_PROF=1       execution profiler on (--prof, obs/prof;
#                         events_per_sec_millions_prof) — guards the
#                         enabled-path cost of the region instrumentation.
#                         The committed baseline is set within 5% of the
#                         unprofiled one, so this floor doubles as a cap on
#                         profiling overhead: if instrumentation gets more
#                         expensive, this mode regresses first.
#
# The baselines are absolute events/sec numbers and therefore machine
# dependent. Refresh on the reference machine with:
#
#   AEQ_PERF_UPDATE_BASELINE=1 [AEQ_PERF_TELEMETRY=1|AEQ_PERF_SHARDED=1|AEQ_PERF_PROF=1] tools/perf_smoke.sh <build-dir>
#
# Usage: tools/perf_smoke.sh [build-dir]   (default: build)
set -euo pipefail

build_dir=${1:-build}
probe="$build_dir/bench/perf_probe"
baseline_file="$(dirname "$0")/perf_baseline_ci.txt"
tolerance_pct=${AEQ_PERF_TOLERANCE:-5}

if [[ ! -x "$probe" ]]; then
  echo "perf_smoke: $probe not found (build the bench targets first)" >&2
  exit 1
fi

key=events_per_sec_millions
telemetry=0
sharded=0
prof=0
if [[ "${AEQ_PERF_TELEMETRY:-0}" == "1" ]]; then
  key=events_per_sec_millions_telemetry
  telemetry=1
  scratch=$(mktemp -d)
  trap 'rm -rf "$scratch"' EXIT
elif [[ "${AEQ_PERF_SHARDED:-0}" == "1" ]]; then
  key=events_per_sec_millions_sharded
  sharded=1
elif [[ "${AEQ_PERF_PROF:-0}" == "1" ]]; then
  key=events_per_sec_millions_prof
  prof=1
  scratch=$(mktemp -d)
  trap 'rm -rf "$scratch"' EXIT
fi

# Prints the best backend's events/sec for one probe iteration. Telemetry
# mode runs the backends separately: the bench --timeseries/--watchdog
# flags attach to exactly one experiment (trace-point 0, the first), so a
# single --backend=both invocation would leave the second backend untraced
# and measure the wrong thing.
measure_once() {
  local parse='s/.*= \([0-9.]*\)M events\/sec.*/\1/p'
  if [[ "$telemetry" == "1" ]]; then
    local backend rate best_rate=0
    for backend in heap calendar; do
      rate=$("$probe" --warmup-ms=2 --run-ms=4 --backend="$backend" \
        --timeseries "$scratch/$backend-ts" \
        --watchdog "$scratch/$backend-watchdog.log" \
        --flight-recorder "$scratch/$backend-flight.json" |
        sed -n "$parse")
      [[ -n "$rate" ]] || return 1
      best_rate=$(awk -v a="$best_rate" -v b="$rate" \
        'BEGIN { print (b > a) ? b : a }')
    done
    echo "$best_rate"
  elif [[ "$sharded" == "1" ]]; then
    "$probe" --warmup-ms=2 --run-ms=4 --backend=calendar --shards=2 |
      sed -n "$parse"
  elif [[ "$prof" == "1" ]]; then
    # The probe's stdout is byte-identical with profiling on (the report
    # goes to files and stderr), so the same parse works.
    "$probe" --warmup-ms=2 --run-ms=4 --backend=calendar \
      --prof="$scratch/prof.json" 2>/dev/null |
      sed -n "$parse"
  else
    "$probe" --warmup-ms=2 --run-ms=4 --backend=both |
      sed -n "$parse" | sort -g | tail -1
  fi
}

# Best-of-3 to damp scheduler noise; the workload itself is deterministic
# (the probe prints identical event counts every run).
best=0
for _ in 1 2 3; do
  rate=$(measure_once) ||
    { echo "perf_smoke: could not parse events/sec" >&2; exit 1; }
  [[ -n "$rate" ]] || { echo "perf_smoke: could not parse events/sec" >&2; exit 1; }
  best=$(awk -v a="$best" -v b="$rate" 'BEGIN { print (b > a) ? b : a }')
done

if [[ "${AEQ_PERF_UPDATE_BASELINE:-0}" == "1" ]]; then
  # Replace this mode's key, keep the other one and the header comments.
  grep -v "^${key}=" "$baseline_file" > "$baseline_file.tmp" 2>/dev/null || true
  echo "${key}=$best" >> "$baseline_file.tmp"
  mv "$baseline_file.tmp" "$baseline_file"
  echo "perf_smoke: $key baseline updated to ${best}M events/sec"
  exit 0
fi

baseline=$(sed -n "s/^${key}=//p" "$baseline_file")
[[ -n "$baseline" ]] || { echo "perf_smoke: no baseline in $baseline_file" >&2; exit 1; }

floor=$(awk -v b="$baseline" -v t="$tolerance_pct" 'BEGIN { print b * (1 - t / 100) }')
echo "perf_smoke: measured ${best}M events/sec, baseline ${baseline}M," \
  "floor ${floor}M (tolerance ${tolerance_pct}%)"
awk -v m="$best" -v f="$floor" 'BEGIN { exit !(m >= f) }' || {
  echo "perf_smoke: REGRESSION — ${best}M < ${floor}M events/sec" >&2
  exit 1
}
echo "perf_smoke: OK"
