#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by obs::ChromeTraceSink.

Stdlib-only (no jsonschema dependency): checks the JSON Object Format of
the trace_event spec -- a top-level object with a `traceEvents` array --
and, per event, the fields each phase type requires:

  M (metadata)        name, pid, args.name
  X (complete span)   ts, dur >= 0, pid, tid
  i (instant)         ts, s in {t, p, g}, pid, tid
  C (counter)         ts, pid, numeric args

Exits non-zero on the first malformed event. With --expect-spans it also
requires at least one RPC span and one counter sample, which is what a
traced fig/abl run must contain.

The sink streams one event object per line, and traced runs easily reach
tens of gigabytes, so the validator streams too: each line is parsed and
checked independently and memory use stays flat. If the file does not
match the one-event-per-line layout it falls back to a whole-document
json.load.

Usage: tools/validate_trace.py TRACE.json [--expect-spans]
"""

import argparse
import collections
import json
import numbers
import sys

PROLOGUE = '{"displayTimeUnit":"ms","traceEvents":['

ALLOWED_PHASES = {"M", "X", "i", "C"}
INSTANT_SCOPES = {"t", "p", "g"}


def fail(index, event, why):
    snippet = json.dumps(event)[:200]
    sys.exit(f"traceEvents[{index}]: {why}\n  {snippet}")


def require(event, index, key, types):
    if key not in event:
        fail(index, event, f"missing required key '{key}'")
    if not isinstance(event[key], types):
        fail(index, event, f"key '{key}' has type {type(event[key]).__name__}")
    return event[key]


def validate_event(event, index):
    if not isinstance(event, dict):
        fail(index, event, "event is not an object")
    phase = require(event, index, "ph", str)
    if phase not in ALLOWED_PHASES:
        fail(index, event, f"unknown phase '{phase}'")
    pid = require(event, index, "pid", int)
    if pid < 0:
        fail(index, event, "negative pid")
    require(event, index, "name", str)

    if phase == "M":
        args = require(event, index, "args", dict)
        if event["name"] == "process_name" and not isinstance(
            args.get("name"), str
        ):
            fail(index, event, "process_name metadata without args.name")
        return

    ts = require(event, index, "ts", numbers.Real)
    if ts < 0:
        fail(index, event, "negative timestamp")
    if phase == "X":
        dur = require(event, index, "dur", numbers.Real)
        if dur < 0:
            fail(index, event, "negative span duration")
        require(event, index, "tid", int)
    elif phase == "i":
        scope = require(event, index, "s", str)
        if scope not in INSTANT_SCOPES:
            fail(index, event, f"instant scope '{scope}' not in t/p/g")
        require(event, index, "tid", int)
    elif phase == "C":
        args = require(event, index, "args", dict)
        if not args:
            fail(index, event, "counter event with empty args")
        for key, value in args.items():
            if not isinstance(value, numbers.Real):
                fail(index, event, f"counter series '{key}' is not numeric")


def iter_events_streaming(handle):
    """Yields event objects from the sink's one-event-per-line layout.

    Raises ValueError if the file deviates from that layout; the caller
    falls back to a whole-document parse.
    """
    first = handle.readline().rstrip("\n")
    if first != PROLOGUE:
        raise ValueError("unexpected prologue")
    closed = False
    for line in handle:
        line = line.rstrip("\n")
        if line == "]}":
            closed = True
            continue
        if closed:
            raise ValueError("content after the closing brackets")
        if line.endswith(","):
            line = line[:-1]
        yield json.loads(line)
    if not closed:
        raise ValueError("trace not closed (missing flush?)")


def iter_events_document(path):
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            sys.exit(f"{path}: not valid JSON: {err}")
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        sys.exit(f"{path}: missing top-level traceEvents array")
    unit = doc.get("displayTimeUnit", "ms")
    if unit not in ("ms", "ns"):
        sys.exit(f"{path}: invalid displayTimeUnit '{unit}'")
    yield from doc["traceEvents"]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="path to the trace_event JSON file")
    parser.add_argument(
        "--expect-spans",
        action="store_true",
        help="require at least one RPC span and one counter sample",
    )
    opts = parser.parse_args()

    phases = collections.Counter()
    count = 0
    try:
        with open(opts.trace) as handle:
            for event in iter_events_streaming(handle):
                validate_event(event, count)
                phases[event["ph"]] += 1
                count += 1
    except (ValueError, json.JSONDecodeError):
        # Not the sink's line layout (hand-edited or third-party trace):
        # validate the whole document in memory instead.
        phases.clear()
        count = 0
        for event in iter_events_document(opts.trace):
            validate_event(event, count)
            phases[event["ph"]] += 1
            count += 1

    if count == 0:
        sys.exit(f"{opts.trace}: trace contains no events")
    if opts.expect_spans and (phases["X"] == 0 or phases["C"] == 0):
        sys.exit(
            f"{opts.trace}: expected RPC spans and counter samples, got "
            f"{dict(phases)}"
        )

    summary = ", ".join(f"{k}={v}" for k, v in sorted(phases.items()))
    print(f"{opts.trace}: OK — {count} events ({summary})")


if __name__ == "__main__":
    main()
