#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file produced by obs::ChromeTraceSink.

Stdlib-only (no jsonschema dependency): checks the JSON Object Format of
the trace_event spec -- a top-level object with a `traceEvents` array --
and, per event, the fields each phase type requires:

  M (metadata)        name, pid, args.name
  X (complete span)   ts, dur >= 0, pid, tid
  i (instant)         ts, s in {t, p, g}, pid, tid
  C (counter)         ts, pid, numeric args

Exits non-zero on the first malformed event. With --expect-spans it also
requires at least one RPC span and one counter sample, which is what a
traced fig/abl run must contain.

The sink streams one event object per line, and traced runs easily reach
tens of gigabytes, so the validator streams too: each line is parsed and
checked independently and memory use stays flat. If the file does not
match the one-event-per-line layout it falls back to a whole-document
json.load.

It also understands the windowed telemetry outputs of obs::TimeseriesSink
(--timeseries-csv / --timeseries-json): per-window schema checks plus the
cross-row invariants the pipeline promises -- window starts strictly
monotonic, window end after start, per-window QoS byte shares summing to
one (or all zero), RNL percentiles ordered p50 <= p90 <= p99, and rates
(slo_compliance, byte_share, p_admit) inside [0, 1]. A flight-recorder
dump is an ordinary Chrome trace and goes through the positional TRACE
path.

--prof-json checks an execution-profile report (`--prof=PATH`, written by
obs::prof::write_json, DESIGN.md §14): the aeq-prof-v1 schema plus the
invariants the profiler promises by construction -- per-region self time
never exceeding total time, histogram counts summing to the call count,
self shares over the run denominator summing to at most 1, and (for
sharded runs) monotonically non-decreasing executive epochs, backoff
windows bounded by the window count, barrier stall share inside [0, 1]
and a load-imbalance factor of at least 1. Each is negative-tested in CI
by mangling a fresh report and expecting a non-zero exit.

Finally, --bench-json checks the committed speed artifact
(BENCH_hotpath.json, written by tools/bench_hotpath.sh): schema version,
one perf_probe result per backend x telemetry combination with positive
events/sec, matching event counts across backends for the same telemetry
mode (the two schedulers must dispatch the identical event sequence),
a sharded section covering shard counts 1/2/4 whose event counts agree
exactly (a sharded run must reproduce the serial event sequence) with a
speedup floor at 4 shards when the recording machine had >= 4 cores,
well-formed micro_core entries, and a profile section (schema v3) that
breaks the headline events/sec down by component and by shard, with the
same share/stall/imbalance invariants as --prof-json. CI runs it against
both the committed file and a freshly generated one, so a schema drift in
either direction fails.

Usage: tools/validate_trace.py [TRACE.json] [--expect-spans]
           [--timeseries-csv TS.csv] [--timeseries-json TS.json]
           [--bench-json BENCH.json] [--prof-json PROF.json]
"""

import argparse
import collections
import json
import numbers
import sys

PROLOGUE = '{"displayTimeUnit":"ms","traceEvents":['

TIMESERIES_HEADER = (
    "window_start_us,window_end_us,scope,completed,terminated,slo_met,"
    "slo_compliance,rnl_p50_us,rnl_p90_us,rnl_p99_us,bytes,byte_share,"
    "p_admit_mean,p_admit_min,admits,downgrades,admission_drops,"
    "packet_drops,enqueued,dequeued,qlen_max_bytes,qlen_mean_bytes"
)
# The sink renders ratios with %.6g, so a sum of rounded shares can be off
# by a few ULPs of the sixth significant digit.
SHARE_TOLERANCE = 1e-4

ALLOWED_PHASES = {"M", "X", "i", "C"}
INSTANT_SCOPES = {"t", "p", "g"}


def fail(index, event, why):
    snippet = json.dumps(event)[:200]
    sys.exit(f"traceEvents[{index}]: {why}\n  {snippet}")


def require(event, index, key, types):
    if key not in event:
        fail(index, event, f"missing required key '{key}'")
    if not isinstance(event[key], types):
        fail(index, event, f"key '{key}' has type {type(event[key]).__name__}")
    return event[key]


def validate_event(event, index):
    if not isinstance(event, dict):
        fail(index, event, "event is not an object")
    phase = require(event, index, "ph", str)
    if phase not in ALLOWED_PHASES:
        fail(index, event, f"unknown phase '{phase}'")
    pid = require(event, index, "pid", int)
    if pid < 0:
        fail(index, event, "negative pid")
    require(event, index, "name", str)

    if phase == "M":
        args = require(event, index, "args", dict)
        if event["name"] == "process_name" and not isinstance(
            args.get("name"), str
        ):
            fail(index, event, "process_name metadata without args.name")
        return

    ts = require(event, index, "ts", numbers.Real)
    if ts < 0:
        fail(index, event, "negative timestamp")
    if phase == "X":
        dur = require(event, index, "dur", numbers.Real)
        if dur < 0:
            fail(index, event, "negative span duration")
        require(event, index, "tid", int)
    elif phase == "i":
        scope = require(event, index, "s", str)
        if scope not in INSTANT_SCOPES:
            fail(index, event, f"instant scope '{scope}' not in t/p/g")
        require(event, index, "tid", int)
    elif phase == "C":
        args = require(event, index, "args", dict)
        if not args:
            fail(index, event, "counter event with empty args")
        for key, value in args.items():
            if not isinstance(value, numbers.Real):
                fail(index, event, f"counter series '{key}' is not numeric")


def iter_events_streaming(handle):
    """Yields event objects from the sink's one-event-per-line layout.

    Raises ValueError if the file deviates from that layout; the caller
    falls back to a whole-document parse.
    """
    first = handle.readline().rstrip("\n")
    if first != PROLOGUE:
        raise ValueError("unexpected prologue")
    closed = False
    for line in handle:
        line = line.rstrip("\n")
        if line == "]}":
            closed = True
            continue
        if closed:
            raise ValueError("content after the closing brackets")
        if line.endswith(","):
            line = line[:-1]
        yield json.loads(line)
    if not closed:
        raise ValueError("trace not closed (missing flush?)")


def iter_events_document(path):
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            sys.exit(f"{path}: not valid JSON: {err}")
    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        sys.exit(f"{path}: missing top-level traceEvents array")
    unit = doc.get("displayTimeUnit", "ms")
    if unit not in ("ms", "ns"):
        sys.exit(f"{path}: invalid displayTimeUnit '{unit}'")
    yield from doc["traceEvents"]


def ts_fail(path, where, why):
    sys.exit(f"{path}: {where}: {why}")


def ts_float(path, where, name, text):
    try:
        return float(text)
    except ValueError:
        ts_fail(path, where, f"{name} '{text}' is not numeric")


def check_unit(path, where, name, value):
    if not 0.0 <= value <= 1.0 + SHARE_TOLERANCE:
        ts_fail(path, where, f"{name}={value} outside [0, 1]")


def check_percentiles(path, where, p50, p90, p99):
    if not p50 <= p90 <= p99:
        ts_fail(
            path,
            where,
            f"percentiles not ordered: p50={p50} p90={p90} p99={p99}",
        )


def check_window_bounds(path, where, start, end, prev_start):
    if end <= start:
        ts_fail(path, where, f"window end {end} not after start {start}")
    if prev_start is not None and start <= prev_start:
        ts_fail(
            path,
            where,
            f"window start {start} not after previous {prev_start}",
        )


def check_share_sum(path, where, shares):
    total = sum(shares)
    if total > SHARE_TOLERANCE and abs(total - 1.0) > SHARE_TOLERANCE:
        ts_fail(path, where, f"qos byte shares sum to {total}, not 1")


def validate_timeseries_csv(path):
    """Streams the long-format CSV: one global row per window, then qos
    rows, then active-port rows, all sharing the window's start/end."""
    windows = 0
    prev_start = None
    shares = []
    share_where = None
    with open(path) as handle:
        header = handle.readline().rstrip("\n")
        if header != TIMESERIES_HEADER:
            ts_fail(path, "line 1", "unexpected timeseries CSV header")
        for lineno, line in enumerate(handle, start=2):
            where = f"line {lineno}"
            fields = line.rstrip("\n").split(",")
            if len(fields) != len(TIMESERIES_HEADER.split(",")):
                ts_fail(path, where, f"expected 22 columns, got {len(fields)}")
            start = ts_float(path, where, "window_start_us", fields[0])
            end = ts_float(path, where, "window_end_us", fields[1])
            scope = fields[2]
            if scope == "global":
                check_window_bounds(path, where, start, end, prev_start)
                prev_start = start
                check_share_sum(path, share_where, shares)
                shares = []
                share_where = where
                windows += 1
                for name, text in (
                    ("p_admit_mean", fields[12]),
                    ("p_admit_min", fields[13]),
                ):
                    check_unit(path, where, name, ts_float(path, where, name, text))
            elif scope.startswith("qos"):
                if prev_start is None or start != prev_start:
                    ts_fail(path, where, "qos row outside its global window")
                compliance = ts_float(
                    path, where, "slo_compliance", fields[6]
                )
                check_unit(path, where, "slo_compliance", compliance)
                p50 = ts_float(path, where, "rnl_p50_us", fields[7])
                p90 = ts_float(path, where, "rnl_p90_us", fields[8])
                p99 = ts_float(path, where, "rnl_p99_us", fields[9])
                check_percentiles(path, where, p50, p90, p99)
                share = ts_float(path, where, "byte_share", fields[11])
                check_unit(path, where, "byte_share", share)
                shares.append(share)
            elif scope.startswith("port:"):
                if prev_start is None or start != prev_start:
                    ts_fail(path, where, "port row outside its global window")
                drops = ts_float(path, where, "packet_drops", fields[17])
                enq = ts_float(path, where, "enqueued", fields[18])
                deq = ts_float(path, where, "dequeued", fields[19])
                if enq == 0 and deq == 0 and drops == 0:
                    ts_fail(path, where, "idle port row should be omitted")
            elif scope.startswith("gauge:"):
                # Admission-controller gauge rows (fleet mean / fleet min
                # in the p_admit_mean / p_admit_min columns).
                if prev_start is None or start != prev_start:
                    ts_fail(path, where, "gauge row outside its global window")
                mean = ts_float(path, where, "gauge mean", fields[12])
                low = ts_float(path, where, "gauge min", fields[13])
                # Both render with %.6g, so equal values can round apart.
                if low > mean * (1.0 + SHARE_TOLERANCE) + SHARE_TOLERANCE:
                    ts_fail(path, where, f"gauge min {low} exceeds mean {mean}")
            else:
                ts_fail(path, where, f"unknown scope '{scope}'")
    check_share_sum(path, share_where, shares)
    if windows == 0:
        ts_fail(path, "EOF", "no windows in timeseries CSV")
    print(f"{path}: OK — {windows} windows (CSV)")


def validate_timeseries_json(path):
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            sys.exit(f"{path}: not valid JSON: {err}")
    if not isinstance(doc, dict) or not isinstance(doc.get("windows"), list):
        ts_fail(path, "top level", "missing windows array")
    width = doc.get("window_width_us")
    if not isinstance(width, numbers.Real) or width <= 0:
        ts_fail(path, "top level", f"bad window_width_us {width!r}")
    prev_start = None
    for index, window in enumerate(doc["windows"]):
        where = f"windows[{index}]"
        if not isinstance(window, dict):
            ts_fail(path, where, "window is not an object")
        start = window.get("window_start_us")
        end = window.get("window_end_us")
        if not isinstance(start, numbers.Real) or not isinstance(
            end, numbers.Real
        ):
            ts_fail(path, where, "missing window bounds")
        check_window_bounds(path, where, start, end, prev_start)
        prev_start = start
        universe = window.get("global")
        if not isinstance(universe, dict):
            ts_fail(path, where, "missing global aggregates")
        for name in ("p_admit_mean", "p_admit_min"):
            check_unit(path, where, name, universe.get(name, 0.0))
        qos_list = window.get("qos")
        if not isinstance(qos_list, list) or not qos_list:
            ts_fail(path, where, "missing qos array")
        shares = []
        for qos in qos_list:
            check_unit(path, where, "slo_compliance", qos["slo_compliance"])
            check_percentiles(
                path,
                where,
                qos["rnl_p50_us"],
                qos["rnl_p90_us"],
                qos["rnl_p99_us"],
            )
            check_unit(path, where, "byte_share", qos["byte_share"])
            shares.append(qos["byte_share"])
        check_share_sum(path, where, shares)
        if not isinstance(window.get("ports"), list):
            ts_fail(path, where, "missing ports array")
        gauges = window.get("gauges", [])
        if not isinstance(gauges, list):
            ts_fail(path, where, "gauges is not an array")
        for gauge in gauges:
            if not isinstance(gauge, dict) or not isinstance(
                gauge.get("name"), str
            ):
                ts_fail(path, where, "gauge entry without a name")
            mean = gauge.get("mean")
            low = gauge.get("min")
            if not isinstance(mean, numbers.Real) or not isinstance(
                low, numbers.Real
            ):
                ts_fail(path, where, f"gauge '{gauge['name']}' not numeric")
            if low > mean * (1.0 + SHARE_TOLERANCE) + SHARE_TOLERANCE:
                ts_fail(
                    path,
                    where,
                    f"gauge '{gauge['name']}' min {low} exceeds mean {mean}",
                )
    if not doc["windows"]:
        ts_fail(path, "top level", "no windows in timeseries JSON")
    print(f"{path}: OK — {len(doc['windows'])} windows (JSON)")


PROF_SCHEMA = "aeq-prof-v1"


def prof_fail(path, where, why):
    sys.exit(f"{path}: {where}: {why}")


def prof_number(path, where, name, value, minimum=None):
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        prof_fail(path, where, f"{name} is not numeric: {value!r}")
    if minimum is not None and value < minimum:
        prof_fail(path, where, f"{name}={value} below {minimum}")
    return value


def check_prof_regions(path, where, regions):
    """Validates one regions array; returns the sum of its self shares."""
    if not isinstance(regions, list):
        prof_fail(path, where, "regions is not an array")
    share_sum = 0.0
    names = set()
    for index, region in enumerate(regions):
        rwhere = f"{where}.regions[{index}]"
        if not isinstance(region, dict):
            prof_fail(path, rwhere, "region is not an object")
        name = region.get("name")
        if not isinstance(name, str) or not name:
            prof_fail(path, rwhere, f"bad region name {name!r}")
        if name in names:
            prof_fail(path, rwhere, f"duplicate region {name!r}")
        names.add(name)
        calls = prof_number(path, rwhere, "calls", region.get("calls"), 1)
        sampled = prof_number(
            path, rwhere, "sampled_calls", region.get("sampled_calls"), 1
        )
        # calls is the sample-scaled estimate; it can never undercut the
        # raw number of timed calls it was scaled up from.
        if calls < sampled:
            prof_fail(
                path,
                rwhere,
                f"calls {calls} below sampled_calls {sampled}",
            )
        total = prof_number(
            path, rwhere, "total_cycles", region.get("total_cycles"), 0
        )
        self_cycles = prof_number(
            path, rwhere, "self_cycles", region.get("self_cycles"), 0
        )
        if self_cycles > total:
            prof_fail(
                path,
                rwhere,
                f"self_cycles {self_cycles} exceeds total_cycles {total}",
            )
        share = prof_number(
            path, rwhere, "self_share", region.get("self_share"), 0
        )
        if share > 1.0 + SHARE_TOLERANCE:
            prof_fail(path, rwhere, f"self_share {share} above 1")
        share_sum += share
        hist = region.get("hist")
        if not isinstance(hist, list):
            prof_fail(path, rwhere, "missing hist array")
        hist_count = 0
        prev_bucket = -1
        for pair in hist:
            if (
                not isinstance(pair, list)
                or len(pair) != 2
                or not all(isinstance(v, int) for v in pair)
            ):
                prof_fail(path, rwhere, f"bad hist pair {pair!r}")
            bucket, bucket_count = pair
            if bucket <= prev_bucket:
                prof_fail(path, rwhere, "hist buckets not strictly increasing")
            prev_bucket = bucket
            hist_count += bucket_count
        # The histogram only holds timed (sampled) calls.
        if hist_count != sampled:
            prof_fail(
                path,
                rwhere,
                f"hist counts sum to {hist_count}, "
                f"sampled_calls is {sampled}",
            )
    return share_sum


def check_prof_executive(path, executive, num_shards):
    where = "executive"
    if not isinstance(executive, dict):
        prof_fail(path, where, "executive is not an object")
    windows = prof_number(path, where, "windows", executive.get("windows"), 1)
    backoff = prof_number(
        path, where, "backoff_windows", executive.get("backoff_windows"), 0
    )
    if backoff > windows:
        prof_fail(
            path, where, f"backoff_windows {backoff} exceeds windows {windows}"
        )
    epochs = executive.get("epochs")
    if not isinstance(epochs, list) or not epochs:
        prof_fail(path, where, "missing epochs array")
    prev = None
    for epoch in epochs:
        prof_number(path, where, "epoch", epoch, 0)
        if prev is not None and epoch < prev:
            prof_fail(path, where, f"epochs not monotonic: {epochs}")
        prev = epoch
    if epochs[-1] != windows:
        prof_fail(
            path,
            where,
            f"final epoch {epochs[-1]} does not match windows {windows}",
        )
    prof_number(
        path, where, "barrier_cycles", executive.get("barrier_cycles"), 0
    )
    stall = prof_number(
        path,
        where,
        "barrier_stall_share",
        executive.get("barrier_stall_share"),
        0,
    )
    if stall > 1.0 + SHARE_TOLERANCE:
        prof_fail(path, where, f"barrier_stall_share {stall} above 1")
    imbalance = prof_number(
        path, where, "load_imbalance", executive.get("load_imbalance"), 0
    )
    # max/mean over shards is at least 1 whenever cycles were measured; 0 is
    # the sentinel for "nothing measured".
    if imbalance != 0 and imbalance < 1.0 - SHARE_TOLERANCE:
        prof_fail(path, where, f"load_imbalance {imbalance} below 1")
    if imbalance > num_shards + SHARE_TOLERANCE:
        prof_fail(
            path,
            where,
            f"load_imbalance {imbalance} above the shard count {num_shards}",
        )
    for name in (
        "mailbox_depth_hwm",
        "cross_shard_packets",
        "mailbox_overflows",
    ):
        prof_number(path, where, name, executive.get(name), 0)
    hist = executive.get("window_hist")
    if not isinstance(hist, list):
        prof_fail(path, where, "missing window_hist array")
    hist_count = sum(
        pair[1]
        for pair in hist
        if isinstance(pair, list) and len(pair) == 2
    )
    if hist_count != windows:
        prof_fail(
            path,
            where,
            f"window_hist counts sum to {hist_count}, windows is {windows}",
        )
    return windows


def validate_prof_json(path):
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            sys.exit(f"{path}: not valid JSON: {err}")
    if not isinstance(doc, dict):
        prof_fail(path, "top level", "document is not an object")
    if doc.get("schema") != PROF_SCHEMA:
        prof_fail(
            path,
            "top level",
            f"schema {doc.get('schema')!r}, expected {PROF_SCHEMA!r}",
        )
    prof_number(path, "top level", "events_processed",
                doc.get("events_processed"), 1)
    prof_number(path, "top level", "elapsed_seconds",
                doc.get("elapsed_seconds"), 0)
    prof_number(path, "top level", "events_per_sec",
                doc.get("events_per_sec"), 0)
    prof_number(path, "top level", "cycles_per_second",
                doc.get("cycles_per_second"), 1)
    num_shards = doc.get("num_shards")
    if not isinstance(num_shards, int) or num_shards < 1:
        prof_fail(path, "top level", f"bad num_shards {num_shards!r}")
    sample_period = doc.get("sample_period")
    if not isinstance(sample_period, int) or sample_period < 1:
        prof_fail(path, "top level", f"bad sample_period {sample_period!r}")
    prof_number(path, "top level", "denominator_cycles",
                doc.get("denominator_cycles"), 1)

    # The aggregate regions are the headline view; its shares are over the
    # whole-run denominator and must sum to at most 1.
    share_sum = check_prof_regions(path, "top level", doc.get("regions"))
    if share_sum > 1.0 + SHARE_TOLERANCE:
        prof_fail(
            path,
            "top level",
            f"region self shares sum to {share_sum}, above 1",
        )

    threads = doc.get("threads")
    if not isinstance(threads, list) or not threads:
        prof_fail(path, "top level", "missing threads array")
    expected = (
        [f"shard{k}" for k in range(num_shards)] + ["coordinator"]
        if num_shards > 1
        else ["serial"]
    )
    labels = [
        t.get("label") if isinstance(t, dict) else None for t in threads
    ]
    if labels != expected:
        prof_fail(
            path, "threads", f"labels {labels}, expected {expected}"
        )
    for index, thread in enumerate(threads):
        where = f"threads[{index}]"
        prof_number(path, where, "events", thread.get("events"), 0)
        prof_number(path, where, "busy_cycles", thread.get("busy_cycles"), 0)
        prof_number(path, where, "wait_cycles", thread.get("wait_cycles"), 0)
        prof_number(
            path, where, "sampled_trees", thread.get("sampled_trees"), 0
        )
        # roots_entered / roots_sampled >= 1 whenever anything was timed.
        prof_number(
            path, where, "sample_scale", thread.get("sample_scale"), 1
        )
        check_prof_regions(path, where, thread.get("regions"))

    executive = doc.get("executive")
    if num_shards > 1:
        if executive is None:
            prof_fail(path, "top level", "sharded report without executive")
        check_prof_executive(path, executive, num_shards)
    elif executive is not None:
        prof_fail(path, "top level", "serial report with an executive key")

    print(
        f"{path}: OK — {num_shards} shard(s), "
        f"{len(doc['regions'])} regions, "
        f"self shares sum {share_sum:.3f}"
    )


BENCH_SCHEMA_VERSION = 3
BENCH_BACKENDS = {"heap", "calendar"}
BENCH_SHARD_COUNTS = [1, 2, 4]
# Speedup floor at 4 shards, applied only when the recording machine had at
# least that many cores (on fewer cores shard workers time-slice and the
# sharded section measures overhead, not speedup).
BENCH_SPEEDUP_FLOOR_4_SHARDS = 3.0


def bench_fail(path, where, why):
    sys.exit(f"{path}: {where}: {why}")


def bench_positive(path, where, name, value):
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        bench_fail(path, where, f"{name} is not numeric: {value!r}")
    if value <= 0:
        bench_fail(path, where, f"{name}={value} not positive")
    return value


def validate_bench_json(path):
    with open(path) as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as err:
            sys.exit(f"{path}: not valid JSON: {err}")
    if not isinstance(doc, dict):
        bench_fail(path, "top level", "document is not an object")
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        bench_fail(
            path,
            "top level",
            f"schema_version {doc.get('schema_version')!r}, expected "
            f"{BENCH_SCHEMA_VERSION}",
        )
    if doc.get("benchmark") != "hotpath":
        bench_fail(path, "top level", f"benchmark {doc.get('benchmark')!r}")

    probe = doc.get("perf_probe")
    if not isinstance(probe, dict) or not isinstance(
        probe.get("results"), list
    ):
        bench_fail(path, "perf_probe", "missing results array")
    if not isinstance(probe.get("command"), str):
        bench_fail(path, "perf_probe", "missing command string")
    seen = {}
    events = {}
    for index, result in enumerate(probe["results"]):
        where = f"perf_probe.results[{index}]"
        if not isinstance(result, dict):
            bench_fail(path, where, "result is not an object")
        backend = result.get("backend")
        if backend not in BENCH_BACKENDS:
            bench_fail(path, where, f"unknown backend {backend!r}")
        telemetry = result.get("telemetry")
        if not isinstance(telemetry, bool):
            bench_fail(path, where, "telemetry is not a bool")
        combo = (backend, telemetry)
        if combo in seen:
            bench_fail(path, where, f"duplicate combination {combo}")
        seen[combo] = where
        bench_positive(path, where, "events", result.get("events"))
        bench_positive(
            path,
            where,
            "events_per_sec_millions",
            result.get("events_per_sec_millions"),
        )
        # Both backends must dispatch the identical event sequence for the
        # same workload; a count mismatch means determinism broke.
        events.setdefault(telemetry, {})[backend] = result["events"]
    for backend in BENCH_BACKENDS:
        for telemetry in (False, True):
            if (backend, telemetry) not in seen:
                bench_fail(
                    path,
                    "perf_probe.results",
                    f"missing combination ({backend}, telemetry="
                    f"{telemetry})",
                )
    for telemetry, by_backend in events.items():
        if len(set(by_backend.values())) != 1:
            bench_fail(
                path,
                "perf_probe.results",
                f"event counts diverge across backends (telemetry="
                f"{telemetry}): {by_backend}",
            )

    sharded = doc.get("sharded")
    if not isinstance(sharded, dict) or not isinstance(
        sharded.get("results"), list
    ):
        bench_fail(path, "sharded", "missing results array")
    if not isinstance(sharded.get("command"), str):
        bench_fail(path, "sharded", "missing command string")
    cores = sharded.get("cores")
    if not isinstance(cores, int) or isinstance(cores, bool) or cores < 1:
        bench_fail(path, "sharded", f"bad core count {cores!r}")
    shard_counts = []
    shard_events = set()
    for index, result in enumerate(sharded["results"]):
        where = f"sharded.results[{index}]"
        if not isinstance(result, dict):
            bench_fail(path, where, "result is not an object")
        shards = result.get("shards")
        if not isinstance(shards, int) or isinstance(shards, bool):
            bench_fail(path, where, f"bad shard count {shards!r}")
        shard_counts.append(shards)
        bench_positive(path, where, "events", result.get("events"))
        shard_events.add(result["events"])
        bench_positive(
            path,
            where,
            "events_per_sec_millions",
            result.get("events_per_sec_millions"),
        )
        speedup = bench_positive(
            path, where, "speedup_vs_serial", result.get("speedup_vs_serial")
        )
        if shards == 1 and abs(speedup - 1.0) > 1e-9:
            bench_fail(path, where, f"serial speedup {speedup} != 1.0")
        if shards >= 4 and cores >= shards:
            if speedup < BENCH_SPEEDUP_FLOOR_4_SHARDS:
                bench_fail(
                    path,
                    where,
                    f"speedup {speedup} below the {shards}-shard floor "
                    f"{BENCH_SPEEDUP_FLOOR_4_SHARDS} on a {cores}-core "
                    "machine",
                )
    if shard_counts != BENCH_SHARD_COUNTS:
        bench_fail(
            path,
            "sharded.results",
            f"shard counts {shard_counts}, expected {BENCH_SHARD_COUNTS}",
        )
    # A sharded run must dispatch the exact serial event sequence; a count
    # mismatch means the conservative-PDES determinism guarantee broke.
    if len(shard_events) != 1:
        bench_fail(
            path,
            "sharded.results",
            f"event counts diverge across shard counts: {shard_events}",
        )

    micro = doc.get("micro_core")
    if not isinstance(micro, dict) or not isinstance(
        micro.get("results"), list
    ):
        bench_fail(path, "micro_core", "missing results array")
    if not micro["results"]:
        bench_fail(path, "micro_core", "empty results array")
    names = set()
    for index, result in enumerate(micro["results"]):
        where = f"micro_core.results[{index}]"
        if not isinstance(result, dict):
            bench_fail(path, where, "result is not an object")
        name = result.get("name")
        if not isinstance(name, str) or not name:
            bench_fail(path, where, f"bad benchmark name {name!r}")
        if name in names:
            bench_fail(path, where, f"duplicate benchmark {name!r}")
        names.add(name)
        bench_positive(path, where, "cpu_ns_per_op", result.get("cpu_ns_per_op"))
        if "items_per_second" in result:
            bench_positive(
                path, where, "items_per_second", result["items_per_second"]
            )

    # Schema v3: the profile section breaks the headline events/sec down by
    # component (obs/prof regions) and, for the sharded run, by shard.
    profile = doc.get("profile")
    if not isinstance(profile, dict):
        bench_fail(path, "profile", "missing profile section (schema v3)")
    if not isinstance(profile.get("command"), str):
        bench_fail(path, "profile", "missing command string")
    profile_events = {}
    for mode in ("serial", "sharded"):
        section = profile.get(mode)
        where = f"profile.{mode}"
        if not isinstance(section, dict):
            bench_fail(path, where, "missing section")
        profile_events[mode] = bench_positive(
            path, where, "events", section.get("events")
        )
        bench_positive(
            path,
            where,
            "events_per_sec_millions",
            section.get("events_per_sec_millions"),
        )
        regions = section.get("regions")
        if not isinstance(regions, list) or not regions:
            bench_fail(path, where, "missing regions array")
        share_sum = 0.0
        for index, region in enumerate(regions):
            rwhere = f"{where}.regions[{index}]"
            if not isinstance(region, dict) or not isinstance(
                region.get("name"), str
            ):
                bench_fail(path, rwhere, "region without a name")
            bench_positive(path, rwhere, "calls", region.get("calls"))
            share = region.get("self_share")
            if not isinstance(share, numbers.Real) or not (
                0.0 <= share <= 1.0 + SHARE_TOLERANCE
            ):
                bench_fail(path, rwhere, f"self_share {share!r} outside [0, 1]")
            share_sum += share
            bench_positive(path, rwhere, "ns_per_call", region.get("ns_per_call"))
        if share_sum > 1.0 + SHARE_TOLERANCE:
            bench_fail(
                path, where, f"region self shares sum to {share_sum}, above 1"
            )
    # The profiled runs use the hotpath workload, so the sharded run must
    # dispatch exactly the serial event sequence.
    if profile_events["serial"] != profile_events["sharded"]:
        bench_fail(
            path,
            "profile",
            f"profiled event counts diverge: {profile_events}",
        )
    psharded = profile["sharded"]
    nshards = psharded.get("shards")
    if not isinstance(nshards, int) or nshards < 2:
        bench_fail(path, "profile.sharded", f"bad shard count {nshards!r}")
    bench_positive(path, "profile.sharded", "windows", psharded.get("windows"))
    stall = psharded.get("barrier_stall_share")
    if not isinstance(stall, numbers.Real) or not (
        0.0 <= stall <= 1.0 + SHARE_TOLERANCE
    ):
        bench_fail(
            path,
            "profile.sharded",
            f"barrier_stall_share {stall!r} outside [0, 1]",
        )
    imbalance = psharded.get("load_imbalance")
    if not isinstance(imbalance, numbers.Real) or not (
        1.0 - SHARE_TOLERANCE <= imbalance <= nshards + SHARE_TOLERANCE
    ):
        bench_fail(
            path,
            "profile.sharded",
            f"load_imbalance {imbalance!r} outside [1, {nshards}]",
        )
    per_shard = psharded.get("per_shard")
    if not isinstance(per_shard, list) or len(per_shard) != nshards:
        bench_fail(
            path,
            "profile.sharded",
            f"per_shard must list all {nshards} shards",
        )
    busy_sum = 0.0
    for index, shard in enumerate(per_shard):
        where = f"profile.sharded.per_shard[{index}]"
        if not isinstance(shard, dict) or shard.get("label") != f"shard{index}":
            bench_fail(path, where, "missing or out-of-order shard label")
        bench_positive(path, where, "events", shard.get("events"))
        busy = shard.get("busy_share")
        if not isinstance(busy, numbers.Real) or not (
            0.0 <= busy <= 1.0 + SHARE_TOLERANCE
        ):
            bench_fail(path, where, f"busy_share {busy!r} outside [0, 1]")
        busy_sum += busy
    if busy_sum > 1.0 + SHARE_TOLERANCE:
        bench_fail(
            path,
            "profile.sharded",
            f"per-shard busy shares sum to {busy_sum}, above 1",
        )

    pre = doc.get("pre_overhaul")
    if not isinstance(pre, dict):
        bench_fail(path, "pre_overhaul", "missing reference numbers")
    for name in (
        "heap_events_per_sec_millions",
        "calendar_events_per_sec_millions",
    ):
        bench_positive(path, "pre_overhaul", name, pre.get(name))

    print(
        f"{path}: OK — {len(probe['results'])} perf_probe results, "
        f"{len(sharded['results'])} sharded results ({cores} cores), "
        f"{len(micro['results'])} micro_core results, profile over "
        f"{len(profile['serial']['regions'])} regions"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "trace",
        nargs="?",
        help="path to a trace_event JSON file (incl. flight-recorder dumps)",
    )
    parser.add_argument(
        "--expect-spans",
        action="store_true",
        help="require at least one RPC span and one counter sample",
    )
    parser.add_argument(
        "--timeseries-csv",
        help="validate a TimeseriesSink CSV timeline",
    )
    parser.add_argument(
        "--timeseries-json",
        help="validate a TimeseriesSink JSON timeline",
    )
    parser.add_argument(
        "--bench-json",
        help="validate a BENCH_hotpath.json speed artifact",
    )
    parser.add_argument(
        "--prof-json",
        help="validate an execution-profile report (--prof=PATH output)",
    )
    opts = parser.parse_args()
    if not any(
        (
            opts.trace,
            opts.timeseries_csv,
            opts.timeseries_json,
            opts.bench_json,
            opts.prof_json,
        )
    ):
        parser.error(
            "nothing to validate: pass TRACE, --timeseries-*, --bench-json, "
            "or --prof-json"
        )

    if opts.timeseries_csv:
        validate_timeseries_csv(opts.timeseries_csv)
    if opts.timeseries_json:
        validate_timeseries_json(opts.timeseries_json)
    if opts.bench_json:
        validate_bench_json(opts.bench_json)
    if opts.prof_json:
        validate_prof_json(opts.prof_json)
    if not opts.trace:
        return

    phases = collections.Counter()
    count = 0
    try:
        with open(opts.trace) as handle:
            for event in iter_events_streaming(handle):
                validate_event(event, count)
                phases[event["ph"]] += 1
                count += 1
    except (ValueError, json.JSONDecodeError):
        # Not the sink's line layout (hand-edited or third-party trace):
        # validate the whole document in memory instead.
        phases.clear()
        count = 0
        for event in iter_events_document(opts.trace):
            validate_event(event, count)
            phases[event["ph"]] += 1
            count += 1

    if count == 0:
        sys.exit(f"{opts.trace}: trace contains no events")
    if opts.expect_spans and (phases["X"] == 0 or phases["C"] == 0):
        sys.exit(
            f"{opts.trace}: expected RPC spans and counter samples, got "
            f"{dict(phases)}"
        )

    summary = ", ".join(f"{k}={v}" for k, v in sorted(phases.items()))
    print(f"{opts.trace}: OK — {count} events ({summary})")


if __name__ == "__main__":
    main()
