// Appendix C (Figures 28/29): alpha/beta sensitivity. Re-runs the fairness
// experiments with beta = 0.0015 (vs default 0.01): smaller decrements give
// much smoother admit probabilities — the in-quota channel's 1st-percentile
// p_admit rises (paper: 0.82 -> 0.96) — at the cost of looser
// SLO-compliance. alpha trades the same way in the opposite direction.
#include <cstdio>
#include <vector>

#include "bench/fairness_common.h"

namespace {

using namespace aeq;

struct Setting {
  const char* label;
  double fa;
  double fb;
  double beta;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Appendix C (Fig 28/29)",
                      "beta sensitivity on the fairness experiments "
                      "(smaller beta = smoother p_admit, looser compliance)");
  const std::vector<Setting> settings = {
      {"Fig28 80/40", 0.8, 0.4, 0.01},
      {"Fig28 80/40", 0.8, 0.4, 0.0015},
      {"Fig29 10/80", 0.1, 0.8, 0.01},
      {"Fig29 10/80", 0.1, 0.8, 0.0015},
  };
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (const auto& setting : settings) {
    sweep.submit([setting, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      bench::FairnessSpec spec;
      spec.qosh_fraction_a = setting.fa;
      spec.qosh_fraction_b = setting.fb;
      spec.beta_per_mtu = setting.beta;
      spec.duration = 400 * sim::kMsec;
      spec.seed = ctx.seed;
      spec.trace = trace;
      spec.trace_point = point;
      const bench::FairnessResult r = bench::run_fairness(spec);
      runner::PointResult result;
      result.rows.push_back(
          {setting.label, stats::Cell(setting.beta, 4),
           r.steady_throughput_gbps[0], r.steady_throughput_gbps[1],
           r.steady_p_admit[0], r.p_admit_samples[0].percentile(1.0),
           r.p_admit_samples[0].summary().stddev(), r.steady_p_admit[1]});
      return result;
    });
  }

  stats::Table table({{"setting", 14},
                      {"beta", 8, 4},
                      {"thputA(Gbps)", 13, 1},
                      {"thputB(Gbps)", 13, 1},
                      {"pA mean", 9, 3},
                      {"pA p1", 9, 3},
                      {"pA stddev", 10, 3},
                      {"pB mean", 9, 3}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  std::printf("\nsmaller beta: smoother p_admit (higher p1, lower stddev) "
              "at looser SLO-compliance\n");
  bench::print_footer();
  return 0;
}
