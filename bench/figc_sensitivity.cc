// Appendix C (Figures 28/29): alpha/beta sensitivity. Re-runs the fairness
// experiments with beta = 0.0015 (vs default 0.01): smaller decrements give
// much smoother admit probabilities — the in-quota channel's 1st-percentile
// p_admit rises (paper: 0.82 -> 0.96) — at the cost of looser
// SLO-compliance. alpha trades the same way in the opposite direction.
#include <cstdio>

#include "bench/fairness_common.h"

namespace {

using namespace aeq;

void run_pair(const char* label, double fa, double fb) {
  std::printf("\n--- %s ---\n", label);
  for (double beta : {0.01, 0.0015}) {
    bench::FairnessSpec spec;
    spec.qosh_fraction_a = fa;
    spec.qosh_fraction_b = fb;
    spec.beta_per_mtu = beta;
    spec.duration = 400 * sim::kMsec;
    const bench::FairnessResult r = bench::run_fairness(spec);
    std::printf("beta=%.4f: thput A %.1f / B %.1f Gbps | p_admit A mean "
                "%.3f p1 %.3f stddev %.3f | B mean %.3f\n",
                beta, r.steady_throughput_gbps[0],
                r.steady_throughput_gbps[1], r.steady_p_admit[0],
                r.p_admit_samples[0].percentile(1.0),
                r.p_admit_samples[0].summary().stddev(),
                r.steady_p_admit[1]);
  }
}

}  // namespace

int main() {
  bench::print_header("Appendix C (Fig 28/29)",
                      "beta sensitivity on the fairness experiments "
                      "(smaller beta = smoother p_admit, looser compliance)");
  run_pair("Figure 28 setting: channels 80%/40% on QoS_h", 0.8, 0.4);
  run_pair("Figure 29 setting: in-quota 10% vs heavy 80%", 0.1, 0.8);
  bench::print_footer();
  return 0;
}
