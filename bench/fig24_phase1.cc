// Figures 4, 5 and 24: Phase-1 deployment — aligning network QoS with RPC
// priority. The paper reports fleet data from 50 production clusters; we
// substitute a Monte-Carlo population of 50 simulated clusters whose
// priority->QoS mappings are misaligned like Figure 4 (e.g. only ~83% of PC
// RPCs on QoS_h, while ~44% of BE RPCs also ride QoS_h), then apply Phase 1
// (bijective mapping) and measure, per cluster: the misalignment percentage
// and the change in PC 99th-percentile RNL. Expected: misalignment drops to
// zero and most clusters see a sizeable PC RNL reduction (the paper: up to
// -53%, fleet average ~-10%, with a few small regressions).
#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

// True-priority traffic mix of every cluster (byte shares of PC/NC/BE).
constexpr double kPriorityMix[3] = {0.45, 0.30, 0.25};

struct ClusterOutcome {
  double pc_p99;
  double misaligned_pct;
};

// One simulated cluster: 12 hosts all-to-all, 32KB RPCs, bursty overload.
// `matrix[prio][qos]` is the probability that an RPC of true priority
// `prio` rides wire class `qos` (identity matrix once Phase 1 lands).
//
// The workload is issued per wire class (that is all the network sees);
// PC RNL is estimated by classifying each completion as PC with probability
// P(priority == PC | wire class) — an unbiased sample of the PC latency
// mixture.
ClusterOutcome run_cluster(std::uint64_t seed,
                           const std::array<std::array<double, 3>, 3>& matrix,
                           double load, const bench::TraceRequest& trace,
                           int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 12;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = false;  // Phase 1 only — no admission control
  config.seed = seed;
  config.slo = rpc::SloConfig::make(
      {25.0 / 8 * sim::kUsec, 50.0 / 8 * sim::kUsec, 0.0}, 99.9);
  runner::Experiment experiment(config);
  trace.apply(experiment, point);

  // Wire-class byte shares and P(PC | wire class).
  double wire_share[3] = {0, 0, 0};
  double pc_given_class[3] = {0, 0, 0};
  double misaligned = 0.0;
  for (std::size_t qos = 0; qos < 3; ++qos) {
    for (std::size_t prio = 0; prio < 3; ++prio) {
      wire_share[qos] += kPriorityMix[prio] * matrix[prio][qos];
      if (prio != qos) misaligned += kPriorityMix[prio] * matrix[prio][qos];
    }
    if (wire_share[qos] > 0) {
      pc_given_class[qos] =
          kPriorityMix[0] * matrix[0][qos] / wire_share[qos];
    }
  }

  stats::PercentileTracker pc_rnl;
  sim::Rng classify_rng(seed ^ 0xBEEF);
  for (std::size_t h = 0; h < 12; ++h) {
    experiment.stack(static_cast<net::HostId>(h))
        .set_completion_listener([&](const rpc::RpcRecord& r) {
          if (r.issued < 4 * sim::kMsec) return;
          if (classify_rng.bernoulli(pc_given_class[r.qos_run])) {
            pc_rnl.add(r.rnl);
          }
        });
  }

  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  for (std::size_t h = 0; h < 12; ++h) {
    workload::GeneratorConfig gen;
    gen.burst_over_avg = 1.4 / 0.8;
    const double rate = load * sim::gbps(100);
    for (std::size_t qos = 0; qos < 3; ++qos) {
      if (wire_share[qos] <= 0.0) continue;
      workload::ClassLoad slice;
      slice.priority = static_cast<rpc::Priority>(qos);  // bijective wire map
      slice.byte_rate = wire_share[qos] * rate;
      slice.sizes = sizes;
      gen.classes.push_back(slice);
    }
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
  experiment.run(4 * sim::kMsec, 8 * sim::kMsec);
  return ClusterOutcome{pc_rnl.p99(), 100 * misaligned};
}

std::array<std::array<double, 3>, 3> identity_matrix() {
  return {{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}};
}

struct ClusterParams {
  std::array<std::array<double, 3>, 3> matrix;
  double load;
};

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 24 (+4/5)",
                      "Phase-1 QoS/priority realignment across a synthetic "
                      "fleet of 50 clusters");
  // Draw every cluster's misalignment parameters up front on the main
  // thread (one RNG, sequential) so the fleet is identical for any --jobs.
  sim::Rng fleet_rng(sim::derive_seed(args.sweep.base_seed, 100));
  std::vector<ClusterParams> fleet;
  for (int cluster = 0; cluster < 50; ++cluster) {
    // Per-cluster misalignment in the spirit of Figure 4: PC mostly on
    // QoS_h but leaking down; BE heavily upgraded; NC spread both ways.
    // Ranges chosen so some clusters are nearly aligned already (they see
    // little change, occasionally a small regression from measurement
    // noise — as in the paper's production data).
    const double pc_leak = fleet_rng.uniform(0.01, 0.30);
    const double be_upgrade = fleet_rng.uniform(0.05, 0.60);
    const double nc_spread = fleet_rng.uniform(0.02, 0.40);
    ClusterParams params;
    params.matrix = {{
        {1.0 - pc_leak, pc_leak * 0.85, pc_leak * 0.15},
        {nc_spread * 0.6, 1.0 - nc_spread, nc_spread * 0.4},
        {be_upgrade * 0.8, be_upgrade * 0.2, 1.0 - be_upgrade},
    }};
    params.load = fleet_rng.uniform(0.45, 0.80);
    fleet.push_back(params);
  }

  // Each point = one cluster, before AND after Phase 1 on the same seed.
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (const ClusterParams& params : fleet) {
    // Two traceable points per cluster: 2k = before, 2k+1 = after.
    sweep.submit([params, trace = args.trace,
                  point = (trace_point += 2) - 2](const runner::PointContext& ctx) {
      const ClusterOutcome before = run_cluster(
          ctx.seed, params.matrix, params.load, trace, point);
      const ClusterOutcome after = run_cluster(
          ctx.seed, identity_matrix(), params.load, trace, point + 1);
      runner::PointResult result;
      result.metrics["misaligned_pct"] = before.misaligned_pct;
      result.metrics["change_pct"] =
          before.pc_p99 > 0
              ? 100 * (after.pc_p99 - before.pc_p99) / before.pc_p99
              : 0.0;
      return result;
    });
  }
  const auto points = sweep.run();

  std::vector<double> changes;
  double total_misaligned = 0.0;
  for (const auto& point : points) {
    total_misaligned += point.metrics.at("misaligned_pct");
    changes.push_back(point.metrics.at("change_pct"));
  }
  std::sort(changes.begin(), changes.end());

  std::printf("fleet misalignment before Phase 1: %.1f%% of RPC traffic "
              "(after: 0%%)\n\n",
              total_misaligned / 50.0);
  std::printf("per-cluster PC p99 RNL change after Phase 1 "
              "(sorted, every 5th):\n");
  stats::Table table({{"rank", 10, 0}, {"change(%)", 12, 1}});
  for (std::size_t i = 0; i < changes.size(); i += 5) {
    table.add_row({static_cast<double>(i),
                   stats::Cell::signed_number(changes[i], 1)});
  }
  table.add_row({static_cast<double>(changes.size() - 1),
                 stats::Cell::signed_number(changes.back(), 1)});
  bench::emit(table, args);
  double mean = 0.0;
  int improved = 0;
  for (double c : changes) {
    mean += c;
    if (c < 0) ++improved;
  }
  std::printf("\nmean change %+.1f%%, best %+.1f%%, clusters improved "
              "%d/50\n",
              mean / 50.0, changes.front(), improved);
  bench::print_footer();
  return 0;
}
