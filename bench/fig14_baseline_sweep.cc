// Figure 14: baseline (w/o Aequitas) p99.9 RNL per QoS as the input
// QoS_h-share sweeps 5..70% with QoS_m pinned at 25% (33-node all-to-all,
// 32KB RPCs). This is how the operator reads off the maximal admissible
// share for a given SLO: the paper picks 15us <-> QoS_h-share 25%.
#include <memory>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace aeq;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 14",
                      "Baseline p99.9 RNL vs input QoS_h-share "
                      "(QoS_m fixed at 25%), 33-node, no admission control");
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (double share : {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.70}) {
    sweep.submit([share, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      runner::ExperimentConfig config;
      config.num_hosts = 33;
      config.num_qos = 3;
      config.wfq_weights = {8.0, 4.0, 1.0};
      config.enable_aequitas = false;
      config.seed = ctx.seed;
      const double size_mtus = 8.0;
      config.slo = rpc::SloConfig::make({15 * sim::kUsec / size_mtus,
                                         25 * sim::kUsec / size_mtus, 0.0},
                                        99.9);
      runner::Experiment experiment(config);
      trace.apply(experiment, point);
      const auto* sizes = experiment.own(
          std::make_unique<workload::FixedSize>(32 * sim::kKiB));
      bench::AllToAllSpec spec;
      spec.mix = {share, 0.25, 0.75 - share};
      spec.sizes = {sizes};
      bench::attach_all_to_all(experiment, spec);
      experiment.run(8 * sim::kMsec, 15 * sim::kMsec);

      const auto& metrics = experiment.metrics();
      return runner::PointResult::single(
          {share * 100, metrics.rnl_by_run_qos(0).p999() / sim::kUsec,
           metrics.rnl_by_run_qos(1).p999() / sim::kUsec,
           metrics.rnl_by_run_qos(2).p999() / sim::kUsec});
    });
  }

  stats::Table table({{"QoSh-share(%)", 14, 0},
                      {"QoSh p999(us)", 14, 1},
                      {"QoSm p999(us)", 14, 1},
                      {"QoSl p999(us)", 14, 1}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  bench::print_footer();
  return 0;
}
