// Ablation: overloads beyond the edge — Aequitas on a two-tier leaf-spine
// fabric with oversubscribed uplinks.
//
// §2.2.2 stresses that overloads occur anywhere along an RPC's path, not
// just at ToR-to-NIC links (the assumption several isolation schemes make).
// Because Aequitas measures end-to-end RNL per (dst, QoS), it needs no
// knowledge of *where* the congestion forms. This ablation oversubscribes
// the leaf uplinks 2:1 and runs cross-leaf traffic only, so all queueing is
// in the fabric core.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

runner::PointResult run(bool with_aequitas, std::uint64_t seed,
                        const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.use_leaf_spine = true;
  config.leaf_spine.hosts_per_leaf = 8;
  config.leaf_spine.num_leaves = 4;
  config.leaf_spine.num_spines = 2;
  config.leaf_spine.edge_rate = sim::gbps(100);
  config.leaf_spine.fabric_rate = sim::gbps(100);  // 8x100G in, 2x100G up
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.seed = seed;
  // Per-channel QoS_h rates are tiny (traffic spreads over 24 remote
  // hosts), so favor SLO-compliance in the AIMD balance (§6.6).
  config.admission.aequitas.alpha = 0.002;
  config.admission.aequitas.beta_per_mtu = 0.04;
  const double size_mtus = 8.0;
  config.slo = rpc::SloConfig::make({60 * sim::kUsec / size_mtus,
                                     120 * sim::kUsec / size_mtus, 0.0},
                                    99.9);
  runner::Experiment experiment(config);
  trace.apply(experiment, point);

  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  const std::size_t hosts = experiment.network().num_hosts();
  for (std::size_t h = 0; h < hosts; ++h) {
    workload::GeneratorConfig gen;
    gen.burst_over_avg = 1.4 / 0.8;
    const double rate = 0.35 * sim::gbps(100);  // 0.35*8 = 2.8x the uplinks
    gen.classes = {{rpc::Priority::kPC, 0.5 * rate, sizes, 0.0},
                   {rpc::Priority::kNC, 0.3 * rate, sizes, 0.0},
                   {rpc::Priority::kBE, 0.2 * rate, sizes, 0.0}};
    // Cross-leaf destinations only: congestion lives on the uplinks.
    const std::size_t per_leaf = 8;
    const std::size_t my_leaf = h / per_leaf;
    experiment.add_generator(
        static_cast<net::HostId>(h), gen,
        [hosts, per_leaf, my_leaf](sim::Rng& rng) {
          while (true) {
            const auto dst = static_cast<net::HostId>(rng.index(hosts));
            if (static_cast<std::size_t>(dst) / per_leaf != my_leaf) {
              return dst;
            }
          }
        });
  }
  experiment.run(20 * sim::kMsec, 25 * sim::kMsec);

  runner::PointResult result;
  result.rows = bench::rnl_rows(experiment.metrics(), 3);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation",
                      "Overload in the fabric core: 32-host leaf-spine, "
                      "2:1 oversubscribed uplinks, cross-leaf traffic only "
                      "(SLO 60/120us)");
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (bool with_aequitas : {false, true}) {
    sweep.submit([with_aequitas, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      return run(with_aequitas, ctx.seed, trace, point);
    });
  }
  const auto points = sweep.run();
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::printf("\n%s Aequitas:\n", p == 1 ? "WITH" : "WITHOUT");
    stats::Table table = bench::make_rnl_table();
    table.add_rows(points[p].rows);
    bench::emit(table, args);
  }
  std::printf("\nAequitas never learns where the bottleneck is — RNL "
              "feedback alone relocates the admission decision to whatever "
              "path segment is overloaded.\n");
  bench::print_footer();
  return 0;
}
