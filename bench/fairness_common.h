// Shared harness for the fairness experiments (Figures 17/18 and the
// Appendix-C sensitivity study): two RPC channels on different hosts send
// 32KB RPCs at line rate to one server, with different fractions requested
// on QoS_h; we trace each channel's admit probability and admitted-QoS_h
// throughput over time.
#pragma once

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "stats/timeseries.h"

namespace aeq::bench {

struct FairnessResult {
  stats::TimeSeries p_admit[2];
  stats::RateMeter throughput[2] = {stats::RateMeter(10 * sim::kMsec),
                                    stats::RateMeter(10 * sim::kMsec)};
  stats::PercentileTracker p_admit_samples[2];
  double steady_throughput_gbps[2] = {0.0, 0.0};
  double steady_p_admit[2] = {0.0, 0.0};
};

struct FairnessSpec {
  double qosh_fraction_a = 0.8;  // channel A's requested QoS_h share
  double qosh_fraction_b = 0.4;  // channel B's
  double slo_us = 15.0;
  double alpha = 0.01;
  double beta_per_mtu = 0.01;
  sim::Time duration = 600 * sim::kMsec;
  std::uint64_t seed = 1;  // callers pass the sweep point's derived seed
  TraceRequest trace;      // forwarded from --trace/--trace-csv
  int trace_point = 0;     // this run's index for TraceRequest::apply
};

// Self-contained: safe to call from a SweepRunner / parallel_points worker
// (the result is plain data; all callbacks stop before it returns).
inline FairnessResult run_fairness(const FairnessSpec& spec) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.enable_aequitas = true;
  config.alpha = spec.alpha;
  config.beta_per_mtu = spec.beta_per_mtu;
  config.seed = spec.seed;
  const double size_mtus = 8.0;
  config.slo = rpc::SloConfig::make(
      {spec.slo_us * sim::kUsec / size_mtus, 0.0}, 99.9);
  runner::Experiment experiment(config);
  spec.trace.apply(experiment, spec.trace_point);

  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  const double fractions[2] = {spec.qosh_fraction_a, spec.qosh_fraction_b};
  for (net::HostId channel : {0, 1}) {
    workload::GeneratorConfig gen;
    const double f = fractions[channel];
    gen.classes = {
        {rpc::Priority::kPC, f * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, (1.0 - f) * sim::gbps(100), sizes, 0.0},
    };
    experiment.add_generator(channel, gen, workload::fixed_destination(2));
  }

  FairnessResult r;  // captured by reference; callbacks stop before return
  for (net::HostId channel : {0, 1}) {
    experiment.stack(channel).set_completion_listener(
        [&r, channel](const rpc::RpcRecord& record) {
          if (record.qos_run == net::kQoSHigh && !record.terminated) {
            r.throughput[channel].add(record.completed,
                                      static_cast<double>(record.bytes));
          }
        });
  }
  experiment.sample_every(1 * sim::kMsec, [&](sim::Time t) {
    for (net::HostId channel : {0, 1}) {
      const double p =
          experiment.aequitas(channel)->p_admit(2, net::kQoSHigh);
      r.p_admit[channel].record(t, p);
      if (t > spec.duration / 3) r.p_admit_samples[channel].add(p);
    }
  });

  experiment.run(0.0, spec.duration);

  const sim::Time steady_start = 2.0 * spec.duration / 3.0;
  for (net::HostId channel : {0, 1}) {
    r.throughput[channel].finish(spec.duration);
    r.steady_throughput_gbps[channel] =
        r.throughput[channel].series().average_in(steady_start,
                                                  spec.duration) *
        8.0 / 1e9;
    r.steady_p_admit[channel] =
        r.p_admit[channel].average_in(steady_start, spec.duration);
  }
  return r;
}

inline stats::Table fairness_timeline_table(const FairnessResult& r,
                                            std::size_t rows) {
  stats::Table table({{"t(ms)", 10, 0},
                      {"p_admit A", 12, 3},
                      {"p_admit B", 12, 3},
                      {"thput A(Gbps)", 14, 1},
                      {"thput B(Gbps)", 14, 1}});
  const auto pa = r.p_admit[0].resample(rows);
  const auto pb = r.p_admit[1].resample(rows);
  for (std::size_t i = 0; i < pa.size(); ++i) {
    const sim::Time t = pa[i].t;
    table.add_row({t / sim::kMsec, pa[i].value, pb[i].value,
                   r.throughput[0].series().value_at(t) * 8.0 / 1e9,
                   r.throughput[1].series().value_at(t) * 8.0 / 1e9});
  }
  return table;
}

}  // namespace aeq::bench
