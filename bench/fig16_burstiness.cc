// Figure 16: admitted QoS_h-share versus burst load rho. Theory (§5.2):
// the guaranteed admissible rate is inversely proportional to burstiness
// (X_h <= r * w_h * mu / rho), so the achieved share should follow ~C/rho.
// The bench fits C by least squares and reports both curves.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace aeq;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 16",
                      "Admitted QoS_h-share vs burst load rho "
                      "(33-node, mu=0.8, SLO 25us)");
  const double size_mtus = 8.0;
  const std::vector<double> rhos = {1.4, 1.6, 1.8, 2.0, 2.2};
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (double rho : rhos) {
    sweep.submit([rho, size_mtus, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      runner::ExperimentConfig config;
      config.num_hosts = 33;
      config.num_qos = 3;
      config.wfq_weights = {8.0, 4.0, 1.0};
      config.enable_aequitas = true;
      config.seed = ctx.seed;
      config.slo = rpc::SloConfig::make({25 * sim::kUsec / size_mtus,
                                         50 * sim::kUsec / size_mtus, 0.0},
                                        99.9);
      runner::Experiment experiment(config);
      trace.apply(experiment, point);
      const auto* sizes = experiment.own(
          std::make_unique<workload::FixedSize>(32 * sim::kKiB));
      bench::AllToAllSpec spec;
      spec.mix = {0.6, 0.3, 0.1};
      spec.burst_load = rho;
      spec.sizes = {sizes};
      bench::attach_all_to_all(experiment, spec);
      experiment.run(20 * sim::kMsec, 25 * sim::kMsec);
      runner::PointResult result;
      result.metrics["share"] = experiment.metrics().admitted_share(0);
      return result;
    });
  }
  const auto points = sweep.run();

  // Least-squares fit share = C / rho.
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    num += points[i].metrics.at("share") / rhos[i];
    den += 1.0 / (rhos[i] * rhos[i]);
  }
  const double C = num / den;

  stats::Table table({{"rho", 10, 1},
                      {"achieved share(%)", 20, 1},
                      {"fitted C/rho (%)", 20, 1}});
  for (std::size_t i = 0; i < rhos.size(); ++i) {
    table.add_row({rhos[i], points[i].metrics.at("share") * 100,
                   C / rhos[i] * 100});
  }
  bench::emit(table, args);
  std::printf("\nfitted C = %.3f; admitted share is ~inversely proportional "
              "to burstiness\n",
              C);
  bench::print_footer();
  return 0;
}
