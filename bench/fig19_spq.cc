// Figure 19: Aequitas-over-WFQ versus plain Strict Priority Queuing as the
// fraction of traffic marked QoS_h grows from 50% to 80% (QoS_m fixed at
// 20%). Expected (paper): SPQ cannot maintain predictability — QoS_m blows
// up as QoS_h grows and QoS_h itself degrades once "everyone is high
// priority" (the race-to-the-top); Aequitas keeps both near their SLOs by
// downgrading the excess.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

runner::PointResult run(double qosh_share, bool aequitas_wfq,
                        std::uint64_t seed,
                        const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.enable_aequitas = aequitas_wfq;
  config.seed = seed;
  if (aequitas_wfq) {
    config.scheduler = net::SchedulerType::kWfq;
    config.wfq_weights = {8.0, 4.0, 1.0};
  } else {
    config.scheduler = net::SchedulerType::kSpq;
    config.wfq_weights = {1.0, 1.0, 1.0};  // class count for SPQ
  }
  const double size_mtus = 8.0;
  config.slo = rpc::SloConfig::make(
      {25 * sim::kUsec / size_mtus, 50 * sim::kUsec / size_mtus, 0.0}, 99.9);
  runner::Experiment experiment(config);
  trace.apply(experiment, point);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = {qosh_share, 0.2, 0.8 - qosh_share};
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);
  experiment.run(10 * sim::kMsec, 15 * sim::kMsec);
  runner::PointResult result;
  result.metrics["h_p999"] =
      experiment.metrics().rnl_by_run_qos(0).p999() / sim::kUsec;
  result.metrics["m_p999"] =
      experiment.metrics().rnl_by_run_qos(1).p999() / sim::kUsec;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 19",
                      "Aequitas (WFQ) vs plain SPQ as QoS_h-share grows, "
                      "QoS_m fixed at 20% (SLO 25/50us)");
  const std::vector<double> shares = {0.50, 0.60, 0.70, 0.80};
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (double share : shares) {
    for (bool aequitas_wfq : {false, true}) {
      sweep.submit([share, aequitas_wfq, trace = args.trace,
                    point = trace_point++](const runner::PointContext& ctx) {
        return run(share, aequitas_wfq, ctx.seed, trace, point);
      });
    }
  }
  const auto points = sweep.run();

  stats::Table table({{"QoSh-share(%)", 14, 0},
                      {"SPQ h p999(us)", 16, 1},
                      {"AEQ h p999(us)", 16, 1},
                      {"SPQ m p999(us)", 16, 1},
                      {"AEQ m p999(us)", 16, 1}});
  for (std::size_t i = 0; i < shares.size(); ++i) {
    const auto& spq = points[2 * i].metrics;
    const auto& aeq = points[2 * i + 1].metrics;
    table.add_row({shares[i] * 100, spq.at("h_p999"), aeq.at("h_p999"),
                   spq.at("m_p999"), aeq.at("m_p999")});
  }
  bench::emit(table, args);
  bench::print_footer();
  return 0;
}
