// Figure 19: Aequitas-over-WFQ versus plain Strict Priority Queuing as the
// fraction of traffic marked QoS_h grows from 50% to 80% (QoS_m fixed at
// 20%). Expected (paper): SPQ cannot maintain predictability — QoS_m blows
// up as QoS_h grows and QoS_h itself degrades once "everyone is high
// priority" (the race-to-the-top); Aequitas keeps both near their SLOs by
// downgrading the excess.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

struct Point {
  double h_p999;
  double m_p999;
};

Point run(double qosh_share, bool aequitas_wfq) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.enable_aequitas = aequitas_wfq;
  if (aequitas_wfq) {
    config.scheduler = net::SchedulerType::kWfq;
    config.wfq_weights = {8.0, 4.0, 1.0};
  } else {
    config.scheduler = net::SchedulerType::kSpq;
    config.wfq_weights = {1.0, 1.0, 1.0};  // class count for SPQ
  }
  const double size_mtus = 8.0;
  config.slo = rpc::SloConfig::make(
      {25 * sim::kUsec / size_mtus, 50 * sim::kUsec / size_mtus, 0.0}, 99.9);
  runner::Experiment experiment(config);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = {qosh_share, 0.2, 0.8 - qosh_share};
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);
  experiment.run(10 * sim::kMsec, 15 * sim::kMsec);
  return Point{experiment.metrics().rnl_by_run_qos(0).p999() / sim::kUsec,
               experiment.metrics().rnl_by_run_qos(1).p999() / sim::kUsec};
}

}  // namespace

int main() {
  bench::print_header("Figure 19",
                      "Aequitas (WFQ) vs plain SPQ as QoS_h-share grows, "
                      "QoS_m fixed at 20% (SLO 25/50us)");
  std::printf("%-14s %-16s %-16s %-16s %-16s\n", "QoSh-share(%)",
              "SPQ h p999(us)", "AEQ h p999(us)", "SPQ m p999(us)",
              "AEQ m p999(us)");
  for (double share : {0.50, 0.60, 0.70, 0.80}) {
    const Point spq = run(share, false);
    const Point aeq = run(share, true);
    std::printf("%-14.0f %-16.1f %-16.1f %-16.1f %-16.1f\n", share * 100,
                spq.h_p999, aeq.h_p999, spq.m_p999, aeq.m_p999);
  }
  bench::print_footer();
  return 0;
}
