// Figure 11: Aequitas SLO-compliance on the 3-node microbenchmark. Two
// clients issue 32KB WRITE RPCs at line rate toward one server, 70% on
// QoS_h / 30% on QoS_l; the QoS_h SLO sweeps 15..60us (p99.9). Expected
// (paper): achieved p99.9 RNL tracks the SLO closely, and the admitted
// QoS_h share grows with looser SLOs (the SLO-vs-admitted-traffic tradeoff).
#include <algorithm>
#include <memory>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace aeq;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 11",
                      "SLO compliance, 3-node, 32KB RPCs, 70%/30% h/l at "
                      "line rate, QoS_h:QoS_l = 4:1");
  runner::SweepRunner sweep(args.sweep);
  // Convergence time scales with the AI increment window
  // (= per-MTU target * 1000 at p99.9), so looser SLOs run longer.
  int trace_point = 0;
  for (double slo_us : {15.0, 20.0, 30.0, 40.0, 50.0, 60.0}) {
    sweep.submit([slo_us, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      runner::ExperimentConfig config;
      config.num_hosts = 3;
      config.num_qos = 2;
      config.wfq_weights = {4.0, 1.0};
      config.enable_aequitas = true;
      config.seed = ctx.seed;
      const double size_mtus = 8.0;  // 32KB at 4KB MTU
      config.slo = rpc::SloConfig::make(
          {slo_us * sim::kUsec / size_mtus, 0.0}, 99.9);
      runner::Experiment experiment(config);
      trace.apply(experiment, point);

      const auto* sizes = experiment.own(
          std::make_unique<workload::FixedSize>(32 * sim::kKiB));
      for (net::HostId client : {0, 1}) {
        workload::GeneratorConfig gen;
        gen.classes = {
            {rpc::Priority::kPC, 0.7 * sim::gbps(100), sizes, 0.0},
            {rpc::Priority::kBE, 0.3 * sim::gbps(100), sizes, 0.0},
        };
        experiment.add_generator(client, gen,
                                 workload::fixed_destination(2));
      }
      const sim::Time window =
          experiment.aequitas(0)->increment_window(net::kQoSHigh);
      const sim::Time warmup = std::max(30 * sim::kMsec, 40.0 * window);
      const sim::Time measure = std::max(60 * sim::kMsec, 40.0 * window);
      experiment.run(warmup, measure);

      const auto& metrics = experiment.metrics();
      return runner::PointResult::single(
          {slo_us, metrics.rnl_by_run_qos(0).p999() / sim::kUsec,
           100.0 * metrics.admitted_share(0)});
    });
  }

  stats::Table table({{"SLO(us)", 12, 0},
                      {"p99.9 RNL QoSh(us)", 18, 1},
                      {"QoSh-share(%)", 16, 1}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  bench::print_footer();
  return 0;
}
