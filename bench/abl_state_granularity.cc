// Ablation: per-destination admission state (the paper's design) vs a
// single global p_admit per QoS at each sender.
//
// Aequitas keeps p_admit per (src, dst, QoS) so overload toward one
// destination does not throttle traffic to uncongested destinations
// (§3.2: hosts locate the oversubscription point implicitly). This
// ablation creates a hotspot (everyone also sends to host 0) and compares:
// per-destination state should keep the non-hotspot QoS_h traffic admitted
// at ~full probability, while global state collaterally downgrades it.
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "bench/bench_util.h"
#include "core/aequitas.h"

namespace {

using namespace aeq;

// AequitasController with a single state per QoS (destination-blind).
class GlobalStateController final : public rpc::AdmissionController {
 public:
  GlobalStateController(const core::AequitasConfig& config, sim::Rng rng)
      : inner_(config, rng) {}

  rpc::AdmissionDecision admit(sim::Time now, net::HostId src,
                               net::HostId /*dst*/,
                               net::QoSLevel qos_requested,
                               std::uint64_t bytes) override {
    return inner_.admit(now, src, /*dst=*/0, qos_requested, bytes);
  }
  void on_completion(sim::Time now, net::HostId src, net::HostId /*dst*/,
                     net::QoSLevel qos_requested, net::QoSLevel qos_run,
                     sim::Time rnl, std::uint64_t size_mtus) override {
    inner_.on_completion(now, src, /*dst=*/0, qos_requested, qos_run, rnl,
                         size_mtus);
  }

 private:
  core::AequitasController inner_;
};

runner::PointResult run(bool per_destination, std::uint64_t seed,
                        const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 9;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.seed = seed;
  const double size_mtus = 8.0;
  config.slo =
      rpc::SloConfig::make({20 * sim::kUsec / size_mtus, 0.0}, 99.9);
  if (per_destination) {
    config.enable_aequitas = true;
  } else {
    core::AequitasConfig aeq;
    aeq.slo = config.slo;
    config.admission_factory = [aeq](sim::Simulator&, net::HostId,
                                     sim::Rng rng) {
      return std::make_unique<GlobalStateController>(aeq, rng);
    };
  }
  runner::Experiment experiment(config);
  trace.apply(experiment, point);

  std::unordered_map<int, std::uint64_t> issued, downgraded;
  stats::PercentileTracker background_rnl;
  for (net::HostId h = 1; h < 9; ++h) {
    experiment.stack(h).set_completion_listener(
        [&](const rpc::RpcRecord& r) {
          if (r.priority != rpc::Priority::kPC ||
              r.issued < 10 * sim::kMsec) {
            return;
          }
          const int group = r.dst == 0 ? 0 : 1;  // hotspot vs background
          ++issued[group];
          if (r.downgraded) ++downgraded[group];
          if (group == 1 && r.qos_run == net::kQoSHigh) {
            background_rnl.add(r.rnl);
          }
        });
  }

  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  for (net::HostId h = 1; h < 9; ++h) {
    // Hotspot: every host fires 0.35 load of PC at host 0 (2.8x overload
    // on its downlink)...
    workload::GeneratorConfig hot;
    hot.classes = {{rpc::Priority::kPC, 0.35 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(h, hot, workload::fixed_destination(0));
    // ...plus light PC traffic to the other (uncongested) hosts.
    workload::GeneratorConfig cold;
    cold.classes = {{rpc::Priority::kPC, 0.10 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(h, cold, [h](sim::Rng& rng) {
      auto dst = static_cast<net::HostId>(1 + rng.index(8));
      if (dst == h) dst = dst == 8 ? 1 : dst + 1;
      return dst;
    });
  }
  experiment.run(10 * sim::kMsec, 25 * sim::kMsec);

  return runner::PointResult::single(
      {per_destination ? "per (dst, QoS) [paper]" : "global per QoS",
       issued[0] ? 100.0 * downgraded[0] / issued[0] : 0.0,
       issued[1] ? 100.0 * downgraded[1] / issued[1] : 0.0,
       background_rnl.p999() / sim::kUsec});
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation",
                      "Per-destination admission state vs a global "
                      "per-QoS p_admit (hotspot at host 0)");
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (bool per_destination : {true, false}) {
    sweep.submit([per_destination, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      return run(per_destination, ctx.seed, trace, point);
    });
  }
  stats::Table table({{"state granularity", 24},
                      {"hotspot downgraded(%)", 22, 1},
                      {"background downgraded(%)", 24, 1},
                      {"background p999(us)", 22, 1}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  std::printf("\nPer-destination state confines downgrades to the hotspot; "
              "global state collaterally downgrades traffic to idle "
              "destinations.\n");
  bench::print_footer();
  return 0;
}
