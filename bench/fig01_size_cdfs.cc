// Figure 1: RPC size CDFs per priority class for READs (response payload)
// and WRITEs (request payload). We print the synthetic production-shaped
// distributions the workload module ships (see DESIGN.md substitutions):
// PC small-biased with a genuine large tail, NC mid, BE bulk — the
// size/priority misalignment that breaks SJF-style scheduling (§2.1).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "workload/size_dist.h"

namespace {

using namespace aeq;

void print_table(bool write) {
  std::printf("\n%s RPC sizes (KB at CDF quantiles):\n",
              write ? "WRITE" : "READ");
  std::printf("%-10s %-10s %-10s %-10s\n", "quantile", "PC", "NC", "BE");
  auto pc = workload::production_size_dist(rpc::Priority::kPC, write);
  auto nc = workload::production_size_dist(rpc::Priority::kNC, write);
  auto be = workload::production_size_dist(rpc::Priority::kBE, write);
  // Empirical quantiles from a large deterministic sample.
  const int n = 200000;
  auto quantiles = [&](workload::SizeDistribution& dist) {
    std::vector<double> samples;
    samples.reserve(n);
    sim::Rng rng(7);
    for (int i = 0; i < n; ++i) {
      samples.push_back(static_cast<double>(dist.sample(rng)));
    }
    std::sort(samples.begin(), samples.end());
    return samples;
  };
  const auto s_pc = quantiles(*pc);
  const auto s_nc = quantiles(*nc);
  const auto s_be = quantiles(*be);
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    const auto i = static_cast<std::size_t>(q * (n - 1));
    std::printf("%-10.3f %-10.1f %-10.1f %-10.1f\n", q, s_pc[i] / 1024.0,
                s_nc[i] / 1024.0, s_be[i] / 1024.0);
  }
  std::printf("mean (KB): PC %.1f, NC %.1f, BE %.1f\n",
              pc->mean_bytes() / 1024.0, nc->mean_bytes() / 1024.0,
              be->mean_bytes() / 1024.0);
}

}  // namespace

int main() {
  aeq::bench::print_header("Figure 1",
                           "Synthetic production RPC size distributions "
                           "per priority class");
  print_table(/*write=*/false);
  print_table(/*write=*/true);
  std::printf("\nNote: PC's p99.9 is far above its median — large "
              "performance-critical RPCs exist, so size != priority.\n");
  aeq::bench::print_footer();
  return 0;
}
