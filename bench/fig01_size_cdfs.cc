// Figure 1: RPC size CDFs per priority class for READs (response payload)
// and WRITEs (request payload). We print the synthetic production-shaped
// distributions the workload module ships (see DESIGN.md substitutions):
// PC small-biased with a genuine large tail, NC mid, BE bulk — the
// size/priority misalignment that breaks SJF-style scheduling (§2.1).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "workload/size_dist.h"

namespace {

using namespace aeq;

// One panel (READ or WRITE) computed on a worker: quantile rows + means.
runner::PointResult sample_panel(bool write) {
  auto pc = workload::production_size_dist(rpc::Priority::kPC, write);
  auto nc = workload::production_size_dist(rpc::Priority::kNC, write);
  auto be = workload::production_size_dist(rpc::Priority::kBE, write);
  // Empirical quantiles from a large deterministic sample.
  const int n = 200000;
  auto quantiles = [&](workload::SizeDistribution& dist) {
    std::vector<double> samples;
    samples.reserve(n);
    sim::Rng rng(7);
    for (int i = 0; i < n; ++i) {
      samples.push_back(static_cast<double>(dist.sample(rng)));
    }
    std::sort(samples.begin(), samples.end());
    return samples;
  };
  const auto s_pc = quantiles(*pc);
  const auto s_nc = quantiles(*nc);
  const auto s_be = quantiles(*be);
  runner::PointResult result;
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    const auto i = static_cast<std::size_t>(q * (n - 1));
    result.rows.push_back({stats::Cell(q, 3), s_pc[i] / 1024.0,
                           s_nc[i] / 1024.0, s_be[i] / 1024.0});
  }
  result.metrics["mean_pc"] = pc->mean_bytes() / 1024.0;
  result.metrics["mean_nc"] = nc->mean_bytes() / 1024.0;
  result.metrics["mean_be"] = be->mean_bytes() / 1024.0;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 1",
                      "Synthetic production RPC size distributions "
                      "per priority class");
  runner::SweepRunner sweep(args.sweep);
  for (bool write : {false, true}) {
    sweep.submit(
        [write](const runner::PointContext&) { return sample_panel(write); });
  }
  const auto panels = sweep.run();
  for (std::size_t p = 0; p < panels.size(); ++p) {
    std::printf("\n%s RPC sizes (KB at CDF quantiles):\n",
                p == 1 ? "WRITE" : "READ");
    stats::Table table({{"quantile", 10, 3},
                        {"PC", 10, 1},
                        {"NC", 10, 1},
                        {"BE", 10, 1}});
    table.add_rows(panels[p].rows);
    bench::emit(table, args);
    std::printf("mean (KB): PC %.1f, NC %.1f, BE %.1f\n",
                panels[p].metrics.at("mean_pc"),
                panels[p].metrics.at("mean_nc"),
                panels[p].metrics.at("mean_be"));
  }
  std::printf("\nNote: PC's p99.9 is far above its median — large "
              "performance-critical RPCs exist, so size != priority.\n");
  bench::print_footer();
  return 0;
}
