// Ablation: QoS-downgrade vs classic drop-based admission control.
//
// Aequitas's departure from traditional admission control is that rejected
// RPCs are *downgraded* to the scavenger class instead of dropped (§5,
// Phase 2). This ablation runs the same overloaded 3-node workload with
// (a) Aequitas (downgrade) and (b) an identical AIMD controller whose
// rejections are hard drops — AdmissionSpec::drop_rejects, which wraps the
// policy in policy::RejectionAdapter. Expected: equivalent QoS_h
// protection, but the drop variant destroys the rejected goodput while
// downgrading eventually delivers nearly everything.
//
// `--controller=ticket-pool,bandit` (or `all`) extends the ablation to any
// registered admission policy: each kind runs both as-designed (downgrade /
// pace) and with drop_rejects=true, so the downgrade-vs-drop comparison is
// policy-agnostic rather than Aequitas-specific.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "policy/registry.h"

namespace {

using namespace aeq;

runner::PointResult run(const std::string& kind, bool drop,
                        const std::string& label, std::uint64_t seed,
                        const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.seed = seed;
  const double size_mtus = 8.0;
  config.slo =
      rpc::SloConfig::make({15 * sim::kUsec / size_mtus, 0.0}, 99.9);
  config.admission.kind = kind;
  config.admission.drop_rejects = drop;
  runner::Experiment experiment(config);
  trace.apply(experiment, point);

  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  for (net::HostId client : {0, 1}) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.7 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, 0.3 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(client, gen, workload::fixed_destination(2));
  }
  experiment.run(15 * sim::kMsec, 25 * sim::kMsec);

  const auto& metrics = experiment.metrics();
  double offered = 0.0, delivered = 0.0;
  for (net::QoSLevel q = 0; q < 2; ++q) {
    offered += static_cast<double>(metrics.bytes_requested(q));
    delivered += static_cast<double>(metrics.bytes_completed(q));
  }
  const auto pc_issued = metrics.downgraded(0) + metrics.terminated(0) +
                         metrics.completed(0);
  const double rejected =
      pc_issued ? static_cast<double>(metrics.downgraded(0) +
                                      metrics.terminated(0)) /
                      static_cast<double>(pc_issued)
                : 0.0;
  return runner::PointResult::single(
      {label, metrics.rnl_by_run_qos(0).p999() / sim::kUsec,
       offered > 0 ? 100 * delivered / offered : 0.0, 100 * rejected});
}

std::vector<std::string> parse_kinds(const std::string& controller) {
  if (controller == "all") return policy::names();
  std::vector<std::string> kinds;
  std::string_view remaining = controller;
  while (!remaining.empty()) {
    const auto comma = remaining.find(',');
    kinds.emplace_back(remaining.substr(0, comma));
    if (comma == std::string_view::npos) break;
    remaining.remove_prefix(comma + 1);
  }
  return kinds;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const std::string controller = args.flags.get("controller");
  std::vector<std::string> kinds = parse_kinds(controller);
  for (const std::string& kind : kinds) {
    if (policy::is_registered(kind)) continue;
    std::fprintf(stderr, "unknown --controller kind \"%s\"; registered:",
                 kind.c_str());
    for (const std::string& name : policy::names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  bench::print_header("Ablation",
                      "Downgrade (Aequitas) vs drop-based admission under "
                      "2x offered load (3-node, SLO 15us)");
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  if (kinds.empty()) {
    // Default: the paper's pairing — Aequitas as shipped vs the same AIMD
    // controller with hard-dropped rejections.
    for (bool drop : {false, true}) {
      sweep.submit([drop, trace = args.trace,
                    point = trace_point++](const runner::PointContext& ctx) {
        return run(policy::kAequitas, drop,
                   drop ? "drop" : "downgrade (Aequitas)", ctx.seed, trace,
                   point);
      });
    }
  } else {
    for (const std::string& kind : kinds) {
      for (bool drop : {false, true}) {
        sweep.submit([kind, drop, trace = args.trace,
                      point = trace_point++](const runner::PointContext& ctx) {
          return run(kind, drop, kind + (drop ? " (drop)" : " (downgrade)"),
                     ctx.seed, trace, point);
        });
      }
    }
  }
  stats::Table table({{"policy", 22},
                      {"QoSh p999(us)", 18, 1},
                      {"offered delivered(%)", 22, 1},
                      {"PC rejected(%)", 18, 1}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  std::printf("\nBoth protect admitted QoS_h; the link is 2x oversubscribed "
              "so ~50%% of offered bytes can complete at best — downgrading "
              "keeps the link busy delivering rejected traffic on the "
              "scavenger class, dropping destroys it outright.\n");
  bench::print_footer();
  return 0;
}
