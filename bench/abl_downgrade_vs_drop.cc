// Ablation: QoS-downgrade vs classic drop-based admission control.
//
// Aequitas's departure from traditional admission control is that rejected
// RPCs are *downgraded* to the scavenger class instead of dropped (§5,
// Phase 2). This ablation runs the same overloaded 3-node workload with
// (a) Aequitas (downgrade) and (b) an identical AIMD controller whose
// rejections are hard drops. Expected: equivalent QoS_h protection, but
// the drop variant destroys the rejected goodput while downgrading
// eventually delivers nearly everything.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/aequitas.h"

namespace {

using namespace aeq;

// Same AIMD coin flip as Aequitas, but rejections are drops.
class DropController final : public rpc::AdmissionController {
 public:
  DropController(const core::AequitasConfig& config, sim::Rng rng)
      : inner_(config, rng) {}

  rpc::AdmissionDecision admit(sim::Time now, net::HostId src,
                               net::HostId dst, net::QoSLevel qos_requested,
                               std::uint64_t bytes) override {
    auto decision = inner_.admit(now, src, dst, qos_requested, bytes);
    if (decision.downgraded) {
      decision.downgraded = false;
      decision.dropped = true;
      decision.qos_run = qos_requested;
    }
    return decision;
  }
  void on_completion(sim::Time now, net::HostId src, net::HostId dst,
                     net::QoSLevel qos_run, sim::Time rnl,
                     std::uint64_t size_mtus) override {
    inner_.on_completion(now, src, dst, qos_run, rnl, size_mtus);
  }

 private:
  core::AequitasController inner_;
};

runner::PointResult run(bool drop, std::uint64_t seed,
                        const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.seed = seed;
  const double size_mtus = 8.0;
  config.slo =
      rpc::SloConfig::make({15 * sim::kUsec / size_mtus, 0.0}, 99.9);
  if (drop) {
    core::AequitasConfig aeq;
    aeq.slo = config.slo;
    config.admission_factory = [aeq](sim::Simulator&, net::HostId,
                                     sim::Rng rng) {
      return std::make_unique<DropController>(aeq, rng);
    };
  } else {
    config.enable_aequitas = true;
  }
  runner::Experiment experiment(config);
  trace.apply(experiment, point);

  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  for (net::HostId client : {0, 1}) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.7 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, 0.3 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(client, gen, workload::fixed_destination(2));
  }
  experiment.run(15 * sim::kMsec, 25 * sim::kMsec);

  const auto& metrics = experiment.metrics();
  double offered = 0.0, delivered = 0.0;
  for (net::QoSLevel q = 0; q < 2; ++q) {
    offered += static_cast<double>(metrics.bytes_requested(q));
    delivered += static_cast<double>(metrics.bytes_completed(q));
  }
  const auto pc_issued = metrics.downgraded(0) + metrics.terminated(0) +
                         metrics.completed(0);
  const double rejected =
      pc_issued ? static_cast<double>(metrics.downgraded(0) +
                                      metrics.terminated(0)) /
                      static_cast<double>(pc_issued)
                : 0.0;
  return runner::PointResult::single(
      {drop ? "drop" : "downgrade (Aequitas)",
       metrics.rnl_by_run_qos(0).p999() / sim::kUsec,
       offered > 0 ? 100 * delivered / offered : 0.0, 100 * rejected});
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation",
                      "Downgrade (Aequitas) vs drop-based admission under "
                      "2x offered load (3-node, SLO 15us)");
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (bool drop : {false, true}) {
    sweep.submit([drop, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      return run(drop, ctx.seed, trace, point);
    });
  }
  stats::Table table({{"policy", 22},
                      {"QoSh p999(us)", 18, 1},
                      {"offered delivered(%)", 22, 1},
                      {"PC rejected(%)", 18, 1}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  std::printf("\nBoth protect admitted QoS_h; the link is 2x oversubscribed "
              "so ~50%% of offered bytes can complete at best — downgrading "
              "keeps the link busy delivering rejected traffic on the "
              "scavenger class, dropping destroys it outright.\n");
  bench::print_footer();
  return 0;
}
