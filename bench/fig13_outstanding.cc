// Figure 13: CDF of outstanding RPCs per destination before/after Aequitas
// on the Figure-12 workload. Expected (paper): Aequitas shrinks the
// outstanding QoS_h+QoS_m population (admitted traffic drains fast) and the
// *decrease* there outweighs the increase in outstanding QoS_l RPCs,
// especially at the tail — which is why even QoS_l latency improves.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "stats/histogram.h"

namespace {

using namespace aeq;

struct Cdfs {
  stats::Histogram high{0.0, 512.0, 512};  // QoS_h + QoS_m group
  stats::Histogram low{0.0, 512.0, 512};   // QoS_l group
};

Cdfs run(bool with_aequitas, std::uint64_t seed,
         const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.seed = seed;
  const double size_mtus = 8.0;
  config.slo = rpc::SloConfig::make({25 * sim::kUsec / size_mtus,
                                     50 * sim::kUsec / size_mtus, 0.0},
                                    99.9);
  runner::Experiment experiment(config);
  trace.apply(experiment, point);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = {0.6, 0.3, 0.1};
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);

  Cdfs cdfs;
  experiment.sample_every(50 * sim::kUsec, [&](sim::Time t) {
    if (t < 10 * sim::kMsec) return;  // warmup
    for (std::size_t d = 0; d < experiment.network().num_hosts(); ++d) {
      const auto dst = static_cast<net::HostId>(d);
      cdfs.high.add(experiment.metrics().outstanding(dst, 0));
      cdfs.low.add(experiment.metrics().outstanding(dst, 1));
    }
  });
  experiment.run(10 * sim::kMsec, 15 * sim::kMsec);
  return cdfs;
}

void print_cdf(const char* title, const stats::Histogram& baseline,
               const stats::Histogram& aequitas, bench::BenchArgs& args) {
  std::printf("\n%s\n", title);
  stats::Table table({{"outstanding<=", 14, 0},
                      {"baseline CDF", 14, 3},
                      {"Aequitas CDF", 14, 3}});
  for (std::size_t count : {0u, 1u, 2u, 4u, 8u, 12u, 16u, 20u, 30u, 60u,
                            100u, 200u, 400u}) {
    table.add_row({static_cast<double>(count), baseline.cdf_at(count),
                   aequitas.cdf_at(count)});
  }
  bench::emit(table, args);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 13",
                      "Outstanding RPCs per destination (33-node, "
                      "mix 60/30/10), w/ and w/o Aequitas");
  const runner::SweepRunner seeds(args.sweep);
  auto cdfs = runner::parallel_points(
      2, args.sweep.jobs, [&seeds, &args](std::size_t index) {
        return run(index == 1, seeds.point_seed(index), args.trace,
                   static_cast<int>(index));
      });
  print_cdf("QoS_h + QoS_m outstanding RPCs:", cdfs[0].high, cdfs[1].high,
            args);
  print_cdf("QoS_l outstanding RPCs:", cdfs[0].low, cdfs[1].low, args);
  bench::print_footer();
  return 0;
}
