// Ablation / extension: per-tenant quota server on top of Aequitas
// (paper §5.2 future work: "one can augment Aequitas to provide
// application/tenant traffic rate guarantees with a centralized RPC quota
// server").
//
// Two tenants (one sending host each) share a 3-node bottleneck; both
// over-demand QoS_h. Plain Aequitas fair-shares per channel (1:1); with the
// quota server, admitted QoS_h throughput follows the 3:1 tenant weights
// while the latency protection is unchanged.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "core/quota.h"

namespace {

using namespace aeq;

struct Result {
  double thput_a_gbps;
  double thput_b_gbps;
  double p999_us;
};

Result run(bool with_quota, std::uint64_t seed,
           const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 3;
  config.num_qos = 2;
  config.wfq_weights = {4.0, 1.0};
  config.seed = seed;
  const double size_mtus = 8.0;
  config.slo =
      rpc::SloConfig::make({20 * sim::kUsec / size_mtus, 0.0}, 99.9);

  // One QuotaServer shared by all controllers; created lazily from the
  // factory (which receives the experiment's simulator) and kept alive by
  // the controller wrappers.
  auto server = std::make_shared<std::shared_ptr<core::QuotaServer>>();
  if (with_quota) {
    const rpc::SloConfig slo = config.slo;
    config.admission_factory =
        [server, slo](sim::Simulator& simulator, net::HostId host,
                      sim::Rng rng)
        -> std::unique_ptr<rpc::AdmissionController> {
      if (!*server) {
        core::QuotaServerConfig sc;
        // Budget: the admissible QoS_h rate for this SLO (~20% of 100G).
        sc.qos_budget_bytes_per_sec = {0.20 * sim::gbps(100),
                                       sim::gbps(100)};
        *server = std::make_shared<core::QuotaServer>(simulator, sc);
      }
      core::AequitasConfig aeq;
      aeq.slo = slo;
      const double weight = host == 0 ? 3.0 : 1.0;
      const auto tenant = (*server)->register_tenant(weight);

      struct Holder final : rpc::AdmissionController {
        std::shared_ptr<core::QuotaServer> keepalive;
        std::unique_ptr<core::QuotaController> inner;
        rpc::AdmissionDecision admit(sim::Time now, net::HostId src,
                                     net::HostId dst, net::QoSLevel qos,
                                     std::uint64_t bytes) override {
          return inner->admit(now, src, dst, qos, bytes);
        }
        void on_completion(sim::Time now, net::HostId src, net::HostId dst,
                           net::QoSLevel qos_requested, net::QoSLevel qos_run,
                           sim::Time rnl, std::uint64_t mtus) override {
          inner->on_completion(now, src, dst, qos_requested, qos_run, rnl,
                               mtus);
        }
      };
      auto holder = std::make_unique<Holder>();
      holder->keepalive = *server;
      holder->inner = std::make_unique<core::QuotaController>(
          simulator, **server, tenant,
          std::make_unique<core::AequitasController>(aeq, rng),
          core::QuotaControllerConfig{});
      return holder;
    };
  } else {
    config.enable_aequitas = true;
  }
  runner::Experiment experiment(config);
  trace.apply(experiment, point);

  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  double bytes_on_qosh[2] = {0.0, 0.0};
  for (net::HostId tenant_host : {0, 1}) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.8 * sim::gbps(100), sizes, 0.0},
        {rpc::Priority::kBE, 0.2 * sim::gbps(100), sizes, 0.0}};
    experiment.add_generator(tenant_host, gen,
                             workload::fixed_destination(2));
    experiment.stack(tenant_host)
        .set_completion_listener(
            [&bytes_on_qosh, tenant_host](const rpc::RpcRecord& r) {
              if (r.qos_run == net::kQoSHigh && !r.terminated &&
                  r.issued > 20 * sim::kMsec) {
                bytes_on_qosh[tenant_host] +=
                    static_cast<double>(r.bytes);
              }
            });
  }
  experiment.run(20 * sim::kMsec, 30 * sim::kMsec);

  Result result{};
  result.thput_a_gbps = bytes_on_qosh[0] * 8 / (30 * sim::kMsec) / 1e9;
  result.thput_b_gbps = bytes_on_qosh[1] * 8 / (30 * sim::kMsec) / 1e9;
  result.p999_us =
      experiment.metrics().rnl_by_run_qos(0).p999() / sim::kUsec;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Extension",
                      "Per-tenant quota server over Aequitas (tenant "
                      "weights 3:1, both over-demanding QoS_h)");
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (bool with_quota : {false, true}) {
    sweep.submit([with_quota, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      const Result r = run(with_quota, ctx.seed, trace, point);
      return runner::PointResult::single(
          {with_quota ? "with quota server (3:1)" : "Aequitas only (1:1)",
           r.thput_a_gbps, r.thput_b_gbps, r.p999_us});
    });
  }
  stats::Table table({{"policy", 26},
                      {"A thput(Gbps)", 14, 1},
                      {"B thput(Gbps)", 14, 1},
                      {"QoSh p999(us)", 14, 1}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  std::printf("\nThe quota server turns per-channel fairness into weighted "
              "per-tenant guarantees without touching the latency SLO.\n");
  bench::print_footer();
  return 0;
}
