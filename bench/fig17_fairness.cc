// Figure 17: fairness across RPC channels. Channel A requests 80% of its
// line-rate load on QoS_h, channel B requests 40%; the QoS_h SLO is 15us.
// Expected (paper): the channels converge to *equal admitted QoS_h
// throughput* via *different* admit probabilities (the heavier channel's
// p_admit converges to roughly half the lighter one's).
#include <cstdio>

#include "bench/fairness_common.h"

int main(int argc, char** argv) {
  using namespace aeq;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 17",
                      "Two channels, 80%/40% requested on QoS_h, SLO 15us: "
                      "max-min fair admitted throughput");
  bench::FairnessSpec spec;
  spec.qosh_fraction_a = 0.8;
  spec.qosh_fraction_b = 0.4;
  spec.seed = sim::derive_seed(args.sweep.base_seed, 0);
  spec.trace = args.trace;
  const bench::FairnessResult r = bench::run_fairness(spec);
  bench::emit(bench::fairness_timeline_table(r, 21), args);
  std::printf("\nsteady state (last third):\n");
  std::printf("  admitted QoS_h throughput: A %.1f Gbps, B %.1f Gbps "
              "(fair => equal)\n",
              r.steady_throughput_gbps[0], r.steady_throughput_gbps[1]);
  std::printf("  mean p_admit: A %.3f, B %.3f (ratio %.2f; requested load "
              "ratio is 2.0)\n",
              r.steady_p_admit[0], r.steady_p_admit[1],
              r.steady_p_admit[1] / r.steady_p_admit[0]);
  bench::print_footer();
  return 0;
}
