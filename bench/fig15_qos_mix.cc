// Figure 15: Aequitas admits close to the maximal (target) QoS-mix
// irrespective of the input QoS-mix, while QoS_h stays SLO-compliant.
//
// Method (mirrors §6.3): first calibrate — run the 33-node baseline at the
// target mix (25/25/50) and read the achieved p99.9 RNL per class; those
// become the SLOs, so by construction ~25% QoS_h / ~25% QoS_m is the
// maximal admissible traffic. Then feed four different input mixes through
// Aequitas and report the admitted mix and QoS_h p99.9 RNL. Expected: all
// inputs converge to ~the target mix (self-consistent for 25/25/50).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

constexpr double kSizeMtus = 8.0;  // 32KB RPCs

runner::Experiment make_experiment(bool with_aequitas,
                                   const rpc::SloConfig& slo,
                                   std::uint64_t seed) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.slo = slo;
  config.seed = seed;
  // Favor SLO-compliance over work-conservation (§6.6 / Appendix C).
  config.admission.aequitas.alpha = 0.003;
  config.admission.aequitas.beta_per_mtu = 0.03;
  return runner::Experiment(config);
}

void attach(runner::Experiment& experiment, const std::vector<double>& mix) {
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = mix;
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);
}

std::string mix_label(double h, double m, double l, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f/%.*f/%.*f", precision, h, precision,
                m, precision, l);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 15",
                      "Admitted QoS-mix converges to the target mix "
                      "(25/25/50) for any input mix, 33-node");

  // --- calibration: SLOs = baseline p99.9 at the target mix. Runs serially
  // (the sweep below depends on its output) with a seed derived outside the
  // sweep's index range so no point shares its stream. ---
  rpc::SloConfig placeholder = rpc::SloConfig::make(
      {15 * sim::kUsec / kSizeMtus, 25 * sim::kUsec / kSizeMtus, 0.0}, 99.9);
  runner::Experiment calibration = make_experiment(
      false, placeholder, sim::derive_seed(args.sweep.base_seed, 100));
  attach(calibration, {0.25, 0.25, 0.50});
  calibration.run(8 * sim::kMsec, 12 * sim::kMsec);
  const double slo_h = calibration.metrics().rnl_by_run_qos(0).p999();
  const double slo_m = calibration.metrics().rnl_by_run_qos(1).p999();
  std::printf("calibrated SLOs at target mix: QoS_h %.1fus, QoS_m %.1fus "
              "(p99.9)\n\n",
              slo_h / sim::kUsec, slo_m / sim::kUsec);
  const rpc::SloConfig slo = rpc::SloConfig::make(
      {slo_h / kSizeMtus, slo_m / kSizeMtus, 0.0}, 99.9);

  const std::vector<std::vector<double>> inputs = {
      {0.25, 0.25, 0.50},
      {0.60, 0.30, 0.10},
      {0.50, 0.30, 0.20},
      {0.40, 0.40, 0.20},
  };
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (const auto& mix : inputs) {
    sweep.submit([mix, slo, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      runner::Experiment experiment = make_experiment(true, slo, ctx.seed);
      trace.apply(experiment, point);
      attach(experiment, mix);
      experiment.run(25 * sim::kMsec, 30 * sim::kMsec);
      const auto& metrics = experiment.metrics();
      return runner::PointResult::single(
          {mix_label(mix[0] * 100, mix[1] * 100, mix[2] * 100, 0),
           mix_label(100 * metrics.admitted_share(0),
                     100 * metrics.admitted_share(1),
                     100 * metrics.admitted_share(2), 1),
           metrics.rnl_by_run_qos(0).p999() / sim::kUsec});
    });
  }

  stats::Table table({{"input mix (h/m/l %)", 22},
                      {"admitted mix (h/m/l %)", 24, 1},
                      {"QoSh p99.9 (us)", 18, 1}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  bench::print_footer();
  return 0;
}
