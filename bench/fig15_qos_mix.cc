// Figure 15: Aequitas admits close to the maximal (target) QoS-mix
// irrespective of the input QoS-mix, while QoS_h stays SLO-compliant.
//
// Method (mirrors §6.3): first calibrate — run the 33-node baseline at the
// target mix (25/25/50) and read the achieved p99.9 RNL per class; those
// become the SLOs, so by construction ~25% QoS_h / ~25% QoS_m is the
// maximal admissible traffic. Then feed four different input mixes through
// Aequitas and report the admitted mix and QoS_h p99.9 RNL. Expected: all
// inputs converge to ~the target mix (self-consistent for 25/25/50).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

constexpr double kSizeMtus = 8.0;  // 32KB RPCs

runner::Experiment make_experiment(bool with_aequitas,
                                   const rpc::SloConfig& slo) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.slo = slo;
  // Favor SLO-compliance over work-conservation (§6.6 / Appendix C).
  config.alpha = 0.003;
  config.beta_per_mtu = 0.03;
  return runner::Experiment(config);
}

void attach(runner::Experiment& experiment, const std::vector<double>& mix) {
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = mix;
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);
}

}  // namespace

int main() {
  bench::print_header("Figure 15",
                      "Admitted QoS-mix converges to the target mix "
                      "(25/25/50) for any input mix, 33-node");

  // --- calibration: SLOs = baseline p99.9 at the target mix ---
  rpc::SloConfig placeholder = rpc::SloConfig::make(
      {15 * sim::kUsec / kSizeMtus, 25 * sim::kUsec / kSizeMtus, 0.0}, 99.9);
  runner::Experiment calibration = make_experiment(false, placeholder);
  attach(calibration, {0.25, 0.25, 0.50});
  calibration.run(8 * sim::kMsec, 12 * sim::kMsec);
  const double slo_h = calibration.metrics().rnl_by_run_qos(0).p999();
  const double slo_m = calibration.metrics().rnl_by_run_qos(1).p999();
  std::printf("calibrated SLOs at target mix: QoS_h %.1fus, QoS_m %.1fus "
              "(p99.9)\n\n",
              slo_h / sim::kUsec, slo_m / sim::kUsec);
  const rpc::SloConfig slo = rpc::SloConfig::make(
      {slo_h / kSizeMtus, slo_m / kSizeMtus, 0.0}, 99.9);

  std::printf("%-22s %-22s %-18s\n", "input mix (h/m/l %)",
              "admitted mix (h/m/l %)", "QoSh p99.9 (us)");
  const std::vector<std::vector<double>> inputs = {
      {0.25, 0.25, 0.50},
      {0.60, 0.30, 0.10},
      {0.50, 0.30, 0.20},
      {0.40, 0.40, 0.20},
  };
  for (const auto& mix : inputs) {
    runner::Experiment experiment = make_experiment(true, slo);
    attach(experiment, mix);
    experiment.run(25 * sim::kMsec, 30 * sim::kMsec);
    const auto& metrics = experiment.metrics();
    std::printf("%4.0f/%-4.0f/%-10.0f %6.1f/%-6.1f/%-10.1f %-18.1f\n",
                mix[0] * 100, mix[1] * 100, mix[2] * 100,
                100 * metrics.admitted_share(0),
                100 * metrics.admitted_share(1),
                100 * metrics.admitted_share(2),
                metrics.rnl_by_run_qos(0).p999() / sim::kUsec);
  }
  bench::print_footer();
  return 0;
}
