// Ablation: WFQ realizations — virtual-time (PGPS) vs Deficit Weighted
// Round Robin (the paper's footnote 1 names both as implementations of the
// same mechanism). We replay the Figure-10 validation against both: DWRR
// preserves the same worst-case delay profile at this granularity (its
// unfairness bound is one quantum per class), so Aequitas's analysis holds
// over either; the micro-benchmarks in micro_core show DWRR's O(1) cost.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "analysis/wfq_delay.h"
#include "bench/bench_util.h"
#include "net/dwrr.h"
#include "net/port.h"
#include "net/wfq.h"
#include "sim/simulator.h"

namespace {

using namespace aeq;

struct Point {
  double high;
  double low;
};

// Deterministic packet replay — no RNG, so the sweep seed is unused.
Point run_once(double x, bool dwrr) {
  sim::Simulator s;
  struct Recorder final : net::PacketSink {
    sim::Simulator* sim;
    double worst[2] = {0, 0};
    void receive(const net::Packet& p) override {
      worst[p.qos] = std::max(worst[p.qos], sim->now() - p.sent_time);
    }
  } recorder;
  recorder.sim = &s;

  const sim::Rate line_rate = sim::gbps(100);
  std::unique_ptr<net::QueueDiscipline> queue;
  if (dwrr) {
    queue = std::make_unique<net::DwrrQueue>(std::vector<double>{4.0, 1.0},
                                             0, 1500);
  } else {
    queue = std::make_unique<net::WfqQueue>(std::vector<double>{4.0, 1.0});
  }
  net::Port port(s, line_rate, 0.0, std::move(queue));
  port.connect(&recorder);

  const sim::Time period = 500 * sim::kUsec;
  const double mu = 0.8, rho = 1.2;
  const sim::Time window = period * mu / rho;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int cls = 0; cls < 2; ++cls) {
      const double share = cls == 0 ? x : 1.0 - x;
      const double byte_rate = rho * line_rate * share;
      const sim::Time interval = 1500 / byte_rate;
      for (sim::Time t = cycle * period; t < cycle * period + window;
           t += interval) {
        s.schedule_at(t, [&port, cls, &s] {
          net::Packet p;
          p.qos = static_cast<net::QoSLevel>(cls);
          p.size_bytes = 1500;
          p.sent_time = s.now();
          port.send(p);
        });
      }
    }
  }
  s.run();
  return Point{recorder.worst[0] / period, recorder.worst[1] / period};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation",
                      "WFQ implementations: virtual-time (PGPS) vs DWRR on "
                      "the Figure-10 validation (4:1, mu=0.8, rho=1.2)");
  const analysis::TwoQosParams params{.phi = 4.0, .mu = 0.8, .rho = 1.2};
  runner::SweepRunner sweep(args.sweep);
  for (int pct = 10; pct <= 90; pct += 10) {
    sweep.submit([pct, &params](const runner::PointContext&) {
      const double x = pct / 100.0;
      const Point wfq = run_once(x, false);
      const Point dwrr = run_once(x, true);
      runner::PointResult result;
      result.rows.push_back(
          {static_cast<double>(pct),
           stats::Cell(analysis::delay_high(params, x), 4),
           stats::Cell(wfq.high, 4), stats::Cell(dwrr.high, 4),
           stats::Cell(analysis::delay_low(params, x), 4),
           stats::Cell(wfq.low, 4), stats::Cell(dwrr.low, 4)});
      result.metrics["gap"] = std::max(std::abs(wfq.high - dwrr.high),
                                       std::abs(wfq.low - dwrr.low));
      return result;
    });
  }

  stats::Table table({{"QoSh-share(%)", 14, 0},
                      {"thry h", 10, 4},
                      {"wfq h", 10, 4},
                      {"dwrr h", 10, 4},
                      {"thry l", 10, 4},
                      {"wfq l", 10, 4},
                      {"dwrr l", 10, 4}});
  double worst_gap = 0.0;
  for (const auto& point : sweep.run()) {
    table.add_rows(point.rows);
    worst_gap = std::max(worst_gap, point.metrics.at("gap"));
  }
  bench::emit(table, args);
  std::printf("\nmax |WFQ - DWRR| worst-case delay: %.4f of the period — "
              "the delay analysis is implementation-agnostic.\n",
              worst_gap);
  bench::print_footer();
  return 0;
}
