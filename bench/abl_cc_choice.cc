// Ablation: Aequitas over different congestion controls.
//
// The paper positions Aequitas as CC-agnostic — it "relies on a
// well-functioning congestion control algorithm ... to keep switch buffer
// occupancy small" (§7) but operates strictly above it. This ablation runs
// the Figure-12 workload (scaled down) over Swift, DCTCP(+ECN), and a fixed
// window (no CC), with and without admission control. Expected: Aequitas
// tracks its SLO over both real CCs; without any CC the fabric itself
// melts, which admission control at the RPC layer cannot fully fix.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

struct Row {
  double p999_h;
  double p999_m;
  double share_h;
  double drops;
};

Row run(runner::ExperimentConfig::CcKind cc, bool aequitas) {
  runner::ExperimentConfig config;
  config.num_hosts = 17;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.cc_kind = cc;
  config.fixed_window_packets = 64.0;
  config.enable_aequitas = aequitas;
  const double size_mtus = 8.0;
  config.slo = rpc::SloConfig::make({25 * sim::kUsec / size_mtus,
                                     50 * sim::kUsec / size_mtus, 0.0},
                                    99.9);
  runner::Experiment experiment(config);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = {0.6, 0.3, 0.1};
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);
  experiment.run(12 * sim::kMsec, 18 * sim::kMsec);

  Row row{};
  row.p999_h = experiment.metrics().rnl_by_run_qos(0).p999() / sim::kUsec;
  row.p999_m = experiment.metrics().rnl_by_run_qos(1).p999() / sim::kUsec;
  row.share_h = 100 * experiment.metrics().admitted_share(0);
  double drops = 0;
  for (std::size_t h = 0; h < experiment.network().num_hosts(); ++h) {
    drops += static_cast<double>(
        experiment.network()
            .downlink(static_cast<net::HostId>(h))
            .queue()
            .stats()
            .dropped_packets);
  }
  row.drops = drops;
  return row;
}

}  // namespace

int main() {
  bench::print_header("Ablation",
                      "Aequitas over Swift vs DCTCP vs no CC "
                      "(17-node all-to-all, SLO 25/50us)");
  std::printf("%-22s %-10s %-14s %-14s %-12s %-12s\n", "congestion control",
              "aequitas", "QoSh p999(us)", "QoSm p999(us)", "h share(%)",
              "drops");
  struct Case {
    const char* name;
    runner::ExperimentConfig::CcKind kind;
  };
  const Case cases[] = {
      {"Swift", runner::ExperimentConfig::CcKind::kSwift},
      {"DCTCP (ECN)", runner::ExperimentConfig::CcKind::kDctcp},
      {"fixed window (none)", runner::ExperimentConfig::CcKind::kFixedWindow},
  };
  for (const Case& c : cases) {
    for (bool aequitas : {false, true}) {
      const Row row = run(c.kind, aequitas);
      std::printf("%-22s %-10s %-14.1f %-14.1f %-12.1f %-12.0f\n", c.name,
                  aequitas ? "on" : "off", row.p999_h, row.p999_m,
                  row.share_h, row.drops);
    }
  }
  bench::print_footer();
  return 0;
}
