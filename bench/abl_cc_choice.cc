// Ablation: Aequitas over different congestion controls.
//
// The paper positions Aequitas as CC-agnostic — it "relies on a
// well-functioning congestion control algorithm ... to keep switch buffer
// occupancy small" (§7) but operates strictly above it. This ablation runs
// the Figure-12 workload (scaled down) over Swift, DCTCP(+ECN), and a fixed
// window (no CC), with and without admission control. Expected: Aequitas
// tracks its SLO over both real CCs; without any CC the fabric itself
// melts, which admission control at the RPC layer cannot fully fix.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

runner::PointResult run(const char* name,
                        runner::ExperimentConfig::CcKind cc, bool aequitas,
                        std::uint64_t seed,
                        const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 17;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.cc_kind = cc;
  config.fixed_window_packets = 64.0;
  config.enable_aequitas = aequitas;
  config.seed = seed;
  const double size_mtus = 8.0;
  config.slo = rpc::SloConfig::make({25 * sim::kUsec / size_mtus,
                                     50 * sim::kUsec / size_mtus, 0.0},
                                    99.9);
  runner::Experiment experiment(config);
  trace.apply(experiment, point);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = {0.6, 0.3, 0.1};
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);
  experiment.run(12 * sim::kMsec, 18 * sim::kMsec);

  double drops = 0;
  for (std::size_t h = 0; h < experiment.network().num_hosts(); ++h) {
    drops += static_cast<double>(
        experiment.network()
            .downlink(static_cast<net::HostId>(h))
            .queue()
            .stats()
            .dropped_packets);
  }
  return runner::PointResult::single(
      {name, aequitas ? "on" : "off",
       experiment.metrics().rnl_by_run_qos(0).p999() / sim::kUsec,
       experiment.metrics().rnl_by_run_qos(1).p999() / sim::kUsec,
       100 * experiment.metrics().admitted_share(0),
       stats::Cell(drops, 0)});
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Ablation",
                      "Aequitas over Swift vs DCTCP vs no CC "
                      "(17-node all-to-all, SLO 25/50us)");
  struct Case {
    const char* name;
    runner::ExperimentConfig::CcKind kind;
  };
  const Case cases[] = {
      {"Swift", runner::ExperimentConfig::CcKind::kSwift},
      {"DCTCP (ECN)", runner::ExperimentConfig::CcKind::kDctcp},
      {"fixed window (none)", runner::ExperimentConfig::CcKind::kFixedWindow},
  };
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (const Case& c : cases) {
    for (bool aequitas : {false, true}) {
      sweep.submit([c, aequitas, trace = args.trace,
                    point = trace_point++](const runner::PointContext& ctx) {
        return run(c.name, c.kind, aequitas, ctx.seed, trace, point);
      });
    }
  }

  stats::Table table({{"congestion control", 22},
                      {"aequitas", 10},
                      {"QoSh p999(us)", 14, 1},
                      {"QoSm p999(us)", 14, 1},
                      {"h share(%)", 12, 1},
                      {"drops", 12, 0}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  bench::print_footer();
  return 0;
}
