// Figure 21: large-scale run — 144 hosts (paper scale), production RPC size
// distributions, extreme overload (instantaneous burst load 25x the link
// capacity). Expected (paper): baseline tail RNL is ~4x/2x/5x the SLO for
// QoS_h/m/l; Aequitas restores QoS_h and QoS_m to ~SLO by downgrading
// (admitted mix moves from 60/30/10 toward ~20/26/54).
//
// Scale knobs (beyond the shared bench_util flags):
//   --hosts N      topology size (default 144, the paper's production pod;
//                  CI smokes 576; 1024+ is the intended envelope for
//                  sharded runs — event count grows ~linearly with hosts)
//   --shards K     intra-run parallelism: conservative-PDES partitions of
//                  the star (ExperimentConfig::shards). Results are
//                  bit-identical to --shards=1 for any K; use K ~ the
//                  machine's core count for large --hosts runs.
//   --warmup-ms W  warmup before measurement (default 10)
//   --run-ms R     measured interval (default 12); CI smokes use shorter
//                  intervals to bound wall-clock time
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

struct Fig21Params {
  std::size_t hosts = 144;
  std::size_t shards = 1;
  double warmup_ms = 10.0;
  double run_ms = 12.0;
  bool schedule_digest = false;
};

runner::PointResult run(const Fig21Params& params, bool with_aequitas,
                        std::uint64_t seed, const bench::TraceRequest& trace,
                        int point, std::string* digest_line) {
  runner::ExperimentConfig config;
  config.num_hosts = params.hosts;
  config.shards = params.shards;
  config.schedule_digest = params.schedule_digest;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.seed = seed;
  // Normalized (per-MTU) SLOs; production sizes make absolute targets vary
  // per RPC.
  config.slo = rpc::SloConfig::make(
      {4.0 * sim::kUsec, 12.0 * sim::kUsec, 0.0}, 99.9);
  // Favor SLO-compliance over stability at this scale (§6.6).
  config.admission.aequitas.alpha = 0.002;
  config.admission.aequitas.beta_per_mtu = 0.05;
  runner::Experiment experiment(config);
  trace.apply(experiment, point);

  bench::AllToAllSpec spec;
  spec.mix = {0.6, 0.3, 0.1};
  spec.load = 0.8;
  // Per-host burst load 5x; with the synchronized burst windows and
  // all-to-all fan-in, the *instantaneous* arrival rate at an individual
  // downlink reaches ~25x its capacity (the paper reports the per-link
  // maximum, not the per-host envelope).
  spec.burst_load = 2.5;
  spec.sizes = {
      experiment.own(workload::production_size_dist(rpc::Priority::kPC)),
      experiment.own(workload::production_size_dist(rpc::Priority::kNC)),
      experiment.own(workload::production_size_dist(rpc::Priority::kBE))};
  bench::attach_all_to_all(experiment, spec);
  experiment.run(params.warmup_ms * sim::kMsec, params.run_ms * sim::kMsec);

  runner::PointResult result;
  const auto& metrics = experiment.metrics();
  for (net::QoSLevel q = 0; q < 3; ++q) {
    result.rows.push_back(
        {bench::qos_name(q, 3),
         metrics.rnl_per_mtu_by_run_qos(q).mean() / sim::kUsec,
         metrics.rnl_per_mtu_by_run_qos(q).p99() / sim::kUsec,
         metrics.rnl_per_mtu_by_run_qos(q).p999() / sim::kUsec,
         metrics.rnl_by_run_qos(q).p999() / sim::kUsec,
         100 * metrics.admitted_share(q)});
  }
  if (params.schedule_digest) {
    *digest_line = bench::format_schedule_digest(
        experiment, with_aequitas ? "with-aequitas" : "baseline");
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  Fig21Params params;
  params.hosts =
      static_cast<std::size_t>(args.flags.get_int("hosts", 144));
  params.shards = args.shards;
  params.schedule_digest = args.schedule_digest;
  params.warmup_ms = args.flags.get_double("warmup-ms", params.warmup_ms);
  params.run_ms = args.flags.get_double("run-ms", params.run_ms);

  char title[160];
  std::snprintf(title, sizeof(title),
                "%zu-node, production RPC sizes, ~25x instantaneous "
                "per-link overload; normalized SLO 4us(h)/12us(m) per MTU"
                "%s",
                params.hosts,
                params.shards > 1 ? " (sharded executive)" : "");
  bench::print_header("Figure 21", title);
  runner::SweepRunner sweep(args.sweep);
  // One slot per point, written only by the worker that runs that point
  // and read after run() returns — no sharing, and the printed order is
  // submission order, so --jobs N output stays byte-identical.
  std::vector<std::string> digest_lines(2);
  int trace_point = 0;
  for (bool with_aequitas : {false, true}) {
    sweep.submit([params, with_aequitas, trace = args.trace,
                  point = trace_point++,
                  digest_line = &digest_lines](const runner::PointContext& ctx) {
      return run(params, with_aequitas, ctx.seed, trace, point,
                 &(*digest_line)[static_cast<std::size_t>(point)]);
    });
  }
  const auto points = sweep.run();
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::printf("\n%s Aequitas:\n", p == 1 ? "WITH" : "WITHOUT");
    stats::Table table({{"QoS", 8},
                        {"mean/MTU(us)", 16, 2},
                        {"p99/MTU(us)", 16, 2},
                        {"p99.9/MTU(us)", 16, 2},
                        {"p99.9 RNL(us)", 16, 1},
                        {"share(%)", 12, 1}});
    table.add_rows(points[p].rows);
    bench::emit(table, args);
  }
  if (params.schedule_digest) {
    std::printf("\n");
    for (const auto& line : digest_lines) std::printf("%s\n", line.c_str());
  }
  bench::print_footer();
  return 0;
}
