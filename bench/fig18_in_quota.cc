// Figure 18: a well-behaved (in-quota) channel keeps p_admit ~ 1.0.
// Channel A requests only 10% of its load on QoS_h — below its fair share —
// while channel B requests 80%. Expected (paper): A sustains ~10Gbps with
// p_admit near 1.0 (paper reports 1st-percentile 0.82), and B reclaims the
// excess quota (max-min fairness).
#include <cstdio>

#include "bench/fairness_common.h"

int main(int argc, char** argv) {
  using namespace aeq;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 18",
                      "In-quota channel (10% QoS_h) vs heavy channel (80%), "
                      "SLO 15us");
  bench::FairnessSpec spec;
  spec.qosh_fraction_a = 0.1;
  spec.qosh_fraction_b = 0.8;
  spec.seed = sim::derive_seed(args.sweep.base_seed, 0);
  spec.trace = args.trace;
  const bench::FairnessResult r = bench::run_fairness(spec);
  bench::emit(bench::fairness_timeline_table(r, 21), args);
  std::printf("\nsteady state (last third):\n");
  std::printf("  admitted QoS_h throughput: A %.1f Gbps (in quota), "
              "B %.1f Gbps (reclaims excess)\n",
              r.steady_throughput_gbps[0], r.steady_throughput_gbps[1]);
  std::printf("  channel A p_admit: mean %.3f, 1st-percentile %.3f "
              "(paper: 0.82)\n",
              r.steady_p_admit[0], r.p_admit_samples[0].percentile(1.0));
  bench::print_footer();
  return 0;
}
