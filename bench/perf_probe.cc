// Tuning probe (not a paper figure): 33-node all-to-all reproduction of the
// Figure-12 workload with configurable AIMD and Swift parameters, for
// exploring SLO-compliance vs admitted-share tradeoffs quickly. Also serves
// as the scheduler-backend speedometer: it runs the identical workload on
// both event-scheduler backends (binary heap and calendar queue) and reports
// simulated events per wall-clock second for each.
// Usage: perf_probe [alpha beta swift_target_us warmup_ms run_ms period_us
//                    aequitas(0/1) mix_h mix_m backend(heap|calendar|both)]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace aeq;
  const double alpha = argc > 1 ? std::atof(argv[1]) : 0.01;
  const double beta = argc > 2 ? std::atof(argv[2]) : 0.01;
  const double swift_target_us = argc > 3 ? std::atof(argv[3]) : 10.0;
  const double warmup_ms = argc > 4 ? std::atof(argv[4]) : 15.0;
  const double run_ms = argc > 5 ? std::atof(argv[5]) : 15.0;
  const double period_us = argc > 6 ? std::atof(argv[6]) : 100.0;
  const bool aequitas = argc > 7 ? std::atoi(argv[7]) != 0 : true;
  const double mix_h = argc > 8 ? std::atof(argv[8]) : 0.6;
  const double mix_m = argc > 9 ? std::atof(argv[9]) : 0.3;
  const char* backend_arg = argc > 10 ? argv[10] : "both";

  std::vector<sim::SchedulerBackend> backends;
  if (std::strcmp(backend_arg, "heap") == 0) {
    backends = {sim::SchedulerBackend::kHeap};
  } else if (std::strcmp(backend_arg, "calendar") == 0) {
    backends = {sim::SchedulerBackend::kCalendar};
  } else {
    backends = {sim::SchedulerBackend::kHeap,
                sim::SchedulerBackend::kCalendar};
  }

  std::printf("alpha=%.4f beta=%.4f swift=%.0fus\n", alpha, beta,
              swift_target_us);
  for (const auto backend : backends) {
    runner::ExperimentConfig config;
    config.scheduler_backend = backend;
    config.num_hosts = 33;
    config.num_qos = 3;
    config.wfq_weights = {8.0, 4.0, 1.0};
    config.enable_aequitas = aequitas;
    config.alpha = alpha;
    config.beta_per_mtu = beta;
    config.swift.target_delay = swift_target_us * sim::kUsec;
    config.slo = rpc::SloConfig::make(
        {15.0 / 8 * sim::kUsec, 25.0 / 8 * sim::kUsec, 0.0}, 99.9);
    runner::Experiment experiment(config);
    const auto* sizes = experiment.own(
        std::make_unique<workload::FixedSize>(32 * sim::kKiB));
    bench::AllToAllSpec spec;
    spec.mix = {mix_h, mix_m, 1.0 - mix_h - mix_m};
    spec.burst_period = period_us * sim::kUsec;
    spec.sizes = {sizes};
    bench::attach_all_to_all(experiment, spec);

    const auto start = std::chrono::steady_clock::now();
    experiment.run(warmup_ms * sim::kMsec, run_ms * sim::kMsec);
    const auto stop = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(stop - start).count();
    const auto events = experiment.simulator().events_processed();

    const auto& m = experiment.metrics();
    std::printf("[%-8s] QoSh p999 %.1fus share %.1f%% | QoSm p999 %.1fus "
                "share %.1f%% | QoSl p999 %.0fus | %llu events in %.1fs = "
                "%.2fM events/sec\n",
                sim::backend_name(backend),
                m.rnl_by_run_qos(0).p999() / sim::kUsec,
                100 * m.admitted_share(0),
                m.rnl_by_run_qos(1).p999() / sim::kUsec,
                100 * m.admitted_share(1),
                m.rnl_by_run_qos(2).p999() / sim::kUsec,
                static_cast<unsigned long long>(events), wall,
                static_cast<double>(events) / wall / 1e6);
  }
  return 0;
}
