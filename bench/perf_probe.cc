// Tuning probe (not a paper figure): 33-node all-to-all reproduction of the
// Figure-12 workload with configurable AIMD and Swift parameters, for
// exploring SLO-compliance vs admitted-share tradeoffs quickly. Also serves
// as two speedometers:
//   * scheduler backends — runs the identical workload on both event
//     schedulers (binary heap and calendar queue) and reports simulated
//     events per wall-clock second for each (--backend=heap|calendar|both);
//   * sweep harness — with --sweep-points=N it times an N-point sweep at
//     --jobs=1 and at the resolved --jobs and reports the parallel speedup
//     (results are checked to be identical across the two runs).
// All parameters are flags; see kUsage below.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

constexpr char kUsage[] =
    "perf_probe [--alpha=A] [--beta=B] [--swift-target-us=T]\n"
    "           [--warmup-ms=W] [--run-ms=R] [--period-us=P]\n"
    "           [--aequitas=0|1] [--mix-h=H] [--mix-m=M]\n"
    "           [--backend=heap|calendar|both] [--shards=K]\n"
    "           [--schedule-digest]\n"
    "           [--sweep-points=N] [--jobs=J] [--seed=S]\n"
    "           [--trace=PATH] [--trace-csv=PATH] [--trace-point=N]\n"
    "           [--timeseries=BASE] [--timeseries-width=USEC]\n"
    "           [--watchdog[=PATH]] [--flight-recorder=PATH]\n"
    "           [--prof=PATH]";

struct ProbeParams {
  double alpha = 0.01;
  double beta = 0.01;
  double swift_target_us = 10.0;
  double warmup_ms = 15.0;
  double run_ms = 15.0;
  double period_us = 100.0;
  bool aequitas = true;
  double mix_h = 0.6;
  double mix_m = 0.3;
  std::size_t shards = 1;  // conservative-PDES shard count (1 = serial)
  bool schedule_digest = false;  // print sim/digest.h fingerprints
};

runner::Experiment make_experiment(const ProbeParams& p,
                                   sim::SchedulerBackend backend,
                                   std::uint64_t seed) {
  runner::ExperimentConfig config;
  config.scheduler_backend = backend;
  config.shards = p.shards;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = p.aequitas;
  config.alpha = p.alpha;
  config.beta_per_mtu = p.beta;
  config.seed = seed;
  config.swift.target_delay = p.swift_target_us * sim::kUsec;
  config.slo = rpc::SloConfig::make(
      {15.0 / 8 * sim::kUsec, 25.0 / 8 * sim::kUsec, 0.0}, 99.9);
  config.schedule_digest = p.schedule_digest;
  return runner::Experiment(config);
}

void attach(runner::Experiment& experiment, const ProbeParams& p) {
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = {p.mix_h, p.mix_m, 1.0 - p.mix_h - p.mix_m};
  spec.burst_period = p.period_us * sim::kUsec;
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);
}

// Scheduler-backend speedometer: one serial run per backend.
void run_backends(const ProbeParams& p,
                  const std::vector<sim::SchedulerBackend>& backends,
                  std::uint64_t seed, const bench::TraceRequest& trace) {
  int point = 0;
  for (const auto backend : backends) {
    runner::Experiment experiment = make_experiment(p, backend, seed);
    trace.apply(experiment, point++);
    attach(experiment, p);

    const auto start = std::chrono::steady_clock::now();
    experiment.run(p.warmup_ms * sim::kMsec, p.run_ms * sim::kMsec);
    const auto stop = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(stop - start).count();
    const auto events = experiment.events_processed();

    const auto& m = experiment.metrics();
    char label[32];
    if (p.shards > 1) {
      std::snprintf(label, sizeof(label), "%s x%zu",
                    sim::backend_name(backend), p.shards);
    } else {
      std::snprintf(label, sizeof(label), "%s",
                    sim::backend_name(backend));
    }
    std::printf("[%-8s] QoSh p999 %.1fus share %.1f%% | QoSm p999 %.1fus "
                "share %.1f%% | QoSl p999 %.0fus | %llu events in %.1fs = "
                "%.2fM events/sec\n",
                label,
                m.rnl_by_run_qos(0).p999() / sim::kUsec,
                100 * m.admitted_share(0),
                m.rnl_by_run_qos(1).p999() / sim::kUsec,
                100 * m.admitted_share(1),
                m.rnl_by_run_qos(2).p999() / sim::kUsec,
                static_cast<unsigned long long>(events), wall,
                static_cast<double>(events) / wall / 1e6);
    if (p.schedule_digest) {
      std::printf("%s\n",
                  bench::format_schedule_digest(experiment, label).c_str());
    }
  }
}

// Sweep-harness speedometer: N replica points, timed at --jobs=1 and at
// the resolved job count. Points vary only by seed; both runs must produce
// identical structured results (verified here), so the speedup is measured
// on byte-identical work.
void run_sweep_speedup(const ProbeParams& p, std::size_t points,
                       const runner::SweepOptions& options) {
  auto sweep_once = [&](std::size_t jobs, double* wall_out) {
    runner::SweepOptions opts = options;
    opts.jobs = jobs;
    runner::SweepRunner sweep(opts);
    for (std::size_t i = 0; i < points; ++i) {
      sweep.submit([p](const runner::PointContext& ctx) {
        runner::Experiment experiment = make_experiment(
            p, sim::SchedulerBackend::kHeap, ctx.seed);
        attach(experiment, p);
        experiment.run(p.warmup_ms * sim::kMsec, p.run_ms * sim::kMsec);
        runner::PointResult result;
        result.metrics["p999_h"] =
            experiment.metrics().rnl_by_run_qos(0).p999();
        result.metrics["share_h"] =
            experiment.metrics().admitted_share(0);
        result.metrics["events"] =
            static_cast<double>(experiment.events_processed());
        return result;
      });
    }
    const auto start = std::chrono::steady_clock::now();
    auto results = sweep.run();
    const auto stop = std::chrono::steady_clock::now();
    *wall_out = std::chrono::duration<double>(stop - start).count();
    return results;
  };

  double wall_serial = 0.0, wall_parallel = 0.0;
  const auto serial = sweep_once(1, &wall_serial);
  const auto parallel = sweep_once(options.jobs, &wall_parallel);

  bool identical = serial.size() == parallel.size();
  for (std::size_t i = 0; identical && i < serial.size(); ++i) {
    identical = serial[i].metrics == parallel[i].metrics;
  }
  std::printf("sweep of %zu points: --jobs=1 %.2fs, --jobs=%zu %.2fs -> "
              "speedup %.2fx (results %s)\n",
              points, wall_serial, options.jobs, wall_parallel,
              wall_parallel > 0 ? wall_serial / wall_parallel : 0.0,
              identical ? "identical" : "MISMATCH");
  if (!identical) std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  ProbeParams p;
  p.alpha = args.flags.get_double("alpha", p.alpha);
  p.beta = args.flags.get_double("beta", p.beta);
  p.swift_target_us =
      args.flags.get_double("swift-target-us", p.swift_target_us);
  p.warmup_ms = args.flags.get_double("warmup-ms", p.warmup_ms);
  p.run_ms = args.flags.get_double("run-ms", p.run_ms);
  p.period_us = args.flags.get_double("period-us", p.period_us);
  p.aequitas = args.flags.get_bool("aequitas", p.aequitas);
  p.mix_h = args.flags.get_double("mix-h", p.mix_h);
  p.mix_m = args.flags.get_double("mix-m", p.mix_m);
  p.shards = args.shards;
  p.schedule_digest = args.schedule_digest;
  const std::string backend_arg = args.flags.get("backend", "both");
  const auto sweep_points =
      static_cast<std::size_t>(args.flags.get_int("sweep-points", 0));
  const auto unused = args.flags.unused();
  if (!unused.empty()) {
    std::fprintf(stderr, "unknown flag --%s\nusage:\n%s\n",
                 unused.front().c_str(), kUsage);
    return 2;
  }

  std::vector<sim::SchedulerBackend> backends;
  if (backend_arg == "heap") {
    backends = {sim::SchedulerBackend::kHeap};
  } else if (backend_arg == "calendar") {
    backends = {sim::SchedulerBackend::kCalendar};
  } else {
    backends = {sim::SchedulerBackend::kHeap,
                sim::SchedulerBackend::kCalendar};
  }

  std::printf("alpha=%.4f beta=%.4f swift=%.0fus\n", p.alpha, p.beta,
              p.swift_target_us);
  if (sweep_points > 0) {
    run_sweep_speedup(p, sweep_points, args.sweep);
  } else {
    run_backends(p, backends, sim::derive_seed(args.sweep.base_seed, 0),
                 args.trace);
  }
  return 0;
}
