// Figure 8: theoretical worst-case WFQ delay per QoS level versus
// QoS_h-share, for weights 4:1, mu = 0.8, rho = 1.2 (Equations 1 and 8).
// The paper's figure shows QoS_h delay at zero until ~67% share, rising to a
// plateau ~0.13, and QoS_l delay peaking ~0.33 around the 67% share before
// falling to zero; the crossover (priority inversion) sits near 80%.
#include <cstdio>

#include "analysis/admissible.h"
#include "analysis/wfq_delay.h"
#include "bench/bench_util.h"

int main(int argc, char** argv) {
  using namespace aeq;
  bench::BenchArgs args = bench::parse_args(argc, argv);
  analysis::TwoQosParams params{.phi = 4.0, .mu = 0.8, .rho = 1.2};

  bench::print_header("Figure 8",
                      "Theoretical worst-case delay, QoS_h:QoS_l = 4:1, "
                      "mu=0.8, rho=1.2");
  runner::SweepRunner sweep(args.sweep);
  for (int pct = 2; pct <= 98; pct += 2) {
    sweep.submit([pct, params](const runner::PointContext&) {
      const double x = pct / 100.0;
      return runner::PointResult::single(
          {static_cast<double>(pct), analysis::delay_high(params, x),
           analysis::delay_low(params, x)});
    });
  }
  stats::Table table({{"QoSh-share(%)", 14, 0},
                      {"DelayBound(QoSh)", 18, 4},
                      {"DelayBound(QoSl)", 18, 4}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);

  const double boundary = analysis::inversion_boundary(params);
  std::printf("\nLemma-1 inversion boundary: QoSh-share = %.1f%%\n",
              boundary * 100.0);
  std::printf("Numeric admissible-region edge: QoSh-share = %.1f%%\n",
              analysis::max_admissible_share(params) * 100.0);
  bench::print_footer();
  return 0;
}
