// Figure 22: Aequitas vs pFabric, QJump, D3, PDQ and Homa on the 33-node
// setup with production RPC sizes and input mix 50/30/20.
//
// Reported, as in the paper: (1) the percentage of QoS_h *traffic*
// (byte-weighted) meeting its SLO from its initially assigned QoS,
// (2) network utilization (downlink busy fraction / offered load), and
// (3) per-QoS p99.9 RNL.
//
// Reproduced shape: Aequitas admits SLO-compliant QoS_h traffic at ~full
// utilization and beats QJump, D3 and PDQ; D3/PDQ terminate flows and lose
// a large chunk of utilization (the paper's ~50% observation); QJump's
// hard per-level rate caps hurt RPC-level compliance under bursts.
//
// Documented divergence: our pFabric and Homa score *above* Aequitas on
// SLO-met% (the paper has them below, 56%/46.5% vs 70.3%). Two reasons:
// (a) these baseline stacks are idealized — per-message parallel
// transmission with clairvoyant selective ACKs and no flow-multiplexing
// penalty, while the Aequitas stack pays FIFO-per-channel sender queueing
// in its RNL (the paper's definition); and (b) at average load 0.8 the
// residual ~20Gbps lets SRPT finish even multi-MB RPCs within their
// size-proportional budgets, so the large-RPC starvation that sinks SRPT
// in the paper's workload only partially materializes in ours.
#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "policy/registry.h"
#include "runner/protocol_experiment.h"

namespace {

using namespace aeq;

// Normalized SLO targets (per MTU); identical for every system.
constexpr double kSloHPerMtu = 3.0;   // us
constexpr double kSloMPerMtu = 6.0;  // us
// Absolute deadlines for the deadline-aware systems (paper: 250us/300us).
constexpr double kDeadlineH = 250.0;  // us
constexpr double kDeadlineM = 300.0;  // us
// Average per-host offered load (fraction of line rate).
constexpr double kOfferedLoad = 0.8;

rpc::SloConfig make_slo() {
  return rpc::SloConfig::make(
      {kSloHPerMtu * sim::kUsec, kSloMPerMtu * sim::kUsec, 0.0}, 99.9);
}

struct Row {
  const char* name;
  double met_h;      // % of QoS_h traffic meeting SLO
  double met_m;      // % of QoS_m
  double util;       // network utilization %
  double p999[3];    // per-QoS p99.9 RNL (us)
  double terminated; // % of deadline RPCs killed
};

template <typename Experiment>
void attach_workload(Experiment& experiment, bool with_deadlines,
                     double offered_load = kOfferedLoad) {
  bench::AllToAllSpec spec;
  spec.load = offered_load;
  spec.mix = {0.5, 0.3, 0.2};
  spec.sizes = {
      experiment.own(workload::production_size_dist(rpc::Priority::kPC)),
      experiment.own(workload::production_size_dist(rpc::Priority::kNC)),
      experiment.own(workload::production_size_dist(rpc::Priority::kBE))};
  if (with_deadlines) {
    spec.deadline_budget = {kDeadlineH * sim::kUsec, kDeadlineM * sim::kUsec,
                            0.0};
  }
  const double per_host_rate = spec.load * sim::gbps(100);
  for (std::size_t h = 0; h < 33; ++h) {
    workload::GeneratorConfig gen;
    gen.burst_over_avg = spec.burst_load / spec.load;
    gen.burst_period = spec.burst_period;
    for (std::size_t c = 0; c < 3; ++c) {
      workload::ClassLoad load;
      load.priority = static_cast<rpc::Priority>(c);
      load.byte_rate = spec.mix[c] * per_host_rate;
      load.sizes = spec.sizes[c];
      load.deadline_budget =
          spec.deadline_budget.empty() ? 0.0 : spec.deadline_budget[c];
      gen.classes.push_back(load);
    }
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
}

template <typename Experiment>
Row collect(const char* name, Experiment& experiment, double utilization) {
  const auto& metrics = experiment.metrics();
  Row row{};
  row.name = name;
  row.met_h = 100 * metrics.slo_met_fraction_bytes(0);
  row.met_m = 100 * metrics.slo_met_fraction_bytes(1);
  row.util = 100 * utilization;
  for (net::QoSLevel q = 0; q < 3; ++q) {
    row.p999[q] = metrics.rnl_by_run_qos(q).p999() / sim::kUsec;
  }
  const double eligible = static_cast<double>(metrics.slo_eligible(0)) +
                          static_cast<double>(metrics.slo_eligible(1));
  const double killed = static_cast<double>(metrics.terminated(0)) +
                        static_cast<double>(metrics.terminated(1));
  row.terminated = eligible > 0 ? 100 * killed / eligible : 0.0;
  return row;
}

Row run_aequitas(std::uint64_t seed, const bench::TraceRequest& trace) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = true;
  config.slo = make_slo();
  config.seed = seed;
  runner::Experiment experiment(config);
  // Only the Aequitas point supports tracing (the protocol baselines use
  // their own harness), so it is always point 0.
  trace.apply(experiment, 0);
  attach_workload(experiment, false);
  experiment.run(12 * sim::kMsec, 15 * sim::kMsec);
  // Utilization: downlink busy fraction relative to the offered load
  // (0.8). Terminated/unsent traffic leaves links idle; queued-but-moving
  // scavenger traffic still counts as useful work.
  return collect("Aequitas", experiment,
                 std::min(1.0, experiment.mean_downlink_utilization() /
                                   kOfferedLoad));
}

Row run_baseline(runner::BaselineProtocol protocol, std::uint64_t seed) {
  runner::ProtocolExperimentConfig config;
  config.protocol = protocol;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.slo = make_slo();
  config.seed = seed;
  // QJump provisioned for the expected per-level load (0.4/0.24 of line
  // rate on h/m): caps hold packet latency down but bursts above the cap
  // queue at the host.
  config.qjump_level_rate_fraction = {0.45, 0.30, 0.0};
  runner::ProtocolExperiment experiment(config);
  const bool deadlines = protocol == runner::BaselineProtocol::kD3 ||
                         protocol == runner::BaselineProtocol::kPdq;

  // For the deadline protocols the paper judges SLO attainment against the
  // absolute deadline, not the normalized target.
  std::array<std::uint64_t, 2> met_bytes{0, 0};
  std::array<std::uint64_t, 2> eligible_bytes{0, 0};
  if (deadlines) {
    for (std::size_t h = 0; h < 33; ++h) {
      experiment.stack(static_cast<net::HostId>(h))
          .set_completion_listener([&](const rpc::RpcRecord& r) {
            if (r.qos_requested > 1) return;
            const double budget =
                r.qos_requested == 0 ? kDeadlineH : kDeadlineM;
            eligible_bytes[r.qos_requested] += r.bytes;
            if (!r.terminated && r.rnl <= budget * sim::kUsec) {
              met_bytes[r.qos_requested] += r.bytes;
            }
          });
    }
  }
  attach_workload(experiment, deadlines);
  experiment.run(12 * sim::kMsec, 15 * sim::kMsec);
  Row row = collect(runner::baseline_name(protocol), experiment,
                    std::min(1.0, experiment.mean_downlink_utilization() /
                                      kOfferedLoad));
  if (deadlines) {
    for (int q = 0; q < 2; ++q) {
      const double met =
          eligible_bytes[q] ? 100.0 * static_cast<double>(met_bytes[q]) /
                                  static_cast<double>(eligible_bytes[q])
                            : 0.0;
      (q == 0 ? row.met_h : row.met_m) = met;
    }
  }
  return row;
}

// --controller= shoot-out: one registered admission policy on the Aequitas
// stack (same 33-node topology, workload, and SLOs as the related-work
// comparison). Returns the standard row plus a compact rendering of the
// policy's introspection gauges (rpc::Gauge), read from host 0.
struct PolicyRow {
  Row row;
  double rejected = 0.0;  // % of QoS_h issues downgraded or dropped
  std::string gauges;
};

std::string summarize_gauges(const rpc::AdmissionController& controller) {
  std::string out;
  for (const rpc::Gauge& gauge : controller.gauges()) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%s%s=%.3g",
                  out.empty() ? "" : " ", gauge.name, gauge.value);
    out += buffer;
  }
  return out.empty() ? "-" : out;
}

PolicyRow run_policy(const std::string& kind, sim::SchedulerBackend backend,
                     double load, std::uint64_t seed,
                     const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.admission.kind = kind;
  config.slo = make_slo();
  config.seed = seed;
  config.scheduler_backend = backend;
  runner::Experiment experiment(config);
  trace.apply(experiment, point);
  attach_workload(experiment, false, load);
  experiment.run(12 * sim::kMsec, 15 * sim::kMsec);
  PolicyRow result;
  result.row = collect(kind.c_str(), experiment,
                       std::min(1.0, experiment.mean_downlink_utilization() /
                                         load));
  const auto& metrics = experiment.metrics();
  const auto issued = metrics.downgraded(0) + metrics.terminated(0) +
                      metrics.completed(0);
  result.rejected =
      issued ? 100.0 *
                   static_cast<double>(metrics.downgraded(0) +
                                       metrics.terminated(0)) /
                   static_cast<double>(issued)
             : 0.0;
  result.gauges = summarize_gauges(experiment.admission(0));
  return result;
}

// Runs the shoot-out and renders its table; returns the process exit code.
int run_shootout(bench::BenchArgs& args, const std::string& controller) {
  std::vector<std::string> kinds;
  if (controller == "all") {
    kinds = policy::names();
  } else {
    std::string_view remaining = controller;
    while (!remaining.empty()) {
      const auto comma = remaining.find(',');
      kinds.emplace_back(remaining.substr(0, comma));
      if (comma == std::string_view::npos) break;
      remaining.remove_prefix(comma + 1);
    }
  }
  for (const std::string& kind : kinds) {
    if (policy::is_registered(kind)) continue;
    std::fprintf(stderr, "unknown --controller kind \"%s\"; registered:",
                 kind.c_str());
    for (const std::string& name : policy::names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  std::vector<double> loads;
  const std::string loads_flag = args.flags.get("loads");
  if (loads_flag.empty()) {
    loads.push_back(kOfferedLoad);
  } else {
    std::string_view remaining = loads_flag;
    while (!remaining.empty()) {
      const auto comma = remaining.find(',');
      loads.push_back(std::stod(std::string(remaining.substr(0, comma))));
      if (comma == std::string_view::npos) break;
      remaining.remove_prefix(comma + 1);
    }
  }

  const std::string backend_flag = args.flags.get("backend");
  sim::SchedulerBackend backend = sim::SchedulerBackend::kCalendar;
  if (backend_flag == "heap") {
    backend = sim::SchedulerBackend::kHeap;
  } else if (!backend_flag.empty() && backend_flag != "calendar") {
    std::fprintf(stderr, "unknown --backend \"%s\" (heap|calendar)\n",
                 backend_flag.c_str());
    return 1;
  }

  bench::print_header("Admission-policy shoot-out",
                      "33-node, production sizes, input mix 50/30/20, "
                      "normalized SLO 3/6us per MTU; every policy runs the "
                      "same stack and workload");
  runner::SweepRunner sweep(args.sweep);
  int point = 0;
  for (const double load : loads) {
    for (const std::string& kind : kinds) {
      sweep.submit([kind, backend, load, trace = args.trace,
                    p = point++](const runner::PointContext& ctx) {
        const PolicyRow result =
            run_policy(kind, backend, load, ctx.seed, trace, p);
        return runner::PointResult::single(
            {result.row.name, load, result.row.met_h, result.row.met_m,
             result.row.util, stats::Cell(result.row.p999[0], 0),
             result.rejected, result.gauges});
      });
    }
  }
  stats::Table table({{"policy", 14},
                      {"load", 6, 2},
                      {"h meet SLO%", 12, 1},
                      {"m meet SLO%", 12, 1},
                      {"util%", 8, 1},
                      {"h p999(us)", 12, 0},
                      {"rejected%", 10, 1},
                      {"gauges (host 0)", 20}});
  for (const auto& result : sweep.run()) table.add_rows(result.rows);
  bench::emit(table, args);
  bench::print_footer();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  // `--controller=aequitas,ticket-pool,...` (or `all`) switches from the
  // related-work comparison to the admission-policy shoot-out: every named
  // registered policy on the identical stack, optionally swept across
  // `--loads=0.6,0.8,1.0` and pinned to a `--backend=heap|calendar`.
  const std::string controller = args.flags.get("controller");
  if (!controller.empty()) return run_shootout(args, controller);
  bench::print_header("Figure 22",
                      "Related-work comparison, 33-node, production sizes, "
                      "input mix 50/30/20 (normalized SLO 3/6us per MTU; "
                      "D3/PDQ deadlines 250/300us)");
  // Optional filter: run only the named systems (case-sensitive,
  // comma-separated), e.g. `fig22_related_work --only=D3,PDQ`.
  const std::string only = args.flags.get("only");
  auto wanted = [&only](const char* name) {
    if (only.empty()) return true;
    std::string_view remaining = only;
    while (!remaining.empty()) {
      const auto comma = remaining.find(',');
      const std::string_view token = remaining.substr(0, comma);
      if (token == name) return true;
      if (comma == std::string_view::npos) break;
      remaining.remove_prefix(comma + 1);
    }
    return false;
  };

  runner::SweepRunner sweep(args.sweep);
  if (wanted("Aequitas")) {
    sweep.submit([trace = args.trace](const runner::PointContext& ctx) {
      const Row row = run_aequitas(ctx.seed, trace);
      return runner::PointResult::single(
          {row.name, row.met_h, row.met_m, row.util,
           stats::Cell(row.p999[0], 0), stats::Cell(row.p999[1], 0),
           stats::Cell(row.p999[2], 0), row.terminated});
    });
  }
  const runner::BaselineProtocol protocols[] = {
      runner::BaselineProtocol::kPfabric, runner::BaselineProtocol::kQjump,
      runner::BaselineProtocol::kD3, runner::BaselineProtocol::kPdq,
      runner::BaselineProtocol::kHoma};
  for (auto protocol : protocols) {
    if (!wanted(runner::baseline_name(protocol))) continue;
    sweep.submit([protocol](const runner::PointContext& ctx) {
      const Row row = run_baseline(protocol, ctx.seed);
      return runner::PointResult::single(
          {row.name, row.met_h, row.met_m, row.util,
           stats::Cell(row.p999[0], 0), stats::Cell(row.p999[1], 0),
           stats::Cell(row.p999[2], 0), row.terminated});
    });
  }

  stats::Table table({{"system", 10},
                      {"h meet SLO%", 12, 1},
                      {"m meet SLO%", 12, 1},
                      {"util%", 10, 1},
                      {"h p999(us)", 12, 0},
                      {"m p999(us)", 12, 0},
                      {"l p999(us)", 12, 0},
                      {"killed%", 10, 1}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  bench::print_footer();
  return 0;
}
