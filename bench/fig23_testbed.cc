// Figure 23: "testbed" experiment — in the paper this ran on 20 machines
// with 100G NICs behind one QoS-capable switch (weights 8:4:1). We
// reproduce it as a 20-host single-switch simulation (the switch is exactly
// a WFQ bottleneck, so the same code path is exercised; see DESIGN.md
// substitutions). Input QoS-mix (0.5, 0.35, 0.15); SLOs set as per a target
// mix of (0.2, 0.3, 0.5). Following the paper's footnote 7, RNL is reported
// normalized to each class's p99.9 when the input mix equals the target
// mix. Expected: w/o Aequitas ~(8.1, 5.0, 1.3); w/ Aequitas ~1.0 for every
// class, and the admitted mix converges to ~the target.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

constexpr double kSizeMtus = 8.0;  // 32KB WRITEs

runner::Experiment make_experiment(bool with_aequitas,
                                   const rpc::SloConfig& slo,
                                   std::uint64_t seed) {
  runner::ExperimentConfig config;
  config.num_hosts = 20;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.slo = slo;
  config.seed = seed;
  return runner::Experiment(config);
}

void attach(runner::Experiment& experiment, const std::vector<double>& mix) {
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = mix;
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);
}

std::string mix_label(const double* shares) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f/%.0f/%.0f", 100 * shares[0],
                100 * shares[1], 100 * shares[2]);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 23",
                      "20-host testbed (simulated), weights 8:4:1, input "
                      "mix 50/35/15, SLOs at target mix 20/30/50");

  // Calibration at the target mix: the per-class p99.9 becomes both the
  // SLO and the normalization base. Runs serially (the sweep depends on
  // it) with a seed outside the sweep's index range.
  rpc::SloConfig placeholder = rpc::SloConfig::make(
      {25 * sim::kUsec / kSizeMtus, 50 * sim::kUsec / kSizeMtus, 0.0}, 99.9);
  runner::Experiment calibration = make_experiment(
      false, placeholder, sim::derive_seed(args.sweep.base_seed, 100));
  attach(calibration, {0.20, 0.30, 0.50});
  calibration.run(8 * sim::kMsec, 12 * sim::kMsec);
  double base[3];
  for (net::QoSLevel q = 0; q < 3; ++q) {
    base[q] = calibration.metrics().rnl_by_run_qos(q).p999();
  }
  std::printf("normalization base (p99.9 at target mix): "
              "%.1f / %.1f / %.1f us\n\n",
              base[0] / sim::kUsec, base[1] / sim::kUsec,
              base[2] / sim::kUsec);
  const rpc::SloConfig slo = rpc::SloConfig::make(
      {base[0] / kSizeMtus, base[1] / kSizeMtus, 0.0}, 99.9);

  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (bool with_aequitas : {false, true}) {
    sweep.submit([with_aequitas, slo, &base, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      runner::Experiment experiment =
          make_experiment(with_aequitas, slo, ctx.seed);
      trace.apply(experiment, point);
      attach(experiment, {0.50, 0.35, 0.15});
      experiment.run(15 * sim::kMsec, 20 * sim::kMsec);
      const auto& metrics = experiment.metrics();
      const double shares[3] = {metrics.admitted_share(0),
                                metrics.admitted_share(1),
                                metrics.admitted_share(2)};
      return runner::PointResult::single(
          {with_aequitas ? "w/  Aequitas" : "w/o Aequitas",
           metrics.rnl_by_run_qos(0).p999() / base[0],
           metrics.rnl_by_run_qos(1).p999() / base[1],
           metrics.rnl_by_run_qos(2).p999() / base[2], mix_label(shares)});
    });
  }

  stats::Table table({{"variant", 18},
                      {"QoS_h", 10, 1},
                      {"QoS_m", 10, 1},
                      {"QoS_l", 10, 1},
                      {"admitted mix (%)", 22}});
  for (const auto& point : sweep.run()) table.add_rows(point.rows);
  bench::emit(table, args);
  std::printf("\n(RNL normalized per class to the target-mix calibration "
              "run, as in the paper's footnote 7)\n");
  bench::print_footer();
  return 0;
}
