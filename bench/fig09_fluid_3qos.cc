// Figure 9: simulated (GPS fluid) worst-case WFQ delay with 3 QoS levels,
// mu = 0.8, rho = 1.4, QoS_m : QoS_l share fixed at 2:1, for weights
// (a) 8:4:1 and (b) 50:4:1. The paper's takeaway: the QoS-mix shapes the
// delay profile of every class, and raising the QoS_h weight moves the
// priority-inversion point right at the cost of higher QoS_m delay.
#include <cstdio>
#include <vector>

#include "analysis/admissible.h"
#include "bench/bench_util.h"

namespace {

using namespace aeq;

void run_panel(const char* label, const std::vector<double>& weights,
               bench::BenchArgs& args) {
  std::printf("\n(%s) weights %g:%g:%g, mu=0.8, rho=1.4, QoSm:QoSl = 2:1\n",
              label, weights[0], weights[1], weights[2]);
  const auto sweep = analysis::sweep_qosh_share(weights, {2.0, 1.0}, 0.8,
                                                1.4, 0.05, 0.90, 18);
  stats::Table table({{"QoSh-share(%)", 14, 0},
                      {"Delay(QoSh)", 14, 4},
                      {"Delay(QoSm)", 14, 4},
                      {"Delay(QoSl)", 14, 4},
                      {"admissible", 12}});
  double inversion = 1.0;
  for (const auto& point : sweep) {
    const bool admissible = point.delay[0] <= point.delay[1] + 1e-9 &&
                            point.delay[1] <= point.delay[2] + 1e-9;
    if (!admissible && inversion == 1.0) inversion = point.qosh_share;
    table.add_row({point.qosh_share * 100.0, point.delay[0], point.delay[1],
                   point.delay[2], admissible ? "yes" : "no"});
  }
  bench::emit(table, args);
  if (inversion < 1.0) {
    std::printf("priority inversion first appears at QoSh-share ~%.0f%%\n",
                inversion * 100.0);
  } else {
    std::printf("no priority inversion in the swept range\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  aeq::bench::BenchArgs args = aeq::bench::parse_args(argc, argv);
  aeq::bench::print_header(
      "Figure 9", "Simulated WFQ worst-case delay, 3 QoS levels (fluid)");
  run_panel("a", {8.0, 4.0, 1.0}, args);
  run_panel("b", {50.0, 4.0, 1.0}, args);
  aeq::bench::print_footer();
  return 0;
}
