// Figure 12: per-QoS p99.9 RNL with and without Aequitas on the 33-node
// all-to-all setup (mu=0.8, rho=1.4, input QoS-mix 0.6/0.3/0.1, weights
// 8:4:1, SLOs 25us/50us for QoS_h/QoS_m (calibrated to this simulator; see EXPERIMENTS.md) at p99.9, 32KB RPCs).
// Expected shape (paper): without Aequitas all classes blow past the SLOs
// (83/129/543us); with Aequitas QoS_h and QoS_m land at ~SLO and even QoS_l
// improves (Aequitas is not a zero-sum game).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace {

using namespace aeq;

runner::PointResult run_variant(bool with_aequitas, std::uint64_t seed,
                                const bench::TraceRequest& trace,
                                int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 33;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.seed = seed;
  // Favor SLO-compliance over stability (§6.6): per-channel RPC rates are
  // low with 32 destinations, which weakens MD pressure at the default
  // balance.
  config.admission.aequitas.alpha = 0.003;
  config.admission.aequitas.beta_per_mtu = 0.03;
  const double size_mtus = 8.0;  // 32KB
  config.slo = rpc::SloConfig::make({25 * sim::kUsec / size_mtus,
                                     50 * sim::kUsec / size_mtus, 0.0},
                                    99.9);
  runner::Experiment experiment(config);
  trace.apply(experiment, point);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));
  bench::AllToAllSpec spec;
  spec.mix = {0.6, 0.3, 0.1};
  spec.sizes = {sizes};
  bench::attach_all_to_all(experiment, spec);
  experiment.run(15 * sim::kMsec, 30 * sim::kMsec);

  runner::PointResult result;
  result.rows = bench::rnl_rows(experiment.metrics(), 3);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 12",
                      "33-node all-to-all, mix 60/30/10, SLO 25/50us, "
                      "w/ and w/o Aequitas");
  runner::SweepRunner sweep(args.sweep);
  int trace_point = 0;
  for (bool with_aequitas : {false, true}) {
    sweep.submit([with_aequitas, trace = args.trace,
                  point = trace_point++](const runner::PointContext& ctx) {
      return run_variant(with_aequitas, ctx.seed, trace, point);
    });
  }
  const auto points = sweep.run();
  for (std::size_t p = 0; p < points.size(); ++p) {
    std::printf("\n%s Aequitas:\n", p == 1 ? "WITH" : "WITHOUT");
    stats::Table table = bench::make_rnl_table();
    table.add_rows(points[p].rows);
    bench::emit(table, args);
  }
  std::printf("\nSLO: QoS_h 25us, QoS_m 50us (p99.9, 32KB RPCs)\n");
  bench::print_footer();
  return 0;
}
