// Figures 2/3: a congestion episode. Background all-to-all traffic runs at
// moderate load; between 10ms and 30ms a set of aggressor applications
// surges toward three victim hosts, pushing their downlinks far beyond
// capacity — and, as in production pre-Aequitas (§2.3's race to the top),
// the surge marks its bulk 96KB RPCs *performance critical*, sharing QoS_h
// channels with everyone's small interactive PC RPCs.
//
// Without admission control (the paper's Figure 3 world) the PC tail blows
// up with the load and stays elevated for the whole surge. With Aequitas,
// the aggressor channels' admit probability collapses, their excess runs on
// the scavenger class, and the *admitted* QoS_h traffic keeps a flat tail
// through the incident; the downgrade fraction makes the enforcement
// visible.
#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "stats/percentile.h"

namespace {

using namespace aeq;

struct Timeline {
  // Per-millisecond buckets over small (32KB, interactive) PC RPCs.
  std::map<int, stats::PercentileTracker> pc_all;       // any wire class
  std::map<int, stats::PercentileTracker> pc_admitted;  // ran on QoS_h
  std::map<int, int> pc_count;
  std::map<int, int> pc_downgraded;
  std::map<int, double> offered_bytes;
};

Timeline run(bool with_aequitas, std::uint64_t seed,
             const bench::TraceRequest& trace, int point) {
  runner::ExperimentConfig config;
  config.num_hosts = 12;
  config.num_qos = 3;
  config.wfq_weights = {8.0, 4.0, 1.0};
  config.enable_aequitas = with_aequitas;
  config.seed = seed;
  config.slo = rpc::SloConfig::make(
      {25.0 / 8 * sim::kUsec, 50.0 / 8 * sim::kUsec, 0.0}, 99.9);
  runner::Experiment experiment(config);
  trace.apply(experiment, point);
  const auto* sizes = experiment.own(
      std::make_unique<workload::FixedSize>(32 * sim::kKiB));

  auto timeline = std::make_unique<Timeline>();
  Timeline& t = *timeline;
  for (std::size_t h = 0; h < 12; ++h) {
    experiment.stack(static_cast<net::HostId>(h))
        .set_completion_listener([&t](const rpc::RpcRecord& r) {
          const int bucket = static_cast<int>(r.completed / sim::kMsec);
          t.offered_bytes[bucket] += static_cast<double>(r.bytes);
          if (r.priority == rpc::Priority::kPC &&
              r.bytes == 32 * sim::kKiB) {
            t.pc_all[bucket].add(r.rnl);
            ++t.pc_count[bucket];
            if (r.downgraded) ++t.pc_downgraded[bucket];
            if (r.qos_run == net::kQoSHigh) t.pc_admitted[bucket].add(r.rnl);
          }
        });
  }

  // Background: every host at 0.35 load, mix 40/30/30.
  for (std::size_t h = 0; h < 12; ++h) {
    workload::GeneratorConfig gen;
    const double rate = 0.35 * sim::gbps(100);
    gen.classes = {{rpc::Priority::kPC, 0.4 * rate, sizes, 0.0},
                   {rpc::Priority::kNC, 0.3 * rate, sizes, 0.0},
                   {rpc::Priority::kBE, 0.3 * rate, sizes, 0.0}};
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
  // Surge: hosts 3..11 each add 0.9 load of 96KB bulk RPCs *marked PC*
  // (they share the same QoS_h channels as the 32KB interactive PC RPCs)
  // aimed at hosts 0-2, during [10ms, 30ms).
  const auto* bulk = experiment.own(
      std::make_unique<workload::FixedSize>(96 * sim::kKiB));
  for (std::size_t h = 3; h < 12; ++h) {
    workload::GeneratorConfig gen;
    gen.classes = {
        {rpc::Priority::kPC, 0.9 * sim::gbps(100), bulk, 0.0}};
    gen.window_start = 10 * sim::kMsec;
    gen.window_stop = 30 * sim::kMsec;
    const auto victim = static_cast<net::HostId>(h % 3);
    experiment.add_generator(static_cast<net::HostId>(h), gen,
                             workload::fixed_destination(victim));
  }
  experiment.run(0.0, 45 * sim::kMsec);
  return std::move(t);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 3",
                      "Congestion episode: PC-marked bulk surge (10-30ms) "
                      "into 3 victims; interactive-PC tail over time");
  // Both variants replay the same workload (same seed), so the baseline
  // and Aequitas columns line up bucket for bucket.
  const std::uint64_t seed = sim::derive_seed(args.sweep.base_seed, 0);
  auto timelines = runner::parallel_points(
      2, args.sweep.jobs, [seed, &args](std::size_t index) {
        return run(index == 1, seed, args.trace,
                   static_cast<int>(index));
      });
  Timeline& base = timelines[0];
  Timeline& aeq = timelines[1];

  stats::Table table({{"t(ms)", 8, 0},
                      {"load(norm)", 12, 2},
                      {"PC p99 w/o AEQ(us)", 18, 1},
                      {"admitted-PC p99 w/(us)", 20, 1},
                      {"downgraded(%)", 14, 1}});
  const double base_load = 0.35 * sim::gbps(100) * 12 * sim::kMsec;
  for (int ms = 2; ms < 44; ms += 2) {
    const double load = base.offered_bytes.count(ms)
                            ? base.offered_bytes[ms] / base_load
                            : 0.0;
    const double p99_base =
        base.pc_all.count(ms) ? base.pc_all[ms].p99() / sim::kUsec : 0.0;
    const double p99_adm = aeq.pc_admitted.count(ms)
                               ? aeq.pc_admitted[ms].p99() / sim::kUsec
                               : 0.0;
    const double downgraded =
        aeq.pc_count.count(ms) && aeq.pc_count[ms] > 0
            ? 100.0 * aeq.pc_downgraded[ms] / aeq.pc_count[ms]
            : 0.0;
    table.add_row({static_cast<double>(ms), load, p99_base, p99_adm,
                   downgraded});
  }
  bench::emit(table, args);
  std::printf("\nWithout admission control the shared QoS_h channels queue "
              "behind the surge; with Aequitas the admitted PC tail stays "
              "flat and the surge (plus excess PC) is downgraded.\n");
  bench::print_footer();
  return 0;
}
