// Figure 10: packet-level simulator validation against the closed-form
// 2-QoS delay bounds (Equation 1/8) with weights 4:1, mu = 0.8, rho = 1.2.
// Congestion control is disabled and the buffer unbounded, matching §6.1:
// packets following the Figure-7 arrival pattern are injected straight into
// a WFQ egress port and the worst observed delay per class is compared with
// theory. The packet simulator should track the theory closely, with QoS_l
// slightly above the fluid bound due to packet granularity.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/wfq_delay.h"
#include "bench/bench_util.h"
#include "net/port.h"
#include "net/wfq.h"
#include "sim/simulator.h"

namespace {

using namespace aeq;

class DelayRecorder final : public net::PacketSink {
 public:
  void receive(const net::Packet& packet) override {
    const double delay = now_fn_() - packet.sent_time;
    worst_[packet.qos] = std::max(worst_[packet.qos], delay);
  }
  std::function<sim::Time()> now_fn_;
  double worst_[2] = {0.0, 0.0};
};

struct SimPoint {
  double high;
  double low;
};

SimPoint run_packet_sim(double x, double mu, double rho, double phi) {
  sim::Simulator s;
  DelayRecorder recorder;
  recorder.now_fn_ = [&s] { return s.now(); };
  const sim::Rate line_rate = sim::gbps(100);
  net::Port port(s, line_rate, 0.0,
                 std::make_unique<net::WfqQueue>(std::vector<double>{phi, 1.0}));
  port.connect(&recorder);

  const sim::Time period = 500 * sim::kUsec;
  const sim::Time window = period * mu / rho;
  const std::uint32_t pkt = 1500;
  const int periods = 3;

  for (int p = 0; p < periods; ++p) {
    const sim::Time t0 = p * period;
    for (int cls = 0; cls < 2; ++cls) {
      const double share = cls == 0 ? x : 1.0 - x;
      if (share <= 0.0) continue;
      const double byte_rate = rho * line_rate * share;
      const sim::Time interval = pkt / byte_rate;
      for (sim::Time t = t0; t < t0 + window; t += interval) {
        s.schedule_at(t, [&port, cls, pkt, &s] {
          net::Packet packet;
          packet.qos = static_cast<net::QoSLevel>(cls);
          packet.size_bytes = pkt;
          packet.sent_time = s.now();
          port.send(packet);
        });
      }
    }
  }
  s.run();
  return SimPoint{recorder.worst_[0] / period, recorder.worst_[1] / period};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::print_header("Figure 10",
                      "Packet simulator vs theory, QoS_h:QoS_l = 4:1, "
                      "mu=0.8, rho=1.2 (CC off, unbounded buffer)");
  const analysis::TwoQosParams params{.phi = 4.0, .mu = 0.8, .rho = 1.2};
  runner::SweepRunner sweep(args.sweep);
  for (int pct = 5; pct <= 95; pct += 5) {
    sweep.submit([pct, params](const runner::PointContext&) {
      const double x = pct / 100.0;
      const SimPoint sim_point =
          run_packet_sim(x, params.mu, params.rho, params.phi);
      const double th_h = analysis::delay_high(params, x);
      const double th_l = analysis::delay_low(params, x);
      runner::PointResult result = runner::PointResult::single(
          {static_cast<double>(pct), sim_point.high, th_h, sim_point.low,
           th_l});
      result.metrics["gap"] = std::max(std::abs(sim_point.high - th_h),
                                       std::abs(sim_point.low - th_l));
      return result;
    });
  }
  stats::Table table({{"QoSh-share(%)", 14, 0},
                      {"sim QoSh", 12, 4},
                      {"theory QoSh", 12, 4},
                      {"sim QoSl", 12, 4},
                      {"theory QoSl", 12, 4}});
  double worst_gap = 0.0;
  for (const auto& point : sweep.run()) {
    table.add_rows(point.rows);
    worst_gap = std::max(worst_gap, point.metrics.at("gap"));
  }
  bench::emit(table, args);
  std::printf("\nmax |sim - theory| across the sweep: %.4f "
              "(normalized to the period)\n",
              worst_gap);
  bench::print_footer();
  return 0;
}
