// Shared helpers for the figure-reproduction benches: consistent headers,
// the common command line (--jobs/--seed/--csv/--json), structured result
// tables, and the all-to-all workload wiring used by most of the paper's
// experiments (§6.1: average load 0.8, burst load 1.4, Poisson arrivals
// within bursts).
//
// Benches are sweeps of independent simulation points. They submit one
// closure per point to a runner::SweepRunner (or runner::parallel_points
// for richer payloads), collect structured results in submission order,
// and render tables on the main thread — so `--jobs N` output is
// byte-identical to `--jobs 1`.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "runner/experiment.h"
#include "runner/sweep.h"
#include "stats/export.h"
#include "stats/table.h"
#include "tools/flags.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

namespace aeq::bench {

inline void print_header(const char* figure, const char* title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("==============================================================\n");
}

inline void print_footer() { std::printf("\n"); }

// Selects which simulation point of a bench gets telemetry attached.
// Benches run many independent experiments (sweep points, calibration
// runs); tracing all of them would interleave files, so the telemetry
// flags target exactly one, identified by the order in which the bench
// applies the request (its submission index, which is deterministic for
// any --jobs N).
struct TraceRequest {
  std::string trace;      // --trace PATH: Chrome trace_event JSON
  std::string trace_csv;  // --trace-csv PATH: flat per-event CSV
  // --timeseries BASE: windowed timeline at BASE.csv and BASE.json;
  // --timeseries-width U: window width in simulated microseconds.
  std::string timeseries;
  double timeseries_width_us = 100.0;
  // --watchdog PATH: enable the anomaly watchdog, log anomalies to PATH
  // ("-" = stderr). Implies windowed telemetry even without --timeseries.
  bool watchdog = false;
  std::string watchdog_log;
  // --flight-recorder PATH: ring-buffer post-mortem; dump lands at PATH on
  // the first anomaly or on an assert/audit failure.
  std::string flight_recorder;
  // --prof PATH: execution profile (obs/prof, DESIGN.md §14) for the
  // requested point — JSON report at PATH (`.point<N>`-suffixed when N>0,
  // so repeated --trace-point invocations never clobber each other), flame
  // rows at `<report>.trace.json`, text summary on stderr. Observe-only:
  // the profiled point's stdout stays byte-identical.
  std::string prof;
  int point = 0;  // --trace-point N: which apply() site fires

  bool enabled() const {
    return !trace.empty() || !trace_csv.empty() || !timeseries.empty() ||
           watchdog || !flight_recorder.empty() || !prof.empty();
  }

  runner::TelemetrySpec spec() const {
    runner::TelemetrySpec spec;
    spec.trace = trace;
    spec.trace_csv = trace_csv;
    if (!timeseries.empty()) {
      spec.timeseries_csv = timeseries + ".csv";
      spec.timeseries_json = timeseries + ".json";
    }
    spec.timeseries_width = timeseries_width_us * sim::kUsec;
    spec.watchdog = watchdog;
    spec.watchdog_log = watchdog_log == "-" ? "" : watchdog_log;
    spec.flight_recorder = flight_recorder;
    return spec;
  }

  // Attaches telemetry to `experiment` iff this is the requested point.
  // Call once per candidate experiment, numbering them 0, 1, ... in the
  // order they are submitted/constructed.
  void apply(runner::Experiment& experiment, int point_index = 0) const {
    if (!enabled() || point_index != point) return;
    const runner::TelemetrySpec telemetry = spec();
    if (telemetry.any()) experiment.enable_telemetry(telemetry);
    if (!prof.empty()) {
      experiment.enable_profiling(
          point == 0 ? prof : prof + ".point" + std::to_string(point));
    }
  }
};

// Command line shared by every figure/ablation bench:
//   --jobs N        worker threads for the sweep (default: AEQ_JOBS env,
//                   else hardware concurrency); results are identical for
//                   any N
//   --seed S        base seed; per-point seeds derive from (S, point index)
//   --csv PATH      append each rendered table as CSV ("-" = stdout)
//   --json PATH     append each rendered table as JSON ("-" = stdout)
//   --trace PATH    write a Chrome trace_event JSON for one point
//   --trace-csv PATH  write a per-event CSV for the same point
//   --timeseries BASE  write windowed telemetry to BASE.csv and BASE.json
//   --timeseries-width U  window width in simulated microseconds (100)
//   --watchdog PATH  enable the anomaly watchdog; log to PATH ("-"=stderr)
//   --flight-recorder PATH  post-mortem ring buffer; dump on anomaly/crash
//   --prof PATH     execution profile for one point: per-component JSON
//                   report at PATH (+ `.trace.json` flame rows, stderr
//                   summary); observe-only, stdout stays byte-identical
//   --trace-point N which point gets the telemetry (default 0, the first)
//   --shards N      intra-run parallelism (ExperimentConfig::shards): each
//                   simulation point runs on N conservative-PDES shards;
//                   results are identical for any N (benches that honor it
//                   wire args.shards into their config)
//   --schedule-digest  print the canonical schedule digest (sim/digest.h)
//                   per point — the fingerprint of the dispatched event
//                   schedule. Identical across backends, shard counts, and
//                   address-space layouts for a fixed seed (DESIGN.md §12);
//                   needs an AEQ_SCHED_DIGEST=ON build (the default).
struct BenchArgs {
  runner::SweepOptions sweep;
  std::string csv_path;
  std::string json_path;
  std::size_t shards = 1;
  bool schedule_digest = false;
  TraceRequest trace;
  tools::Flags flags;       // bench-specific extras stay queryable
  bool machine_started = false;  // first emit truncates, later ones append
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  if (!args.flags.parse(argc, argv)) {
    std::fprintf(stderr, "%s: %s\n", argv[0], args.flags.error().c_str());
    std::exit(2);
  }
  args.sweep.jobs = runner::resolve_jobs(args.flags.get_int("jobs", 0));
  args.sweep.base_seed =
      static_cast<std::uint64_t>(args.flags.get_int("seed", 1));
  args.csv_path = args.flags.get("csv");
  args.json_path = args.flags.get("json");
  args.shards = static_cast<std::size_t>(args.flags.get_int("shards", 1));
  if (args.shards < 1) args.shards = 1;
  args.schedule_digest = args.flags.get_bool("schedule-digest", false);
  args.trace.trace = args.flags.get("trace");
  args.trace.trace_csv = args.flags.get("trace-csv");
  args.trace.timeseries = args.flags.get("timeseries");
  args.trace.timeseries_width_us =
      args.flags.get_double("timeseries-width", 100.0);
  // `--watchdog` alone parses as the bare-boolean value "true": enable the
  // watchdog with anomalies on stderr. Any other value is the log path.
  const std::string watchdog_arg = args.flags.get("watchdog");
  args.trace.watchdog = args.flags.has("watchdog");
  args.trace.watchdog_log = watchdog_arg == "true" ? "" : watchdog_arg;
  args.trace.flight_recorder = args.flags.get("flight-recorder");
  args.trace.prof = args.flags.get("prof");
  args.trace.point = static_cast<int>(args.flags.get_int("trace-point", 0));
  return args;
}

namespace detail {
inline void emit_machine(const stats::Table& table, const std::string& path,
                         bool json, bool append) {
  if (path.empty()) return;
  if (path == "-") {
    json ? stats::write_json(std::cout, table)
         : stats::write_csv(std::cout, table);
    return;
  }
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(2);
  }
  if (append) out << "\n";
  json ? stats::write_json(out, table) : stats::write_csv(out, table);
}
}  // namespace detail

// Renders `table` to stdout and mirrors it to --csv/--json sinks. Benches
// that print several tables call emit() once per table; file sinks receive
// the tables as blank-line-separated blocks.
inline void emit(const stats::Table& table, BenchArgs& args) {
  std::cout << table.to_string() << std::flush;
  detail::emit_machine(table, args.csv_path, /*json=*/false,
                       args.machine_started);
  detail::emit_machine(table, args.json_path, /*json=*/true,
                       args.machine_started);
  args.machine_started = true;
}

// Stable one-line rendering of a point's schedule digest, in the format
// the CI determinism smoke greps and diffs:
//   schedule-digest <label>: <16 hex digits> over <N> events
// Safe to build on a worker thread; benches print the lines on the main
// thread in submission order so output stays byte-identical for any
// --jobs/--shards.
inline std::string format_schedule_digest(
    const runner::Experiment& experiment, const std::string& label) {
  const sim::ScheduleDigest digest = experiment.schedule_digest();
  char line[96];
  std::snprintf(line, sizeof(line),
                "schedule-digest %s: %s over %llu events", label.c_str(),
                digest.hex().c_str(),
                static_cast<unsigned long long>(digest.count));
  return line;
}

inline const char* qos_name(net::QoSLevel qos, std::size_t num_qos) {
  if (num_qos == 2) return qos == 0 ? "QoS_h" : "QoS_l";
  switch (qos) {
    case 0: return "QoS_h";
    case 1: return "QoS_m";
    default: return "QoS_l";
  }
}

// Attaches the paper's all-to-all workload to every host: per-host average
// byte rate = `load` * link rate split across priority classes by `mix`.
struct AllToAllSpec {
  double load = 0.8;            // mu, fraction of link rate per host
  double burst_load = 1.4;      // rho; burst_over_avg = rho / mu
  sim::Time burst_period = 100 * sim::kUsec;
  std::vector<double> mix = {0.6, 0.3, 0.1};  // PC/NC/BE byte shares
  // One distribution per class (same pointer allowed).
  std::vector<const workload::SizeDistribution*> sizes;
  std::vector<sim::Time> deadline_budget;  // optional, per class
};

inline void attach_all_to_all(runner::Experiment& experiment,
                              const AllToAllSpec& spec) {
  const auto& config = experiment.config();
  const double per_host_rate = spec.load * config.link_rate;
  for (std::size_t h = 0; h < config.num_hosts; ++h) {
    workload::GeneratorConfig gen;
    gen.burst_over_avg = spec.burst_load / spec.load;
    gen.burst_period = spec.burst_period;
    for (std::size_t c = 0; c < spec.mix.size(); ++c) {
      if (spec.mix[c] <= 0.0) continue;
      workload::ClassLoad load;
      load.priority = static_cast<rpc::Priority>(c);
      load.byte_rate = spec.mix[c] * per_host_rate;
      load.sizes = spec.sizes.size() == 1 ? spec.sizes[0] : spec.sizes.at(c);
      load.deadline_budget =
          spec.deadline_budget.empty() ? 0.0 : spec.deadline_budget.at(c);
      gen.classes.push_back(load);
    }
    experiment.add_generator(static_cast<net::HostId>(h), gen);
  }
}

// Columns of the per-QoS RNL summary table (mean / p99 / p99.9,
// completions, admitted share).
inline stats::Table make_rnl_table() {
  return stats::Table({{"QoS", 8},
                       {"mean(us)", 12, 1},
                       {"p99(us)", 12, 1},
                       {"p99.9(us)", 14, 1},
                       {"completed", 12, 0},
                       {"downgr.", 12, 0},
                       {"share(%)", 12, 1}});
}

// Extracts the RNL summary rows as plain data — safe to build on a worker
// thread and hand back through a PointResult.
inline std::vector<stats::Row> rnl_rows(const rpc::RpcMetrics& metrics,
                                        std::size_t num_qos) {
  std::vector<stats::Row> rows;
  for (std::size_t q = 0; q < num_qos; ++q) {
    const auto qos = static_cast<net::QoSLevel>(q);
    const auto& rnl = metrics.rnl_by_run_qos(qos);
    rows.push_back({qos_name(qos, num_qos), rnl.mean() / sim::kUsec,
                    rnl.p99() / sim::kUsec, rnl.p999() / sim::kUsec,
                    static_cast<double>(metrics.completed(qos)),
                    static_cast<double>(metrics.downgraded(qos)),
                    100.0 * metrics.admitted_share(qos)});
  }
  return rows;
}

}  // namespace aeq::bench
